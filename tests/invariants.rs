//! Property tests of the structural invariants from DESIGN.md §7:
//! the `M_ct` lower bound, the one-to-one fast path, time-scaling, and
//! round-robin monotonicity facts.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use repwf_core::model::{CommModel, Instance, Mapping, Pipeline, Platform};
use repwf_core::period::{compute_period, Method};
use repwf_gen::{sample_instance, GenConfig, Range};

fn cfg_strategy() -> impl Strategy<Value = (GenConfig, u64)> {
    (2usize..5, 0usize..6, 1u64..10_000).prop_map(|(stages, extra, seed)| {
        (
            GenConfig {
                stages,
                procs: stages + extra,
                comp: Range::new(5.0, 15.0),
                comm: Range::new(5.0, 15.0),
            },
            seed,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn period_at_least_mct((cfg, seed) in cfg_strategy()) {
        let inst = sample_instance(&cfg, &mut StdRng::seed_from_u64(seed));
        for model in [CommModel::Overlap, CommModel::Strict] {
            let r = compute_period(&inst, model, Method::Auto).unwrap();
            prop_assert!(r.period >= r.mct - 1e-9 * r.mct, "{model}: {} < {}", r.period, r.mct);
        }
    }

    #[test]
    fn one_to_one_period_equals_mct((cfg, seed) in cfg_strategy()) {
        // Force a one-to-one mapping by truncating each stage to 1 replica.
        let inst = sample_instance(&cfg, &mut StdRng::seed_from_u64(seed));
        let assignment: Vec<Vec<usize>> =
            inst.mapping.assignment().iter().map(|procs| vec![procs[0]]).collect();
        let one = Instance::new(
            inst.pipeline.clone(),
            inst.platform.clone(),
            Mapping::new(assignment).unwrap(),
        ).unwrap();
        for model in [CommModel::Overlap, CommModel::Strict] {
            // §2 of the paper: without replication, P = M_ct. Check the full
            // TPN agrees with the closed form.
            let full = compute_period(&one, model, Method::FullTpn).unwrap();
            prop_assert!(
                (full.period - full.mct).abs() <= 1e-9 * full.mct,
                "{model}: {} vs {}",
                full.period, full.mct
            );
        }
    }

    #[test]
    fn scaling_all_times_scales_period((cfg, seed) in cfg_strategy(), alpha in 0.25f64..4.0) {
        let inst = sample_instance(&cfg, &mut StdRng::seed_from_u64(seed));
        // Scale works and files by alpha: every op time scales by alpha.
        let works: Vec<f64> = inst.pipeline.works().iter().map(|w| w * alpha).collect();
        let files: Vec<f64> = inst.pipeline.file_sizes().iter().map(|f| f * alpha).collect();
        let scaled = Instance::new(
            Pipeline::new(works, files).unwrap(),
            inst.platform.clone(),
            inst.mapping.clone(),
        ).unwrap();
        let base = compute_period(&inst, CommModel::Overlap, Method::Polynomial).unwrap();
        let after = compute_period(&scaled, CommModel::Overlap, Method::Polynomial).unwrap();
        prop_assert!(
            (after.period - alpha * base.period).abs() <= 1e-9 * after.period.max(1.0),
            "alpha {alpha}: {} vs {}",
            after.period, alpha * base.period
        );
    }

    #[test]
    fn speeding_a_link_never_hurts((cfg, seed) in cfg_strategy()) {
        let inst = sample_instance(&cfg, &mut StdRng::seed_from_u64(seed));
        if inst.num_stages() < 2 {
            return Ok(());
        }
        let u = inst.mapping.procs(0)[0];
        let v = inst.mapping.procs(1)[0];
        let mut faster = inst.platform.clone();
        faster.set_bandwidth(u, v, inst.platform.bandwidth(u, v) * 10.0);
        let quick = Instance::new(inst.pipeline.clone(), faster, inst.mapping.clone()).unwrap();
        let base = compute_period(&inst, CommModel::Overlap, Method::Polynomial).unwrap();
        let after = compute_period(&quick, CommModel::Overlap, Method::Polynomial).unwrap();
        prop_assert!(after.period <= base.period + 1e-9 * base.period);
    }
}

#[test]
fn homogeneous_uniform_replication_formula() {
    // Fully homogeneous platform, stage replicated k-fold, negligible
    // comms: period = w / (k · Π).
    for k in 1..6 {
        let pipeline = Pipeline::new(vec![60.0], vec![]).unwrap();
        let platform = Platform::uniform(k, 2.0, 1.0);
        let mapping = Mapping::new(vec![(0..k).collect()]).unwrap();
        let inst = Instance::new(pipeline, platform, mapping).unwrap();
        let r = compute_period(&inst, CommModel::Overlap, Method::Auto).unwrap();
        assert!((r.period - 30.0 / k as f64).abs() < 1e-9, "k={k}: {}", r.period);
    }
}

#[test]
fn deadlock_free_by_construction() {
    // Mapping TPNs are live: analysis never reports a deadlock.
    let mut rng = StdRng::seed_from_u64(99);
    for _ in 0..40 {
        let cfg = GenConfig {
            stages: 3,
            procs: 8,
            comp: Range::new(5.0, 15.0),
            comm: Range::new(5.0, 15.0),
        };
        let inst = sample_instance(&cfg, &mut rng);
        for model in [CommModel::Overlap, CommModel::Strict] {
            compute_period(&inst, model, Method::FullTpn).expect("live TPN");
        }
    }
}

#[test]
fn mapping_tpn_structural_bounds() {
    // Round-robin circuit places of a mapping TPN are 1-bounded; the
    // row-order (dataflow) places are structurally unbounded — that's the
    // unbounded-buffer abstraction the paper works in.
    let mut rng = StdRng::seed_from_u64(4242);
    for _ in 0..8 {
        let cfg = GenConfig {
            stages: 3,
            procs: 7,
            comp: Range::new(5.0, 15.0),
            comm: Range::new(5.0, 15.0),
        };
        let inst = sample_instance(&cfg, &mut rng);
        for model in [CommModel::Overlap, CommModel::Strict] {
            let built = repwf_core::tpn_build::build_tpn(
                &inst,
                model,
                &repwf_core::tpn_build::BuildOptions { labels: true, max_transitions: 100_000 },
            )
            .unwrap();
            let bounds = tpn::bounds::place_bounds(&built.net);
            for (b, place) in bounds.iter().zip(built.net.places()) {
                match model {
                    CommModel::Overlap => {
                        // Overlap: only the round-robin circuits throttle;
                        // dataflow (row) places buffer without bound.
                        if place.label.starts_with("row") {
                            assert_eq!(*b, None, "dataflow place {} must be unbounded", place.label);
                        } else {
                            assert_eq!(*b, Some(1), "circuit place {} must be 1-bounded", place.label);
                        }
                    }
                    CommModel::Strict => {
                        // Strict: every operation sits on its processor's
                        // serialization circuit, so every place (row places
                        // included) is 1-bounded — the strict model admits
                        // no run-ahead at all.
                        assert_eq!(*b, Some(1), "strict place {} must be 1-bounded", place.label);
                    }
                }
            }
        }
    }
}

#[test]
fn weighted_uniform_pattern_equals_plain_round_robin() {
    // The weighted-allocation extension collapses to the paper's model for
    // uniform patterns, on random instances and both models.
    use repwf_core::tpn_build::BuildOptions;
    use repwf_core::weighted::{weighted_period, WeightedAllocation};
    let mut rng = StdRng::seed_from_u64(2718);
    for _ in 0..10 {
        let cfg = GenConfig {
            stages: 3,
            procs: 7,
            comp: Range::new(5.0, 15.0),
            comm: Range::new(5.0, 15.0),
        };
        let inst = sample_instance(&cfg, &mut rng);
        let alloc = WeightedAllocation::round_robin(&inst);
        for model in [CommModel::Overlap, CommModel::Strict] {
            let plain = compute_period(&inst, model, Method::FullTpn).unwrap().period;
            let weighted = weighted_period(
                &inst,
                &alloc,
                model,
                &BuildOptions { labels: false, max_transitions: 400_000 },
            )
            .unwrap();
            assert!(
                (plain - weighted).abs() <= 1e-9 * plain,
                "{model}: {plain} vs {weighted}"
            );
        }
    }
}

#[test]
fn weighted_never_worse_than_uniform_when_optimized() {
    // Searching small integer weightings always includes 1:1, so the best
    // weighted period is never worse than uniform round-robin.
    use repwf_core::tpn_build::BuildOptions;
    use repwf_core::weighted::{weighted_period, WeightedAllocation};
    let mut rng = StdRng::seed_from_u64(31415);
    for _ in 0..6 {
        let cfg = GenConfig {
            stages: 2,
            procs: 5,
            comp: Range::new(5.0, 15.0),
            comm: Range::new(5.0, 15.0),
        };
        let inst = sample_instance(&cfg, &mut rng);
        let uniform = compute_period(&inst, CommModel::Overlap, Method::FullTpn).unwrap().period;
        let mut best = f64::INFINITY;
        for k in 1..=3usize {
            let weights: Vec<Vec<usize>> = (0..inst.num_stages())
                .map(|i| {
                    let m = inst.mapping.replicas(i);
                    (0..m).map(|r| if r == 0 { k } else { 1 }).collect()
                })
                .collect();
            let alloc = WeightedAllocation::proportional(&weights, &inst).unwrap();
            if let Ok(p) = weighted_period(
                &inst,
                &alloc,
                CommModel::Overlap,
                &BuildOptions { labels: false, max_transitions: 400_000 },
            ) {
                best = best.min(p);
            }
        }
        assert!(best <= uniform + 1e-9 * uniform, "best {best} vs uniform {uniform}");
    }
}
