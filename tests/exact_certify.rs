//! Certification regressions: the optimality gap `repwf map --certify`
//! reports — heuristic period vs. branch-and-bound optimum, **both
//! re-evaluated exactly** (never a simulator estimate) — pinned on the
//! paper's Example A and two Table 2-family instances.
//!
//! The gap is a derived quantity of two deterministic searches, so it is
//! reproducible to the bit; the assertions below pin it exactly. Two
//! invariants hold everywhere:
//!
//! * the gap is **never negative** — the exact search covers the same
//!   ordered-assignment space the heuristics move in, so a heuristic
//!   can never beat the certified optimum;
//! * on the quickstart instance annealing finds the optimum, so the gap
//!   is exactly zero.

use rand::rngs::StdRng;
use rand::SeedableRng;
use repwf_core::engine::MappingOracle;
use repwf_core::fixtures::example_a;
use repwf_core::model::{CommModel, Pipeline, Platform};
use repwf_core::period::Method;
use repwf_gen::sampler::sample_parts;
use repwf_gen::{GenConfig, Range};
use repwf_map::annealing::{anneal, AnnealOptions};
use repwf_map::exact::{solve, ExactOptions};
use repwf_map::{optimize, SearchOptions};

/// The `repwf map --certify` flow as a library call: heuristic (multi-
/// start local search + annealing), exact re-evaluation of its mapping,
/// branch-and-bound seeded with that bound, gap of exact periods.
fn certify(pipeline: &Pipeline, platform: &Platform, model: CommModel) -> (f64, f64) {
    let search = SearchOptions { model, ..SearchOptions::default() };
    let base = optimize(pipeline, platform, &search);
    let ann = AnnealOptions { model, ..AnnealOptions::default() };
    let refined = anneal(pipeline, platform, base.mapping.clone(), &ann);
    let heuristic = if refined.period < base.period { refined } else { base };

    let mut oracle = MappingOracle::new(pipeline, platform);
    let h_exact = oracle
        .compute(&heuristic.mapping, model, Method::Auto)
        .expect("heuristic mapping must re-evaluate exactly")
        .period;

    let opts = ExactOptions { model, initial_bound: Some(h_exact), ..ExactOptions::default() };
    let res = solve(pipeline, platform, &opts).expect("exact solve succeeds");
    let (_, optimum) = res.best.expect("a feasible heuristic implies a feasible optimum");
    ((h_exact - optimum) / optimum, optimum)
}

#[test]
fn example_a_certifies_with_zero_gap_under_both_models() {
    let inst = example_a();
    for model in [CommModel::Overlap, CommModel::Strict] {
        let (gap, optimum) = certify(&inst.pipeline, &inst.platform, model);
        assert!(gap >= 0.0, "negative gap under {model:?}");
        assert_eq!(gap.to_bits(), 0.0f64.to_bits(), "gap regressed under {model:?}: {gap}");
        let expected: f64 = if model == CommModel::Overlap { 67.0 } else { 68.0 };
        assert_eq!(optimum.to_bits(), expected.to_bits(), "optimum moved under {model:?}");
    }
}

#[test]
fn quickstart_anneal_finds_the_optimum_gap_is_exactly_zero() {
    let pipeline = Pipeline::new(vec![2.0, 9.0], vec![0.001]).unwrap();
    let platform = Platform::uniform(4, 1.0, 1000.0);
    let (gap, optimum) = certify(&pipeline, &platform, CommModel::Overlap);
    assert_eq!(gap.to_bits(), 0.0f64.to_bits(), "gap: {gap}");
    assert!((optimum - 3.0).abs() < 1e-9);
}

/// Two Table 2-family instances (the paper's experiment distributions,
/// scaled to exact-tractable size): family 1's heterogeneous
/// communicating pipelines and family 5's constant-computation shape.
#[test]
fn table2_family_instances_certify_with_pinned_gaps() {
    let families = [
        (GenConfig {
            stages: 3,
            procs: 5,
            comp: Range::new(5.0, 15.0),
            comm: Range::new(5.0, 15.0),
        }, 11u64),
        (GenConfig {
            stages: 2,
            procs: 5,
            comp: Range::constant(1.0),
            comm: Range::new(5.0, 10.0),
        }, 42u64),
    ];
    for (model, (cfg, seed)) in
        [CommModel::Overlap, CommModel::Strict].into_iter().zip(families)
    {
        let mut rng = StdRng::seed_from_u64(seed);
        let (pipeline, platform, _mapping) = sample_parts(&cfg, &mut rng);
        let (gap, optimum) = certify(&pipeline, &platform, model);
        assert!(gap >= 0.0, "negative gap under {model:?}");
        assert!(optimum.is_finite() && optimum > 0.0);
        assert_eq!(gap.to_bits(), 0.0f64.to_bits(), "gap regressed under {model:?}: {gap}");
    }
}
