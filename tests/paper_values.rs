//! Integration tests pinning every numeric value the paper reports for its
//! running examples (the per-figure index lives in DESIGN.md §5).

use repwf_core::cycle_time::max_cycle_time;
use repwf_core::fixtures::{example_a, example_b, example_c};
use repwf_core::model::CommModel;
use repwf_core::overlap_poly::pattern_info;
use repwf_core::paths::{instance_num_paths, paths};
use repwf_core::period::{compute_period, Method};

#[test]
fn table1_paths_of_example_a() {
    let a = example_a();
    assert_eq!(instance_num_paths(&a), Some(6));
    let expected: [&[usize]; 8] = [
        &[0, 1, 3, 6],
        &[0, 2, 4, 6],
        &[0, 1, 5, 6],
        &[0, 2, 3, 6],
        &[0, 1, 4, 6],
        &[0, 2, 5, 6],
        &[0, 1, 3, 6],
        &[0, 2, 4, 6],
    ];
    for (j, path) in paths(&a, 8).enumerate() {
        assert_eq!(path.as_slice(), expected[j], "path of data set {j}");
    }
}

#[test]
fn example_a_overlap_period_189_with_critical_resource() {
    let a = example_a();
    for method in [Method::Polynomial, Method::FullTpn, Method::TpnSimulation] {
        let r = compute_period(&a, CommModel::Overlap, method).unwrap();
        assert!(
            (r.period - 189.0).abs() < 1e-6,
            "{method}: got {}",
            r.period
        );
    }
    let r = compute_period(&a, CommModel::Overlap, Method::Auto).unwrap();
    assert!(r.has_critical_resource(1e-9), "P0's out-port is critical");
}

#[test]
fn example_a_strict_no_critical_resource() {
    let a = example_a();
    let (mct, who) = max_cycle_time(&a, CommModel::Strict);
    assert!((mct - 1295.0 / 6.0).abs() < 1e-9, "M_ct = 215.83, got {mct}");
    assert_eq!(who.proc, 2, "P2 is the strict critical resource");
    let r = compute_period(&a, CommModel::Strict, Method::FullTpn).unwrap();
    assert!((r.period - 1384.0 / 6.0).abs() < 1e-9, "period = 230.67, got {}", r.period);
    assert!(!r.has_critical_resource(1e-9));
}

#[test]
fn example_b_overlap_gap() {
    let b = example_b();
    let r = compute_period(&b, CommModel::Overlap, Method::Auto).unwrap();
    assert!((r.mct - 3100.0 / 12.0).abs() < 1e-9, "M_ct = 258.33, got {}", r.mct);
    assert!((r.period - 3500.0 / 12.0).abs() < 1e-9, "period = 291.67, got {}", r.period);
    assert!(!r.has_critical_resource(1e-9));
    let (_, who) = max_cycle_time(&b, CommModel::Overlap);
    assert_eq!(who.proc, 2, "out-port of P2");
}

#[test]
fn example_c_decomposition_constants() {
    let c = example_c();
    let replicas = c.mapping.replica_counts();
    assert_eq!(replicas, vec![5, 21, 27, 11]);
    let info = pattern_info(&replicas, 1);
    assert_eq!((info.g, info.u, info.v), (3, 7, 9));
    assert_eq!(info.c, Some(55));
    assert_eq!(info.m, Some(10395));
}

#[test]
fn example_c_polynomial_equals_full_tpn() {
    // The whole point of Theorem 1: same number, tiny fraction of the work.
    let c = example_c();
    let poly = compute_period(&c, CommModel::Overlap, Method::Polynomial).unwrap();
    let full = compute_period(&c, CommModel::Overlap, Method::FullTpn).unwrap();
    assert!(
        (poly.period - full.period).abs() < 1e-9 * full.period,
        "{} vs {}",
        poly.period,
        full.period
    );
}

#[test]
fn strict_dominates_overlap_on_fixtures() {
    for inst in [example_a(), example_b()] {
        let ov = compute_period(&inst, CommModel::Overlap, Method::FullTpn).unwrap();
        let st = compute_period(&inst, CommModel::Strict, Method::FullTpn).unwrap();
        assert!(st.period >= ov.period - 1e-9);
        assert!(st.mct >= ov.mct - 1e-9);
    }
}
