//! Property tests: the three period computations — Theorem 1 polynomial
//! algorithm, full-TPN critical cycle, and the independent discrete-event
//! simulator — agree on random instances (the validation strategy of
//! DESIGN.md §7).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use repwf_core::model::CommModel;
use repwf_core::period::{compute_period, Method};
use repwf_gen::{sample_instance, GenConfig, Range};
use repwf_sim::{simulate, SimOptions};

fn config_strategy() -> impl Strategy<Value = (GenConfig, u64)> {
    // Small instances so the full TPN stays cheap: m = lcm of replica
    // counts with at most 9 processors over 2–4 stages.
    (2usize..5, 0usize..6, 1u64..10_000, 0usize..3).prop_map(|(stages, extra, seed, shape)| {
        let comm = match shape {
            0 => Range::new(5.0, 15.0),
            1 => Range::new(10.0, 1000.0),
            _ => Range::new(5.0, 10.0),
        };
        let comp = if shape == 2 { Range::constant(1.0) } else { Range::new(5.0, 15.0) };
        (GenConfig { stages, procs: stages + extra, comp, comm }, seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn polynomial_equals_full_tpn_overlap((cfg, seed) in config_strategy()) {
        let inst = sample_instance(&cfg, &mut StdRng::seed_from_u64(seed));
        let poly = compute_period(&inst, CommModel::Overlap, Method::Polynomial).unwrap();
        let full = compute_period(&inst, CommModel::Overlap, Method::FullTpn).unwrap();
        prop_assert!(
            (poly.period - full.period).abs() <= 1e-9 * full.period.max(1.0),
            "poly {} vs tpn {} (replicas {:?}, seed {seed})",
            poly.period, full.period, inst.mapping.replica_counts()
        );
    }

    #[test]
    fn simulator_matches_analysis_both_models((cfg, seed) in config_strategy()) {
        let inst = sample_instance(&cfg, &mut StdRng::seed_from_u64(seed));
        for model in [CommModel::Overlap, CommModel::Strict] {
            let exact = compute_period(&inst, model, Method::FullTpn).unwrap();
            let m = exact.num_paths as u64;
            let sim = simulate(&inst, model, &SimOptions { data_sets: (600 * m).max(3000), record_ops: false });
            let est = sim.exact_period(1e-9).unwrap_or_else(|| sim.period_estimate());
            prop_assert!(
                (est - exact.period).abs() <= 2e-3 * exact.period,
                "{model}: sim {est} vs analytic {} (replicas {:?}, seed {seed})",
                exact.period, inst.mapping.replica_counts()
            );
        }
    }

    #[test]
    fn tpn_simulation_method_matches_analysis((cfg, seed) in config_strategy()) {
        let inst = sample_instance(&cfg, &mut StdRng::seed_from_u64(seed));
        for model in [CommModel::Overlap, CommModel::Strict] {
            let exact = compute_period(&inst, model, Method::FullTpn).unwrap();
            let sim = compute_period(&inst, model, Method::TpnSimulation).unwrap();
            prop_assert!(
                (sim.period - exact.period).abs() <= 2e-3 * exact.period,
                "{model}: tpn-sim {} vs analytic {}",
                sim.period, exact.period
            );
        }
    }

    #[test]
    fn howard_equals_lawler_on_mapping_tpns((cfg, seed) in config_strategy()) {
        let inst = sample_instance(&cfg, &mut StdRng::seed_from_u64(seed));
        for model in [CommModel::Overlap, CommModel::Strict] {
            let built = repwf_core::tpn_build::build_tpn(
                &inst,
                model,
                &repwf_core::tpn_build::BuildOptions { labels: false, max_transitions: 500_000 },
            ).unwrap();
            let h = tpn::analysis::period(&built.net).unwrap().unwrap();
            let l = tpn::analysis::period_lawler(&built.net).unwrap().unwrap();
            prop_assert!(
                (h.period - l.period).abs() <= 1e-8 * h.period.max(1.0),
                "{model}: howard {} vs lawler {}",
                h.period, l.period
            );
        }
    }
}
