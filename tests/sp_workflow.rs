//! Series-parallel workflows end to end: the diamond's period pinned
//! against a hand-built timed event graph (the jobshop-style TPN-level
//! answer, constructed place by place without going through `tpn_build`),
//! the discrete-event simulator, and a fork/join campaign that must take
//! the mapping oracle's patch path.

use repwf_core::engine::PeriodEngine;
use repwf_core::model::{CommModel, Instance, Mapping, Pipeline, Platform};
use repwf_core::period::{compute_period, Method};
use repwf_gen::{engine_for_cap, run_one_workflow_with, GenConfig, Range, Topology};
use repwf_sim::{simulate, SimOptions};
use tpn::net::TimedEventGraph;

/// The diamond fixture: 0 → {1, 2} → 3, one replica per stage, one
/// processor per stage (speed 1), every link at bandwidth 10.
fn diamond() -> Instance {
    let pipeline = Pipeline::from_edges(
        vec![2.0, 50.0, 3.0, 4.0],
        vec![(0, 1, 1.0), (0, 2, 1.0), (1, 3, 1.0), (2, 3, 1.0)],
    )
    .expect("valid diamond");
    let platform = Platform::uniform(4, 1.0, 10.0);
    let mapping =
        Mapping::new(vec![vec![0], vec![1], vec![2], vec![3]]).expect("valid mapping");
    Instance::new(pipeline, platform, mapping).expect("valid instance")
}

/// Builds the diamond's overlap one-port TPN by hand, jobshop-style: one
/// transition per computation and per transfer, a token-carrying self-loop
/// per processor, zero-token precedence places along each edge, and
/// token-carrying port-order circuits serializing the fork's two sends
/// (out-port of P0) and the join's two receives (in-port of P3).
#[test]
fn diamond_period_matches_handbuilt_tpn() {
    let mut net = TimedEventGraph::new();
    // computations: works [2, 50, 3, 4] on unit-speed processors
    let t0 = net.add_transition(2.0, "S0 on P0");
    let t1 = net.add_transition(50.0, "S1 on P1");
    let t2 = net.add_transition(3.0, "S2 on P2");
    let t3 = net.add_transition(4.0, "S3 on P3");
    // transfers: every file is 1.0 over bandwidth 10 → 0.1
    let x01 = net.add_transition(0.1, "F0: S0→S1");
    let x02 = net.add_transition(0.1, "F1: S0→S2");
    let x13 = net.add_transition(0.1, "F2: S1→S3");
    let x23 = net.add_transition(0.1, "F3: S2→S3");

    // processor reuse (one data set at a time per processor)
    for (t, who) in [(t0, "P0"), (t1, "P1"), (t2, "P2"), (t3, "P3")] {
        net.add_place(t, t, 1, format!("{who} reuse"));
    }
    // precedence along each edge: comp → transfer → comp, no tokens
    for (src, x, dst) in [(t0, x01, t1), (t0, x02, t2), (t1, x13, t3), (t2, x23, t3)] {
        net.add_place(src, x, 0, "produce");
        net.add_place(x, dst, 0, "consume");
    }
    // one-port serialization: P0's out-port alternates its two sends in
    // edge order, P3's in-port its two receives; the single-transfer ports
    // of P1/P2 are plain self-loops.
    net.add_place(x01, x02, 0, "P0 out: F0 then F1");
    net.add_place(x02, x01, 1, "P0 out wrap");
    net.add_place(x13, x23, 0, "P3 in: F2 then F3");
    net.add_place(x23, x13, 1, "P3 in wrap");
    for (x, who) in [(x01, "P1 in"), (x02, "P2 in"), (x13, "P1 out"), (x23, "P2 out")] {
        net.add_place(x, x, 1, format!("{who} wrap"));
    }

    let sol = tpn::analysis::period(&net).expect("live net").expect("cyclic net");
    // S1's computation dominates every circuit: the period is exactly 50.
    assert_eq!(sol.period, 50.0, "hand-built TPN period");

    // The model layer's TPN must give the same answer for the same
    // instance — and so must the discrete-event simulator.
    let inst = diamond();
    let report = compute_period(&inst, CommModel::Overlap, Method::FullTpn).expect("analysis");
    assert_eq!(report.period, sol.period, "tpn_build vs hand-built TPN");
    assert_eq!(report.num_paths, 1);
    let sim = simulate(&inst, CommModel::Overlap, &SimOptions { data_sets: 400, record_ops: false });
    let est = sim.exact_period(1e-9).expect("deterministic steady state");
    assert!((est - 50.0).abs() < 1e-9, "simulated {est}");
}

/// The strict model serializes the join's receives and the fork's sends
/// through the processors themselves; analysis and simulation must still
/// agree bit-for-bit on what that costs.
#[test]
fn diamond_strict_analysis_agrees_with_simulation() {
    let inst = diamond();
    let report = compute_period(&inst, CommModel::Strict, Method::FullTpn).expect("analysis");
    assert!(report.period >= 50.0, "strict can only be slower: {}", report.period);
    assert!(report.period >= report.mct - 1e-12);
    let sim = simulate(&inst, CommModel::Strict, &SimOptions { data_sets: 400, record_ops: false });
    let est = sim.exact_period(1e-9).expect("deterministic steady state");
    assert!((est - report.period).abs() < 1e-9, "sim {est} vs analysis {}", report.period);
}

/// A small fork/join campaign on one shared engine: consecutive draws
/// repeat TPN shapes, so the oracle's patched-solve path must engage
/// (patched solves > 0) while every outcome stays consistent with its
/// `M_ct` lower bound.
#[test]
fn forkjoin_campaign_engages_the_patch_path() {
    // 5 processors over 4 stages: only four possible replica-count
    // vectors, so consecutive draws repeat TPN shapes often.
    let cfg = GenConfig {
        stages: 4,
        procs: 5,
        comp: Range::new(5.0, 15.0),
        comm: Range::new(5.0, 15.0),
    };
    let topo = Topology::fork_join(2);
    assert_eq!(topo.stages, cfg.stages);
    let mut engine: PeriodEngine = engine_for_cap(400_000);
    for seed in 0..32u64 {
        let out = run_one_workflow_with(&cfg, &topo, CommModel::Strict, seed, &mut engine);
        assert!(out.period.is_finite() && out.period >= out.mct - 1e-9, "seed {seed}");
    }
    assert!(
        engine.patched_solves() > 0,
        "32 same-topology draws never took the patch path ({} csr builds)",
        engine.csr_builds()
    );
}
