//! Value-generation strategies (no shrinking).

use crate::test_runner::TestRng;
use rand::Rng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! numeric_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.start..self.end)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(*self.start()..=*self.end())
            }
        }
    )*};
}

numeric_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, G)
}

/// `&str` regexes generate matching strings. Only the tiny dialect the
/// workspace uses is supported: one character class with `a-b` ranges and
/// literals, followed by an optional `{lo,hi}` / `{n}` repetition (a bare
/// class means exactly one character).
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, lo, hi) = parse_simple_regex(self)
            .unwrap_or_else(|| panic!("unsupported regex strategy: {self:?}"));
        let len = rng.gen_range(lo..=hi);
        (0..len).map(|_| alphabet[rng.gen_range(0..alphabet.len())]).collect()
    }
}

fn parse_simple_regex(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let mut alphabet = Vec::new();
    let mut k = 0;
    while k < class.len() {
        if k + 2 < class.len() && class[k + 1] == '-' {
            let (a, b) = (class[k] as u32, class[k + 2] as u32);
            if a > b {
                return None;
            }
            alphabet.extend((a..=b).filter_map(char::from_u32));
            k += 3;
        } else {
            alphabet.push(class[k]);
            k += 1;
        }
    }
    if alphabet.is_empty() {
        return None;
    }
    let suffix = &rest[close + 1..];
    if suffix.is_empty() {
        return Some((alphabet, 1, 1));
    }
    let counts = suffix.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match counts.split_once(',') {
        Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
        None => {
            let n = counts.trim().parse().ok()?;
            (n, n)
        }
    };
    Some((alphabet, lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::new_rng;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = new_rng("ranges_and_tuples");
        let s = (2usize..5, 0.5f64..1.5, 1u32..=3);
        for _ in 0..200 {
            let (a, b, c) = s.generate(&mut rng);
            assert!((2..5).contains(&a));
            assert!((0.5..1.5).contains(&b));
            assert!((1..=3).contains(&c));
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = new_rng("prop_map");
        let s = (1u32..5).prop_map(|v| v * 10);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!((10..50).contains(&v) && v % 10 == 0);
        }
    }

    #[test]
    fn printable_ascii_regex() {
        let mut rng = new_rng("regex");
        let s = "[ -~]{0,12}";
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(v.len() <= 12);
            assert!(v.chars().all(|c| (' '..='~').contains(&c)), "{v:?}");
        }
    }

    #[test]
    fn fixed_count_regex() {
        let mut rng = new_rng("regex_fixed");
        let v = "[a-c]{4}".generate(&mut rng);
        assert_eq!(v.len(), 4);
        assert!(v.chars().all(|c| ('a'..='c').contains(&c)));
    }
}
