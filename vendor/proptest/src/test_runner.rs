//! Test-runner configuration and failure plumbing.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// Runner configuration. Only the fields this workspace touches exist.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Wraps a failure message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// The generator driving strategies (deterministic per test name, so every
/// run replays the same cases).
pub type TestRng = StdRng;

/// Creates the deterministic per-test generator.
pub fn new_rng(test_name: &str) -> TestRng {
    // FNV-1a over the test name: distinct properties explore distinct
    // streams while staying fully reproducible.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}
