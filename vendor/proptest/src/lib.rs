//! Offline stand-in for the parts of the `proptest` API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this minimal property-testing harness with the same surface as
//! the real crate for the constructs actually used here:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`strategy::Strategy`] with `prop_map`, implemented for numeric
//!   ranges, tuples, simple `[class]{lo,hi}` string regexes and
//!   [`collection::vec`],
//! * [`prop_assert!`] / [`prop_assert_eq!`],
//! * [`test_runner::ProptestConfig`] with `with_cases`.
//!
//! **No shrinking**: a failing case reports its inputs (via the assertion
//! message) but is not minimized. Generation is deterministic — every run
//! of a test replays the same case sequence — which suits a reproduction
//! repository better than time-seeded exploration anyway.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// What `use proptest::prelude::*` is expected to bring into scope.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Fails the current property-test case with a formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Defines property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::new_rng(stringify!($name));
                for case in 0..config.cases {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome = (|| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!("property failed at case {case}/{}: {e}", config.cases);
                    }
                }
            }
        )*
    };
}
