//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use core::ops::Range;
use rand::Rng;

/// Strategy for `Vec`s with a length drawn from `size` and elements from
/// `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

/// Strategy returned by [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.start..self.size.end);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::new_rng;

    #[test]
    fn vec_respects_size_and_elements() {
        let mut rng = new_rng("vec");
        let s = vec(0u32..7, 1..20);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((1..20).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 7));
        }
    }
}
