//! Offline stand-in for the parts of the `rand` 0.8 API this workspace uses.
//!
//! The build environment has no access to crates.io, so instead of the real
//! `rand` crate the workspace vendors this minimal, dependency-free
//! reimplementation. It provides:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator seeded with
//!   SplitMix64 (NOT the upstream `StdRng` stream: seeds are reproducible
//!   within this workspace, not across rand versions — which upstream never
//!   promised either);
//! * [`SeedableRng::seed_from_u64`];
//! * [`Rng::gen_range`] over integer and float ranges (half-open and
//!   inclusive);
//! * [`Rng::gen`] for `f64`, `f32`, `bool` and the unsigned integers.
//!
//! Everything is implemented with the usual care for uniformity (53-bit
//! mantissa floats, multiply-shift range reduction for integers), but no
//! cryptographic property whatsoever is claimed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rngs;

/// A source of random 32/64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Generators that can be deterministically seeded.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (expanded with SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce with the "standard" distribution
/// (uniform over the value range; `[0, 1)` for floats).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draws uniformly from `[0, span)` without modulo bias (Lemire's
/// multiply-shift with rejection).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(span as u128);
        let lo = m as u64;
        if lo >= span.wrapping_neg() % span {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Whole-domain range: a raw draw is already uniform.
                    return <$t>::sample_from_raw(rng);
                }
                (lo as i128 + uniform_u64(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

/// Helper for whole-domain inclusive ranges.
trait RawDraw {
    fn sample_from_raw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! raw_draw_impls {
    ($($t:ty),*) => {$(
        impl RawDraw for $t {
            fn sample_from_raw<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

raw_draw_impls!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);
int_range_impls!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! float_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                loop {
                    let unit = <$t as Standard>::sample_standard(rng);
                    let v = self.start + (self.end - self.start) * unit;
                    // lo + (hi-lo)·u can round up to hi even though u < 1;
                    // reject so the half-open contract holds exactly.
                    if v < self.end {
                        return v;
                    }
                }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}

float_range_impls!(f32, f64);

/// The user-facing random-value interface (blanket-implemented for every
/// [`RngCore`], mirroring `rand` 0.8).
pub trait Rng: RngCore {
    /// Draws a value with the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(2.0f64..3.0);
            assert!((2.0..3.0).contains(&f));
            let g = rng.gen_range(1.0f64..=2.0);
            assert!((1.0..=2.0).contains(&g));
            let u = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn integer_range_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn float_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
