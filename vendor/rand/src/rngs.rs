//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator: **xoshiro256++**
/// (Blackman & Vigna), seeded by expanding a 64-bit seed with SplitMix64.
///
/// Fast, tiny state, passes BigCrush; not cryptographic. The stream is
/// stable across platforms and releases of this workspace, which is what
/// the experiment campaigns rely on for reproducibility.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xoshiro_reference_vector() {
        // Outputs pinned as literals: every stored campaign result keys on
        // this exact stream, so any change to the seeding or the xoshiro
        // step must fail here instead of silently renumbering experiments.
        let mut rng = StdRng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert_eq!(
            first,
            [
                0x53175d61490b23df,
                0x61da6f3dc380d507,
                0x5c0fdf91ec9a7bfc,
                0x02eebf8c3bbe5e1a,
            ]
        );
        let mut rng = StdRng::seed_from_u64(2009);
        assert_eq!(
            [rng.next_u64(), rng.next_u64()],
            [0xb1546ea92ea337e3, 0xfcdaafd3628c99cb]
        );
    }
}
