//! Offline stand-in for the parts of the `criterion` API this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so the bench harness
//! is vendored: same structure (`criterion_group!` / `criterion_main!`,
//! benchmark groups, [`BenchmarkId`], [`Throughput`]), much simpler
//! statistics. Each benchmark is warmed up, then timed for a fixed number
//! of samples; mean and min wall-clock time per iteration are printed, plus
//! derived element throughput when [`BenchmarkGroup::throughput`] was set.
//!
//! Set `CRITERION_SAMPLES` to override the per-benchmark sample count
//! (e.g. `CRITERION_SAMPLES=3` for a smoke run).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle (one per bench binary).
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\n== {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: default_samples(),
            throughput: None,
        }
    }
}

fn default_samples() -> usize {
    std::env::var("CRITERION_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20)
}

/// Identifier combining a function name and a parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function/parameter` identifier.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function.into(), parameter) }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Work-per-iteration declaration used to derive throughput numbers.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many abstract elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares the per-iteration work for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark without extra input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut bencher);
        self.report(&id.id, &bencher.samples);
        self
    }

    /// Runs a benchmark against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut bencher, input);
        self.report(&id.id, &bencher.samples);
        self
    }

    /// Ends the group (printing is incremental, so this is cosmetic).
    pub fn finish(&mut self) {}

    fn report(&self, id: &str, samples: &[Duration]) {
        if samples.is_empty() {
            eprintln!("{}/{id}: no samples", self.name);
            return;
        }
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = samples.iter().min().copied().unwrap_or_default();
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if mean.as_secs_f64() > 0.0 => {
                format!("  {:.3} Melem/s", n as f64 / mean.as_secs_f64() / 1e6)
            }
            Some(Throughput::Bytes(n)) if mean.as_secs_f64() > 0.0 => {
                format!("  {:.3} MiB/s", n as f64 / mean.as_secs_f64() / (1024.0 * 1024.0))
            }
            _ => String::new(),
        };
        eprintln!(
            "{}/{id}: mean {:>12?}  min {:>12?}  ({} samples){rate}",
            self.name,
            mean,
            min,
            samples.len()
        );
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `f`, recording one duration per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up (and forces lazy setup)
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

/// Declares the benchmark entry list, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
