//! Tiny dependency-free option parsing shared by the subcommands.

use repwf_core::fixtures::{example_a, example_b, example_c};
use repwf_core::model::{CommModel, Instance};
use repwf_core::period::Method;
use repwf_gen::Range;
use std::str::FromStr;

/// Parsed command-line tokens: `--name value` pairs, `--switch`es and
/// positional arguments, validated against the declared sets.
pub struct Opts {
    positional: Vec<String>,
    pairs: Vec<(String, String)>,
    switches: Vec<String>,
}

impl Opts {
    /// Parses `args`, accepting only the declared option names.
    pub fn parse(args: &[String], valued: &[&str], switches: &[&str]) -> Result<Opts, String> {
        let mut out =
            Opts { positional: Vec::new(), pairs: Vec::new(), switches: Vec::new() };
        let mut k = 0;
        while k < args.len() {
            let token = args[k].as_str();
            if valued.contains(&token) {
                let value = args
                    .get(k + 1)
                    .ok_or_else(|| format!("option {token} needs a value"))?;
                out.pairs.push((token.to_string(), value.clone()));
                k += 2;
            } else if switches.contains(&token) {
                out.switches.push(token.to_string());
                k += 1;
            } else if token.starts_with('-') && token != "-" {
                return Err(format!("unknown option {token}"));
            } else {
                out.positional.push(token.to_string());
                k += 1;
            }
        }
        Ok(out)
    }

    /// Positional arguments, in order.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// Last value given for `name`.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.pairs.iter().rev().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// Whether switch `name` was given.
    pub fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|n| n == name)
    }

    /// Parses the value of `name`, or returns `default` when absent.
    pub fn get_or<T: FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(raw) => {
                raw.parse().map_err(|_| format!("invalid value for {name}: {raw:?}"))
            }
        }
    }
}

/// Loads the instance selected by `--example` / `--file` (default:
/// Example A).
pub fn load_instance(opts: &Opts) -> Result<Instance, String> {
    if let Some(path) = opts.get("--file") {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {path}: {e}"))?;
        return repwf_core::textfmt::from_text(&text)
            .map_err(|e| format!("cannot parse {path}: {e}"));
    }
    match opts.get("--example").unwrap_or("a") {
        "a" => Ok(example_a()),
        "b" => Ok(example_b()),
        "c" => Ok(example_c()),
        other => Err(format!("unknown example {other:?} (expected a, b or c)")),
    }
}

/// Parses `--model` (default: overlap).
pub fn parse_model(opts: &Opts) -> Result<CommModel, String> {
    match opts.get("--model").unwrap_or("overlap") {
        "overlap" => Ok(CommModel::Overlap),
        "strict" => Ok(CommModel::Strict),
        other => Err(format!("unknown model {other:?} (expected overlap or strict)")),
    }
}

/// Human-readable short name of a model (the spelling shard manifests
/// and the campaign JSON document use).
pub fn model_name(model: CommModel) -> &'static str {
    repwf_dist::manifest::model_name(model)
}

/// Parses `--method` (default: auto).
pub fn parse_method(opts: &Opts) -> Result<Method, String> {
    match opts.get("--method").unwrap_or("auto") {
        "auto" => Ok(Method::Auto),
        "polynomial" => Ok(Method::Polynomial),
        "full-tpn" => Ok(Method::FullTpn),
        "tpn-simulation" => Ok(Method::TpnSimulation),
        other => Err(format!(
            "unknown method {other:?} (expected auto, polynomial, full-tpn or tpn-simulation)"
        )),
    }
}

/// Parses a time range: `lo..hi` or a single constant `v`.
pub fn parse_range(raw: &str) -> Result<Range, String> {
    if let Some((lo, hi)) = raw.split_once("..") {
        let lo: f64 = lo.parse().map_err(|_| format!("invalid range bound {lo:?}"))?;
        let hi: f64 = hi.parse().map_err(|_| format!("invalid range bound {hi:?}"))?;
        if !(lo > 0.0 && hi >= lo) {
            return Err(format!("range {raw:?} must satisfy 0 < lo <= hi"));
        }
        Ok(Range::new(lo, hi))
    } else {
        let v: f64 = raw.parse().map_err(|_| format!("invalid range {raw:?}"))?;
        if v <= 0.0 {
            return Err(format!("range constant {raw:?} must be positive"));
        }
        Ok(Range::constant(v))
    }
}

/// `--threads` with the hardware default.
pub fn parse_threads(opts: &Opts) -> Result<usize, String> {
    let threads = opts.get_or("--threads", repwf_par::max_threads())?;
    if threads == 0 {
        return Err("--threads must be at least 1".to_string());
    }
    Ok(threads)
}
