//! Tiny dependency-free option parsing shared by the subcommands.

use repwf_core::fixtures::{example_a, example_b, example_c};
use repwf_core::model::{CommModel, Instance};
use repwf_core::period::Method;
use repwf_gen::Range;
use std::str::FromStr;

/// Parsed command-line tokens: `--name value` pairs, `--switch`es and
/// positional arguments, validated against the declared sets.
pub struct Opts {
    positional: Vec<String>,
    pairs: Vec<(String, String)>,
    switches: Vec<String>,
}

impl Opts {
    /// Parses `args`, accepting only the declared option names.
    pub fn parse(args: &[String], valued: &[&str], switches: &[&str]) -> Result<Opts, String> {
        let mut out =
            Opts { positional: Vec::new(), pairs: Vec::new(), switches: Vec::new() };
        let mut k = 0;
        while k < args.len() {
            let token = args[k].as_str();
            if valued.contains(&token) {
                let value = args
                    .get(k + 1)
                    .ok_or_else(|| format!("option {token} needs a value"))?;
                out.pairs.push((token.to_string(), value.clone()));
                k += 2;
            } else if switches.contains(&token) {
                out.switches.push(token.to_string());
                k += 1;
            } else if token.starts_with('-') && token != "-" {
                return Err(format!("unknown option {token}"));
            } else {
                out.positional.push(token.to_string());
                k += 1;
            }
        }
        Ok(out)
    }

    /// Positional arguments, in order.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// Last value given for `name`.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.pairs.iter().rev().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// Whether switch `name` was given.
    pub fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|n| n == name)
    }

    /// Parses the value of `name`, or returns `default` when absent.
    pub fn get_or<T: FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(raw) => {
                raw.parse().map_err(|_| format!("invalid value for {name}: {raw:?}"))
            }
        }
    }
}

/// Loads the instance selected by `--workflow` / `--file` / `--example`
/// (default: Example A).
pub fn load_instance(opts: &Opts) -> Result<Instance, String> {
    if let Some(path) = opts.get("--workflow") {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {path}: {e}"))?;
        return workflow_from_json(&text).map_err(|e| format!("cannot parse {path}: {e}"));
    }
    if let Some(path) = opts.get("--file") {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {path}: {e}"))?;
        return repwf_core::textfmt::from_text(&text)
            .map_err(|e| format!("cannot parse {path}: {e}"));
    }
    match opts.get("--example").unwrap_or("a") {
        "a" => Ok(example_a()),
        "b" => Ok(example_b()),
        "c" => Ok(example_c()),
        other => Err(format!("unknown example {other:?} (expected a, b or c)")),
    }
}

fn json_f64_array(v: &repwf_dist::json::JsonValue, key: &str) -> Result<Vec<f64>, String> {
    v.get(key)
        .and_then(|x| x.as_arr())
        .ok_or_else(|| format!("missing array \"{key}\""))?
        .iter()
        .map(|x| x.as_f64().ok_or_else(|| format!("\"{key}\" must contain numbers")))
        .collect()
}

/// Parses a JSON series-parallel workflow instance:
///
/// ```json
/// {
///   "works": [4, 6, 5, 3],
///   "edges": [[0, 1, 2.0], [0, 2, 3.0], [1, 3, 1.0], [2, 3, 2.0]],
///   "speeds": [1, 1, 1, 1, 1, 1],
///   "bandwidth": 1.0,
///   "mapping": [[0], [1, 2], [3, 4], [5]]
/// }
/// ```
///
/// `edges` lists `[src, dst, size]` triples; a linear chain may instead
/// give `"files": [...]` (one size per stage boundary). `bandwidth` is
/// the uniform link bandwidth; an optional `"bandwidths"` array of `p²`
/// row-major values overrides individual links.
pub fn workflow_from_json(text: &str) -> Result<Instance, String> {
    use repwf_core::model::{Mapping, Pipeline, Platform};
    let v = repwf_dist::json::parse(text)?;
    let works = json_f64_array(&v, "works")?;
    let pipeline = if let Some(es) = v.get("edges") {
        let arr = es.as_arr().ok_or("\"edges\" must be an array")?;
        let mut edges = Vec::with_capacity(arr.len());
        for e in arr {
            let t = e.as_arr().filter(|t| t.len() == 3).ok_or("each edge must be [src, dst, size]")?;
            let src = t[0].as_u64().ok_or("edge src must be an integer")? as usize;
            let dst = t[1].as_u64().ok_or("edge dst must be an integer")? as usize;
            let size = t[2].as_f64().ok_or("edge size must be a number")?;
            edges.push((src, dst, size));
        }
        Pipeline::from_edges(works, edges).map_err(|e| e.to_string())?
    } else {
        let files = json_f64_array(&v, "files")
            .map_err(|_| "need \"edges\" (DAG) or \"files\" (chain)".to_string())?;
        Pipeline::new(works, files).map_err(|e| e.to_string())?
    };
    let speeds = json_f64_array(&v, "speeds")?;
    let p = speeds.len();
    let default_bw = v.get("bandwidth").and_then(|b| b.as_f64()).unwrap_or(1.0);
    let mut platform = Platform::uniform(p, 1.0, default_bw);
    for (u, s) in speeds.into_iter().enumerate() {
        platform.set_speed(u, s);
    }
    if v.get("bandwidths").is_some() {
        let flat = json_f64_array(&v, "bandwidths")?;
        if flat.len() != p * p {
            return Err(format!("\"bandwidths\" must have p² = {} entries", p * p));
        }
        for (k, b) in flat.into_iter().enumerate() {
            platform.set_bandwidth(k / p, k % p, b);
        }
    }
    let mapping_arr = v
        .get("mapping")
        .and_then(|m| m.as_arr())
        .ok_or("missing array \"mapping\"")?;
    let mut assignment = Vec::with_capacity(mapping_arr.len());
    for procs in mapping_arr {
        let procs = procs.as_arr().ok_or("\"mapping\" must be an array of arrays")?;
        let row: Result<Vec<usize>, String> = procs
            .iter()
            .map(|x| {
                x.as_u64()
                    .map(|u| u as usize)
                    .ok_or_else(|| "\"mapping\" entries must be processor ids".to_string())
            })
            .collect();
        assignment.push(row?);
    }
    let mapping = Mapping::new(assignment).map_err(|e| e.to_string())?;
    Instance::new(pipeline, platform, mapping).map_err(|e| e.to_string())
}

/// Parses `--model` (default: overlap).
pub fn parse_model(opts: &Opts) -> Result<CommModel, String> {
    match opts.get("--model").unwrap_or("overlap") {
        "overlap" => Ok(CommModel::Overlap),
        "strict" => Ok(CommModel::Strict),
        other => Err(format!("unknown model {other:?} (expected overlap or strict)")),
    }
}

/// Human-readable short name of a model (the spelling shard manifests
/// and the campaign JSON document use).
pub fn model_name(model: CommModel) -> &'static str {
    repwf_dist::manifest::model_name(model)
}

/// Parses `--method` (default: auto).
pub fn parse_method(opts: &Opts) -> Result<Method, String> {
    match opts.get("--method").unwrap_or("auto") {
        "auto" => Ok(Method::Auto),
        "polynomial" => Ok(Method::Polynomial),
        "full-tpn" => Ok(Method::FullTpn),
        "tpn-simulation" => Ok(Method::TpnSimulation),
        other => Err(format!(
            "unknown method {other:?} (expected auto, polynomial, full-tpn or tpn-simulation)"
        )),
    }
}

/// Parses a time range: `lo..hi` or a single constant `v`.
pub fn parse_range(raw: &str) -> Result<Range, String> {
    if let Some((lo, hi)) = raw.split_once("..") {
        let lo: f64 = lo.parse().map_err(|_| format!("invalid range bound {lo:?}"))?;
        let hi: f64 = hi.parse().map_err(|_| format!("invalid range bound {hi:?}"))?;
        if !(lo > 0.0 && hi >= lo) {
            return Err(format!("range {raw:?} must satisfy 0 < lo <= hi"));
        }
        Ok(Range::new(lo, hi))
    } else {
        let v: f64 = raw.parse().map_err(|_| format!("invalid range {raw:?}"))?;
        if v <= 0.0 {
            return Err(format!("range constant {raw:?} must be positive"));
        }
        Ok(Range::constant(v))
    }
}

/// `--threads` with the hardware default.
pub fn parse_threads(opts: &Opts) -> Result<usize, String> {
    let threads = opts.get_or("--threads", repwf_par::max_threads())?;
    if threads == 0 {
        return Err("--threads must be at least 1".to_string());
    }
    Ok(threads)
}
