//! `repwf` — the unified command-line interface of the workspace.
//!
//! One binary replaces the grab-bag of one-off binaries in `repwf-bench`
//! for the everyday flows, with `--json` structured output for scripting:
//!
//! ```text
//! repwf period    [--example a|b|c | --file F] [--model M] [--method X] [--json]
//! repwf simulate  [--example a|b|c | --file F] [--model M] [--data-sets N] [--json]
//! repwf campaign  --stages N --procs P [--comp LO..HI] [--comm LO..HI]
//!                 [--count N] [--seed S] [--threads K] [--model M] [--json]
//!                 [--shard I/N --out F.ndjson | --range OFF+LEN --out F.ndjson
//!                  | --supervise --dir D [--workers N] [--units N]]
//! repwf map       [--example a|b|c | --file F] [--model M] [--exact | --certify]
//!                 [--steps N] [--seed S] [--cap N] [--threads K] [--json]
//! repwf merge     <shard.ndjson>... [--csv F] [--json] [--allow-partial]
//! repwf dist      status --dir D [--lease-timeout S] [--json]
//! repwf trace     report FILE.ndjson [--min-coverage F] [--json]
//! repwf bench     [--quick] [--out F] [--threads K] [--check BASELINE] [--json]
//! repwf table2    [--scale F | --full] [--threads K] [--seed S] [--csv F] [--json]
//! repwf gantt     <a-strict|a-overlap|b-overlap> [--periods K] [--svg F]
//! repwf dot       <overlap|strict|overlap-critical|strict-critical|subtpn-a-f1|subtpn-b-f0> [-o F]
//! ```
//!
//! Campaign results are **bit-identical at every `--threads` value**: each
//! experiment is seeded from its own index on the work-stealing engine —
//! and at every shard count: `repwf merge` of `campaign --shard I/N` files
//! reproduces the unsharded `--json` document byte for byte.

mod commands;
mod obsctl;
mod opts;

use repwf_dist::json;

use std::process::ExitCode;

const USAGE: &str = "\
repwf — throughput of replicated workflows (ICPP 2009 reproduction)

USAGE: repwf <COMMAND> [OPTIONS]

COMMANDS:
  period     compute the steady-state period P̂ of an instance
  simulate   estimate the period with the discrete-event simulator
  campaign   run a random-experiment campaign (period vs. M_ct),
             optionally as one shard of a distributed run (--shard I/N,
             --range OFF+LEN) or as an elastic fault-tolerant supervisor
             worker on a shared directory (--supervise --dir D)
  map        optimize the mapping (heuristic, --exact B&B, or --certify
             both with the heuristic's optimality gap)
  merge      recombine campaign shard files (byte-identical to unsharded;
             --allow-partial tolerates gaps and reports them)
  dist       inspect distributed campaign state (dist status --dir D)
  trace      summarize an NDJSON telemetry trace (trace report FILE;
             traces come from --trace on period/map/campaign)
  table2     reproduce the paper's Table 2 experiment families
  bench      run the tracked benchmark suite (emits BENCH_period.json)
  gantt      render the paper's Gantt figures (ASCII / SVG)
  dot        emit a TPN figure as Graphviz DOT
  help       show this message

Common options:
  --example a|b|c   use a paper fixture (default: a)
  --file PATH       read an instance in the repwf text format
  --model M         overlap | strict (default: overlap, except campaign
                    which defaults to strict — the model with gaps)
  --json            machine-readable output on stdout
Run `repwf <COMMAND> --help` for command-specific options.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().map(String::as_str) else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    let rest = &args[1..];
    let result = match command {
        "period" => commands::period::run(rest),
        "simulate" => commands::simulate::run(rest),
        "campaign" => commands::campaign::run(rest),
        "map" => commands::map::run(rest),
        "merge" => commands::merge::run(rest),
        "dist" => commands::dist::run(rest),
        "trace" => commands::trace::run(rest),
        "bench" => commands::bench::run(rest),
        "table2" => commands::table2::run(rest),
        "gantt" => commands::gantt::run(rest),
        "dot" => commands::dot::run(rest),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("repwf {command}: {message}");
            ExitCode::from(2)
        }
    }
}
