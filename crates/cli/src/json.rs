//! Minimal JSON document builder (deterministic key order, no deps).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Finite floating-point number (non-finite renders as `null`).
    Num(f64),
    /// Unsigned integer (covers path counts up to `u128`).
    UInt(u128),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object; keys keep insertion order so output is deterministic.
    Obj(Vec<(&'static str, Json)>),
}

impl Json {
    /// Convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Serializes with two-space indentation and a trailing newline.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                if x.is_finite() {
                    // `{}` on f64 is shortest-round-trip and never scientific.
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (k, item) in items.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (k, (key, value)) in fields.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_documents() {
        let doc = Json::Obj(vec![
            ("name", Json::str("Example \"A\"")),
            ("period", Json::Num(189.0)),
            ("paths", Json::UInt(6)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            ("xs", Json::Arr(vec![Json::Num(1.5), Json::Num(2.0)])),
        ]);
        let text = doc.to_string_pretty();
        assert!(text.contains("\"name\": \"Example \\\"A\\\"\""));
        assert!(text.contains("\"period\": 189"));
        assert!(text.contains("\"paths\": 6"));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn non_finite_is_null() {
        assert_eq!(Json::Num(f64::NAN).to_string_pretty(), "null\n");
    }
}
