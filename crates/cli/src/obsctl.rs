//! Shared `--trace FILE` / `--metrics` plumbing for the instrumented
//! commands (`period`, `map`, `campaign`).
//!
//! The contract the CLI tests pin: `--trace` writes its NDJSON file on
//! the side and must not change a single stdout byte at any thread
//! count. `--metrics` is the flag that *adds* output — a counter table
//! after the human report, or a `"metrics"` object in `--json` docs.

use crate::json::Json;
use crate::opts::Opts;
use repwf_obs::{CounterId, MetricsSnapshot, SpanId};

/// Live telemetry for one command invocation. Holds the top-level
/// `command` span open until [`Obs::finish`].
pub struct Obs {
    guard: Option<repwf_obs::SpanGuard>,
    metrics: bool,
}

/// Reads `--trace FILE` / `--metrics` from already-parsed options,
/// installs the sink / enables the registry, and opens the `command`
/// span. With neither flag, telemetry stays fully disabled (the
/// zero-overhead path) and the returned guard is inert.
pub fn init(opts: &Opts, command: &str) -> Result<Obs, String> {
    let metrics = opts.has("--metrics");
    if let Some(path) = opts.get("--trace") {
        repwf_obs::install_trace(std::path::Path::new(path), command)
            .map_err(|e| format!("--trace {path}: {e}"))?;
    } else if metrics {
        repwf_obs::enable();
    }
    let guard = repwf_obs::enabled().then(|| repwf_obs::span(SpanId::Command));
    Ok(Obs { guard, metrics })
}

impl Obs {
    /// Closes the command span, flushes and footers the trace file (if
    /// one was installed), and returns the final snapshot when
    /// `--metrics` asked for one. Call after the command's work is done,
    /// before printing a document that should embed the metrics.
    pub fn finish(mut self) -> Result<Option<MetricsSnapshot>, String> {
        drop(self.guard.take());
        repwf_obs::finish_trace().map_err(|e| format!("writing trace: {e}"))?;
        Ok(self.metrics.then(repwf_obs::snapshot))
    }
}

/// The `"metrics"` object for `--json` documents: every nonzero counter,
/// then per-span `{count, total_ns, min_ns, max_ns}` for spans that
/// fired.
pub fn metrics_json(snap: &MetricsSnapshot) -> Json {
    let counters: Vec<(&'static str, Json)> = CounterId::ALL
        .iter()
        .filter(|&&id| snap.counter(id) > 0)
        .map(|&id| (id.name(), Json::UInt(u128::from(snap.counter(id)))))
        .collect();
    let spans: Vec<(&'static str, Json)> = SpanId::ALL
        .iter()
        .filter(|&&id| snap.span(id).count > 0)
        .map(|&id| {
            let s = snap.span(id);
            (
                id.name(),
                Json::Obj(vec![
                    ("count", Json::UInt(u128::from(s.count))),
                    ("total_ns", Json::UInt(u128::from(s.sum_ns))),
                    ("min_ns", Json::UInt(u128::from(s.min_ns))),
                    ("max_ns", Json::UInt(u128::from(s.max_ns))),
                ]),
            )
        })
        .collect();
    Json::Obj(vec![("counters", Json::Obj(counters)), ("spans", Json::Obj(spans))])
}

/// The human metrics table, one indented line per nonzero counter /
/// fired span. Callers print it to stdout after a human report, or to
/// stderr in modes whose stdout is a machine artifact.
pub fn metrics_table(snap: &MetricsSnapshot) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("metrics:\n");
    for id in CounterId::ALL {
        let v = snap.counter(id);
        if v > 0 {
            let _ = writeln!(out, "  {:24} {v}", id.name());
        }
    }
    for id in SpanId::ALL {
        let s = snap.span(id);
        if s.count > 0 {
            let _ = writeln!(
                out,
                "  span {:19} {} x, {:.3} ms total, mean {:.3} ms",
                id.name(),
                s.count,
                s.sum_ns as f64 / 1e6,
                s.mean_ns() as f64 / 1e6,
            );
        }
    }
    out
}

/// [`metrics_table`] to stdout (the human-report commands).
pub fn print_metrics(snap: &MetricsSnapshot) {
    print!("{}", metrics_table(snap));
}
