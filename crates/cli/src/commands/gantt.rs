//! `repwf gantt` — the paper's Gantt figures (Figs. 7 and 12).

use crate::opts::Opts;
use repwf_core::fixtures::{example_a, example_b};
use repwf_core::model::CommModel;
use repwf_core::period::{compute_period, Method};
use repwf_sim::gantt::build;
use repwf_sim::{simulate, SimOptions};

const HELP: &str = "\
repwf gantt — render a schedule Gantt chart (ASCII, optionally SVG)

USAGE: repwf gantt <a-strict|a-overlap|b-overlap> [OPTIONS]

  a-strict    Fig. 7: Example A, strict one-port (no critical resource)
  a-overlap   Example A, overlap one-port
  b-overlap   Fig. 12: Example B, overlap one-port

OPTIONS:
  --periods K   number of full TPN periods to draw (default: 3)
  --width N     ASCII chart width in columns (default: 110)
  --svg PATH    additionally write an SVG file
";

pub fn run(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args, &["--periods", "--width", "--svg"], &["--help"])?;
    if opts.has("--help") {
        print!("{HELP}");
        return Ok(());
    }
    let which = opts.positional().first().map(String::as_str).unwrap_or("a-strict");
    let (inst, model, title) = match which {
        "a-strict" => (example_a(), CommModel::Strict, "Fig. 7: Example A, strict one-port"),
        "a-overlap" => (example_a(), CommModel::Overlap, "Example A, overlap one-port"),
        "b-overlap" => (example_b(), CommModel::Overlap, "Fig. 12: Example B, overlap one-port"),
        other => return Err(format!("unknown chart {other:?} (see repwf gantt --help)")),
    };
    let periods = opts.get_or("--periods", 3usize)?;
    let width = opts.get_or("--width", 110usize)?;

    let report = compute_period(&inst, model, Method::Auto).map_err(|e| e.to_string())?;
    let m = report.num_paths as u64;
    let data_sets = m * (periods as u64 + 4);
    let sim = simulate(&inst, model, &SimOptions { data_sets, record_ops: true });

    // The paper's figures show the FIRST periods: the unthrottled early
    // stages run ahead, so draw the window [0, periods · m·P̂).
    let p_big = report.period * m as f64;
    let (t0, t1) = (0.0, periods as f64 * p_big);
    let chart = build(&inst, model, &sim, t0, t1);

    println!("{title}");
    println!(
        "period = {:.4} per data set (M_ct = {:.4}, critical resource: {})\n",
        report.period,
        report.mct,
        if report.has_critical_resource(1e-9) { "yes" } else { "NO — every resource idles" }
    );
    print!("{}", chart.to_ascii(width));
    println!("\nidle fractions over the window:");
    for &row in &chart.rows {
        println!("  {:?}: {:.1}% idle", row, chart.idle_fraction(row, t0) * 100.0);
    }
    if let Some(path) = opts.get("--svg") {
        std::fs::write(path, chart.to_svg()).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("SVG written to {path}");
    }
    Ok(())
}
