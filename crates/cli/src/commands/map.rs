//! `repwf map` — optimize the mapping of a pipeline onto a platform
//! (heuristic, exact, or both with an optimality-gap certificate).

use crate::json::Json;
use crate::opts::{load_instance, model_name, parse_model, parse_threads, Opts};
use repwf_core::engine::{MappingOracle, PeriodEngine};
use repwf_core::model::{CommModel, Mapping, Pipeline, Platform};
use repwf_core::period::{Method, PeriodError};
use repwf_core::tpn_build::BuildOptions;
use repwf_map::annealing::{anneal, AnnealOptions};
use repwf_map::exact::{solve, ExactOptions, ExactResult};
use repwf_map::{optimize, SearchOptions, SearchResult};

const HELP: &str = "\
repwf map — find a mapping that maximizes throughput

By default runs the heuristic pipeline (multi-start local search refined
by simulated annealing). `--exact` instead runs the deterministic
parallel branch-and-bound and returns a *certified* optimum — identical
bits at any --threads value. `--certify` runs both and reports the
heuristic's optimality gap (the heuristic mapping is re-evaluated
exactly first, so the gap never compares against a simulator estimate).

OPTIONS:
  --example a|b|c    paper fixture; its mapping is ignored (default: a)
  --file PATH        instance in the repwf text format (mapping ignored)
  --workflow PATH    series-parallel workflow JSON (mapping ignored)
  --model M          overlap | strict (default: overlap)
  --steps N          annealing steps for the heuristic (default: 1500)
  --seed S           heuristic RNG seed (default: 0)
  --exact            certified optimum by branch-and-bound (small n, p!)
  --certify          heuristic + exact + optimality gap
  --cap N            TPN transition cap for exact evaluations
                     (default: 4000000); an over-cap candidate is a hard
                     error — exact never falls back to the simulator
  --threads K        workers for the exact search (default: all cores;
                     the result does not depend on this)
  --trace FILE       write an NDJSON span/counter trace (repwf-trace/v1);
                     never changes this command's stdout bytes
  --metrics          append a telemetry counter table (or a \"metrics\"
                     object with --json)
  --json             structured output (independent of --threads)
";

/// Re-evaluates `mapping` exactly (no simulator fallback) so the gap is a
/// statement about true periods. `Ok(None)` means infeasible.
fn exact_period_of(
    pipeline: &Pipeline,
    platform: &Platform,
    mapping: &Mapping,
    model: CommModel,
    cap: usize,
) -> Result<Option<f64>, String> {
    let build = BuildOptions { labels: false, max_transitions: cap };
    let engine = PeriodEngine::with_options(build);
    let mut oracle = MappingOracle::with_engine(pipeline, platform, engine);
    match oracle.compute(mapping, model, Method::Auto) {
        Ok(r) => Ok(Some(r.period)),
        Err(PeriodError::Model(_)) => Ok(None),
        Err(PeriodError::Build(e)) => Err(format!(
            "cannot certify: the heuristic mapping needs a TPN above the cap ({e}); \
             raise --cap"
        )),
        Err(e) => Err(e.to_string()),
    }
}

fn mapping_json(mapping: &Mapping) -> Json {
    Json::Arr(
        mapping
            .assignment()
            .iter()
            .map(|procs| Json::Arr(procs.iter().map(|&u| Json::UInt(u as u128)).collect()))
            .collect(),
    )
}

fn heuristic_json(h: &SearchResult) -> Json {
    Json::Obj(vec![
        ("period", Json::Num(h.period)),
        ("throughput", Json::Num(1.0 / h.period)),
        ("evaluations", Json::UInt(h.evaluations as u128)),
        ("mapping", mapping_json(&h.mapping)),
    ])
}

fn exact_json(res: &ExactResult) -> Json {
    let mut fields = vec![("feasible", Json::Bool(res.best.is_some()))];
    if let Some((mapping, period)) = &res.best {
        fields.push(("period", Json::Num(*period)));
        fields.push(("throughput", Json::Num(1.0 / *period)));
        fields.push(("mapping", mapping_json(mapping)));
    }
    fields.push(("tasks", Json::UInt(res.stats.tasks as u128)));
    fields.push(("nodes", Json::UInt(res.stats.nodes as u128)));
    fields.push(("pruned", Json::UInt(res.stats.pruned as u128)));
    fields.push(("evaluated", Json::UInt(res.stats.evaluated as u128)));
    fields.push(("infeasible", Json::UInt(res.stats.infeasible as u128)));
    if let Some(space) = res.space {
        fields.push(("space", Json::UInt(space)));
        if space > 0 {
            fields.push((
                "prune_ratio",
                Json::Num(1.0 - res.stats.evaluated as f64 / space as f64),
            ));
        }
    }
    Json::Obj(fields)
}

fn print_mapping(label: &str, mapping: &Mapping) {
    println!("{label:<20}: {:?}", mapping.assignment());
}

pub fn run(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(
        args,
        &[
            "--example", "--file", "--workflow", "--model", "--steps", "--seed", "--cap",
            "--threads", "--trace",
        ],
        &["--exact", "--certify", "--json", "--metrics", "--help"],
    )?;
    if opts.has("--help") {
        print!("{HELP}");
        return Ok(());
    }
    let obs = crate::obsctl::init(&opts, "map")?;
    let inst = load_instance(&opts)?;
    let (pipeline, platform) = (&inst.pipeline, &inst.platform);
    let model = parse_model(&opts)?;
    let steps = opts.get_or("--steps", AnnealOptions::default().steps)?;
    let seed = opts.get_or("--seed", 0u64)?;
    let cap = opts.get_or("--cap", BuildOptions::default().max_transitions)?;
    let threads = parse_threads(&opts)?;
    let certify = opts.has("--certify");
    let run_exact = opts.has("--exact") || certify;
    let run_heuristic = certify || !opts.has("--exact");
    let mode = if certify {
        "certify"
    } else if run_exact {
        "exact"
    } else {
        "heuristic"
    };

    // Heuristic: multi-start local search, refined by annealing from its
    // incumbent; keep whichever is better.
    let heuristic = if run_heuristic {
        let search = SearchOptions { model, seed, ..SearchOptions::default() };
        let base = optimize(pipeline, platform, &search);
        let ann = AnnealOptions { model, steps, seed, ..AnnealOptions::default() };
        let refined = anneal(pipeline, platform, base.mapping.clone(), &ann);
        let evaluations = base.evaluations + refined.evaluations;
        let mut best = if refined.period < base.period { refined } else { base };
        best.evaluations = evaluations;
        Some(best)
    } else {
        None
    };

    // Certification re-evaluates the heuristic mapping *exactly* before
    // using it: as the exact search's initial bound, and as the gap's
    // numerator. A simulator estimate must never enter either role.
    let heuristic_exact_period = match (certify, &heuristic) {
        (true, Some(h)) => {
            if !h.period.is_finite() {
                return Err(
                    "heuristic found no feasible mapping; run --exact to prove (in)feasibility"
                        .to_string(),
                );
            }
            exact_period_of(pipeline, platform, &h.mapping, model, cap)?
        }
        _ => None,
    };

    let exact = if run_exact {
        let eopts = ExactOptions {
            model,
            threads,
            initial_bound: heuristic_exact_period,
            max_transitions: cap,
        };
        Some(solve(pipeline, platform, &eopts).map_err(|e| e.to_string())?)
    } else {
        None
    };

    // gap = (P̂_heuristic − P̂_opt) / P̂_opt, both sides exact periods.
    let gap = match (&heuristic_exact_period, &exact) {
        (Some(h), Some(res)) => {
            let (_, opt) = res
                .best
                .as_ref()
                .ok_or("internal error: exact found nothing despite a feasible heuristic")?;
            Some((h - opt) / opt)
        }
        _ => None,
    };
    let metrics = obs.finish()?;

    if opts.has("--json") {
        let mut fields = vec![
            ("model", Json::str(model_name(model))),
            ("mode", Json::str(mode)),
        ];
        if let Some(h) = &heuristic {
            fields.push(("heuristic", heuristic_json(h)));
        }
        if let Some(h) = heuristic_exact_period {
            fields.push(("heuristic_exact_period", Json::Num(h)));
        }
        if let Some(res) = &exact {
            fields.push(("exact", exact_json(res)));
        }
        if let Some(gap) = gap {
            fields.push(("gap", Json::Num(gap)));
        }
        if let Some(snap) = &metrics {
            fields.push(("metrics", crate::obsctl::metrics_json(snap)));
        }
        print!("{}", Json::Obj(fields).to_string_pretty());
        return Ok(());
    }

    println!("model               : {}", model_name(model));
    println!("mode                : {mode}");
    if let Some(h) = &heuristic {
        println!("heuristic period    : {:.6}  ({} evaluations)", h.period, h.evaluations);
        print_mapping("heuristic mapping", &h.mapping);
    }
    if let Some(res) = &exact {
        match &res.best {
            Some((mapping, period)) => {
                println!("exact period        : {period:.6}");
                print_mapping("exact mapping", mapping);
            }
            None => println!("exact               : no feasible mapping exists"),
        }
        println!(
            "search              : {} evaluated / {} pruned / {} nodes over {} tasks{}",
            res.stats.evaluated,
            res.stats.pruned,
            res.stats.nodes,
            res.stats.tasks,
            match res.space {
                Some(space) => format!(" (space {space})"),
                None => String::new(),
            }
        );
    }
    if let Some(gap) = gap {
        println!("optimality gap      : {:.6}%", gap * 100.0);
    }
    if let Some(snap) = &metrics {
        crate::obsctl::print_metrics(snap);
    }
    Ok(())
}
