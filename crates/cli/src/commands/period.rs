//! `repwf period` — steady-state period of one instance.

use crate::json::Json;
use crate::opts::{load_instance, model_name, parse_method, parse_model, Opts};
use repwf_core::period::compute_period_with;
use repwf_core::tpn_build::BuildOptions;

const HELP: &str = "\
repwf period — compute the steady-state period P̂ (and throughput 1/P̂)

OPTIONS:
  --example a|b|c    paper fixture (default: a)
  --file PATH        instance in the repwf text format
  --workflow PATH    series-parallel workflow instance in JSON
  --model M          overlap | strict (default: overlap)
  --method X         auto | polynomial | full-tpn | tpn-simulation (default: auto)
  --cap N            TPN transition cap for full-tpn (default: 400000)
  --trace FILE       write an NDJSON span/counter trace (repwf-trace/v1);
                     never changes this command's stdout bytes
  --metrics          append a telemetry counter table (or a \"metrics\"
                     object with --json)
  --json             structured output
";

pub fn run(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(
        args,
        &["--example", "--file", "--workflow", "--model", "--method", "--cap", "--trace"],
        &["--json", "--metrics", "--help"],
    )?;
    if opts.has("--help") {
        print!("{HELP}");
        return Ok(());
    }
    let obs = crate::obsctl::init(&opts, "period")?;
    let inst = load_instance(&opts)?;
    let model = parse_model(&opts)?;
    let method = parse_method(&opts)?;
    let cap = opts.get_or("--cap", 400_000usize)?;
    let build = BuildOptions { labels: false, max_transitions: cap };
    let report =
        compute_period_with(&inst, model, method, &build).map_err(|e| e.to_string())?;
    let metrics = obs.finish()?;

    if opts.has("--json") {
        let mut fields = vec![
            ("model", Json::str(model_name(model))),
            ("method", Json::str(report.method.to_string())),
            ("period", Json::Num(report.period)),
            ("mct", Json::Num(report.mct)),
            ("throughput", Json::Num(report.throughput())),
            ("num_paths", Json::UInt(report.num_paths)),
            ("has_critical_resource", Json::Bool(report.has_critical_resource(1e-9))),
            ("critical", Json::str(report.critical.clone())),
        ];
        if let Some(snap) = &metrics {
            fields.push(("metrics", crate::obsctl::metrics_json(snap)));
        }
        print!("{}", Json::Obj(fields).to_string_pretty());
    } else {
        println!("model               : {}", model_name(model));
        println!("method              : {}", report.method);
        println!("period P̂           : {:.6}", report.period);
        println!("throughput 1/P̂     : {:.6}", report.throughput());
        println!("M_ct lower bound    : {:.6}", report.mct);
        println!("paths m             : {}", report.num_paths);
        println!(
            "critical resource   : {}",
            if report.has_critical_resource(1e-9) {
                report.critical.as_str()
            } else {
                "NONE — every resource idles each period"
            }
        );
        if let Some(snap) = &metrics {
            crate::obsctl::print_metrics(snap);
        }
    }
    Ok(())
}
