//! `repwf simulate` — discrete-event estimate of the period.

use crate::json::Json;
use crate::opts::{load_instance, model_name, parse_model, Opts};
use repwf_sim::{simulate, SimOptions};

const HELP: &str = "\
repwf simulate — estimate the period with the discrete-event simulator

OPTIONS:
  --example a|b|c    paper fixture (default: a)
  --file PATH        instance in the repwf text format
  --workflow PATH    series-parallel workflow instance in JSON
  --model M          overlap | strict (default: overlap)
  --data-sets N      data sets to push through (default: 20000)
  --json             structured output
";

pub fn run(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(
        args,
        &["--example", "--file", "--workflow", "--model", "--data-sets"],
        &["--json", "--help"],
    )?;
    if opts.has("--help") {
        print!("{HELP}");
        return Ok(());
    }
    let inst = load_instance(&opts)?;
    let model = parse_model(&opts)?;
    let data_sets = opts.get_or("--data-sets", 20_000u64)?;
    if data_sets == 0 {
        return Err("--data-sets must be at least 1".to_string());
    }
    let result = simulate(&inst, model, &SimOptions { data_sets, record_ops: false });
    let exact = result.exact_period(1e-9);
    let estimate = exact.unwrap_or_else(|| result.period_estimate());
    let (mct, _) = repwf_core::cycle_time::max_cycle_time(&inst, model);

    if opts.has("--json") {
        let doc = Json::Obj(vec![
            ("model", Json::str(model_name(model))),
            ("data_sets", Json::UInt(u128::from(data_sets))),
            ("period", Json::Num(estimate)),
            ("exact_period", exact.map_or(Json::Null, Json::Num)),
            ("mct", Json::Num(mct)),
            ("exact", Json::Bool(exact.is_some())),
        ]);
        print!("{}", doc.to_string_pretty());
    } else {
        println!("model           : {}", model_name(model));
        println!("data sets       : {data_sets}");
        println!(
            "period estimate : {:.6}{}",
            estimate,
            if exact.is_some() { "  (asymptotically exact)" } else { "" }
        );
        println!("M_ct            : {mct:.6}");
    }
    Ok(())
}
