//! `repwf campaign` — random-experiment campaign on the work-stealing
//! engine, optionally as one shard of a distributed run.
//!
//! The JSON output deliberately excludes `--threads`: results are
//! bit-identical at every thread count, and scripted consumers may diff
//! runs across machines. With `--shard I/N --out F` the command runs only
//! the `I`-th deterministic seed slice and streams it to an NDJSON shard
//! file (resumable after a kill); `--range OFF+LEN --out F` runs an
//! explicit slice instead (the command merge diagnostics print for
//! coverage gaps); `repwf merge` recombines shard files into output
//! byte-identical to the unsharded `--json` document.
//!
//! With `--supervise --dir D` the command becomes an **elastic worker**
//! of a shared campaign directory: claim units via lease files, resume
//! dead workers' checkpoints, retry with backoff, split stragglers —
//! run it from as many hosts as you like (see the README's "Distributed
//! campaigns" section). The merged result stays byte-identical.

use crate::json::Json;
use crate::opts::{model_name, parse_model, parse_range, parse_threads, Opts};
use repwf_dist::report::campaign_doc;
use repwf_dist::shard::{run_range, run_shard_opts, ShardRunOptions};
use repwf_dist::supervise::ClaimOutcome;
use repwf_dist::{
    merge_paths, supervise, CampaignSpec, FaultPlan, ShardPlan, SuperviseOptions,
};
use repwf_gen::campaign::{
    run_campaign_batched_with, shape_stats, CampaignResult, DEFAULT_CAMPAIGN_CAP, GAP_REL_TOL,
};
use repwf_gen::{GenConfig, Range};
use std::io::Write as _;
use std::time::Duration;

const HELP: &str = "\
repwf campaign — run random experiments comparing the period against M_ct

OPTIONS:
  --stages N         pipeline stages (default: 2)
  --procs P          processors, all mapped (default: 7)
  --comp LO..HI|V    computation-time range (default: 1)
  --comm LO..HI|V    communication-time range (default: 5..10)
  --count N          number of experiments (default: 100)
  --seed S           base seed; experiment k uses S+k (default: 2009)
  --threads K        worker threads (default: hardware)
  --cap N            TPN transition cap before simulator fallback (default: 2000000)
  --model M          overlap | strict (default: strict)
  --csv PATH         write per-experiment outcomes as CSV
  --hist             print an ASCII histogram of the positive gaps
  --trace FILE       write an NDJSON span/counter trace (repwf-trace/v1);
                     never changes this command's stdout bytes
  --metrics          append a telemetry counter table (or a \"metrics\"
                     object with --json)
  --json             structured output (identical at any --threads)

DISTRIBUTED (see also `repwf merge` and `repwf dist status`):
  --shard I/N        run only shard I of N (deterministic seed slice);
                     requires --out. Re-running resumes a killed shard.
  --range OFF+LEN    run the explicit seed slice OFF..OFF+LEN instead of
                     an I/N fraction (the command merge prints to fill a
                     coverage gap); requires --out
  --out PATH         stream the shard as NDJSON to PATH (with --shard/--range)
  --flush-every N    checkpoint flush cadence in records (default: 64); a
                     kill loses at most N-1 records past the last flush
  --supervise        run as an elastic supervisor worker on a shared
                     campaign directory until the campaign completes;
                     requires --dir. Run from any number of hosts.
  --dir PATH         the shared campaign directory (with --supervise)
  --workers N        supervisor worker loops to run in this process (default: 1)
  --units N          initial claim units to pin on a fresh campaign dir
                     (default: 8; later workers adopt the pinned value)
  --lease-timeout S  seconds without a heartbeat before a worker's lease
                     counts as dead and its unit is taken over (default: 10)
  --retries N        attempts per claim unit before it is reported
                     degraded instead of retried (default: 4); retries
                     wait out an exponential backoff with deterministic
                     seeded jitter
  --owner NAME       worker identity recorded in leases (default: host-pid)
";

pub fn run(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(
        args,
        &[
            "--stages", "--procs", "--comp", "--comm", "--count", "--seed", "--threads",
            "--cap", "--model", "--csv", "--shard", "--out", "--range", "--flush-every",
            "--dir", "--workers", "--units", "--lease-timeout", "--retries", "--owner",
            "--trace",
        ],
        &["--json", "--hist", "--help", "--supervise", "--metrics"],
    )?;
    if opts.has("--help") {
        print!("{HELP}");
        return Ok(());
    }
    let stages = opts.get_or("--stages", 2usize)?;
    let procs = opts.get_or("--procs", 7usize)?;
    if stages == 0 || procs < stages {
        return Err(format!("need 1 <= stages <= procs (got {stages} stages, {procs} procs)"));
    }
    let comp = parse_range(opts.get("--comp").unwrap_or("1"))?;
    let comm = parse_range(opts.get("--comm").unwrap_or("5..10"))?;
    let count = opts.get_or("--count", 100usize)?;
    let seed = opts.get_or("--seed", 2009u64)?;
    let threads = parse_threads(&opts)?;
    let cap = opts.get_or("--cap", DEFAULT_CAMPAIGN_CAP)?;
    // Strict is the model where the paper actually found gaps.
    let model = if opts.get("--model").is_some() {
        parse_model(&opts)?
    } else {
        repwf_core::model::CommModel::Strict
    };

    let spec = CampaignSpec {
        cfg: GenConfig { stages, procs, comp, comm },
        model,
        count,
        seed_base: seed,
        cap,
    };

    let obs = crate::obsctl::init(&opts, "campaign")?;
    if opts.has("--supervise") {
        return run_supervised(&opts, &spec, threads, obs);
    }
    if opts.get("--shard").is_some() || opts.get("--range").is_some() || opts.get("--out").is_some()
    {
        return run_sharded(&opts, &spec, threads, obs);
    }

    // The unsharded run goes through the shape-batched solver: same bytes
    // as the per-instance engine (property-tested), a fraction of the
    // structural work when draws repeat shapes.
    let res = run_campaign_batched_with(
        &spec.cfg,
        model,
        count,
        seed,
        threads,
        cap,
        Some(&|p| {
            let mut err = std::io::stderr().lock();
            let _ = write!(
                err,
                "\r{}/{} experiments  (no-critical {}, simulated {})",
                p.done, p.total, p.no_critical, p.simulated
            );
            if p.done == p.total {
                let _ = writeln!(err);
            }
        }),
    );

    let metrics = obs.finish()?;

    if let Some(path) = opts.get("--csv") {
        std::fs::write(path, repwf_gen::stats::outcomes_csv(&res))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("CSV written to {path}");
    }

    if opts.has("--json") {
        // The campaign document itself stays metrics-free: it must be
        // byte-identical to a `repwf merge` of the same campaign, traced
        // or not, at any thread count. `--metrics` reports on stderr.
        print!("{}", campaign_doc(&spec, &res).to_string_pretty());
        if let Some(snap) = &metrics {
            eprint!("{}", crate::obsctl::metrics_table(snap));
        }
    } else {
        print_summary(&spec, &res, opts.has("--hist"));
        if let Some(snap) = &metrics {
            crate::obsctl::print_metrics(snap);
        }
    }
    Ok(())
}

/// The shard writer options shared by shard, range and supervise modes:
/// the flush cadence and any `REPWF_FAULT` injection from the
/// environment (deterministic chaos testing).
fn shard_run_options(opts: &Opts) -> Result<ShardRunOptions, String> {
    Ok(ShardRunOptions {
        flush_every: opts.get_or("--flush-every", 0usize)?,
        fault: FaultPlan::from_env().map_err(|e| e.to_string())?,
    })
}

/// Shard mode: run (or resume) one deterministic seed slice into an
/// NDJSON shard file.
fn run_sharded(
    opts: &Opts,
    spec: &CampaignSpec,
    threads: usize,
    obs: crate::obsctl::Obs,
) -> Result<(), String> {
    let out = opts
        .get("--out")
        .ok_or("--shard/--range needs --out PATH (the NDJSON shard file)")?;
    if opts.get("--csv").is_some() {
        return Err(
            "--csv is not available in shard mode — merge first \
             (`repwf merge <shards...> --csv ...`)"
                .to_string(),
        );
    }
    if opts.has("--hist") {
        return Err("--hist is not available in shard mode — merge first".to_string());
    }
    if opts.get("--shard").is_some() && opts.get("--range").is_some() {
        return Err("--shard and --range are mutually exclusive".to_string());
    }
    let run_opts = shard_run_options(opts)?;
    let path = std::path::Path::new(out);
    let progress = |label: String| {
        move |done: usize, total: usize| {
            let mut err = std::io::stderr().lock();
            let _ = write!(err, "\r{done}/{total} experiments ({label})");
            if done == total {
                let _ = writeln!(err);
            }
        }
    };

    let summary = if let Some(raw) = opts.get("--range") {
        let (offset, len) = parse_range_slice(raw)?;
        let cb = progress(format!("range {offset}+{len}"));
        run_range(spec, offset, len, threads, path, Some(&cb), &run_opts)
            .map_err(|e| e.to_string())?
    } else {
        let (shard_index, num_shards) = match opts.get("--shard") {
            Some(raw) => ShardPlan::parse_fraction(raw)?,
            None => (0, 1),
        };
        let cb = progress(format!("shard {shard_index}/{num_shards}"));
        run_shard_opts(spec, shard_index, num_shards, threads, path, Some(&cb), &run_opts)
            .map_err(|e| e.to_string())?
    };
    // Shard stdout (and the shard file) are machine artifacts: the
    // metrics table goes to stderr alongside the progress line.
    if let Some(snap) = obs.finish()? {
        eprint!("{}", crate::obsctl::metrics_table(&snap));
    }
    let plan = summary.manifest.plan;
    if opts.has("--json") {
        let mut fields = vec![
            ("shard_index", Json::UInt(plan.shard_index as u128)),
            ("num_shards", Json::UInt(plan.num_shards as u128)),
        ];
        if let Some((offset, len)) = plan.range_slice() {
            fields = vec![
                ("range_offset", Json::UInt(offset as u128)),
                ("range_len", Json::UInt(len as u128)),
            ];
        }
        fields.extend([
            ("seed_start", Json::UInt(u128::from(plan.seed_start()))),
            ("seed_end", Json::UInt(u128::from(plan.seed_end()))),
            ("resumed", Json::UInt(summary.resumed as u128)),
            ("ran", Json::UInt(summary.ran as u128)),
            ("out", Json::str(out)),
        ]);
        print!("{}", Json::Obj(fields).to_string_pretty());
    } else if let Some((offset, len)) = plan.range_slice() {
        println!(
            "range {offset}+{len}: seeds {}..{} -> {out} \
             ({} resumed from checkpoint, {} computed)",
            plan.seed_start(),
            plan.seed_end(),
            summary.resumed,
            summary.ran,
        );
        println!("merge with: repwf merge <files tiling the campaign> --json");
    } else {
        println!(
            "shard {}/{}: seeds {}..{} -> {out} \
             ({} resumed from checkpoint, {} computed)",
            plan.shard_index,
            plan.num_shards,
            plan.seed_start(),
            plan.seed_end(),
            summary.resumed,
            summary.ran,
        );
        println!("merge with: repwf merge <all {} shard files> --json", plan.num_shards);
    }
    Ok(())
}

/// Parses the `--range` designator `OFF+LEN`.
fn parse_range_slice(raw: &str) -> Result<(usize, usize), String> {
    let (off, len) = raw
        .split_once('+')
        .ok_or_else(|| format!("invalid range designator {raw:?} (expected OFF+LEN)"))?;
    let off: usize =
        off.parse().map_err(|_| format!("invalid range offset {off:?} in {raw:?}"))?;
    let len: usize =
        len.parse().map_err(|_| format!("invalid range length {len:?} in {raw:?}"))?;
    Ok((off, len))
}

/// Supervise mode: run `--workers` elastic worker loops against the
/// shared campaign directory until the campaign completes (then merge
/// and report exactly like an unsharded run) or degrades.
fn run_supervised(
    opts: &Opts,
    spec: &CampaignSpec,
    threads: usize,
    obs: crate::obsctl::Obs,
) -> Result<(), String> {
    let dir = opts
        .get("--dir")
        .ok_or("--supervise needs --dir PATH (the shared campaign directory)")?;
    if opts.get("--csv").is_some() || opts.has("--hist") {
        return Err("--csv/--hist are not available with --supervise — the merged \
                    output is printed when the campaign completes"
            .to_string());
    }
    let dir = std::path::PathBuf::from(dir);
    std::fs::create_dir_all(&dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let workers = opts.get_or("--workers", 1usize)?.max(1);
    let timeout = opts.get_or("--lease-timeout", 10.0f64)?;
    if !timeout.is_finite() || timeout <= 0.0 {
        return Err("--lease-timeout must be positive seconds".to_string());
    }
    let owner = match opts.get("--owner") {
        Some(o) => o.to_string(),
        None => format!("host-{}", std::process::id()),
    };
    let fault = FaultPlan::from_env().map_err(|e| e.to_string())?;
    let retries = opts.get_or("--retries", 0u32)?;
    let mut retry = repwf_dist::lease::RetryPolicy::default();
    if retries > 0 {
        retry.max_attempts = retries;
    }
    let base = SuperviseOptions {
        threads: threads.div_ceil(workers).max(1),
        units: opts.get_or("--units", 0usize)?,
        lease_timeout: Duration::from_secs_f64(timeout),
        flush_every: opts.get_or("--flush-every", 0usize)?,
        retry,
        ..SuperviseOptions::default()
    };

    let dir_ref: &std::path::Path = &dir;
    let summaries = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let worker_opts = SuperviseOptions {
                    owner: if workers == 1 { owner.clone() } else { format!("{owner}-w{w}") },
                    // The injected fault goes to one worker: one kill, not
                    // one per loop (chaos CI counts recoveries).
                    fault: if w == 0 { fault.clone() } else { None },
                    ..base.clone()
                };
                scope.spawn(move || supervise(dir_ref, spec, &worker_opts))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect::<Vec<_>>()
    });

    // Workers are done (or degraded): close the trace before reporting.
    if let Some(snap) = obs.finish()? {
        eprint!("{}", crate::obsctl::metrics_table(&snap));
    }

    let mut complete: Option<repwf_dist::SuperviseSummary> = None;
    for summary in summaries {
        let summary = summary.map_err(|e| e.to_string())?;
        for claim in &summary.claims {
            let how = match &claim.outcome {
                ClaimOutcome::Completed => "completed".to_string(),
                ClaimOutcome::Lost => "lost (taken over)".to_string(),
                ClaimOutcome::Faulted(m) => format!("faulted: {m}"),
            };
            eprintln!(
                "[{}] r{}-{} attempt {}{}: resumed {}, ran {}, {how} \
                 (backoff waited {:?})",
                summary.owner,
                claim.offset,
                claim.declared,
                claim.attempt,
                if claim.takeover { " (takeover)" } else { "" },
                claim.resumed,
                claim.ran,
                claim.backoff,
            );
        }
        for (offset, level) in &summary.splits {
            eprintln!("[{}] split straggler unit r{offset}-{level} at seed boundary", summary.owner);
        }
        if summary.complete {
            complete = Some(summary);
        } else {
            for d in &summary.degraded {
                eprintln!(
                    "[{}] DEGRADED: unit at offset {} (len {}) exhausted {} attempts",
                    summary.owner, d.offset, d.len, d.attempts
                );
            }
        }
    }

    let Some(summary) = complete else {
        return Err(format!(
            "campaign degraded: some units exhausted their retry budget; inspect with \
             `repwf dist status --dir {}`, re-run the printed --range commands, or merge \
             what exists with `repwf merge {}/*.ndjson --allow-partial`",
            dir.display(),
            dir.display(),
        ));
    };

    let merged = merge_paths(&summary.files).map_err(|e| e.to_string())?;
    if opts.has("--json") {
        print!("{}", campaign_doc(&merged.spec, &merged.result).to_string_pretty());
    } else {
        eprintln!(
            "campaign complete: {} units merged — {}",
            summary.files.len(),
            merged.accum.progress(merged.spec.count).summary()
        );
        print_summary(&merged.spec, &merged.result, false);
    }
    Ok(())
}

/// Human-readable campaign summary (shared with `repwf merge`).
pub(crate) fn print_summary(spec: &CampaignSpec, res: &CampaignResult, hist: bool) {
    let accum = res.accum();
    let count = spec.count;
    let no_critical = accum.no_critical;
    let max_gap_pct = accum.max_gap() * 100.0;
    println!(
        "{model_name} model, {stages} stages on {procs} procs, comp {} comm {}",
        range_text(spec.cfg.comp),
        range_text(spec.cfg.comm),
        model_name = model_name(spec.model),
        stages = spec.cfg.stages,
        procs = spec.cfg.procs,
    );
    println!(
        "experiments        : {count} (seeds {}..{})",
        spec.seed_base,
        spec.seed_base + count as u64
    );
    let (distinct_shapes, batch_hit_rate) = shape_stats(&spec.cfg, count, spec.seed_base);
    println!(
        "distinct shapes     : {distinct_shapes} (batch hit rate {:.1}%)",
        batch_hit_rate * 100.0
    );
    let structural = repwf_gen::campaign::structural_stats(
        &spec.cfg,
        spec.model,
        count,
        spec.seed_base,
        spec.cap,
    );
    println!(
        "structural solves   : {} CSR builds, {} Tarjan runs, {} patched",
        structural.csr_builds, structural.tarjan_runs, structural.patched_solves
    );
    println!(
        "no critical resource: {no_critical} ({:.2}%)",
        100.0 * no_critical as f64 / count.max(1) as f64
    );
    println!("max gap             : {max_gap_pct:.3}%");
    println!("simulator fallback  : {}", accum.simulated);
    if hist {
        let gaps: Vec<f64> = res
            .outcomes
            .iter()
            .filter(|o| o.no_critical_resource(GAP_REL_TOL))
            .map(|o| o.gap() * 100.0)
            .collect();
        if gaps.is_empty() {
            println!("\n(no positive gaps to plot)");
        } else {
            println!("\ngap distribution (% over M_ct):");
            print!("{}", repwf_gen::stats::histogram(&gaps, 10, 50));
        }
    }
}

fn range_text(r: Range) -> String {
    if r.lo == r.hi {
        format!("{}", r.lo)
    } else {
        format!("{}..{}", r.lo, r.hi)
    }
}
