//! `repwf campaign` — random-experiment campaign on the work-stealing
//! engine, optionally as one shard of a distributed run.
//!
//! The JSON output deliberately excludes `--threads`: results are
//! bit-identical at every thread count, and scripted consumers may diff
//! runs across machines. With `--shard I/N --out F` the command runs only
//! the `I`-th deterministic seed slice and streams it to an NDJSON shard
//! file (resumable after a kill); `repwf merge` recombines shard files
//! into output byte-identical to the unsharded `--json` document.

use crate::json::Json;
use crate::opts::{model_name, parse_model, parse_range, parse_threads, Opts};
use repwf_dist::report::campaign_doc;
use repwf_dist::{run_shard, CampaignSpec, ShardPlan};
use repwf_gen::campaign::{run_campaign_with, CampaignResult, GAP_REL_TOL};
use repwf_gen::{GenConfig, Range};
use std::io::Write as _;

const HELP: &str = "\
repwf campaign — run random experiments comparing the period against M_ct

OPTIONS:
  --stages N         pipeline stages (default: 2)
  --procs P          processors, all mapped (default: 7)
  --comp LO..HI|V    computation-time range (default: 1)
  --comm LO..HI|V    communication-time range (default: 5..10)
  --count N          number of experiments (default: 100)
  --seed S           base seed; experiment k uses S+k (default: 2009)
  --threads K        worker threads (default: hardware)
  --cap N            TPN transition cap before simulator fallback (default: 400000)
  --model M          overlap | strict (default: strict)
  --csv PATH         write per-experiment outcomes as CSV
  --hist             print an ASCII histogram of the positive gaps
  --json             structured output (identical at any --threads)

DISTRIBUTED (see also `repwf merge`):
  --shard I/N        run only shard I of N (deterministic seed slice);
                     requires --out. Re-running resumes a killed shard.
  --out PATH         stream the shard as NDJSON to PATH (with --shard)
";

pub fn run(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(
        args,
        &[
            "--stages", "--procs", "--comp", "--comm", "--count", "--seed", "--threads",
            "--cap", "--model", "--csv", "--shard", "--out",
        ],
        &["--json", "--hist", "--help"],
    )?;
    if opts.has("--help") {
        print!("{HELP}");
        return Ok(());
    }
    let stages = opts.get_or("--stages", 2usize)?;
    let procs = opts.get_or("--procs", 7usize)?;
    if stages == 0 || procs < stages {
        return Err(format!("need 1 <= stages <= procs (got {stages} stages, {procs} procs)"));
    }
    let comp = parse_range(opts.get("--comp").unwrap_or("1"))?;
    let comm = parse_range(opts.get("--comm").unwrap_or("5..10"))?;
    let count = opts.get_or("--count", 100usize)?;
    let seed = opts.get_or("--seed", 2009u64)?;
    let threads = parse_threads(&opts)?;
    let cap = opts.get_or("--cap", 400_000usize)?;
    // Strict is the model where the paper actually found gaps.
    let model = if opts.get("--model").is_some() {
        parse_model(&opts)?
    } else {
        repwf_core::model::CommModel::Strict
    };

    let spec = CampaignSpec {
        cfg: GenConfig { stages, procs, comp, comm },
        model,
        count,
        seed_base: seed,
        cap,
    };

    if opts.get("--shard").is_some() || opts.get("--out").is_some() {
        return run_sharded(&opts, &spec, threads);
    }

    let res = run_campaign_with(
        &spec.cfg,
        model,
        count,
        seed,
        threads,
        cap,
        Some(&|p| {
            let mut err = std::io::stderr().lock();
            let _ = write!(
                err,
                "\r{}/{} experiments  (no-critical {}, simulated {})",
                p.done, p.total, p.no_critical, p.simulated
            );
            if p.done == p.total {
                let _ = writeln!(err);
            }
        }),
    );

    if let Some(path) = opts.get("--csv") {
        std::fs::write(path, repwf_gen::stats::outcomes_csv(&res))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("CSV written to {path}");
    }

    if opts.has("--json") {
        print!("{}", campaign_doc(&spec, &res).to_string_pretty());
    } else {
        print_summary(&spec, &res, opts.has("--hist"));
    }
    Ok(())
}

/// Shard mode: run (or resume) one deterministic seed slice into an
/// NDJSON shard file.
fn run_sharded(opts: &Opts, spec: &CampaignSpec, threads: usize) -> Result<(), String> {
    let (shard_index, num_shards) = match opts.get("--shard") {
        Some(raw) => ShardPlan::parse_fraction(raw)?,
        None => (0, 1),
    };
    let out = opts
        .get("--out")
        .ok_or("--shard needs --out PATH (the NDJSON shard file)")?;
    if opts.get("--csv").is_some() {
        return Err(
            "--csv is not available in shard mode — merge first \
             (`repwf merge <shards...> --csv ...`)"
                .to_string(),
        );
    }
    if opts.has("--hist") {
        return Err("--hist is not available in shard mode — merge first".to_string());
    }
    let summary = run_shard(
        spec,
        shard_index,
        num_shards,
        threads,
        std::path::Path::new(out),
        Some(&|done, total| {
            let mut err = std::io::stderr().lock();
            let _ = write!(err, "\r{done}/{total} experiments (shard {shard_index}/{num_shards})");
            if done == total {
                let _ = writeln!(err);
            }
        }),
    )
    .map_err(|e| e.to_string())?;
    let plan = summary.manifest.plan;
    if opts.has("--json") {
        let doc = Json::Obj(vec![
            ("shard_index", Json::UInt(plan.shard_index as u128)),
            ("num_shards", Json::UInt(plan.num_shards as u128)),
            ("seed_start", Json::UInt(u128::from(plan.seed_start()))),
            ("seed_end", Json::UInt(u128::from(plan.seed_end()))),
            ("resumed", Json::UInt(summary.resumed as u128)),
            ("ran", Json::UInt(summary.ran as u128)),
            ("out", Json::str(out)),
        ]);
        print!("{}", doc.to_string_pretty());
    } else {
        println!(
            "shard {shard_index}/{num_shards}: seeds {}..{} -> {out} \
             ({} resumed from checkpoint, {} computed)",
            plan.seed_start(),
            plan.seed_end(),
            summary.resumed,
            summary.ran,
        );
        println!("merge with: repwf merge <all {num_shards} shard files> --json");
    }
    Ok(())
}

/// Human-readable campaign summary (shared with `repwf merge`).
pub(crate) fn print_summary(spec: &CampaignSpec, res: &CampaignResult, hist: bool) {
    let accum = res.accum();
    let count = spec.count;
    let no_critical = accum.no_critical;
    let max_gap_pct = accum.max_gap() * 100.0;
    println!(
        "{model_name} model, {stages} stages on {procs} procs, comp {} comm {}",
        range_text(spec.cfg.comp),
        range_text(spec.cfg.comm),
        model_name = model_name(spec.model),
        stages = spec.cfg.stages,
        procs = spec.cfg.procs,
    );
    println!(
        "experiments        : {count} (seeds {}..{})",
        spec.seed_base,
        spec.seed_base + count as u64
    );
    println!(
        "no critical resource: {no_critical} ({:.2}%)",
        100.0 * no_critical as f64 / count.max(1) as f64
    );
    println!("max gap             : {max_gap_pct:.3}%");
    println!("simulator fallback  : {}", accum.simulated);
    if hist {
        let gaps: Vec<f64> = res
            .outcomes
            .iter()
            .filter(|o| o.no_critical_resource(GAP_REL_TOL))
            .map(|o| o.gap() * 100.0)
            .collect();
        if gaps.is_empty() {
            println!("\n(no positive gaps to plot)");
        } else {
            println!("\ngap distribution (% over M_ct):");
            print!("{}", repwf_gen::stats::histogram(&gaps, 10, 50));
        }
    }
}

fn range_text(r: Range) -> String {
    if r.lo == r.hi {
        format!("{}", r.lo)
    } else {
        format!("{}..{}", r.lo, r.hi)
    }
}
