//! `repwf campaign` — random-experiment campaign on the work-stealing
//! engine.
//!
//! The JSON output deliberately excludes `--threads`: results are
//! bit-identical at every thread count, and scripted consumers may diff
//! runs across machines.

use crate::json::Json;
use crate::opts::{model_name, parse_model, parse_range, parse_threads, Opts};
use repwf_gen::campaign::{run_campaign_with, Resolution, GAP_REL_TOL};
use repwf_gen::{GenConfig, Range};
use std::io::Write as _;

const HELP: &str = "\
repwf campaign — run random experiments comparing the period against M_ct

OPTIONS:
  --stages N         pipeline stages (default: 2)
  --procs P          processors, all mapped (default: 7)
  --comp LO..HI|V    computation-time range (default: 1)
  --comm LO..HI|V    communication-time range (default: 5..10)
  --count N          number of experiments (default: 100)
  --seed S           base seed; experiment k uses S+k (default: 2009)
  --threads K        worker threads (default: hardware)
  --cap N            TPN transition cap before simulator fallback (default: 400000)
  --model M          overlap | strict (default: strict)
  --csv PATH         write per-experiment outcomes as CSV
  --hist             print an ASCII histogram of the positive gaps
  --json             structured output (identical at any --threads)
";

pub fn run(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(
        args,
        &[
            "--stages", "--procs", "--comp", "--comm", "--count", "--seed", "--threads",
            "--cap", "--model", "--csv",
        ],
        &["--json", "--hist", "--help"],
    )?;
    if opts.has("--help") {
        print!("{HELP}");
        return Ok(());
    }
    let stages = opts.get_or("--stages", 2usize)?;
    let procs = opts.get_or("--procs", 7usize)?;
    if stages == 0 || procs < stages {
        return Err(format!("need 1 <= stages <= procs (got {stages} stages, {procs} procs)"));
    }
    let comp = parse_range(opts.get("--comp").unwrap_or("1"))?;
    let comm = parse_range(opts.get("--comm").unwrap_or("5..10"))?;
    let count = opts.get_or("--count", 100usize)?;
    let seed = opts.get_or("--seed", 2009u64)?;
    let threads = parse_threads(&opts)?;
    let cap = opts.get_or("--cap", 400_000usize)?;
    // Strict is the model where the paper actually found gaps.
    let model = if opts.get("--model").is_some() {
        parse_model(&opts)?
    } else {
        repwf_core::model::CommModel::Strict
    };

    let cfg = GenConfig { stages, procs, comp, comm };
    let res = run_campaign_with(
        &cfg,
        model,
        count,
        seed,
        threads,
        cap,
        Some(&|p| {
            let mut err = std::io::stderr().lock();
            let _ = write!(
                err,
                "\r{}/{} experiments  (no-critical {}, simulated {})",
                p.done, p.total, p.no_critical, p.simulated
            );
            if p.done == p.total {
                let _ = writeln!(err);
            }
        }),
    );

    if let Some(path) = opts.get("--csv") {
        std::fs::write(path, repwf_gen::stats::outcomes_csv(&res))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("CSV written to {path}");
    }

    let no_critical = res.count_no_critical(GAP_REL_TOL);
    let max_gap_pct = res.max_gap() * 100.0;
    let simulated = res.count_simulated();

    if opts.has("--json") {
        let outcomes: Vec<Json> = res
            .outcomes
            .iter()
            .map(|o| {
                Json::Obj(vec![
                    ("seed", Json::UInt(u128::from(o.seed))),
                    ("num_paths", Json::UInt(o.num_paths)),
                    ("mct", Json::Num(o.mct)),
                    ("period", Json::Num(o.period)),
                    ("gap", Json::Num(o.gap())),
                    (
                        "resolution",
                        Json::str(match o.resolution {
                            Resolution::Exact => "exact",
                            Resolution::Simulated => "simulated",
                        }),
                    ),
                ])
            })
            .collect();
        let doc = Json::Obj(vec![
            ("model", Json::str(model_name(model))),
            (
                "config",
                Json::Obj(vec![
                    ("stages", Json::UInt(stages as u128)),
                    ("procs", Json::UInt(procs as u128)),
                    ("comp", range_json(comp)),
                    ("comm", range_json(comm)),
                ]),
            ),
            ("count", Json::UInt(count as u128)),
            ("seed", Json::UInt(u128::from(seed))),
            ("cap", Json::UInt(cap as u128)),
            ("no_critical", Json::UInt(no_critical as u128)),
            ("max_gap_pct", Json::Num(max_gap_pct)),
            ("simulated", Json::UInt(simulated as u128)),
            ("outcomes", Json::Arr(outcomes)),
        ]);
        print!("{}", doc.to_string_pretty());
    } else {
        println!(
            "{model_name} model, {stages} stages on {procs} procs, comp {} comm {}",
            range_text(comp),
            range_text(comm),
            model_name = model_name(model),
        );
        println!("experiments        : {count} (seeds {seed}..{})", seed + count as u64);
        println!(
            "no critical resource: {no_critical} ({:.2}%)",
            100.0 * no_critical as f64 / count.max(1) as f64
        );
        println!("max gap             : {max_gap_pct:.3}%");
        println!("simulator fallback  : {simulated}");
        if opts.has("--hist") {
            let gaps: Vec<f64> = res
                .outcomes
                .iter()
                .filter(|o| o.no_critical_resource(GAP_REL_TOL))
                .map(|o| o.gap() * 100.0)
                .collect();
            if gaps.is_empty() {
                println!("\n(no positive gaps to plot)");
            } else {
                println!("\ngap distribution (% over M_ct):");
                print!("{}", repwf_gen::stats::histogram(&gaps, 10, 50));
            }
        }
    }
    Ok(())
}

fn range_json(r: Range) -> Json {
    Json::Obj(vec![("lo", Json::Num(r.lo)), ("hi", Json::Num(r.hi))])
}

fn range_text(r: Range) -> String {
    if r.lo == r.hi {
        format!("{}", r.lo)
    } else {
        format!("{}..{}", r.lo, r.hi)
    }
}
