//! `repwf trace` — summarize an NDJSON telemetry trace.
//!
//! `repwf trace report FILE` validates a `repwf-trace/v1` file written
//! by `--trace` (schema, record count, FNV checksum footer) and prints
//! per-phase totals with p50/p95/p99 span latencies, counter totals,
//! event counts, and per-worker busy-time imbalance. `--min-coverage`
//! turns the report into a CI gate: fail unless the top-level spans
//! cover at least that fraction of the trace's wall time.

use crate::json::Json;
use crate::opts::Opts;
use repwf_obs::report::{read_trace, TraceReport};

const HELP: &str = "\
repwf trace — summarize an NDJSON telemetry trace (repwf-trace/v1)

USAGE: repwf trace report FILE.ndjson [--min-coverage F] [--json]

Validates the trace end to end — header schema, per-line parse, record
count, FNV-1a checksum footer — then reports per-phase span totals
(count, total, p50/p95/p99), counter totals, event counts, and
per-worker busy time with the max/mean imbalance ratio.

OPTIONS:
  --min-coverage F   fail (exit 2) unless the main thread's top-level
                     spans cover at least fraction F of the trace's
                     wall time (a CI accounting gate, e.g. 0.95)
  --json             structured output
";

pub fn run(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args, &["--min-coverage"], &["--json", "--help"])?;
    if opts.has("--help") {
        print!("{HELP}");
        return Ok(());
    }
    let file = match opts.positional() {
        [sub, file] if sub == "report" => file,
        [sub] if sub == "report" => return Err(format!("report needs a trace file\n\n{HELP}")),
        [] => return Err(format!("missing subcommand\n\n{HELP}")),
        [other, ..] => return Err(format!("unknown subcommand `{other}`\n\n{HELP}")),
    };
    let rep = read_trace(std::path::Path::new(file))?;

    if opts.has("--json") {
        print!("{}", report_json(&rep).to_string_pretty());
    } else {
        print_report(&rep);
    }

    if let Some(min) = opts.get("--min-coverage") {
        let min: f64 =
            min.parse().map_err(|_| format!("invalid --min-coverage {min:?}"))?;
        if !(0.0..=1.0).contains(&min) {
            return Err("--min-coverage must be a fraction in 0..=1".to_string());
        }
        if rep.coverage < min {
            return Err(format!(
                "span coverage {:.1}% below required {:.1}% — unaccounted wall time",
                rep.coverage * 100.0,
                min * 100.0
            ));
        }
    }
    Ok(())
}

fn report_json(rep: &TraceReport) -> Json {
    let phases: Vec<Json> = rep
        .phases
        .iter()
        .map(|p| {
            Json::Obj(vec![
                ("name", Json::str(&p.name)),
                ("count", Json::UInt(u128::from(p.count))),
                ("total_ns", Json::UInt(u128::from(p.sum_ns))),
                ("min_ns", Json::UInt(u128::from(p.min_ns))),
                ("max_ns", Json::UInt(u128::from(p.max_ns))),
                ("p50_ns", Json::UInt(u128::from(p.p50_ns))),
                ("p95_ns", Json::UInt(u128::from(p.p95_ns))),
                ("p99_ns", Json::UInt(u128::from(p.p99_ns))),
            ])
        })
        .collect();
    let counters: Vec<Json> = rep
        .counters
        .iter()
        .map(|(n, v)| {
            Json::Obj(vec![("name", Json::str(n)), ("value", Json::UInt(u128::from(*v)))])
        })
        .collect();
    let events: Vec<Json> = rep
        .events
        .iter()
        .map(|(n, c)| {
            Json::Obj(vec![("name", Json::str(n)), ("count", Json::UInt(u128::from(*c)))])
        })
        .collect();
    let threads: Vec<Json> = rep
        .threads
        .iter()
        .map(|t| {
            Json::Obj(vec![
                ("tid", Json::UInt(u128::from(t.tid))),
                ("busy_ns", Json::UInt(u128::from(t.busy_ns))),
                ("spans", Json::UInt(u128::from(t.spans))),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("command", Json::str(&rep.command)),
        ("records", Json::UInt(u128::from(rep.records))),
        ("total_ns", Json::UInt(u128::from(rep.total_ns))),
        ("coverage", Json::Num(rep.coverage)),
        ("imbalance", Json::Num(rep.imbalance)),
        ("phases", Json::Arr(phases)),
        ("counters", Json::Arr(counters)),
        ("events", Json::Arr(events)),
        ("threads", Json::Arr(threads)),
    ])
}

fn print_report(rep: &TraceReport) {
    println!(
        "trace: {} — {} records, {:.3} ms wall (checksum OK)",
        rep.command,
        rep.records,
        rep.total_ns as f64 / 1e6
    );
    if !rep.phases.is_empty() {
        println!("phases (by total time):");
        println!(
            "  {:<12} {:>8} {:>12} {:>10} {:>10} {:>10}",
            "phase", "count", "total ms", "p50 us", "p95 us", "p99 us"
        );
        for p in &rep.phases {
            println!(
                "  {:<12} {:>8} {:>12.3} {:>10.1} {:>10.1} {:>10.1}",
                p.name,
                p.count,
                p.sum_ns as f64 / 1e6,
                p.p50_ns as f64 / 1e3,
                p.p95_ns as f64 / 1e3,
                p.p99_ns as f64 / 1e3,
            );
        }
    }
    if !rep.counters.is_empty() {
        println!("counters:");
        for (name, value) in &rep.counters {
            println!("  {name:<24} {value}");
        }
    }
    if !rep.events.is_empty() {
        println!("events:");
        for (name, count) in &rep.events {
            println!("  {name:<24} {count}");
        }
    }
    if rep.threads.len() > 1 {
        println!("workers: {} threads", rep.threads.len());
        for t in &rep.threads {
            println!(
                "  tid {:<4} busy {:>12.3} ms over {} spans",
                t.tid,
                t.busy_ns as f64 / 1e6,
                t.spans
            );
        }
        println!("imbalance (max/mean worker busy): {:.2}", rep.imbalance);
    }
    println!("span coverage of wall time: {:.1}%", rep.coverage * 100.0);
}
