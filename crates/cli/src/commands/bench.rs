//! `repwf bench` — the tracked benchmark suite of the period engine.
//!
//! Times the hot kernels of the reproduction — single-instance
//! period solves (cold / engine-reused / warm-started), the parallel
//! campaign, annealing over mapping space, the neighbor-move oracle
//! (incremental patched solves vs. cold one-shot evaluations), the
//! shape-cached patched solve vs. a forced full rebuild, and the exact
//! branch-and-bound optimizer — and writes the
//! results to `BENCH_period.json` so the perf trajectory of the
//! repository is recorded in-tree and CI can compare runs against the
//! committed baseline.
//!
//! Two kinds of numbers are reported:
//!
//! * `benchmarks` — absolute wall-clock timings (µs/solve, experiments/s),
//!   best-of-chunks to shrug off scheduler noise. Machine-dependent;
//!   informational, for tracking trends on a fixed box.
//! * `indices` — **dimensionless speedup ratios** (engine vs. cold, warm
//!   vs. cold, N-thread vs. 1-thread campaign). Mostly machine-independent;
//!   these are what `--check` gates on, so a laptop baseline does not fail
//!   a CI runner on raw clock speed.

use crate::json::{parse, Json, JsonValue};
use crate::opts::Opts;
use repwf_core::engine::{MappingOracle, PeriodEngine};
use repwf_core::model::{CommModel, Instance, Mapping, Pipeline, Platform};
use repwf_core::period::{compute_period_with, Method};
use repwf_core::tpn_build::{build_tpn, BuildOptions};
use repwf_dist::{merge_paths, run_shard, CampaignSpec};
use repwf_gen::campaign::{run_campaign, run_campaign_batched};
use repwf_gen::{GenConfig, Range};
use repwf_map::annealing::{anneal, AnnealOptions};
use repwf_map::exact::{solve, ExactOptions};
use repwf_map::greedy;
use std::time::{Duration, Instant};

const HELP: &str = "\
repwf bench — run the tracked benchmark suite and emit BENCH_period.json

OPTIONS:
  --quick            small workloads (CI smoke; same schema, fewer iters)
  --out PATH         where to write the JSON report (default: BENCH_period.json)
  --threads K        parallel-campaign worker threads (default: min(8, hardware))
  --seed S           campaign/annealing base seed (default: 2009)
  --check BASELINE   compare speedup indices against a committed baseline
                     and fail on regression
  --tolerance F      allowed relative index regression for --check (default: 0.30)
  --json             also print the report to stdout
";

/// One timed kernel: `elements` abstract work items per iteration.
struct BenchLine {
    name: &'static str,
    iters: usize,
    elements: u64,
    total: Duration,
    /// Best observed per-iteration time (seconds) over the timing chunks —
    /// the statistic `per_iter_us`, `throughput` and the speedup indices
    /// are derived from. "Best of N chunks" is robust against noisy-
    /// neighbor spikes on shared CI runners, where a mean over one short
    /// window is not.
    best_per_iter_s: f64,
}

impl BenchLine {
    fn per_iter_us(&self) -> f64 {
        self.best_per_iter_s * 1e6
    }

    fn throughput(&self) -> f64 {
        self.elements as f64 / self.best_per_iter_s.max(1e-12)
    }
}

/// Times `iters` runs of `f` in up to 5 chunks (after one warm-up call,
/// which pays the arena growth we want to exclude) and keeps the best
/// chunk's per-iteration time.
fn time_kernel<F: FnMut()>(
    name: &'static str,
    iters: usize,
    elements: u64,
    mut f: F,
) -> BenchLine {
    f(); // warm-up
    let chunks = iters.clamp(1, 5);
    let mut total = Duration::ZERO;
    let mut best_per_iter_s = f64::INFINITY;
    let mut done = 0usize;
    for c in 0..chunks {
        let k = iters / chunks + usize::from(c < iters % chunks);
        if k == 0 {
            continue;
        }
        let start = Instant::now();
        for _ in 0..k {
            f();
        }
        let d = start.elapsed();
        total += d;
        best_per_iter_s = best_per_iter_s.min(d.as_secs_f64() / k as f64);
        done += k;
    }
    BenchLine { name, iters: done, elements, total, best_per_iter_s }
}

/// The single-instance workload: 3 stages replicated 4/5/3 on 12
/// heterogeneous processors — `m = lcm(4,5,3) = 60` TPN rows, 300
/// transitions under the strict model. Large enough that the solve
/// dominates, small enough for thousands of iterations.
fn bench_instance() -> Instance {
    let pipeline = Pipeline::new(vec![5.0, 7.0, 3.0], vec![2.0, 2.0]).unwrap();
    let mut platform = Platform::uniform(12, 1.0, 1.0);
    for u in 0..12 {
        platform.set_speed(u, 1.0 + 0.07 * u as f64);
    }
    let mapping = Mapping::new(vec![
        (0..4).collect(),
        (4..9).collect(),
        (9..12).collect(),
    ])
    .unwrap();
    Instance::new(pipeline, platform, mapping).unwrap()
}

pub fn run(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(
        args,
        &["--out", "--threads", "--seed", "--check", "--tolerance"],
        &["--quick", "--json", "--help"],
    )?;
    if opts.has("--help") {
        print!("{HELP}");
        return Ok(());
    }
    let quick = opts.has("--quick");
    let out_path = opts.get("--out").unwrap_or("BENCH_period.json").to_string();
    let hw = repwf_par::max_threads();
    let threads = opts.get_or("--threads", hw.min(8))?;
    let seed = opts.get_or("--seed", 2009u64)?;
    let tolerance: f64 = opts.get_or("--tolerance", 0.30)?;

    let mut lines: Vec<BenchLine> = Vec::new();

    // --- kernel 1: single-instance period solves (strict, full TPN) ---
    let inst = bench_instance();
    let build_opts = BuildOptions { labels: false, ..BuildOptions::default() };
    let period_iters = if quick { 200 } else { 1000 };

    let reference = compute_period_with(&inst, CommModel::Strict, Method::FullTpn, &build_opts)
        .map_err(|e| format!("bench instance failed to solve: {e}"))?;
    lines.push(time_kernel("period_full_tpn_cold", period_iters, 1, || {
        let r = compute_period_with(&inst, CommModel::Strict, Method::FullTpn, &build_opts)
            .expect("solves");
        assert_eq!(r.period.to_bits(), reference.period.to_bits());
    }));

    let mut engine = PeriodEngine::new();
    lines.push(time_kernel("period_full_tpn_engine", period_iters, 1, || {
        let r = engine.compute(&inst, CommModel::Strict, Method::FullTpn).expect("solves");
        assert_eq!(r.period.to_bits(), reference.period.to_bits());
    }));

    let mut warm_engine = PeriodEngine::new().warm_start(true);
    lines.push(time_kernel("period_full_tpn_warm", period_iters, 1, || {
        let r = warm_engine.compute(&inst, CommModel::Strict, Method::FullTpn).expect("solves");
        assert_eq!(r.period.to_bits(), reference.period.to_bits());
    }));

    // --- kernel 1b: SP-DAG TPN build vs an equivalent-size chain ---
    //
    // The series-parallel grid generalizes the chain's `2n-1` columns to
    // `n + E` per-stage/per-edge columns. This kernel builds the strict
    // TPN of a replicated fork/join diamond (4 stages + 4 edges = 8
    // columns) next to a 4-stage chain on the *same* platform with the
    // same replica counts (7 columns), and `dag_build_parity` is the
    // per-build time ratio chain/DAG — a structural-overhead gauge that
    // sits just under 1 (the diamond carries one extra column). A drop
    // means DAG grid construction got more expensive *relative to* the
    // chain path it generalizes.
    let dag_inst = {
        let wf = Pipeline::from_edges(
            vec![5.0, 7.0, 3.0, 4.0],
            vec![(0, 1, 2.0), (0, 2, 2.0), (1, 3, 1.5), (2, 3, 1.5)],
        )
        .unwrap();
        let mapping = Mapping::new(vec![
            vec![0],
            (1..5).collect(),
            (5..10).collect(),
            (10..12).collect(),
        ])
        .unwrap();
        Instance::new(wf, inst.platform.clone(), mapping).unwrap()
    };
    let chain_inst = {
        let wf = Pipeline::new(vec![5.0, 7.0, 3.0, 4.0], vec![2.0, 2.0, 1.5]).unwrap();
        let mapping = Mapping::new(vec![
            vec![0],
            (1..5).collect(),
            (5..10).collect(),
            (10..12).collect(),
        ])
        .unwrap();
        Instance::new(wf, inst.platform.clone(), mapping).unwrap()
    };
    let build_iters = if quick { 200 } else { 1000 };
    lines.push(time_kernel("tpn_build_chain", build_iters, 1, || {
        let built = build_tpn(&chain_inst, CommModel::Strict, &build_opts).expect("builds");
        assert_eq!(built.cols, 7);
    }));
    lines.push(time_kernel("tpn_build_dag", build_iters, 1, || {
        let built = build_tpn(&dag_inst, CommModel::Strict, &build_opts).expect("builds");
        assert_eq!(built.cols, 8);
    }));

    // --- kernel 2: the campaign (strict model, the paper's gap regime) ---
    let cfg = GenConfig {
        stages: 2,
        procs: 7,
        comp: Range::constant(1.0),
        comm: Range::new(5.0, 10.0),
    };
    let campaign_count = if quick { 96 } else { 512 };
    let campaign_reps = if quick { 3 } else { 5 };
    let cap = 400_000;
    let t1 = time_kernel("campaign_strict_1t", campaign_reps, campaign_count as u64, || {
        let res = run_campaign(&cfg, CommModel::Strict, campaign_count, seed, 1, cap);
        assert_eq!(res.outcomes.len(), campaign_count);
    });
    let tn = time_kernel("campaign_strict_nt", campaign_reps, campaign_count as u64, || {
        let res = run_campaign(&cfg, CommModel::Strict, campaign_count, seed, threads, cap);
        assert_eq!(res.outcomes.len(), campaign_count);
    });
    let campaign_speedup = tn.throughput() / t1.throughput();
    lines.push(t1);
    lines.push(tn);

    // --- kernel 2b: the same campaign through the shape-batched solver ---
    //
    // Identical spec, seeds and thread count as `campaign_strict_nt`; the
    // only difference is the runner. `campaign_batched_speedup` is the
    // throughput ratio — the structural work (TPN build, ratio-graph/CSR
    // build, Tarjan condensation) that shape groups amortize, plus the
    // shared-structure streaming of the batched Howard kernel. Both runs
    // solve at the same `--threads`, so the index is comparable across
    // machines and gated normally (it is NOT a thread-scaling index).
    lines.push(time_kernel("campaign_batched_nt", campaign_reps, campaign_count as u64, || {
        let res =
            run_campaign_batched(&cfg, CommModel::Strict, campaign_count, seed, threads, cap);
        assert_eq!(res.outcomes.len(), campaign_count);
    }));
    // Outside the timer: the batched campaign must be *byte-identical* to
    // the per-instance one, not merely the right length.
    let batched = run_campaign_batched(&cfg, CommModel::Strict, campaign_count, seed, threads, cap);
    let unbatched = run_campaign(&cfg, CommModel::Strict, campaign_count, seed, threads, cap);
    assert_eq!(batched, unbatched, "batched campaign must match the per-instance run");

    // --- kernel 3: annealing over mapping space (warm-engine oracle) ---
    let pipeline = Pipeline::new(vec![8.0, 24.0, 8.0], vec![0.5, 0.5]).unwrap();
    let mut platform = Platform::uniform(9, 1.0, 10.0);
    for u in 0..9 {
        platform.set_speed(u, 1.0 + 0.1 * u as f64);
    }
    let anneal_steps = if quick { 200 } else { 1200 };
    let anneal_opts = AnnealOptions {
        model: CommModel::Strict,
        steps: anneal_steps,
        seed,
        ..AnnealOptions::default()
    };
    let start_mapping = greedy(&pipeline, &platform);
    let mut anneal_evals = 0u64;
    let anneal_line = time_kernel("anneal_strict", 2, 1, || {
        let res = anneal(&pipeline, &platform, start_mapping.clone(), &anneal_opts);
        anneal_evals = res.evaluations as u64;
        assert!(res.period.is_finite());
    });
    let anneal_line = BenchLine { elements: anneal_evals.max(1), ..anneal_line };
    lines.push(anneal_line);

    // --- kernel 4: neighbor-move oracle (incremental vs cold one-shot) ---
    //
    // A deterministic swap walk over the bench instance's mapping: every
    // step preserves the per-stage replica counts, so the incremental
    // oracle evaluates it on the engine's patch path (re-time + re-weight
    // + warm solve), while the cold one-shot pays a fresh engine, an owned
    // `Instance` (three clones) and a full TPN build per candidate — the
    // exact cost a mapping search used to pay per neighbor.
    let neighbor_steps = if quick { 32 } else { 128 };
    let walk: Vec<Mapping> = {
        let mut assignment: Vec<Vec<usize>> = inst.mapping.assignment().to_vec();
        let counts: Vec<usize> = assignment.iter().map(Vec::len).collect();
        (0..neighbor_steps)
            .map(|t| {
                let i = t % (counts.len() - 1);
                let j = i + 1;
                let (si, sj) = (t % counts[i], (t / 2) % counts[j]);
                let (a, b) = (assignment[i][si], assignment[j][sj]);
                assignment[i][si] = b;
                assignment[j][sj] = a;
                Mapping::new(assignment.clone()).expect("swaps preserve validity")
            })
            .collect()
    };
    let reference_walk: Vec<f64> = walk
        .iter()
        .map(|m| {
            repwf_map::evaluate(&inst.pipeline, &inst.platform, m, CommModel::Strict)
                .expect("walk mappings evaluate")
        })
        .collect();
    lines.push(time_kernel("neighbor_eval_cold", 2, neighbor_steps as u64, || {
        for (m, &reference) in walk.iter().zip(&reference_walk) {
            let p = repwf_map::evaluate(&inst.pipeline, &inst.platform, m, CommModel::Strict)
                .expect("walk mappings evaluate");
            assert_eq!(p.to_bits(), reference.to_bits());
        }
    }));
    let mut oracle =
        MappingOracle::new(&inst.pipeline, &inst.platform).warm_start(true);
    lines.push(time_kernel("neighbor_eval_incremental", 2, neighbor_steps as u64, || {
        for (m, &reference) in walk.iter().zip(&reference_walk) {
            let p = oracle
                .compute(m, CommModel::Strict, Method::Auto)
                .expect("walk mappings evaluate")
                .period;
            assert_eq!(p.to_bits(), reference.to_bits());
        }
    }));
    let patched = oracle.into_engine().patched_solves();
    assert!(patched > 0, "neighbor walk must exercise the patch path (got {patched})");

    // --- kernel 5: shape-cached patched solve vs forced full rebuild ---
    //
    // The same swap walk through the same engine configuration; the only
    // difference is that the rebuild engine forgets its patch state before
    // every call, so each solve pays the TPN rebuild, the ratio-graph
    // rebuild, the CSR construction and the Tarjan condensation that a
    // shape-preserving patched solve (re-time + cost re-weight + warm
    // Howard) skips entirely. The ratio is `patched_solve_speedup` — the
    // price of the structural work the shape cache eliminates.
    let solve_reps = if quick { 3 } else { 8 };
    let mut patched_engine = PeriodEngine::new().warm_start(true);
    lines.push(time_kernel("solve_patched", solve_reps, neighbor_steps as u64, || {
        for (m, &reference) in walk.iter().zip(&reference_walk) {
            let r = patched_engine
                .compute_mapping(&inst.pipeline, &inst.platform, m, CommModel::Strict, Method::FullTpn)
                .expect("walk mappings solve");
            assert_eq!(r.period.to_bits(), reference.to_bits());
        }
    }));
    assert_eq!(
        (patched_engine.csr_builds(), patched_engine.tarjan_runs()),
        (1, 1),
        "patched solves must skip CSR builds and Tarjan runs"
    );
    let mut rebuild_engine = PeriodEngine::new().warm_start(true);
    lines.push(time_kernel("solve_rebuild", solve_reps, neighbor_steps as u64, || {
        for (m, &reference) in walk.iter().zip(&reference_walk) {
            rebuild_engine.reset_patch_state();
            let r = rebuild_engine
                .compute_mapping(&inst.pipeline, &inst.platform, m, CommModel::Strict, Method::FullTpn)
                .expect("walk mappings solve");
            assert_eq!(r.period.to_bits(), reference.to_bits());
        }
    }));
    assert_eq!(rebuild_engine.patched_solves(), 0, "rebuild engine must never patch");

    // --- kernel 6: sharded campaign + exact merge vs the unsharded run ---
    //
    // The full `repwf-dist` round trip: the campaign runs as 3 seed-range
    // shards streamed to NDJSON files, which the exact merger validates
    // (manifests, seed coverage, checksums) and recombines. The
    // `shard_merge_efficiency` index is the throughput of that round trip
    // relative to the unsharded N-thread campaign — the price of the
    // ordered streaming writes, the NDJSON encode/parse and the merge
    // validation. It sits below (but near) 1; a drop means the
    // distributed path got more expensive relative to the in-process one.
    let shard_dir = std::env::temp_dir().join(format!("repwf-bench-shards-{}", std::process::id()));
    std::fs::create_dir_all(&shard_dir)
        .map_err(|e| format!("cannot create {}: {e}", shard_dir.display()))?;
    let shard_paths: Vec<std::path::PathBuf> =
        (0..3).map(|i| shard_dir.join(format!("s{i}.ndjson"))).collect();
    let spec = CampaignSpec {
        cfg,
        model: CommModel::Strict,
        count: campaign_count,
        seed_base: seed,
        cap,
    };
    lines.push(time_kernel("campaign_shard_merge", campaign_reps, campaign_count as u64, || {
        for path in &shard_paths {
            let _ = std::fs::remove_file(path);
        }
        for (i, path) in shard_paths.iter().enumerate() {
            run_shard(&spec, i, 3, threads, path, None).expect("bench shard runs");
        }
        let merged = merge_paths(&shard_paths).expect("bench shards merge");
        assert_eq!(merged.result.outcomes.len(), campaign_count);
    }));
    // Outside the timer: the merged result must be *exactly* the
    // unsharded campaign, not merely the right length.
    let merged = merge_paths(&shard_paths).expect("bench shards merge");
    let unsharded = run_campaign(&cfg, CommModel::Strict, campaign_count, seed, threads, cap);
    assert_eq!(merged.result, unsharded, "sharded+merged campaign must be exact");
    let _ = std::fs::remove_dir_all(&shard_dir);

    // --- kernel 7: exact branch-and-bound vs annealing ---
    //
    // A dedicated small instance (3 stages on 6 processors, strict model:
    // 12720 ordered assignments) solved to certified optimality, next to
    // a fixed-length annealing run on the same instance. Both the
    // workload and the two derived indices are **independent of --quick
    // and --threads**: the B&B counters are scheduling-independent by
    // construction and the anneal comparison uses a pinned step count, so
    // `exact_prune_ratio` (fraction of the space the bounds discharged)
    // and `exact_vs_anneal_nodes` (anneal oracle calls per exact leaf
    // solve) are exactly reproducible everywhere.
    let exact_pipeline = Pipeline::new(vec![6.0, 15.0, 9.0], vec![0.5, 0.5]).unwrap();
    let mut exact_platform = Platform::uniform(6, 1.0, 10.0);
    for u in 0..6 {
        exact_platform.set_speed(u, 1.0 + 0.15 * u as f64);
    }
    let exact_opts =
        ExactOptions { model: CommModel::Strict, threads, ..ExactOptions::default() };
    let exact_reps = if quick { 1 } else { 3 };
    let mut exact_res = None;
    let exact_line = time_kernel("exact_bnb_strict", exact_reps, 1, || {
        exact_res = Some(solve(&exact_pipeline, &exact_platform, &exact_opts).expect("bench exact"));
    });
    let exact_res = exact_res.expect("exact kernel ran");
    let exact_space = exact_res.space.expect("bench exact space fits u128");
    lines.push(BenchLine { elements: exact_res.stats.evaluated.max(1), ..exact_line });
    let anneal_vs_exact_opts = AnnealOptions {
        model: CommModel::Strict,
        steps: 400, // pinned: the index must not depend on --quick
        seed,
        ..AnnealOptions::default()
    };
    let exact_anneal = anneal(
        &exact_pipeline,
        &exact_platform,
        greedy(&exact_pipeline, &exact_platform),
        &anneal_vs_exact_opts,
    );
    let (_, exact_optimum) = exact_res.best.as_ref().expect("bench exact instance is feasible");
    assert!(
        exact_anneal.period >= *exact_optimum,
        "annealing cannot beat the certified optimum"
    );
    let exact_prune_ratio = 1.0 - exact_res.stats.evaluated as f64 / exact_space as f64;
    let exact_vs_anneal_nodes = exact_anneal.evaluations as f64 / exact_res.stats.evaluated as f64;

    // --- dimensionless indices (what --check gates on) ---
    let per_iter = |name: &str| {
        lines
            .iter()
            .find(|l| l.name == name)
            .map(BenchLine::per_iter_us)
            .expect("kernel ran")
    };
    let indices: Vec<(&'static str, f64)> = vec![
        ("engine_reuse_speedup", per_iter("period_full_tpn_cold") / per_iter("period_full_tpn_engine")),
        ("warm_start_speedup", per_iter("period_full_tpn_cold") / per_iter("period_full_tpn_warm")),
        ("dag_build_parity", per_iter("tpn_build_chain") / per_iter("tpn_build_dag")),
        ("campaign_parallel_speedup", campaign_speedup),
        ("campaign_batched_speedup", per_iter("campaign_strict_nt") / per_iter("campaign_batched_nt")),
        ("neighbor_eval_speedup", per_iter("neighbor_eval_cold") / per_iter("neighbor_eval_incremental")),
        ("patched_solve_speedup", per_iter("solve_rebuild") / per_iter("solve_patched")),
        ("shard_merge_efficiency", per_iter("campaign_strict_nt") / per_iter("campaign_shard_merge")),
        ("exact_prune_ratio", exact_prune_ratio),
        ("exact_vs_anneal_nodes", exact_vs_anneal_nodes),
    ];

    // --- report ---
    let doc = Json::Obj(vec![
        ("schema", Json::str("repwf-bench/v1")),
        ("quick", Json::Bool(quick)),
        ("threads", Json::UInt(threads as u128)),
        // Hardware parallelism of the recording box: `--check` uses this
        // (with `threads`) to decide whether thread-scaling indices are
        // comparable at all.
        ("cores", Json::UInt(hw as u128)),
        ("seed", Json::UInt(u128::from(seed))),
        (
            "benchmarks",
            Json::Arr(
                lines
                    .iter()
                    .map(|l| {
                        Json::Obj(vec![
                            ("name", Json::str(l.name)),
                            ("iters", Json::UInt(l.iters as u128)),
                            ("elements", Json::UInt(u128::from(l.elements))),
                            ("total_s", Json::Num(l.total.as_secs_f64())),
                            ("per_iter_us", Json::Num(l.per_iter_us())),
                            ("throughput_per_s", Json::Num(l.throughput())),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "indices",
            Json::Arr(
                indices
                    .iter()
                    .map(|&(name, value)| {
                        Json::Obj(vec![("name", Json::str(name)), ("value", Json::Num(value))])
                    })
                    .collect(),
            ),
        ),
    ]);
    let rendered = doc.to_string_pretty();
    std::fs::write(&out_path, &rendered)
        .map_err(|e| format!("cannot write {out_path}: {e}"))?;

    // Human summary on stderr (stdout stays clean for --json consumers).
    eprintln!("benchmarks ({}):", if quick { "quick" } else { "full" });
    for l in &lines {
        eprintln!(
            "  {:24} {:>10.1} us/iter  {:>12.1} elem/s",
            l.name,
            l.per_iter_us(),
            l.throughput()
        );
    }
    for (name, value) in &indices {
        eprintln!("  {name:24} {value:>10.3}x");
    }
    eprintln!("report written to {out_path}");

    if opts.has("--json") {
        print!("{rendered}");
    }

    if let Some(baseline_path) = opts.get("--check") {
        let gated = check_against_baseline(baseline_path, &indices, tolerance, quick, threads, hw)?;
        eprintln!(
            "check against {baseline_path}: OK ({gated} indices gated, tolerance {:.0}%)",
            tolerance * 100.0
        );
    }
    Ok(())
}

/// Indices that measure **thread scaling**: their value is a property of
/// the `threads` setting and the machine's core count as much as of the
/// code. Comparing them across different `--threads` settings gates on an
/// apples-to-oranges number, so `--check` skips them — with a notice
/// naming each skipped index and why — when the baseline's recorded
/// `threads` differs from this run's. A differing **core** count alone
/// only draws a notice: the gate is one-directional (it fails only on
/// regression), so a baseline recorded at `--threads 2` on a small box
/// still gates a bigger runner at `--threads 2`, where the speedup can
/// only come out higher. `shard_merge_efficiency` belongs here too: its
/// numerator (the N-thread campaign) scales with cores while its
/// denominator is partly serial (ordered NDJSON writes + merge scan), so
/// the ratio itself is a function of the parallelism settings.
const THREAD_SCALING_INDICES: &[&str] =
    &["campaign_parallel_speedup", "shard_merge_efficiency"];

/// What a baseline comparison concluded, before any of it is printed:
/// the notices to surface (skips with their reason, setting mismatches),
/// the regression lines, and how many indices were actually compared.
/// Separated from I/O so the skip/compare policy is unit-testable on
/// synthetic baseline documents.
#[derive(Debug)]
struct CheckOutcome {
    notices: Vec<String>,
    regressions: Vec<String>,
    compared: usize,
}

/// Compares the dimensionless indices of this run against the baseline
/// report in `text` (diagnostics cite it as `label`). A baseline index
/// with no counterpart in the current run is an error — a renamed index
/// must not turn the gate into a vacuous pass. Mismatched `quick`
/// settings produce a notice (the comparison still runs — the indices
/// are dimensionless, but workload sizes affect their noise);
/// [`THREAD_SCALING_INDICES`] are skipped with a per-index notice when
/// the recorded `threads` differs, and compared with a notice when only
/// the core count differs.
fn compare_indices(
    text: &str,
    label: &str,
    indices: &[(&'static str, f64)],
    tolerance: f64,
    quick: bool,
    threads: usize,
    cores: usize,
) -> Result<CheckOutcome, String> {
    let baseline = parse(text).map_err(|e| format!("baseline {label} does not parse: {e}"))?;
    if baseline.get("schema").and_then(JsonValue::as_str) != Some("repwf-bench/v1") {
        return Err(format!("baseline {label} has an unknown schema"));
    }
    let mut notices = Vec::new();
    if baseline.get("quick") != Some(&JsonValue::Bool(quick)) {
        notices.push(format!(
            "warning: baseline {label} was recorded with quick={}, this run has quick={quick}",
            matches!(baseline.get("quick"), Some(JsonValue::Bool(true)))
        ));
    }
    let baseline_threads = baseline.get("threads").and_then(JsonValue::as_f64).map(|x| x as usize);
    let baseline_cores = baseline.get("cores").and_then(JsonValue::as_f64).map(|x| x as usize);
    if baseline_threads.is_some_and(|t| t != threads) {
        notices.push(format!(
            "warning: baseline {label} used {} campaign threads, this run uses {threads}",
            baseline_threads.unwrap_or(0),
        ));
    }
    let baseline_indices = baseline
        .get("indices")
        .and_then(JsonValue::as_arr)
        .ok_or_else(|| format!("baseline {label} has no indices array"))?;

    let mut regressions = Vec::new();
    let mut compared = 0usize;
    for entry in baseline_indices {
        let name = entry
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("baseline {label}: index entry without a name"))?;
        let old = entry
            .get("value")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("baseline {label}: index {name} has no value"))?;
        if THREAD_SCALING_INDICES.contains(&name) {
            let threads_differ = baseline_threads.is_some_and(|t| t != threads);
            let cores_differ = baseline_cores.is_some_and(|c| c != cores);
            if threads_differ {
                // Not comparable at all across --threads settings: skip,
                // naming the index and the reason.
                notices.push(format!(
                    "notice: skipping thread-scaling index {name}: baseline recorded at \
                     threads={}, this run at threads={threads} — regenerate {label} with \
                     --threads {threads} to gate it",
                    baseline_threads.map_or("?".to_string(), |t| t.to_string()),
                ));
                continue;
            }
            if cores_differ {
                // Same --threads on different hardware: the one-directional
                // gate still applies (more cores can only raise the
                // speedup), but say so rather than compare silently.
                notices.push(format!(
                    "notice: comparing thread-scaling index {name} across core counts \
                     (baseline cores={}, this run cores={cores}); the gate fails only on \
                     regression",
                    baseline_cores.map_or("unrecorded".to_string(), |c| c.to_string()),
                ));
            }
        }
        let Some(&(_, new)) = indices.iter().find(|(n, _)| *n == name) else {
            return Err(format!(
                "baseline index {name} is not produced by this bench build — \
                 regenerate {label} (the gate must not pass vacuously)"
            ));
        };
        compared += 1;
        if new < old * (1.0 - tolerance) {
            // One line per regressed index with both values: a failing
            // gate must be diagnosable from the message alone.
            regressions.push(format!(
                "{name}: current {new:.3}x vs baseline {old:.3}x ({:+.1}%)",
                100.0 * (new - old) / old
            ));
        }
    }
    if compared == 0 {
        return Err(format!("baseline {label} contains no comparable indices"));
    }
    Ok(CheckOutcome { notices, regressions, compared })
}

/// [`compare_indices`] against a baseline file: surfaces every notice on
/// stderr (skips included, even when the check then fails), and errors on
/// any regression beyond `tolerance`. Returns how many indices were
/// actually gated.
fn check_against_baseline(
    baseline_path: &str,
    indices: &[(&'static str, f64)],
    tolerance: f64,
    quick: bool,
    threads: usize,
    cores: usize,
) -> Result<usize, String> {
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline {baseline_path}: {e}"))?;
    let outcome =
        compare_indices(&text, baseline_path, indices, tolerance, quick, threads, cores)?;
    for notice in &outcome.notices {
        eprintln!("{notice}");
    }
    if outcome.regressions.is_empty() {
        Ok(outcome.compared)
    } else {
        Err(format!(
            "performance regression beyond {:.0}% tolerance:\n  {}",
            tolerance * 100.0,
            outcome.regressions.join("\n  ")
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic baseline document with the given parallelism settings
    /// and index values.
    fn baseline(threads: usize, cores: usize, indices: &[(&str, f64)]) -> String {
        let entries: Vec<String> = indices
            .iter()
            .map(|(n, v)| format!("{{\"name\": \"{n}\", \"value\": {v}}}"))
            .collect();
        format!(
            "{{\"schema\": \"repwf-bench/v1\", \"quick\": true, \"threads\": {threads}, \
             \"cores\": {cores}, \"benchmarks\": [], \"indices\": [{}]}}",
            entries.join(", ")
        )
    }

    #[test]
    fn thread_mismatch_skips_scaling_indices_by_name_with_the_reason() {
        // Baseline at threads=2, run at threads=1: both thread-scaling
        // indices skip (absurd baseline values must NOT fail the gate),
        // the plain index still gates, and each skip notice names the
        // index, both settings and the regeneration command.
        let text = baseline(
            2,
            4,
            &[
                ("campaign_parallel_speedup", 10_000.0),
                ("shard_merge_efficiency", 10_000.0),
                ("warm_start_speedup", 1.0),
            ],
        );
        let current = [
            ("campaign_parallel_speedup", 1.0),
            ("shard_merge_efficiency", 0.9),
            ("warm_start_speedup", 1.05),
        ];
        let out = compare_indices(&text, "B.json", &current, 0.3, true, 1, 4).unwrap();
        assert_eq!(out.compared, 1, "only the non-scaling index is gated");
        assert!(out.regressions.is_empty(), "{:?}", out.regressions);
        for name in ["campaign_parallel_speedup", "shard_merge_efficiency"] {
            let notice = out
                .notices
                .iter()
                .find(|n| n.contains(&format!("skipping thread-scaling index {name}")))
                .unwrap_or_else(|| panic!("no skip notice for {name}: {:?}", out.notices));
            assert!(notice.contains("threads=2"), "{notice}");
            assert!(notice.contains("threads=1"), "{notice}");
            assert!(notice.contains("--threads 1"), "{notice}");
        }
    }

    #[test]
    fn core_mismatch_alone_compares_scaling_indices_with_a_notice() {
        // Same --threads on different hardware: the one-directional gate
        // still catches a real regression — a 1-core baseline recorded at
        // --threads 2 gates a 2-core runner instead of being skipped.
        let text = baseline(2, 1, &[("campaign_parallel_speedup", 1.0)]);
        let improved = [("campaign_parallel_speedup", 1.8)];
        let out = compare_indices(&text, "B.json", &improved, 0.3, true, 2, 2).unwrap();
        assert_eq!(out.compared, 1, "core mismatch must not skip");
        assert!(out.regressions.is_empty());
        assert!(
            out.notices.iter().any(|n| n.contains(
                "comparing thread-scaling index campaign_parallel_speedup across core counts"
            )),
            "{:?}",
            out.notices
        );

        let regressed = [("campaign_parallel_speedup", 0.5)];
        let out = compare_indices(&text, "B.json", &regressed, 0.3, true, 2, 2).unwrap();
        assert_eq!(out.regressions.len(), 1);
        assert!(out.regressions[0].contains("campaign_parallel_speedup"), "{:?}", out.regressions);
    }

    #[test]
    fn matched_settings_gate_everything_and_name_regressions() {
        let text = baseline(
            2,
            1,
            &[("campaign_batched_speedup", 2.0), ("engine_reuse_speedup", 3.0)],
        );
        let current = [("campaign_batched_speedup", 1.0), ("engine_reuse_speedup", 3.1)];
        let out = compare_indices(&text, "B.json", &current, 0.3, true, 2, 1).unwrap();
        assert_eq!(out.compared, 2);
        assert_eq!(out.regressions.len(), 1);
        assert!(
            out.regressions[0].contains("campaign_batched_speedup: current 1.000x vs baseline 2.000x"),
            "{:?}",
            out.regressions
        );
        assert!(out.notices.is_empty(), "{:?}", out.notices);
    }

    #[test]
    fn renamed_and_empty_baselines_cannot_pass_vacuously() {
        let text = baseline(1, 1, &[("no_such_index", 1.0)]);
        let err = compare_indices(&text, "B.json", &[("real", 1.0)], 0.3, true, 1, 1).unwrap_err();
        assert!(err.contains("no_such_index"), "{err}");

        let text = baseline(2, 1, &[("campaign_parallel_speedup", 1.0)]);
        let err = compare_indices(&text, "B.json", &[], 0.3, true, 1, 1).unwrap_err();
        assert!(err.contains("no comparable indices"), "{err}");
    }
}
