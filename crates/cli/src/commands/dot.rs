//! `repwf dot` — the paper's TPN figures as Graphviz DOT, plus the
//! workflow precedence DAG itself.

use crate::opts::{load_instance, Opts};
use repwf_core::fixtures::{example_a, example_b};
use repwf_core::model::{CommModel, Instance};
use repwf_core::tpn_build::{build_tpn, comm_sub_tpn, BuildOptions};
use std::fmt::Write as _;
use tpn::dot::{to_dot, DotOptions};

const HELP: &str = "\
repwf dot — emit a timed-Petri-net figure as Graphviz DOT

USAGE: repwf dot <WHICH> [-o PATH]

  overlap           Fig. 4: Example A, overlap one-port TPN
  strict            Fig. 5b: Example A, strict one-port TPN
  overlap-critical  overlap net with the critical circuit highlighted
  strict-critical   Fig. 8: strict net with the critical circuit highlighted
  subtpn-a-f1       Fig. 9: sub-TPN of the F1 transfers of Example A
  subtpn-b-f0       Fig. 10: sub-TPN of the F0 transfers of Example B
  workflow          the instance's precedence DAG: stages (with replica
                    counts and processors) and file edges — takes
                    --example a|b|c, --file PATH or --workflow PATH

OPTIONS:
  -o PATH            write to a file instead of stdout
  --example a|b|c    instance for `workflow` (default: a)
  --file PATH        instance in the repwf text format (for `workflow`)
  --workflow PATH    series-parallel workflow JSON (for `workflow`)
";

/// Renders the workflow precedence DAG: one box per stage annotated with
/// its work, replica count and processors; one edge per file annotated
/// with its size.
fn workflow_dag_dot(inst: &Instance) -> String {
    let wf = &inst.pipeline;
    let mut s = String::from("digraph workflow {\n  rankdir=LR;\n  node [shape=box];\n");
    for i in 0..wf.num_stages() {
        let procs = inst.mapping.procs(i);
        let plist: Vec<String> = procs.iter().map(|u| format!("P{u}")).collect();
        let _ = writeln!(
            s,
            "  S{i} [label=\"S{i}\\nw={}\\n×{} on {}\"];",
            wf.work(i),
            procs.len(),
            plist.join(",")
        );
    }
    for e in 0..wf.num_edges() {
        let (src, dst) = wf.edge(e);
        let _ = writeln!(s, "  S{src} -> S{dst} [label=\"F{e} δ={}\"];", wf.file(e));
    }
    s.push_str("}\n");
    s
}

pub fn run(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args, &["-o", "--example", "--file", "--workflow"], &["--help"])?;
    if opts.has("--help") {
        print!("{HELP}");
        return Ok(());
    }
    let which = opts.positional().first().map(String::as_str).unwrap_or("overlap");
    let build_opts = BuildOptions::default();

    if which == "workflow" {
        let inst = load_instance(&opts)?;
        let dot = workflow_dag_dot(&inst);
        match opts.get("-o") {
            Some(path) => {
                std::fs::write(path, dot).map_err(|e| format!("cannot write {path}: {e}"))?;
                eprintln!("wrote {path}");
            }
            None => print!("{dot}"),
        }
        return Ok(());
    }

    let (net, highlight, title) = match which {
        "overlap" => {
            let built = build_tpn(&example_a(), CommModel::Overlap, &build_opts)
                .map_err(|e| e.to_string())?;
            (built.net, Vec::new(), "Fig. 4: Example A, overlap one-port TPN".to_string())
        }
        "strict" => {
            let built = build_tpn(&example_a(), CommModel::Strict, &build_opts)
                .map_err(|e| e.to_string())?;
            (built.net, Vec::new(), "Fig. 5b: Example A, strict one-port TPN".to_string())
        }
        "overlap-critical" | "strict-critical" => {
            let model = if which.starts_with("overlap") {
                CommModel::Overlap
            } else {
                CommModel::Strict
            };
            let built =
                build_tpn(&example_a(), model, &build_opts).map_err(|e| e.to_string())?;
            let sol = tpn::analysis::period(&built.net)
                .map_err(|e| e.to_string())?
                .ok_or("net has no circuit")?;
            eprintln!(
                "critical circuit: {} transitions, {} tokens, period {:.4} ({:.4} per data set)",
                sol.critical.len(),
                sol.tokens,
                sol.period,
                sol.period / built.rows as f64
            );
            (built.net, sol.critical, format!("Example A critical circuit ({which})"))
        }
        "subtpn-a-f1" => {
            let sub =
                comm_sub_tpn(&example_a(), 1, &build_opts).map_err(|e| e.to_string())?;
            (sub.net, Vec::new(), "Fig. 9: sub-TPN of F1 (Example A)".to_string())
        }
        "subtpn-b-f0" => {
            let sub =
                comm_sub_tpn(&example_b(), 0, &build_opts).map_err(|e| e.to_string())?;
            (sub.net, Vec::new(), "Fig. 10: sub-TPN of F0 (Example B)".to_string())
        }
        other => return Err(format!("unknown figure {other:?} (see repwf dot --help)")),
    };

    let dot = to_dot(&net, &DotOptions { highlight, title, left_to_right: true });
    match opts.get("-o") {
        Some(path) => {
            std::fs::write(path, dot).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("wrote {path}");
        }
        None => print!("{dot}"),
    }
    Ok(())
}
