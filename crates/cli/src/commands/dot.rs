//! `repwf dot` — the paper's TPN figures as Graphviz DOT.

use crate::opts::Opts;
use repwf_core::fixtures::{example_a, example_b};
use repwf_core::model::CommModel;
use repwf_core::tpn_build::{build_tpn, comm_sub_tpn, BuildOptions};
use tpn::dot::{to_dot, DotOptions};

const HELP: &str = "\
repwf dot — emit a timed-Petri-net figure as Graphviz DOT

USAGE: repwf dot <WHICH> [-o PATH]

  overlap           Fig. 4: Example A, overlap one-port TPN
  strict            Fig. 5b: Example A, strict one-port TPN
  overlap-critical  overlap net with the critical circuit highlighted
  strict-critical   Fig. 8: strict net with the critical circuit highlighted
  subtpn-a-f1       Fig. 9: sub-TPN of the F1 transfers of Example A
  subtpn-b-f0       Fig. 10: sub-TPN of the F0 transfers of Example B

OPTIONS:
  -o PATH   write to a file instead of stdout
";

pub fn run(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args, &["-o"], &["--help"])?;
    if opts.has("--help") {
        print!("{HELP}");
        return Ok(());
    }
    let which = opts.positional().first().map(String::as_str).unwrap_or("overlap");
    let build_opts = BuildOptions::default();

    let (net, highlight, title) = match which {
        "overlap" => {
            let built = build_tpn(&example_a(), CommModel::Overlap, &build_opts)
                .map_err(|e| e.to_string())?;
            (built.net, Vec::new(), "Fig. 4: Example A, overlap one-port TPN".to_string())
        }
        "strict" => {
            let built = build_tpn(&example_a(), CommModel::Strict, &build_opts)
                .map_err(|e| e.to_string())?;
            (built.net, Vec::new(), "Fig. 5b: Example A, strict one-port TPN".to_string())
        }
        "overlap-critical" | "strict-critical" => {
            let model = if which.starts_with("overlap") {
                CommModel::Overlap
            } else {
                CommModel::Strict
            };
            let built =
                build_tpn(&example_a(), model, &build_opts).map_err(|e| e.to_string())?;
            let sol = tpn::analysis::period(&built.net)
                .map_err(|e| e.to_string())?
                .ok_or("net has no circuit")?;
            eprintln!(
                "critical circuit: {} transitions, {} tokens, period {:.4} ({:.4} per data set)",
                sol.critical.len(),
                sol.tokens,
                sol.period,
                sol.period / built.rows as f64
            );
            (built.net, sol.critical, format!("Example A critical circuit ({which})"))
        }
        "subtpn-a-f1" => {
            let sub =
                comm_sub_tpn(&example_a(), 1, &build_opts).map_err(|e| e.to_string())?;
            (sub.net, Vec::new(), "Fig. 9: sub-TPN of F1 (Example A)".to_string())
        }
        "subtpn-b-f0" => {
            let sub =
                comm_sub_tpn(&example_b(), 0, &build_opts).map_err(|e| e.to_string())?;
            (sub.net, Vec::new(), "Fig. 10: sub-TPN of F0 (Example B)".to_string())
        }
        other => return Err(format!("unknown figure {other:?} (see repwf dot --help)")),
    };

    let dot = to_dot(&net, &DotOptions { highlight, title, left_to_right: true });
    match opts.get("-o") {
        Some(path) => {
            std::fs::write(path, dot).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("wrote {path}");
        }
        None => print!("{dot}"),
    }
    Ok(())
}
