//! `repwf dist` — inspect a supervised campaign directory.
//!
//! `repwf dist status --dir D` scans the directory's durable files —
//! the pinned campaign, unit files, leases, done and split markers —
//! and reports each claim unit's standing without claiming or changing
//! anything. Safe to run while workers are live.

use crate::json::Json;
use repwf_dist::status;

const HELP: &str = "\
repwf dist — inspect distributed campaign state

USAGE: repwf dist status --dir PATH [--lease-timeout S] [--json]

Reports each claim unit of a supervised campaign directory (see
`repwf campaign --supervise`): durable records vs effective length,
completion, and the current lease (owner, attempt, heartbeat age,
failed flag). Leased units report throughput (records/sec, derived
from checkpoint growth between heartbeats) when the owner has
published progress, and are flagged STALE once the heartbeat age
exceeds --lease-timeout. Read-only; safe while workers are running.

OPTIONS:
  --dir PATH         the shared campaign directory
  --lease-timeout S  heartbeat age (seconds) past which a lease is
                     reported STALE (default 10, matching the
                     supervisor's takeover timeout)
  --json             structured output
";

pub fn run(args: &[String]) -> Result<(), String> {
    let opts =
        crate::opts::Opts::parse(args, &["--dir", "--lease-timeout"], &["--json", "--help"])?;
    if opts.has("--help") {
        print!("{HELP}");
        return Ok(());
    }
    match opts.positional() {
        [sub] if sub == "status" => {}
        [] => return Err(format!("missing subcommand\n\n{HELP}")),
        [other, ..] => return Err(format!("unknown subcommand `{other}`\n\n{HELP}")),
    }
    let dir = opts.get("--dir").ok_or("dist status needs --dir PATH")?;
    let timeout = opts.get_or("--lease-timeout", 10.0f64)?;
    if !timeout.is_finite() || timeout <= 0.0 {
        return Err("--lease-timeout must be positive seconds".to_string());
    }
    let stale_after = std::time::Duration::from_secs_f64(timeout);
    let status = status(std::path::Path::new(dir)).map_err(|e| e.to_string())?;

    if opts.has("--json") {
        let units: Vec<Json> = status
            .unit_status
            .iter()
            .map(|u| {
                let mut fields = vec![
                    ("offset", Json::UInt(u.unit.offset as u128)),
                    ("declared", Json::UInt(u.unit.declared as u128)),
                    ("effective", Json::UInt(u.unit.eff as u128)),
                    ("records", Json::UInt(u.records as u128)),
                    ("done", Json::Bool(u.unit.done.is_some())),
                    ("file_complete", Json::Bool(u.file_complete)),
                ];
                if let Some(lease) = &u.lease {
                    let mut lease_fields = vec![
                        ("owner", Json::str(&lease.owner)),
                        ("attempt", Json::UInt(u128::from(lease.attempt))),
                        ("failed", Json::Bool(lease.failed)),
                        ("age_ms", Json::UInt(lease.age.as_millis())),
                        ("stale", Json::Bool(lease.age >= stale_after)),
                    ];
                    if let Some(rate) = lease.progress.as_ref().and_then(|p| p.records_per_sec()) {
                        lease_fields.push(("records_per_sec", Json::Num(rate)));
                    }
                    fields.push(("lease", Json::Obj(lease_fields)));
                }
                Json::Obj(fields)
            })
            .collect();
        let doc = Json::Obj(vec![
            ("count", Json::UInt(status.spec.count as u128)),
            ("seed", Json::UInt(u128::from(status.spec.seed_base))),
            ("units", Json::UInt(status.units as u128)),
            ("complete", Json::Bool(status.complete)),
            ("unit_status", Json::Arr(units)),
        ]);
        print!("{}", doc.to_string_pretty());
        return Ok(());
    }

    println!(
        "campaign: {} experiments from seed {}, {} initial units",
        status.spec.count, status.spec.seed_base, status.units
    );
    for u in &status.unit_status {
        let state = if u.unit.done.is_some() {
            "done".to_string()
        } else if let Some(lease) = &u.lease {
            let rate = lease
                .progress
                .as_ref()
                .and_then(repwf_dist::LeaseProgress::records_per_sec)
                .map_or(String::new(), |r| format!(", {r:.1} rec/s"));
            let stale = if !lease.failed && lease.age >= stale_after { " STALE" } else { "" };
            format!(
                "{} by {} (attempt {}, heartbeat {:.1}s ago{rate}){stale}",
                if lease.failed { "failed" } else { "claimed" },
                lease.owner,
                lease.attempt,
                lease.age.as_secs_f64(),
            )
        } else {
            "unclaimed".to_string()
        };
        println!(
            "  r{}-{}: {}/{} records, {}",
            u.unit.offset, u.unit.declared, u.records, u.unit.eff, state
        );
    }
    let durable: usize = status.unit_status.iter().map(|u| u.records.min(u.unit.eff)).sum();
    println!(
        "progress: {durable}/{} records durable ({})",
        status.spec.count,
        repwf_gen::campaign::format_pct(durable, status.spec.count)
    );
    println!("status: {}", if status.complete { "COMPLETE" } else { "in progress" });
    Ok(())
}
