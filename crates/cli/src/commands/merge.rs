//! `repwf merge` — recombine campaign shard files exactly.
//!
//! The merged `--json` document is **byte-identical** to what the
//! unsharded `repwf campaign --json` prints for the same campaign
//! parameters, at any shard and thread count: both commands render
//! through [`repwf_dist::report::campaign_doc`], the outcomes travel as
//! exact f64 bit patterns, and the aggregates recombine through the
//! associative [`repwf_gen::CampaignAccum`]. Inconsistent inputs —
//! mismatched manifests, missing/duplicate shards, torn or tampered
//! files — are diagnosed and exit non-zero; a merge never silently
//! accepts partial data.

use crate::commands::campaign::print_summary;
use repwf_dist::merge_paths;
use repwf_dist::report::campaign_doc;

const HELP: &str = "\
repwf merge — recombine campaign shard files (from `repwf campaign --shard`)

USAGE: repwf merge <shard.ndjson>... [OPTIONS]

Validates that the shards pin the same campaign (config, model, cap, seed
range) and tile its seed space exactly, then merges. The --json output is
byte-identical to the unsharded `repwf campaign --json` run.

OPTIONS:
  --csv PATH         write merged per-experiment outcomes as CSV
  --hist             print an ASCII histogram of the positive gaps
  --json             structured output (byte-identical to the unsharded run)
";

pub fn run(args: &[String]) -> Result<(), String> {
    let opts = crate::opts::Opts::parse(args, &["--csv"], &["--json", "--hist", "--help"])?;
    if opts.has("--help") {
        print!("{HELP}");
        return Ok(());
    }
    let shards = opts.positional();
    if shards.is_empty() {
        return Err(format!("no shard files given\n\n{HELP}"));
    }
    let merged = merge_paths(shards).map_err(|e| e.to_string())?;

    if let Some(path) = opts.get("--csv") {
        std::fs::write(path, repwf_gen::stats::outcomes_csv(&merged.result))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("CSV written to {path}");
    }

    if opts.has("--json") {
        print!("{}", campaign_doc(&merged.spec, &merged.result).to_string_pretty());
    } else {
        eprintln!("merged {} shards ({} experiments)", merged.num_shards, merged.accum.done);
        print_summary(&merged.spec, &merged.result, opts.has("--hist"));
    }
    Ok(())
}
