//! `repwf merge` — recombine campaign shard files exactly.
//!
//! The merged `--json` document is **byte-identical** to what the
//! unsharded `repwf campaign --json` prints for the same campaign
//! parameters, at any shard and thread count: both commands render
//! through [`repwf_dist::report::campaign_doc`], the outcomes travel as
//! exact f64 bit patterns, and the aggregates recombine through the
//! associative [`repwf_gen::CampaignAccum`]. Inconsistent inputs —
//! mismatched manifests, missing/duplicate shards, torn or tampered
//! files — are diagnosed (with the exact uncovered seed ranges and a
//! ready-to-run command per gap) and exit non-zero; a merge never
//! silently accepts partial data. `--allow-partial` opts into degraded
//! merging: incomplete shards contribute their validated checkpoint
//! prefix, and the output carries an explicit `partial` marker plus the
//! missing seed ranges — corruption is still refused.

use crate::commands::campaign::print_summary;
use repwf_dist::report::{campaign_doc, campaign_doc_partial};
use repwf_dist::{merge_paths, merge_paths_partial};

const HELP: &str = "\
repwf merge — recombine campaign shard files (from `repwf campaign --shard`,
`--range` or `--supervise`)

USAGE: repwf merge <shard.ndjson>... [OPTIONS]

Validates that the shards pin the same campaign (config, model, cap, seed
range) and tile its seed space exactly, then merges. The --json output is
byte-identical to the unsharded `repwf campaign --json` run. A failed
coverage check names the exact uncovered seed ranges and the command that
fills each gap.

OPTIONS:
  --csv PATH         write merged per-experiment outcomes as CSV
  --hist             print an ASCII histogram of the positive gaps
  --json             structured output (byte-identical to the unsharded run)
  --allow-partial    merge despite gaps/incomplete shards: keep every
                     validated record, report the missing seed ranges
                     explicitly (the JSON gains \"partial\": true and
                     \"missing_ranges\"); corrupt files are still refused
";

pub fn run(args: &[String]) -> Result<(), String> {
    let opts = crate::opts::Opts::parse(
        args,
        &["--csv"],
        &["--json", "--hist", "--help", "--allow-partial"],
    )?;
    if opts.has("--help") {
        print!("{HELP}");
        return Ok(());
    }
    let shards = opts.positional();
    if shards.is_empty() {
        return Err(format!("no shard files given\n\n{HELP}"));
    }
    let (merged, missing) = if opts.has("--allow-partial") {
        let report = merge_paths_partial(shards).map_err(|e| e.to_string())?;
        (report.merged, report.missing)
    } else {
        (merge_paths(shards).map_err(|e| e.to_string())?, Vec::new())
    };

    if let Some(path) = opts.get("--csv") {
        std::fs::write(path, repwf_gen::stats::outcomes_csv(&merged.result))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("CSV written to {path}");
    }

    for &(start, end) in &missing {
        eprintln!(
            "warning: seeds {start}..{end} missing from the merge ({} experiments)",
            end - start
        );
    }
    if opts.has("--json") {
        // A gap-free --allow-partial merge prints the plain document, so
        // it stays byte-identical to the unsharded run; only an actual
        // gap switches to the partial document.
        if missing.is_empty() {
            print!("{}", campaign_doc(&merged.spec, &merged.result).to_string_pretty());
        } else {
            print!(
                "{}",
                campaign_doc_partial(&merged.spec, &merged.result, &missing)
                    .to_string_pretty()
            );
        }
    } else {
        eprintln!(
            "merged {} shards: {}{}",
            merged.num_shards,
            merged.accum.progress(merged.spec.count).summary(),
            if missing.is_empty() { "" } else { " — PARTIAL" }
        );
        print_summary(&merged.spec, &merged.result, opts.has("--hist"));
    }
    Ok(())
}
