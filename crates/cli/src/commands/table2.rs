//! `repwf table2` — the paper's Table 2 experiment families.

use crate::json::Json;
use crate::opts::{model_name, parse_threads, Opts};
use repwf_gen::table2::{format_results, run_row_with, table2_rows, to_csv, RowResult};
use std::io::Write as _;

const HELP: &str = "\
repwf table2 — reproduce Table 2 (count of mappings without critical resource)

OPTIONS:
  --scale F          fraction of the paper's 5152 experiments (default: 0.1)
  --full             shorthand for --scale 1
  --threads K        worker threads (default: hardware)
  --seed S           base seed (default: 20090301)
  --cap N            TPN transition cap before simulator fallback (default: 400000)
  --csv PATH         also write the rows as CSV
  --json             structured output (identical at any --threads)
";

pub fn run(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(
        args,
        &["--scale", "--threads", "--seed", "--cap", "--csv"],
        &["--full", "--json", "--help"],
    )?;
    if opts.has("--help") {
        print!("{HELP}");
        return Ok(());
    }
    let scale = if opts.has("--full") { 1.0 } else { opts.get_or("--scale", 0.1f64)? };
    if !(scale > 0.0 && scale <= 1.0) {
        return Err(format!("--scale must be in (0, 1], got {scale}"));
    }
    let threads = parse_threads(&opts)?;
    let seed = opts.get_or("--seed", 20_090_301u64)?;
    let cap = opts.get_or("--cap", 400_000usize)?;

    let rows = table2_rows();
    let mut results = Vec::with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        let t0 = std::time::Instant::now();
        let res = run_row_with(
            row,
            scale,
            seed + 10_000_000 * i as u64,
            threads,
            cap,
            Some(&|p| {
                let _ = write!(
                    std::io::stderr().lock(),
                    "\rrow {}/{}: {}/{} experiments",
                    i + 1,
                    rows.len(),
                    p.done,
                    p.total
                );
            }),
        );
        eprintln!(
            "\rrow {}/{}: {} experiments in {:.1}s ({} no-critical, {} simulated)",
            i + 1,
            rows.len(),
            res.total,
            t0.elapsed().as_secs_f64(),
            res.no_critical,
            res.simulated
        );
        results.push(res);
    }

    if let Some(path) = opts.get("--csv") {
        std::fs::write(path, to_csv(&results))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("CSV written to {path}");
    }

    if opts.has("--json") {
        let rows_json: Vec<Json> = results.iter().map(row_json).collect();
        let total: usize = results.iter().map(|r| r.total).sum();
        let doc = Json::Obj(vec![
            ("scale", Json::Num(scale)),
            ("seed", Json::UInt(u128::from(seed))),
            ("total_experiments", Json::UInt(total as u128)),
            ("rows", Json::Arr(rows_json)),
        ]);
        print!("{}", doc.to_string_pretty());
    } else {
        println!("\nTable 2 (scale {scale}):\n");
        print!("{}", format_results(&results));
        let total: usize = results.iter().map(|r| r.total).sum();
        let sim: usize = results.iter().map(|r| r.simulated).sum();
        println!("\ntotal experiments: {total} ({sim} resolved by simulation fallback)");
    }
    Ok(())
}

fn row_json(r: &RowResult) -> Json {
    let sizes: Vec<Json> = r
        .row
        .sizes
        .iter()
        .map(|&(s, p)| {
            Json::Obj(vec![
                ("stages", Json::UInt(s as u128)),
                ("procs", Json::UInt(p as u128)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("model", Json::str(model_name(r.row.model))),
        ("sizes", Json::Arr(sizes)),
        (
            "comp",
            Json::Obj(vec![("lo", Json::Num(r.row.comp.lo)), ("hi", Json::Num(r.row.comp.hi))]),
        ),
        (
            "comm",
            Json::Obj(vec![("lo", Json::Num(r.row.comm.lo)), ("hi", Json::Num(r.row.comm.hi))]),
        ),
        ("total", Json::UInt(r.total as u128)),
        ("no_critical", Json::UInt(r.no_critical as u128)),
        ("max_gap_pct", Json::Num(r.max_gap_pct)),
        ("simulated", Json::UInt(r.simulated as u128)),
        ("paper_no_critical", Json::UInt(r.row.paper_no_critical as u128)),
        ("paper_total", Json::UInt(r.row.paper_count as u128)),
    ])
}
