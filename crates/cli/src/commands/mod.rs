//! One module per `repwf` subcommand.

pub mod bench;
pub mod campaign;
pub mod dist;
pub mod dot;
pub mod gantt;
pub mod map;
pub mod merge;
pub mod period;
pub mod simulate;
pub mod table2;
pub mod trace;
