//! End-to-end tests of the `repwf` binary: paper-fixture agreement and
//! thread-count determinism (the PR's acceptance criteria).

use std::process::Command;

fn repwf(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_repwf"))
        .args(args)
        .output()
        .expect("spawn repwf");
    (
        String::from_utf8(out.stdout).expect("utf8 stdout"),
        String::from_utf8(out.stderr).expect("utf8 stderr"),
        out.status.success(),
    )
}

/// Extracts the first `"key": <number>` field of a JSON dump.
fn json_num(doc: &str, key: &str) -> f64 {
    let tag = format!("\"{key}\": ");
    let at = doc.find(&tag).unwrap_or_else(|| panic!("no {key} in:\n{doc}"));
    let rest = &doc[at + tag.len()..];
    let end = rest.find([',', '\n', '}']).expect("number terminator");
    rest[..end].trim().parse().unwrap_or_else(|e| panic!("bad number for {key}: {e}"))
}

#[test]
fn period_matches_paper_example_a() {
    // Overlap one-port: period 189, critical resource = out-port of P0.
    let (doc, _, ok) = repwf(&["period", "--example", "a", "--model", "overlap", "--json"]);
    assert!(ok);
    assert!((json_num(&doc, "period") - 189.0).abs() < 1e-6, "{doc}");
    assert!(doc.contains("\"has_critical_resource\": true"), "{doc}");

    // Strict one-port: M_ct = 1295/6 ≈ 215.83 strictly below P̂ ≈ 230.7.
    let (doc, _, ok) = repwf(&["period", "--example", "a", "--model", "strict", "--json"]);
    assert!(ok);
    assert!((json_num(&doc, "mct") - 1295.0 / 6.0).abs() < 1e-6, "{doc}");
    assert!((json_num(&doc, "period") - 230.7).abs() < 0.06, "{doc}");
    assert!(doc.contains("\"has_critical_resource\": false"), "{doc}");
}

#[test]
fn simulate_agrees_with_analysis_on_example_a() {
    let (doc, _, ok) =
        repwf(&["simulate", "--example", "a", "--model", "overlap", "--json"]);
    assert!(ok);
    assert!((json_num(&doc, "period") - 189.0).abs() < 1e-3, "{doc}");
}

#[test]
fn campaign_json_is_identical_at_any_thread_count() {
    let base = [
        "campaign", "--stages", "2", "--procs", "6", "--comm", "5..10", "--count", "16",
        "--seed", "77", "--model", "strict", "--json",
    ];
    let (one, _, ok1) = repwf(&[&base[..], &["--threads", "1"]].concat());
    assert!(ok1);
    let many = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let many = many.to_string();
    let (n, _, okn) = repwf(&[&base[..], &["--threads", &many]].concat());
    assert!(okn);
    assert_eq!(one, n, "campaign output must not depend on --threads");
    assert!(one.contains("\"outcomes\""));
}

#[test]
fn unknown_command_fails_with_usage() {
    let (_, err, ok) = repwf(&["frobnicate"]);
    assert!(!ok);
    assert!(err.contains("unknown command"), "{err}");
}
