//! End-to-end tests of the `repwf` binary: paper-fixture agreement and
//! thread-count determinism (the PR's acceptance criteria).

use std::process::Command;

fn repwf(args: &[&str]) -> (String, String, bool) {
    let (stdout, stderr, code) = repwf_env(args, &[]);
    (stdout, stderr, code == Some(0))
}

/// Runs the binary with extra environment variables, returning the exit
/// code (the chaos tests assert on the dedicated kill code).
fn repwf_env(args: &[&str], env: &[(&str, &str)]) -> (String, String, Option<i32>) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_repwf"));
    cmd.args(args);
    for (k, v) in env {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("spawn repwf");
    (
        String::from_utf8(out.stdout).expect("utf8 stdout"),
        String::from_utf8(out.stderr).expect("utf8 stderr"),
        out.status.code(),
    )
}

/// Extracts the first `"key": <number>` field of a JSON dump.
fn json_num(doc: &str, key: &str) -> f64 {
    let tag = format!("\"{key}\": ");
    let at = doc.find(&tag).unwrap_or_else(|| panic!("no {key} in:\n{doc}"));
    let rest = &doc[at + tag.len()..];
    let end = rest.find([',', '\n', '}']).expect("number terminator");
    rest[..end].trim().parse().unwrap_or_else(|e| panic!("bad number for {key}: {e}"))
}

#[test]
fn period_matches_paper_example_a() {
    // Overlap one-port: period 189, critical resource = out-port of P0.
    let (doc, _, ok) = repwf(&["period", "--example", "a", "--model", "overlap", "--json"]);
    assert!(ok);
    assert!((json_num(&doc, "period") - 189.0).abs() < 1e-6, "{doc}");
    assert!(doc.contains("\"has_critical_resource\": true"), "{doc}");

    // Strict one-port: M_ct = 1295/6 ≈ 215.83 strictly below P̂ ≈ 230.7.
    let (doc, _, ok) = repwf(&["period", "--example", "a", "--model", "strict", "--json"]);
    assert!(ok);
    assert!((json_num(&doc, "mct") - 1295.0 / 6.0).abs() < 1e-6, "{doc}");
    assert!((json_num(&doc, "period") - 230.7).abs() < 0.06, "{doc}");
    assert!(doc.contains("\"has_critical_resource\": false"), "{doc}");
}

#[test]
fn simulate_agrees_with_analysis_on_example_a() {
    let (doc, _, ok) =
        repwf(&["simulate", "--example", "a", "--model", "overlap", "--json"]);
    assert!(ok);
    assert!((json_num(&doc, "period") - 189.0).abs() < 1e-3, "{doc}");
}

#[test]
fn campaign_json_is_identical_at_any_thread_count() {
    let base = [
        "campaign", "--stages", "2", "--procs", "6", "--comm", "5..10", "--count", "16",
        "--seed", "77", "--model", "strict", "--json",
    ];
    let (one, _, ok1) = repwf(&[&base[..], &["--threads", "1"]].concat());
    assert!(ok1);
    let many = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let many = many.to_string();
    let (n, _, okn) = repwf(&[&base[..], &["--threads", &many]].concat());
    assert!(okn);
    assert_eq!(one, n, "campaign output must not depend on --threads");
    assert!(one.contains("\"outcomes\""));
}

#[test]
fn map_certify_json_is_identical_at_any_thread_count() {
    // The exact search's acceptance criterion: `--certify` output —
    // heuristic, exact optimum, search counters, gap — is byte-identical
    // at worker counts {1, 2, 4}.
    let base = ["map", "--example", "a", "--model", "overlap", "--certify", "--json"];
    let (one, _, ok1) = repwf(&[&base[..], &["--threads", "1"]].concat());
    assert!(ok1);
    for threads in ["2", "4"] {
        let (n, _, okn) = repwf(&[&base[..], &["--threads", threads]].concat());
        assert!(okn);
        assert_eq!(one, n, "map --certify output must not depend on --threads");
    }
    assert_eq!(json_num(&one, "gap"), 0.0, "Example A certifies at gap 0");
    assert_eq!(json_num(&one, "period"), 67.0, "free optimization beats the paper mapping");
    assert!(one.contains("\"feasible\": true"));
}

#[test]
fn map_exact_refuses_over_cap_candidates() {
    // Exactness discipline at the CLI surface: a tiny --cap forces a
    // strict-model candidate over the TPN limit, and `map --exact` must
    // fail loudly rather than certify a simulator estimate.
    let (_, err, ok) =
        repwf(&["map", "--example", "a", "--model", "strict", "--exact", "--cap", "2"]);
    assert!(!ok);
    assert!(err.contains("refusing the simulator fallback"), "stderr was: {err}");
}

#[test]
fn sharded_campaign_merges_byte_identical_to_unsharded() {
    // The PR's acceptance criterion: `repwf merge` of an N-shard campaign
    // is byte-identical to the unsharded `repwf campaign --json` output,
    // for N in {1, 3} and threads in {1, 2}.
    let dir = std::env::temp_dir().join(format!("repwf-shard-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let base = [
        "campaign", "--stages", "2", "--procs", "6", "--comm", "5..10", "--count", "17",
        "--seed", "41", "--model", "strict",
    ];
    for threads in ["1", "2"] {
        let (reference, _, ok) =
            repwf(&[&base[..], &["--threads", threads, "--json"]].concat());
        assert!(ok);
        for num_shards in [1usize, 3] {
            let shard_paths: Vec<String> = (0..num_shards)
                .map(|i| {
                    dir.join(format!("t{threads}-n{num_shards}-s{i}.ndjson"))
                        .to_str()
                        .unwrap()
                        .to_string()
                })
                .collect();
            for (i, path) in shard_paths.iter().enumerate() {
                let shard_arg = format!("{i}/{num_shards}");
                let (_, err, ok) = repwf(
                    &[&base[..], &["--threads", threads, "--shard", &shard_arg, "--out", path]]
                        .concat(),
                );
                assert!(ok, "shard {shard_arg}: {err}");
            }
            let mut merge_args = vec!["merge"];
            merge_args.extend(shard_paths.iter().map(String::as_str));
            merge_args.push("--json");
            let (merged, err, ok) = repwf(&merge_args);
            assert!(ok, "{err}");
            assert_eq!(
                merged, reference,
                "threads={threads} shards={num_shards}: merged JSON must be byte-identical"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn killed_shard_resumes_to_the_same_bytes() {
    let dir = std::env::temp_dir().join(format!("repwf-resume-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let shard = dir.join("s0.ndjson");
    let shard_s = shard.to_str().unwrap();
    let args = [
        "campaign", "--stages", "2", "--procs", "6", "--count", "12", "--seed", "5",
        "--model", "strict", "--shard", "0/2", "--out", shard_s,
    ];
    let (_, err, ok) = repwf(&args);
    assert!(ok, "{err}");
    let complete = std::fs::read(&shard).unwrap();

    // Simulate a kill mid-record: drop the last 180 bytes (tears the
    // footer AND the last record, so the resume must recompute at least
    // one experiment), then re-run the identical command.
    std::fs::write(&shard, &complete[..complete.len() - 180]).unwrap();
    let (out, err, ok) = repwf(&[&args[..], &["--json"]].concat());
    assert!(ok, "{err}");
    assert_eq!(std::fs::read(&shard).unwrap(), complete, "resume must converge to same bytes");
    assert!(out.contains("\"resumed\": "), "{out}");
    assert!(!out.contains("\"ran\": 0"), "cut must force recomputation:\n{out}");

    // A third run is a validated no-op.
    let (out, err, ok) = repwf(&[&args[..], &["--json"]].concat());
    assert!(ok, "{err}");
    assert!(out.contains("\"ran\": 0"), "{out}");
    assert_eq!(std::fs::read(&shard).unwrap(), complete);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn merge_diagnoses_inconsistent_shard_sets() {
    let dir = std::env::temp_dir().join(format!("repwf-merge-err-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = |name: &str| dir.join(name).to_str().unwrap().to_string();
    let campaign = |seed: &str, shard: &str, out: &str| {
        let (_, err, ok) = repwf(&[
            "campaign", "--stages", "2", "--procs", "6", "--count", "10", "--seed", seed,
            "--shard", shard, "--out", out,
        ]);
        assert!(ok, "{err}");
    };
    let (s0, s1) = (path("s0.ndjson"), path("s1.ndjson"));
    campaign("3", "0/2", &s0);
    campaign("3", "1/2", &s1);

    // Mismatched manifest: same layout, different campaign seed.
    let foreign = path("foreign.ndjson");
    campaign("4", "1/2", &foreign);
    let (_, err, ok) = repwf(&["merge", &s0, &foreign, "--json"]);
    assert!(!ok, "mismatched manifests must exit non-zero");
    assert!(err.contains("manifest mismatch") && err.contains("seed_base: 3 vs 4"), "{err}");

    // Missing and duplicate shards.
    let (_, err, ok) = repwf(&["merge", &s0, "--json"]);
    assert!(!ok);
    assert!(err.contains("missing shard(s) 1"), "{err}");
    let (_, err, ok) = repwf(&["merge", &s0, &s1, &s1, "--json"]);
    assert!(!ok);
    assert!(err.contains("duplicate shard 1"), "{err}");

    // Resuming under different parameters must refuse, not overwrite.
    let (_, err, ok) = repwf(&[
        "campaign", "--stages", "2", "--procs", "6", "--count", "10", "--seed", "9",
        "--shard", "0/2", "--out", &s0,
    ]);
    assert!(!ok, "foreign resume must exit non-zero");
    assert!(err.contains("manifest mismatch"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bench_emits_parseable_report_and_check_passes_against_self() {
    let dir = std::env::temp_dir().join(format!("repwf-bench-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let out = dir.join("BENCH_period.json");
    let out_s = out.to_str().unwrap();

    // `--threads` must be plumbed into the campaign kernel AND recorded in
    // the report, so a multi-core box can record a real
    // `campaign_parallel_speedup` baseline that `--check` can compare
    // settings against.
    let (_, err, ok) = repwf(&["bench", "--quick", "--threads", "2", "--out", out_s]);
    assert!(ok, "{err}");
    let doc = std::fs::read_to_string(&out).expect("report written");
    assert!(doc.contains("\"schema\": \"repwf-bench/v1\""), "{doc}");
    assert!(doc.contains("\"threads\": 2"), "--threads not recorded:\n{doc}");
    assert!(doc.contains("\"cores\": "), "core count not recorded:\n{doc}");
    for name in [
        "period_full_tpn_cold",
        "period_full_tpn_engine",
        "period_full_tpn_warm",
        "tpn_build_chain",
        "tpn_build_dag",
        "dag_build_parity",
        "campaign_strict_1t",
        "campaign_strict_nt",
        "campaign_batched_nt",
        "anneal_strict",
        "neighbor_eval_cold",
        "neighbor_eval_incremental",
        "solve_patched",
        "solve_rebuild",
        "campaign_shard_merge",
        "engine_reuse_speedup",
        "warm_start_speedup",
        "campaign_parallel_speedup",
        "campaign_batched_speedup",
        "neighbor_eval_speedup",
        "patched_solve_speedup",
        "shard_merge_efficiency",
    ] {
        assert!(doc.contains(name), "missing {name} in:\n{doc}");
    }

    // A fresh run checked against the report we just wrote must pass (the
    // machine did not change under us; tolerance absorbs the noise).
    let out2 = dir.join("BENCH_again.json");
    let (_, err, ok) = repwf(&[
        "bench", "--quick", "--out", out2.to_str().unwrap(), "--check", out_s,
        "--tolerance", "0.9",
    ]);
    assert!(ok, "{err}");
    assert!(err.contains("check against"), "{err}");

    // A doctored baseline with an unreachable index must fail the check.
    let doctored = doc.replace(
        "\"name\": \"warm_start_speedup\",",
        "\"name\": \"warm_start_speedup\", \"ignored\": 1,",
    );
    let inflated = dir.join("BENCH_inflated.json");
    // Rewrite the warm_start_speedup value to an absurd 10000x.
    let mut lines: Vec<String> = doctored.lines().map(String::from).collect();
    for i in 0..lines.len() {
        if lines[i].contains("warm_start_speedup") {
            lines[i + 1] = "      \"value\": 10000.0".to_string();
        }
    }
    std::fs::write(&inflated, lines.join("\n")).unwrap();
    let (_, err, ok) = repwf(&[
        "bench", "--quick", "--out", out2.to_str().unwrap(), "--check",
        inflated.to_str().unwrap(),
    ]);
    assert!(!ok, "doctored baseline must fail the check");
    assert!(err.contains("regression"), "{err}");
    // The failure message must name each regressed index WITH its
    // baseline and current values — a failing gate is diagnosable from
    // the message alone.
    assert!(err.contains("warm_start_speedup: current "), "{err}");
    assert!(err.contains("vs baseline 10000.000x"), "{err}");

    // Thread-scaling indices are skipped (with a notice) when the
    // baseline's threads/cores differ from the current run: an absurd
    // baseline `campaign_parallel_speedup` must NOT fail a run with a
    // different --threads value — the comparison would be
    // apples-to-oranges — but every other index is still gated.
    let mut lines: Vec<String> = doc.lines().map(String::from).collect();
    for i in 0..lines.len() {
        if lines[i].contains("campaign_parallel_speedup") {
            lines[i + 1] = "      \"value\": 10000.0".to_string();
        }
    }
    let scaled = dir.join("BENCH_scaled.json");
    std::fs::write(&scaled, lines.join("\n")).unwrap();
    let (_, err, ok) = repwf(&[
        "bench", "--quick", "--threads", "1", "--out", out2.to_str().unwrap(), "--check",
        scaled.to_str().unwrap(), "--tolerance", "0.9",
    ]);
    assert!(ok, "thread-scaling index must be skipped across thread counts: {err}");
    // The skip notice must name EVERY skipped index and say why — which
    // settings diverged and how to regenerate a comparable baseline.
    for name in ["campaign_parallel_speedup", "shard_merge_efficiency"] {
        let notice = err
            .lines()
            .find(|l| l.contains(&format!("skipping thread-scaling index {name}")))
            .unwrap_or_else(|| panic!("no skip notice for {name} in stderr:\n{err}"));
        assert!(notice.contains("threads=2"), "{notice}");
        assert!(notice.contains("threads=1"), "{notice}");
        assert!(notice.contains("--threads 1"), "regeneration hint missing: {notice}");
    }
    // The batched-campaign index is NOT thread-scaling: it must be gated
    // (not skipped) even across --threads settings.
    assert!(
        !err.contains("skipping thread-scaling index campaign_batched_speedup"),
        "{err}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn supervised_campaign_with_injected_kill_matches_the_plain_run() {
    let dir = std::env::temp_dir().join(format!("repwf-supervise-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let base = [
        "campaign", "--stages", "2", "--procs", "6", "--comm", "5..10", "--count", "17",
        "--seed", "23", "--model", "strict",
    ];
    let (reference, _, ok) = repwf(&[&base[..], &["--json"]].concat());
    assert!(ok);

    // Two elastic workers in one process; one gets a deterministic kill
    // (torn final line included) on its first claim. The campaign must
    // still complete and the merged output must be byte-identical.
    let camp = dir.join("camp");
    let camp_s = camp.to_str().unwrap();
    let sup = [
        "--supervise", "--dir", camp_s, "--workers", "2", "--units", "3",
        "--flush-every", "2", "--json",
    ];
    let (merged, err, code) =
        repwf_env(&[&base[..], &sup[..]].concat(), &[("REPWF_FAULT", "kill-after=2,torn=7")]);
    assert_eq!(code, Some(0), "{err}");
    assert_eq!(merged, reference, "supervised merge must be byte-identical");
    assert!(err.contains("faulted: injected kill after 2 records"), "{err}");
    assert!(err.contains("attempt 2 (takeover)"), "{err}");

    // dist status on the finished directory: complete, no leases.
    let (out, err, ok) = repwf(&["dist", "status", "--dir", camp_s]);
    assert!(ok, "{err}");
    assert!(out.contains("status: COMPLETE"), "{out}");
    let (out, _, ok) = repwf(&["dist", "status", "--dir", camp_s, "--json"]);
    assert!(ok);
    assert!(out.contains("\"complete\": true"), "{out}");

    // Supervising the finished directory again is a cheap no-op with the
    // same byte-identical output.
    let (again, err, ok) = repwf(&[&base[..], &sup[..]].concat());
    assert!(ok, "{err}");
    assert_eq!(again, reference);

    // A worker launched with divergent flags is refused by the pin.
    let (_, err, ok) = repwf(&[
        "campaign", "--stages", "2", "--procs", "6", "--comm", "5..10", "--count", "18",
        "--seed", "23", "--model", "strict", "--supervise", "--dir", camp_s,
    ]);
    assert!(!ok);
    assert!(err.contains("manifest mismatch") && err.contains("count: 17 vs 18"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn injected_process_exit_kill_leaves_a_resumable_shard() {
    let dir = std::env::temp_dir().join(format!("repwf-chaos-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let shard = dir.join("s0.ndjson");
    let shard_s = shard.to_str().unwrap();
    let args = [
        "campaign", "--stages", "2", "--procs", "6", "--count", "11", "--seed", "7",
        "--model", "strict", "--shard", "0/1", "--out", shard_s, "--flush-every", "3",
    ];
    // The worker process dies with the dedicated kill exit code, mid-file.
    let (_, _, code) = repwf_env(&args, &[("REPWF_FAULT", "kill-after=5,torn=11,exit")]);
    assert_eq!(code, Some(86), "injected exit must use the dedicated code");
    let torn = std::fs::read_to_string(&shard).unwrap();
    assert!(!torn.contains("\"kind\":\"footer\""), "killed shard must have no footer");

    // Re-running the identical command (no fault) resumes the checkpoint
    // and converges; a from-scratch run of the same shard proves the
    // bytes identical.
    let (_, err, ok) = repwf(&args);
    assert!(ok, "{err}");
    let resumed = std::fs::read(&shard).unwrap();
    let fresh = dir.join("fresh.ndjson");
    let fresh_args: Vec<&str> = args
        .iter()
        .map(|a| if *a == shard_s { fresh.to_str().unwrap() } else { *a })
        .collect();
    let (_, err, ok) = repwf(&fresh_args);
    assert!(ok, "{err}");
    assert_eq!(resumed, std::fs::read(&fresh).unwrap());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn range_shards_fill_gaps_and_allow_partial_reports_them() {
    let dir = std::env::temp_dir().join(format!("repwf-range-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let base = [
        "campaign", "--stages", "2", "--procs", "6", "--comm", "5..10", "--count", "12",
        "--seed", "9", "--model", "strict",
    ];
    let (reference, _, ok) = repwf(&[&base[..], &["--json"]].concat());
    assert!(ok);
    let path = |name: &str| dir.join(name).to_str().unwrap().to_string();
    let (lo, hi, fill) = (path("r0-5.ndjson"), path("r8-4.ndjson"), path("r5-3.ndjson"));
    for (range, out) in [("0+5", &lo), ("8+4", &hi)] {
        let (_, err, ok) = repwf(&[&base[..], &["--range", range, "--out", out]].concat());
        assert!(ok, "{err}");
    }

    // The exact merge refuses the gap, naming the seeds and the command.
    let (_, err, ok) = repwf(&["merge", &lo, &hi, "--json"]);
    assert!(!ok);
    assert!(err.contains("seeds 14..17 uncovered"), "{err}");
    assert!(err.contains("--range 5+3"), "{err}");

    // --allow-partial merges what exists and marks the document partial.
    let (out, err, ok) = repwf(&["merge", &lo, &hi, "--json", "--allow-partial"]);
    assert!(ok, "{err}");
    assert!(out.contains("\"partial\": true"), "{out}");
    assert!(out.contains("\"seed_start\": 14"), "{out}");
    assert!(err.contains("seeds 14..17 missing"), "{err}");

    // Running the suggested command closes the gap; the exact merge is
    // byte-identical to the unsharded run (--allow-partial included:
    // without gaps it prints the plain document).
    let (_, err, ok) = repwf(&[&base[..], &["--range", "5+3", "--out", &fill]].concat());
    assert!(ok, "{err}");
    for extra in [&["--json"][..], &["--json", "--allow-partial"][..]] {
        let merge_args = [&["merge", &lo, &fill, &hi][..], extra].concat();
        let (merged, err, ok) = repwf(&merge_args);
        assert!(ok, "{err}");
        assert_eq!(merged, reference, "extra={extra:?}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Repo-relative path of the committed fork/join fixture.
fn forkjoin_fixture() -> String {
    format!("{}/../../ci/forkjoin.json", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn period_on_workflow_json_matches_the_pinned_document() {
    let fixture = forkjoin_fixture();
    let (doc, err, ok) =
        repwf(&["period", "--workflow", &fixture, "--model", "overlap", "--json"]);
    assert!(ok, "{err}");
    let expected = std::fs::read_to_string(format!(
        "{}/../../ci/forkjoin-period-expected.json",
        env!("CARGO_MANIFEST_DIR")
    ))
    .expect("pinned document");
    assert_eq!(doc, expected, "period --workflow drifted from ci/forkjoin-period-expected.json");

    // The strict model solves the same DAG through the full TPN.
    let (doc, err, ok) =
        repwf(&["period", "--workflow", &fixture, "--model", "strict", "--json"]);
    assert!(ok, "{err}");
    assert!((json_num(&doc, "period") - 6.5).abs() < 1e-9, "{doc}");
    assert!(doc.contains("\"method\": \"full-tpn\""), "{doc}");
}

#[test]
fn map_exact_on_workflow_json_is_identical_at_any_thread_count() {
    let fixture = forkjoin_fixture();
    let base = ["map", "--workflow", &fixture, "--model", "overlap", "--exact", "--json"];
    let (one, err, ok) = repwf(&[&base[..], &["--threads", "1"]].concat());
    assert!(ok, "{err}");
    let (two, err, ok) = repwf(&[&base[..], &["--threads", "2"]].concat());
    assert!(ok, "{err}");
    assert_eq!(one, two, "exact search on a DAG must not depend on --threads");
    assert!(one.contains("\"feasible\": true"), "{one}");
    assert!(json_num(&one, "period") <= 4.0, "free optimization beats the fixture mapping");
}

#[test]
fn dot_renders_the_workflow_dag_for_chains_and_forks() {
    // A chain (Example A) renders as a path: consecutive edges only.
    let (dot, err, ok) = repwf(&["dot", "workflow", "--example", "a"]);
    assert!(ok, "{err}");
    assert!(dot.starts_with("digraph workflow {"), "{dot}");
    assert!(dot.contains("S0 -> S1"), "{dot}");
    assert!(!dot.contains("S0 -> S2"), "a chain must not branch:\n{dot}");

    // The fork/join fixture renders both branch edges and the replica
    // annotations of the replicated stages.
    let fixture = forkjoin_fixture();
    let (dot, err, ok) = repwf(&["dot", "workflow", "--workflow", &fixture]);
    assert!(ok, "{err}");
    for edge in ["S0 -> S1", "S0 -> S2", "S1 -> S3", "S2 -> S3"] {
        assert!(dot.contains(edge), "missing {edge} in:\n{dot}");
    }
    assert!(dot.contains("×2 on P1,P2"), "replica annotation missing:\n{dot}");
    assert!(dot.contains("δ=3"), "file-size label missing:\n{dot}");
}

#[test]
fn unknown_command_fails_with_usage() {
    let (_, err, ok) = repwf(&["frobnicate"]);
    assert!(!ok);
    assert!(err.contains("unknown command"), "{err}");
}

#[test]
fn traced_campaign_json_is_byte_identical_to_untraced() {
    // The telemetry invariant the obs layer is built around: `--trace`
    // observes, never perturbs. Campaign output bytes are identical with
    // tracing on and off, at thread counts 1, 2 and 4.
    let dir = std::env::temp_dir().join(format!("repwf-trace-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let base = [
        "campaign", "--stages", "2", "--procs", "6", "--comm", "5..10", "--count", "24",
        "--seed", "91", "--model", "strict", "--json",
    ];
    let (reference, _, ok) = repwf(&[&base[..], &["--threads", "1"]].concat());
    assert!(ok);
    for threads in ["1", "2", "4"] {
        let trace = dir.join(format!("t{threads}.ndjson"));
        let trace_s = trace.to_str().unwrap();
        let (traced, err, ok) = repwf(
            &[&base[..], &["--threads", threads, "--trace", trace_s]].concat(),
        );
        assert!(ok, "{err}");
        assert_eq!(
            reference, traced,
            "--trace changed campaign output bytes at --threads {threads}"
        );

        // The trace file itself validates end to end (schema, record
        // count, checksum footer) and accounts for the command's wall
        // time through the top-level span.
        let (report, err, ok) =
            repwf(&["trace", "report", trace_s, "--min-coverage", "0.5", "--json"]);
        assert!(ok, "{err}");
        assert!(report.contains("\"command\": \"campaign\""), "{report}");
        assert!(json_num(&report, "records") >= 1.0, "{report}");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn trace_report_rejects_a_truncated_trace() {
    let dir = std::env::temp_dir().join(format!("repwf-trace-bad-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("t.ndjson");
    let trace_s = trace.to_str().unwrap();
    let (_, err, ok) = repwf(&[
        "period", "--example", "a", "--model", "strict", "--json", "--trace", trace_s,
    ]);
    assert!(ok, "{err}");

    // Drop the footer: the report must refuse the file.
    let text = std::fs::read_to_string(&trace).unwrap();
    let truncated: String =
        text.lines().take(text.lines().count() - 1).map(|l| format!("{l}\n")).collect();
    std::fs::write(&trace, truncated).unwrap();
    let (_, err, ok) = repwf(&["trace", "report", trace_s]);
    assert!(!ok);
    assert!(err.contains("footer"), "{err}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn campaign_metrics_flag_reports_structural_counters() {
    // `--metrics` (unlike `--trace`) is allowed to add output: the human
    // summary gains a counter table fed by the sharded registry.
    let (doc, err, ok) = repwf(&[
        "campaign", "--stages", "2", "--procs", "6", "--count", "12", "--seed", "7",
        "--model", "strict", "--metrics",
    ]);
    assert!(ok, "{err}");
    assert!(doc.contains("metrics:"), "{doc}");
    assert!(doc.contains("csr_builds"), "{doc}");
    assert!(doc.contains("span"), "{doc}");
}

#[test]
fn campaign_json_reports_structural_solve_totals() {
    // Satellite: the campaign document carries spec-derived structural
    // totals, so a merged sharded run reports the same bytes.
    let (doc, err, ok) = repwf(&[
        "campaign", "--stages", "2", "--procs", "6", "--count", "12", "--seed", "7",
        "--model", "strict", "--json",
    ]);
    assert!(ok, "{err}");
    for key in ["patched_solves", "csr_builds", "tarjan_runs"] {
        assert!(doc.contains(&format!("\"{key}\": ")), "missing {key} in:\n{doc}");
    }
    assert!(json_num(&doc, "csr_builds") >= 1.0, "{doc}");
}
