//! Supervisor fault-tolerance properties (the PR's acceptance criteria):
//!
//! * a supervised campaign — including one with injected kills, torn
//!   lines, takeovers and re-splits — merges to output **byte-identical**
//!   to the plain unsharded run;
//! * a mid-run kill loses at most the writer's unflushed buffer
//!   (`flush_every − 1` records past the last flush);
//! * exhausted retry budgets degrade loudly: the exact merge names the
//!   uncovered seed ranges and a ready-to-run command per gap, and
//!   `--allow-partial` merges what exists while reporting what's missing.

use proptest::prelude::*;
use repwf_core::model::CommModel;
use repwf_dist::lease::RetryPolicy;
use repwf_dist::report::{campaign_doc, campaign_doc_partial};
use repwf_dist::shard::run_range;
use repwf_dist::{
    merge_paths, merge_paths_partial, run_shard, run_shard_opts, supervise, CampaignSpec,
    DistError, FaultPlan, ShardRunOptions, SuperviseOptions, SuperviseSummary,
};
use repwf_gen::{run_campaign, GenConfig, Range};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

static CASE: AtomicUsize = AtomicUsize::new(0);

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "repwf-sup-{tag}-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::SeqCst)
    ));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn spec(count: usize, seed_base: u64) -> CampaignSpec {
    CampaignSpec {
        cfg: GenConfig {
            stages: 2,
            procs: 7,
            comp: Range::constant(1.0),
            comm: Range::new(5.0, 10.0),
        },
        model: CommModel::Strict,
        count,
        seed_base,
        cap: 200_000,
    }
}

fn reference_doc(spec: &CampaignSpec) -> String {
    let res =
        run_campaign(&spec.cfg, spec.model, spec.count, spec.seed_base, 2, spec.cap);
    campaign_doc(spec, &res).to_string_pretty()
}

/// Fast-retry options for tests (failed leases become reclaimable within
/// milliseconds instead of the production kind of backoff).
fn fast_opts(owner: &str, jitter_seed: u64) -> SuperviseOptions {
    SuperviseOptions {
        owner: owner.to_string(),
        threads: 1,
        retry: RetryPolicy {
            base: Duration::from_millis(2),
            cap: Duration::from_millis(20),
            max_attempts: 6,
            jitter_seed,
        },
        flush_every: 4,
        poll: Duration::from_millis(2),
        ..SuperviseOptions::default()
    }
}

fn merged_doc(summary: &SuperviseSummary, spec: &CampaignSpec) -> String {
    assert!(summary.complete, "campaign should have completed: {summary:?}");
    let merged = merge_paths(&summary.files).expect("enumerated unit set merges");
    assert_eq!(merged.accum.done, spec.count);
    campaign_doc(&merged.spec, &merged.result).to_string_pretty()
}

#[test]
fn supervised_campaign_is_byte_identical_to_the_unsharded_run() {
    for (count, units) in [(1usize, 1usize), (9, 4), (26, 8), (30, 3)] {
        let spec = spec(count, 501 + count as u64);
        let dir = scratch_dir("basic");
        let opts = SuperviseOptions { units, ..fast_opts("solo", 7) };
        let summary = supervise(&dir, &spec, &opts).expect("supervise runs");
        assert_eq!(merged_doc(&summary, &spec), reference_doc(&spec), "count={count}");

        // A second worker over the finished directory claims nothing and
        // reports the same complete unit set.
        let again = supervise(&dir, &spec, &opts).expect("idempotent rerun");
        assert!(again.complete && again.claims.is_empty());
        assert_eq!(again.files, summary.files);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn divergent_worker_flags_are_refused_by_the_pinned_campaign() {
    let dir = scratch_dir("pin");
    let a = spec(8, 40);
    supervise(&dir, &a, &fast_opts("a", 1)).unwrap();
    let b = CampaignSpec { seed_base: 41, ..a };
    let err = supervise(&dir, &b, &fast_opts("b", 1)).unwrap_err();
    assert!(matches!(err, DistError::ManifestMismatch { .. }), "{err}");
    assert!(err.to_string().contains("seed_base: 40 vs 41"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Satellite 4: kills injected at seeded record counts (clean or with
    /// a torn final line), resumed by a competing clean worker, still
    /// merge byte-identically — counters included (`merged_doc` goes
    /// through the accum-checked merge).
    #[test]
    fn injected_kills_and_takeovers_merge_byte_identically(
        count in 1usize..22,
        fault_seed in 0u64..1000,
        seed_base in 1u64..3000,
    ) {
        let spec = spec(count, seed_base);
        let reference = reference_doc(&spec);
        let dir = scratch_dir("chaos");
        let fault = FaultPlan::seeded(fault_seed, count.min(8));
        let faulty = SuperviseOptions {
            units: 3.min(count),
            fault: Some(fault.clone()),
            ..fast_opts("faulty", fault_seed)
        };
        let clean = SuperviseOptions { units: 3.min(count), ..fast_opts("clean", fault_seed) };

        let (a, b) = std::thread::scope(|scope| {
            let a = scope.spawn(|| supervise(&dir, &spec, &faulty));
            let b = scope.spawn(|| supervise(&dir, &spec, &clean));
            (a.join().expect("worker a"), b.join().expect("worker b"))
        });
        let (a, b) = (a.expect("faulty worker finishes"), b.expect("clean worker finishes"));
        prop_assert!(a.complete && b.complete);
        prop_assert_eq!(a.files.clone(), b.files.clone());
        prop_assert_eq!(merged_doc(&a, &spec), reference);

        // If the kill actually fired, some later claim recovered the unit.
        let faulted: Vec<_> = a.claims.iter()
            .filter(|c| matches!(c.outcome, repwf_dist::supervise::ClaimOutcome::Faulted(_)))
            .collect();
        for f in faulted {
            let recovered = a.claims.iter().chain(&b.claims).any(|c| {
                c.offset == f.offset
                    && c.attempt > f.attempt
                    && matches!(c.outcome, repwf_dist::supervise::ClaimOutcome::Completed)
            });
            prop_assert!(recovered, "faulted unit at {} was never recovered", f.offset);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Satellite 2: a kill after K records with flush cadence N leaves at
/// least `K − (N − 1)` records durably on disk, and the resume converges
/// to the uninterrupted bytes.
#[test]
fn mid_run_kill_keeps_all_but_the_unflushed_tail_on_disk() {
    let spec = spec(30, 913);
    let dir = scratch_dir("cadence");
    let reference = dir.join("ref.ndjson");
    run_shard(&spec, 0, 1, 2, &reference, None).unwrap();
    let reference_bytes = std::fs::read(&reference).unwrap();

    for (kill_after, flush_every, torn) in [(0usize, 5usize, 0usize), (7, 5, 9), (13, 4, 1), (29, 8, 0)] {
        let path = dir.join(format!("kill-{kill_after}-{flush_every}.ndjson"));
        let opts = ShardRunOptions {
            flush_every,
            fault: Some(FaultPlan {
                kill_after: Some(kill_after),
                torn,
                ..FaultPlan::default()
            }),
        };
        let err = run_shard_opts(&spec, 0, 1, 2, &path, None, &opts).unwrap_err();
        assert!(matches!(err, DistError::Fault(_)), "{err}");

        let text = std::fs::read_to_string(&path).unwrap();
        let durable_records =
            text.split_inclusive('\n').filter(|l| l.ends_with('\n')).count() - 1;
        assert!(
            durable_records >= kill_after.saturating_sub(flush_every - 1)
                && durable_records <= kill_after,
            "kill_after={kill_after} flush_every={flush_every}: {durable_records} on disk"
        );
        if torn > 0 && kill_after < spec.count {
            assert!(!text.ends_with('\n'), "expected a torn final line");
        }

        let summary = run_shard(&spec, 0, 1, 2, &path, None).unwrap();
        assert_eq!(summary.resumed, durable_records);
        assert_eq!(std::fs::read(&path).unwrap(), reference_bytes);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite 3: gaps in an exact merge are refused with the precise seed
/// ranges and a ready-to-run `--range` command; `--allow-partial` merges
/// the covered prefix set and reports the same ranges as data.
#[test]
fn coverage_gaps_name_seed_ranges_and_resume_commands() {
    let spec = spec(12, 9);
    let dir = scratch_dir("gaps");
    let lo = dir.join("r0-5.ndjson");
    let hi = dir.join("r8-4.ndjson");
    run_range(&spec, 0, 5, 1, &lo, None, &ShardRunOptions::default()).unwrap();
    run_range(&spec, 8, 4, 1, &hi, None, &ShardRunOptions::default()).unwrap();

    let err = merge_paths(&[&lo, &hi]).unwrap_err();
    assert!(matches!(err, DistError::ShardSet(_)), "{err}");
    let msg = err.to_string();
    assert!(msg.contains("coverage incomplete: 3 of 12 experiments missing"), "{msg}");
    assert!(msg.contains("seeds 14..17 uncovered"), "{msg}");
    assert!(msg.contains("--range 5+3"), "{msg}");
    assert!(msg.contains("--seed 9"), "{msg}");

    let report = merge_paths_partial(&[&lo, &hi]).unwrap();
    assert_eq!(report.missing, vec![(14, 17)]);
    assert_eq!(report.merged.result.outcomes.len(), 9);
    let doc = campaign_doc_partial(&report.merged.spec, &report.merged.result, &report.missing)
        .to_string_pretty();
    assert!(doc.contains("\"partial\": true"), "{doc}");
    assert!(doc.contains("\"seed_start\": 14"), "{doc}");

    // Running exactly the suggested command closes the gap and the exact
    // merge equals the unsharded run.
    let fill = dir.join("r5-3.ndjson");
    run_range(&spec, 5, 3, 1, &fill, None, &ShardRunOptions::default()).unwrap();
    let merged = merge_paths(&[&lo, &fill, &hi]).unwrap();
    assert_eq!(
        campaign_doc(&merged.spec, &merged.result).to_string_pretty(),
        reference_doc(&spec)
    );

    // Overlapping tiles: refused exactly, trimmed (to identical bytes,
    // records being pure functions of their seeds) under --allow-partial.
    let wide = dir.join("r4-8.ndjson");
    run_range(&spec, 4, 8, 1, &wide, None, &ShardRunOptions::default()).unwrap();
    let err = merge_paths(&[&lo, &wide]).unwrap_err();
    assert!(err.to_string().contains("overlapping coverage"), "{err}");
    let report = merge_paths_partial(&[&lo, &wide]).unwrap();
    assert!(report.missing.is_empty());
    assert_eq!(
        campaign_doc(&report.merged.spec, &report.merged.result).to_string_pretty(),
        reference_doc(&spec)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Fraction-shard gaps keep the historical first line and gain the seed
/// ranges + commands below it.
#[test]
fn missing_fraction_shards_also_name_seed_ranges_and_commands() {
    let spec = spec(12, 9);
    let dir = scratch_dir("frac-gaps");
    let paths: Vec<PathBuf> = (0..3).map(|i| dir.join(format!("s{i}.ndjson"))).collect();
    for (i, path) in paths.iter().enumerate() {
        run_shard(&spec, i, 3, 1, path, None).unwrap();
    }
    let err = merge_paths(&[&paths[0], &paths[2]]).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("missing shard(s) 1 of 3"), "{msg}");
    assert!(msg.contains("seeds 13..17 uncovered"), "{msg}");
    assert!(msg.contains("--shard 1/3"), "{msg}");

    // Partial merge of a fraction subset works and reports the hole.
    let report = merge_paths_partial(&[&paths[0], &paths[2]]).unwrap();
    assert_eq!(report.missing, vec![(13, 17)]);
    assert_eq!(report.merged.result.outcomes.len(), 8);
    let _ = std::fs::remove_dir_all(&dir);
}

/// An exhausted retry budget degrades the campaign instead of spinning:
/// the summary names the unit, and the partial merge recovers every
/// record the dead attempts checkpointed.
#[test]
fn exhausted_retries_degrade_and_partial_merge_recovers_the_checkpoints() {
    let spec = spec(16, 77);
    let dir = scratch_dir("degraded");
    let opts = SuperviseOptions {
        units: 2,
        fault: Some(FaultPlan { kill_after: Some(3), ..FaultPlan::default() }),
        flush_every: 1, // every record durable, so the checkpoint is exact
        retry: RetryPolicy {
            base: Duration::from_millis(1),
            cap: Duration::from_millis(4),
            max_attempts: 1, // the faulted attempt is the only one
            jitter_seed: 5,
        },
        ..fast_opts("mortal", 5)
    };
    let summary = supervise(&dir, &spec, &opts).expect("degrades, not errors");
    assert!(!summary.complete);
    assert_eq!(summary.degraded.len(), 1, "{:?}", summary.degraded);
    assert_eq!(summary.degraded[0].attempts, 1);

    // The merge set is the enumerated units' files; the faulted one holds
    // a 3-record checkpoint, so the partial merge recovers 8 + 3 records
    // and names the missing tail exactly.
    let status = repwf_dist::status(&dir).unwrap();
    let files: Vec<PathBuf> =
        status.unit_status.iter().map(|u| dir.join(format!("{}.ndjson", u.unit.name()))).collect();
    let err = merge_paths(&files).unwrap_err();
    assert!(err.to_string().contains("incomplete"), "{err}");
    let report = merge_paths_partial(&files).unwrap();
    assert_eq!(report.merged.result.outcomes.len(), 11);
    let degraded_start = spec.seed_base + summary.degraded[0].offset as u64;
    assert_eq!(report.missing, vec![(degraded_start + 3, degraded_start + 8)]);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A straggler's unit is split at a seed boundary and the stolen upper
/// half merges seamlessly — the merged bytes cannot tell the cut.
#[test]
fn stragglers_are_resplit_and_the_merge_cannot_tell() {
    let spec = spec(24, 333);
    let reference = reference_doc(&spec);
    let dir = scratch_dir("resplit");
    let slow = SuperviseOptions {
        units: 1,
        split_min: 4,
        fault: Some(FaultPlan { slow_ms: 40, ..FaultPlan::default() }),
        flush_every: 2,
        ..fast_opts("slow", 11)
    };
    let fast = SuperviseOptions {
        units: 1,
        split_min: 4,
        flush_every: 2,
        ..fast_opts("fast", 11)
    };
    let (a, b) = std::thread::scope(|scope| {
        let a = scope.spawn(|| supervise(&dir, &spec, &slow));
        let b = scope.spawn(|| {
            // Let the straggler claim the single unit first.
            let lease = dir.join("leases").join("r0-24.lease");
            for _ in 0..2000 {
                if lease.exists() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            supervise(&dir, &spec, &fast)
        });
        (a.join().expect("slow worker"), b.join().expect("fast worker"))
    });
    let (a, b) = (a.expect("slow finishes"), b.expect("fast finishes"));
    assert!(a.complete && b.complete);
    assert!(
        !b.splits.is_empty() || !a.splits.is_empty(),
        "the idle worker should have split the straggler's unit"
    );
    assert!(a.files.len() > 1, "a split must yield multiple unit files: {:?}", a.files);
    assert_eq!(merged_doc(&a, &spec), reference);
    let _ = std::fs::remove_dir_all(&dir);
}

/// `status` reports per-unit standing without claiming anything.
#[test]
fn status_reports_units_records_and_leases() {
    let spec = spec(10, 55);
    let dir = scratch_dir("status");
    let opts = SuperviseOptions { units: 2, ..fast_opts("w", 3) };
    supervise(&dir, &spec, &opts).unwrap();
    let status = repwf_dist::status(&dir).unwrap();
    assert!(status.complete);
    assert_eq!(status.units, 2);
    assert_eq!(status.unit_status.len(), 2);
    for u in &status.unit_status {
        assert!(u.file_complete);
        assert_eq!(u.records, u.unit.eff);
        assert!(u.lease.is_none(), "released lease should be gone");
    }
    assert!(repwf_dist::status(Path::new("/nonexistent-repwf")).is_err());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_split_landing_behind_an_overshot_checkpoint_closes_with_a_valid_footer() {
    // Regression: giving the upper half of a re-split unit back truncates
    // the file with set_len, which does not move the write cursor — the
    // footer then landed past EOF behind a zero-filled gap, so the unit
    // reported "completed" while its file scanned as incomplete and the
    // final merge refused the directory.
    let spec = spec(16, 611);
    let dir = scratch_dir("overshoot");

    // A worker whose only attempt dies after flushing 6 of r0-8's
    // records (cadence 1, retry budget 1) leaves a 6-record checkpoint
    // and a degraded campaign.
    let mut faulty = fast_opts("faulty", 3);
    faulty.units = 2;
    faulty.flush_every = 1;
    faulty.retry.max_attempts = 1;
    faulty.fault = Some(FaultPlan { kill_after: Some(6), ..FaultPlan::default() });
    let degraded = supervise(&dir, &spec, &faulty).expect("worker survives its own fault");
    assert!(!degraded.complete);

    // A straggler split lands on the checkpointed unit while nobody owns
    // it: r0-8's effective length halves to 4, below its 6 durable
    // records.
    std::fs::write(dir.join("splits").join("r0-8.split"), b"").expect("plant split marker");

    // The next claimant must hand the overshoot back: truncate the file
    // to 4 records and close it with a footer that actually scans.
    let summary = supervise(&dir, &spec, &fast_opts("clean", 9)).expect("clean pass");
    let (manifest, outcomes) =
        repwf_dist::read_shard(&dir.join("r0-8.ndjson")).expect("early-closed unit file scans");
    assert_eq!(outcomes.len(), 4, "overshoot beyond the split point is given back");
    assert_eq!(manifest.plan.shard_count(), 8, "the manifest still declares the full unit");
    assert_eq!(merged_doc(&summary, &spec), reference_doc(&spec));
    let _ = std::fs::remove_dir_all(&dir);
}
