//! Shard determinism properties (the PR's acceptance criteria):
//!
//! * for random `(count, num_shards, threads)`, the merged campaign JSON
//!   is **byte-identical** to the unsharded run, under both communication
//!   models;
//! * resuming after an arbitrary NDJSON truncation reproduces the same
//!   shard bytes (and hence the same merged JSON);
//! * inconsistent shard sets are diagnosed, never silently merged.

use proptest::prelude::*;
use repwf_core::model::CommModel;
use repwf_dist::report::campaign_doc;
use repwf_dist::{merge_paths, run_shard, CampaignSpec, DistError};
use repwf_gen::{run_campaign, GenConfig, Range};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

static CASE: AtomicUsize = AtomicUsize::new(0);

/// A fresh scratch directory per case (cleaned by the caller's best
/// effort; unique names keep concurrent test binaries apart).
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "repwf-dist-{tag}-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::SeqCst)
    ));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn spec(model: CommModel, count: usize, seed_base: u64) -> CampaignSpec {
    CampaignSpec {
        cfg: GenConfig {
            stages: 2,
            procs: 7,
            comp: Range::constant(1.0),
            comm: Range::new(5.0, 10.0),
        },
        model,
        count,
        seed_base,
        cap: 200_000,
    }
}

/// Runs every shard to a file, merges, and returns the merged document
/// plus the shard file paths.
fn shard_and_merge(
    spec: &CampaignSpec,
    num_shards: usize,
    threads: usize,
    dir: &std::path::Path,
) -> (String, Vec<PathBuf>) {
    let paths: Vec<PathBuf> =
        (0..num_shards).map(|i| dir.join(format!("s{i}.ndjson"))).collect();
    for (i, path) in paths.iter().enumerate() {
        let summary = run_shard(spec, i, num_shards, threads, path, None).expect("shard runs");
        assert_eq!(summary.resumed, 0);
        assert_eq!(summary.ran, summary.manifest.plan.shard_count());
    }
    let merged = merge_paths(&paths).expect("complete shard set merges");
    assert_eq!(merged.num_shards, num_shards);
    assert_eq!(merged.accum.done, spec.count);
    let doc = campaign_doc(&merged.spec, &merged.result).to_string_pretty();
    (doc, paths)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn merged_json_is_byte_identical_to_the_unsharded_run(
        count in 0usize..28,
        num_shards in 1usize..5,
        threads in 1usize..4,
        seed_base in 1u64..5000,
    ) {
        for model in [CommModel::Overlap, CommModel::Strict] {
            let spec = spec(model, count, seed_base);
            let unsharded = run_campaign(&spec.cfg, model, count, seed_base, threads, spec.cap);
            let reference = campaign_doc(&spec, &unsharded).to_string_pretty();

            let dir = scratch_dir("merge");
            let (merged, _) = shard_and_merge(&spec, num_shards, threads, &dir);
            prop_assert!(
                merged == reference,
                "merged JSON diverges: count={} shards={} threads={} model={:?}",
                count, num_shards, threads, model
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn resume_after_truncation_reproduces_the_same_bytes(
        count in 1usize..24,
        num_shards in 1usize..4,
        threads in 1usize..3,
        cut in 0.0f64..1.0,
    ) {
        let spec = spec(CommModel::Strict, count, 77);
        let dir = scratch_dir("resume");
        let (reference_doc, paths) = shard_and_merge(&spec, num_shards, threads, &dir);
        // Kill the *largest* shard mid-write: truncate its NDJSON at an
        // arbitrary byte past the manifest line (often mid-record).
        let victim = &paths[0];
        let original = std::fs::read(victim).unwrap();
        let manifest_len = original.iter().position(|&b| b == b'\n').unwrap() + 1;
        let cut_at = manifest_len
            + ((original.len() - manifest_len) as f64 * cut) as usize;
        std::fs::write(victim, &original[..cut_at]).unwrap();

        let summary = run_shard(&spec, 0, num_shards, threads, victim, None)
            .expect("resume succeeds");
        prop_assert_eq!(summary.resumed + summary.ran, summary.manifest.plan.shard_count());
        let resumed = std::fs::read(victim).unwrap();
        prop_assert!(
            resumed == original,
            "resume from byte {} of {} must converge to the same file",
            cut_at, original.len()
        );
        let merged = merge_paths(&paths).expect("merges after resume");
        prop_assert_eq!(
            campaign_doc(&merged.spec, &merged.result).to_string_pretty(),
            reference_doc
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn complete_shard_reruns_are_validated_noops() {
    let spec = spec(CommModel::Strict, 9, 400);
    let dir = scratch_dir("noop");
    let path = dir.join("s0.ndjson");
    run_shard(&spec, 0, 2, 2, &path, None).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    let again = run_shard(&spec, 0, 2, 1, &path, None).unwrap();
    assert_eq!(again.ran, 0, "complete shard must not recompute");
    assert_eq!(again.resumed, again.manifest.plan.shard_count());
    assert_eq!(std::fs::read(&path).unwrap(), bytes);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn kill_during_the_manifest_write_restarts_fresh_but_foreign_garbage_does_not() {
    let dir = scratch_dir("torn-manifest");
    let spec = spec(CommModel::Strict, 6, 12);
    let path = dir.join("s0.ndjson");
    run_shard(&spec, 0, 1, 1, &path, None).unwrap();
    let complete = std::fs::read(&path).unwrap();
    let manifest_len = complete.iter().position(|&b| b == b'\n').unwrap() + 1;

    // A kill mid-manifest leaves a newline-less prefix of our own
    // manifest line: restartable from scratch, converging bytewise.
    for cut in [1, manifest_len / 2, manifest_len - 1] {
        std::fs::write(&path, &complete[..cut]).unwrap();
        let summary = run_shard(&spec, 0, 1, 2, &path, None).unwrap();
        assert_eq!((summary.resumed, summary.ran), (0, 6), "cut={cut}");
        assert_eq!(std::fs::read(&path).unwrap(), complete, "cut={cut}");
    }

    // A newline-less first line that is NOT our manifest prefix is a
    // foreign file: refuse, never overwrite.
    std::fs::write(&path, b"{\"kind\":\"something else entirely").unwrap();
    let err = run_shard(&spec, 0, 1, 1, &path, None).unwrap_err();
    assert!(matches!(err, DistError::Corrupt { .. }), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mismatched_manifests_are_refused_on_resume_and_merge() {
    let dir = scratch_dir("mismatch");
    let strict = spec(CommModel::Strict, 10, 5);
    let overlap = CampaignSpec { model: CommModel::Overlap, ..strict };
    let s0 = dir.join("s0.ndjson");
    let s1 = dir.join("s1.ndjson");
    run_shard(&strict, 0, 2, 1, &s0, None).unwrap();

    // Resuming the same file under a different campaign must refuse.
    let err = run_shard(&overlap, 0, 2, 1, &s0, None).unwrap_err();
    assert!(matches!(err, DistError::ManifestMismatch { .. }), "{err}");
    assert!(err.to_string().contains("model"), "{err}");
    // ... and under a different shard identity too.
    let err = run_shard(&strict, 1, 2, 1, &s0, None).unwrap_err();
    assert!(matches!(err, DistError::ManifestMismatch { .. }), "{err}");

    // Merging shards of different campaigns must name the field.
    run_shard(&overlap, 1, 2, 1, &s1, None).unwrap();
    let err = merge_paths(&[&s0, &s1]).unwrap_err();
    assert!(matches!(err, DistError::ManifestMismatch { .. }), "{err}");
    assert!(err.to_string().contains("model: strict vs overlap"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn missing_duplicate_and_incomplete_shards_are_diagnosed() {
    let dir = scratch_dir("shardset");
    let spec = spec(CommModel::Strict, 12, 9);
    let paths: Vec<PathBuf> = (0..3).map(|i| dir.join(format!("s{i}.ndjson"))).collect();
    for (i, path) in paths.iter().enumerate() {
        run_shard(&spec, i, 3, 1, path, None).unwrap();
    }

    let err = merge_paths(&paths[..2]).unwrap_err();
    assert!(matches!(err, DistError::ShardSet(_)), "{err}");
    assert!(err.to_string().contains("missing shard(s) 2"), "{err}");

    let err = merge_paths(&[&paths[0], &paths[1], &paths[1]]).unwrap_err();
    assert!(matches!(err, DistError::ShardSet(_)), "{err}");
    assert!(err.to_string().contains("duplicate shard 1"), "{err}");

    // An unfinished shard (manifest + some records, no footer) must point
    // at the resume command, not merge partial data.
    let text = std::fs::read_to_string(&paths[2]).unwrap();
    let keep: String = text.lines().take(3).map(|l| format!("{l}\n")).collect();
    std::fs::write(&paths[2], keep).unwrap();
    let err = merge_paths(&paths).unwrap_err();
    assert!(matches!(err, DistError::ShardSet(_)), "{err}");
    assert!(err.to_string().contains("incomplete"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn interior_corruption_is_refused_not_resumed() {
    let dir = scratch_dir("corrupt");
    let spec = spec(CommModel::Strict, 8, 31);
    let path = dir.join("s0.ndjson");
    run_shard(&spec, 0, 1, 1, &path, None).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();

    // Flip a digit of an interior record's seed: contiguity check fires.
    let lines: Vec<&str> = text.lines().collect();
    let doctored_record = lines[2].replacen("\"seed\":32", "\"seed\":33", 1);
    assert_ne!(doctored_record, lines[2], "doctoring must hit");
    let mut doctored = lines.to_vec();
    doctored[2] = &doctored_record;
    let doctored: String = doctored.iter().map(|l| format!("{l}\n")).collect();
    std::fs::write(&path, &doctored).unwrap();
    for err in [
        run_shard(&spec, 0, 1, 1, &path, None).unwrap_err(),
        merge_paths(&[&path]).unwrap_err(),
    ] {
        assert!(matches!(err, DistError::Corrupt { .. }), "{err}");
        assert!(err.to_string().contains("seed 33, expected 32"), "{err}");
    }

    // A tampered record under an unchanged footer: checksum mismatch.
    let tampered = text.replacen("\"resolution\":\"exact\"", "\"resolution\":\"simulated\"", 1);
    assert_ne!(tampered, text);
    std::fs::write(&path, &tampered).unwrap();
    let err = merge_paths(&[&path]).unwrap_err();
    assert!(matches!(err, DistError::Corrupt { .. }), "{err}");
    assert!(err.to_string().contains("checksum"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}
