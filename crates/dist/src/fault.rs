//! Deterministic fault injection for the distributed campaign machinery.
//!
//! Every recovery path in this crate — checkpoint resume, stale-lease
//! takeover, retry with backoff, partial merge — exists because real
//! fleets kill workers, tear writes and corrupt files. Testing those
//! paths with *real* nondeterministic failures would make CI flaky and
//! bugs unreproducible, so faults are injected instead, and the injection
//! is **fully deterministic**: a [`FaultPlan`] is either written out
//! explicitly (`kill-after=7,torn=12`) or derived from a seed
//! ([`FaultPlan::seeded`]), and the same plan always produces the same
//! disk state. The shard worker picks its plan up from the `REPWF_FAULT`
//! environment variable ([`FaultPlan::from_env`]), which is how the CI
//! `chaos-smoke` job kills a real subprocess at a chosen record count.
//!
//! A fault plan can express, independently or combined:
//!
//! * `kill-after=K` — die after appending `K` records *in this run*
//!   (resumed checkpoint records don't count). The writer's unflushed
//!   buffer vanishes, exactly as under SIGKILL.
//! * `torn=B` — leave the first `B` bytes of the next record's line
//!   behind when dying (a half-written line for resume to truncate).
//! * `slow=MS` — sleep `MS` milliseconds per record: a straggler, for
//!   exercising the supervisor's re-split path.
//! * `corrupt-footer` — finish the file but XOR the footer checksum,
//!   so the merge/resume validation must catch it.
//! * `exit` — on kill, terminate the *process* with
//!   [`KILL_EXIT_CODE`] instead of returning [`DistError::Fault`]
//!   (subprocess chaos tests vs in-process property tests).

use crate::DistError;

/// Exit code of a worker process dying to an injected `kill-after` fault
/// in `exit` mode — distinct from real error exits so chaos harnesses
/// can tell "fault fired as planned" from "worker actually broke".
pub const KILL_EXIT_CODE: i32 = 86;

/// Environment variable the shard worker reads its fault plan from.
pub const FAULT_ENV: &str = "REPWF_FAULT";

/// A deterministic fault-injection plan. See the [module docs](self)
/// for the semantics of each knob. The default plan injects nothing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Die after this many records appended by the current run.
    /// `None` (or a count the run never reaches) injects no kill.
    pub kill_after: Option<usize>,
    /// Bytes of the next record's line to leave torn behind on kill
    /// (clamped to the line length minus its newline; 0 = clean kill).
    pub torn: usize,
    /// Per-record sleep in milliseconds (straggler injection).
    pub slow_ms: u64,
    /// Flip the footer checksum on finish.
    pub corrupt_footer: bool,
    /// On kill, exit the process with [`KILL_EXIT_CODE`] instead of
    /// returning [`DistError::Fault`].
    pub process_exit: bool,
}

impl FaultPlan {
    /// Parses the `REPWF_FAULT` syntax: comma-separated
    /// `kill-after=K`, `torn=B`, `slow=MS`, `corrupt-footer`, `exit`.
    pub fn parse(raw: &str) -> Result<FaultPlan, DistError> {
        let bad = |what: &str| {
            DistError::Plan(format!(
                "invalid fault plan {raw:?}: {what} (expected e.g. \
                 \"kill-after=7,torn=12,exit\")"
            ))
        };
        let mut plan = FaultPlan::default();
        for part in raw.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            match part.split_once('=') {
                Some(("kill-after", k)) => {
                    plan.kill_after =
                        Some(k.parse().map_err(|_| bad("kill-after needs an integer"))?);
                }
                Some(("torn", b)) => {
                    plan.torn = b.parse().map_err(|_| bad("torn needs an integer"))?;
                }
                Some(("slow", ms)) => {
                    plan.slow_ms = ms.parse().map_err(|_| bad("slow needs milliseconds"))?;
                }
                None if part == "corrupt-footer" => plan.corrupt_footer = true,
                None if part == "exit" => plan.process_exit = true,
                _ => return Err(bad(&format!("unknown directive {part:?}"))),
            }
        }
        Ok(plan)
    }

    /// Reads the plan from the `REPWF_FAULT` environment variable;
    /// `Ok(None)` when the variable is unset or empty.
    pub fn from_env() -> Result<Option<FaultPlan>, DistError> {
        match std::env::var(FAULT_ENV) {
            Ok(raw) if raw.trim().is_empty() => Ok(None),
            Ok(raw) => FaultPlan::parse(&raw).map(Some),
            Err(_) => Ok(None),
        }
    }

    /// Renders the plan back in [`FaultPlan::parse`] syntax (for spawning
    /// worker subprocesses with an inherited plan).
    pub fn to_directive(&self) -> String {
        let mut parts = Vec::new();
        if let Some(k) = self.kill_after {
            parts.push(format!("kill-after={k}"));
        }
        if self.torn > 0 {
            parts.push(format!("torn={}", self.torn));
        }
        if self.slow_ms > 0 {
            parts.push(format!("slow={}", self.slow_ms));
        }
        if self.corrupt_footer {
            parts.push("corrupt-footer".to_string());
        }
        if self.process_exit {
            parts.push("exit".to_string());
        }
        parts.join(",")
    }

    /// Derives a deterministic kill plan from a seed: the kill lands
    /// uniformly in `0..=records` (hitting `records` means the run
    /// completes — "no fault" stays in the sample space on purpose), and
    /// roughly half the kills leave a torn line behind. Property tests
    /// sweep the seed to cover the whole kill-point space reproducibly.
    pub fn seeded(seed: u64, records: usize) -> FaultPlan {
        let r0 = splitmix64(seed);
        let r1 = splitmix64(seed ^ 0x9e37_79b9_7f4a_7c15);
        FaultPlan {
            kill_after: Some((r0 % (records as u64 + 1)) as usize),
            torn: if r1 & 1 == 1 { (r1 >> 1) as usize % 40 + 1 } else { 0 },
            slow_ms: 0,
            corrupt_footer: false,
            process_exit: false,
        }
    }
}

/// SplitMix64 — the statelessly seedable mixer used for deterministic
/// jitter and fault derivation (same construction the generator crate
/// uses to split seeds).
pub(crate) fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_through_to_directive() {
        for raw in
            ["kill-after=7", "kill-after=0,torn=12,exit", "slow=5", "corrupt-footer", ""]
        {
            let plan = FaultPlan::parse(raw).unwrap();
            assert_eq!(FaultPlan::parse(&plan.to_directive()).unwrap(), plan, "{raw:?}");
        }
        assert_eq!(
            FaultPlan::parse("kill-after=3, torn=2 , exit").unwrap(),
            FaultPlan { kill_after: Some(3), torn: 2, process_exit: true, ..FaultPlan::default() }
        );
    }

    #[test]
    fn bad_directives_are_rejected_with_the_raw_text() {
        for bad in ["kill-after=x", "torn=", "slow=fast", "explode", "kill=3"] {
            let err = FaultPlan::parse(bad).unwrap_err();
            assert!(matches!(err, DistError::Plan(_)), "{bad}: {err}");
            assert!(err.to_string().contains("invalid fault plan"), "{bad}: {err}");
        }
    }

    #[test]
    fn seeded_plans_are_deterministic_and_cover_the_kill_space() {
        let a = FaultPlan::seeded(42, 100);
        let b = FaultPlan::seeded(42, 100);
        assert_eq!(a, b);
        let kills: std::collections::BTreeSet<usize> =
            (0..400).map(|s| FaultPlan::seeded(s, 10).kill_after.unwrap()).collect();
        assert_eq!(kills.len(), 11, "all of 0..=10 should appear: {kills:?}");
    }
}
