//! Deterministic contiguous partitioning of a campaign's seed range.

use crate::DistError;

/// One shard of a campaign: either the `shard_index`-th of `num_shards`
/// contiguous slices of the seed range `seed_base .. seed_base + count`
/// (a **fraction** shard, the `--shard I/N` kind), or an **explicit**
/// contiguous sub-range (a **range** shard, the unit the elastic
/// supervisor claims, splits and retries).
///
/// The fraction partition is pure arithmetic over `(count, num_shards)` —
/// the same even-split-with-remainder scheme the work-stealing executor
/// uses for its initial deques: shard `i` holds `count / num_shards`
/// seeds, plus one more when `i < count % num_shards`. Every process that
/// knows the campaign parameters derives the identical decomposition,
/// which is what makes the merge *exact*: no coordination, no overlap,
/// no gap. Range shards carry their slice explicitly instead (the
/// supervisor re-splits slices on the fly, so they are not derivable
/// from an `I/N` designator); the merge validates that the *covered*
/// ranges tile the campaign either way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    /// Base seed of the **whole** campaign (not of this shard).
    pub seed_base: u64,
    /// Experiment count of the **whole** campaign.
    pub count: usize,
    /// This shard's index in `0..num_shards` (0 for range shards).
    pub shard_index: usize,
    /// Total number of shards (1 for range shards).
    pub num_shards: usize,
    /// Explicit `(offset, len)` slice override of a range shard;
    /// `None` for classic fraction shards.
    range: Option<(usize, usize)>,
}

impl ShardPlan {
    /// Builds a validated fraction plan (`num_shards >= 1`,
    /// `shard_index < num_shards`).
    pub fn new(
        seed_base: u64,
        count: usize,
        shard_index: usize,
        num_shards: usize,
    ) -> Result<ShardPlan, DistError> {
        if num_shards == 0 {
            return Err(DistError::Plan("num_shards must be at least 1".to_string()));
        }
        if shard_index >= num_shards {
            return Err(DistError::Plan(format!(
                "shard index {shard_index} out of range (have {num_shards} shards, \
                 indices 0..{num_shards})"
            )));
        }
        Ok(ShardPlan { seed_base, count, shard_index, num_shards, range: None })
    }

    /// Builds a validated **range** plan: the explicit slice
    /// `offset .. offset + len` of the campaign's seed range.
    pub fn range(
        seed_base: u64,
        count: usize,
        offset: usize,
        len: usize,
    ) -> Result<ShardPlan, DistError> {
        if offset.checked_add(len).is_none_or(|end| end > count) {
            return Err(DistError::Plan(format!(
                "range slice {offset}+{len} exceeds the campaign's {count} experiments"
            )));
        }
        Ok(ShardPlan {
            seed_base,
            count,
            shard_index: 0,
            num_shards: 1,
            range: Some((offset, len)),
        })
    }

    /// The explicit `(offset, len)` slice of a range shard, `None` for a
    /// fraction shard.
    pub fn range_slice(&self) -> Option<(usize, usize)> {
        self.range
    }

    /// Parses the CLI shard designator `I/N` (e.g. `--shard 1/3`).
    pub fn parse_fraction(raw: &str) -> Result<(usize, usize), String> {
        let (i, n) = raw
            .split_once('/')
            .ok_or_else(|| format!("invalid shard designator {raw:?} (expected I/N)"))?;
        let i: usize =
            i.parse().map_err(|_| format!("invalid shard index {i:?} in {raw:?}"))?;
        let n: usize =
            n.parse().map_err(|_| format!("invalid shard count {n:?} in {raw:?}"))?;
        if n == 0 || i >= n {
            return Err(format!("shard designator {raw:?} must satisfy I < N, N >= 1"));
        }
        Ok((i, n))
    }

    /// Number of experiments in this shard.
    pub fn shard_count(&self) -> usize {
        match self.range {
            Some((_, len)) => len,
            None => {
                self.count / self.num_shards
                    + usize::from(self.shard_index < self.count % self.num_shards)
            }
        }
    }

    /// Offset of this shard's first experiment within the campaign.
    pub fn shard_offset(&self) -> usize {
        match self.range {
            Some((offset, _)) => offset,
            None => {
                let base = self.count / self.num_shards;
                let rem = self.count % self.num_shards;
                self.shard_index * base + self.shard_index.min(rem)
            }
        }
    }

    /// First seed of this shard.
    pub fn seed_start(&self) -> u64 {
        self.seed_base + self.shard_offset() as u64
    }

    /// One past the last seed of this shard.
    pub fn seed_end(&self) -> u64 {
        self.seed_start() + self.shard_count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shards_tile_the_seed_range_exactly() {
        for count in [0usize, 1, 2, 5, 7, 100, 101, 4096] {
            for num_shards in [1usize, 2, 3, 5, 8, 13] {
                let mut next = 2009u64;
                let mut total = 0usize;
                for i in 0..num_shards {
                    let plan = ShardPlan::new(2009, count, i, num_shards).unwrap();
                    assert_eq!(plan.seed_start(), next, "count={count} shards={num_shards} i={i}");
                    assert_eq!(plan.seed_end() - plan.seed_start(), plan.shard_count() as u64);
                    next = plan.seed_end();
                    total += plan.shard_count();
                }
                assert_eq!(total, count);
                assert_eq!(next, 2009 + count as u64);
            }
        }
    }

    #[test]
    fn shard_sizes_differ_by_at_most_one() {
        let sizes: Vec<usize> = (0..5)
            .map(|i| ShardPlan::new(0, 17, i, 5).unwrap().shard_count())
            .collect();
        assert_eq!(sizes, vec![4, 4, 3, 3, 3]);
    }

    #[test]
    fn invalid_plans_are_rejected() {
        assert!(matches!(ShardPlan::new(0, 10, 0, 0), Err(DistError::Plan(_))));
        assert!(matches!(ShardPlan::new(0, 10, 3, 3), Err(DistError::Plan(_))));
    }

    #[test]
    fn range_plans_carry_their_explicit_slice() {
        let plan = ShardPlan::range(2009, 100, 34, 33).unwrap();
        assert_eq!(plan.range_slice(), Some((34, 33)));
        assert_eq!(plan.shard_offset(), 34);
        assert_eq!(plan.shard_count(), 33);
        assert_eq!(plan.seed_start(), 2043);
        assert_eq!(plan.seed_end(), 2076);
        // Zero-length and full-campaign slices are valid; overshoot is not.
        assert!(ShardPlan::range(0, 10, 10, 0).is_ok());
        assert!(ShardPlan::range(0, 10, 0, 10).is_ok());
        assert!(matches!(ShardPlan::range(0, 10, 5, 6), Err(DistError::Plan(_))));
        assert!(matches!(ShardPlan::range(0, 10, usize::MAX, 2), Err(DistError::Plan(_))));
    }

    #[test]
    fn fraction_designator_parses_and_validates() {
        assert_eq!(ShardPlan::parse_fraction("0/1").unwrap(), (0, 1));
        assert_eq!(ShardPlan::parse_fraction("2/3").unwrap(), (2, 3));
        for bad in ["3/3", "1", "a/2", "1/b", "1/0", "-1/2"] {
            assert!(ShardPlan::parse_fraction(bad).is_err(), "{bad}");
        }
    }
}
