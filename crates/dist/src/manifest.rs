//! The shard manifest: a one-line JSON header that makes a shard file
//! self-describing and verifiable at merge time.

use crate::json::{parse, JsonValue};
use crate::plan::ShardPlan;
use crate::DistError;
use repwf_core::model::CommModel;
use repwf_gen::{GenConfig, Range};

/// Schema tag of the shard NDJSON format.
pub const SHARD_SCHEMA: &str = "repwf-shard/v1";

/// Short name of a communication model (`overlap` / `strict`), as used in
/// manifests and the campaign JSON document.
pub fn model_name(model: CommModel) -> &'static str {
    match model {
        CommModel::Overlap => "overlap",
        CommModel::Strict => "strict",
    }
}

fn parse_model(name: &str) -> Option<CommModel> {
    match name {
        "overlap" => Some(CommModel::Overlap),
        "strict" => Some(CommModel::Strict),
        _ => None,
    }
}

/// Everything that determines a campaign's outcomes: the generator
/// configuration, the communication model, the TPN size cap and the seed
/// range. Two shard files belong to the same campaign iff their specs
/// agree **bitwise** (time ranges are compared as f64 bit patterns).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampaignSpec {
    /// Generator configuration (stages, procs, time ranges).
    pub cfg: GenConfig,
    /// Communication model.
    pub model: CommModel,
    /// Total experiment count of the campaign (all shards together).
    pub count: usize,
    /// Base seed; experiment `k` uses `seed_base + k`.
    pub seed_base: u64,
    /// TPN transition cap before simulator fallback.
    pub cap: usize,
}

/// The parsed (or to-be-written) manifest of one shard file: the campaign
/// spec plus this shard's place in the plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardManifest {
    /// The campaign this shard belongs to.
    pub spec: CampaignSpec,
    /// This shard's slice of the seed range.
    pub plan: ShardPlan,
}

impl ShardManifest {
    /// Builds the manifest for shard `shard_index` of `num_shards` of a
    /// campaign.
    pub fn new(
        spec: CampaignSpec,
        shard_index: usize,
        num_shards: usize,
    ) -> Result<ShardManifest, DistError> {
        let plan = ShardPlan::new(spec.seed_base, spec.count, shard_index, num_shards)?;
        Ok(ShardManifest { spec, plan })
    }

    /// Builds the manifest for an explicit seed sub-range of a campaign
    /// (a supervisor claim unit).
    pub fn new_range(
        spec: CampaignSpec,
        offset: usize,
        len: usize,
    ) -> Result<ShardManifest, DistError> {
        let plan = ShardPlan::range(spec.seed_base, spec.count, offset, len)?;
        Ok(ShardManifest { spec, plan })
    }

    /// Serializes to the single NDJSON manifest line (no trailing
    /// newline). Time-range bounds are stored as exact f64 bit patterns;
    /// the redundant `seed_start`/`shard_count` fields let a reader
    /// verify the shard's claimed slice against the plan arithmetic.
    /// Range shards (supervisor claim units) additionally carry their
    /// explicit `range_offset`/`range_len` slice; fraction shards keep
    /// the exact byte layout of earlier releases.
    pub fn to_line(&self) -> String {
        let s = &self.spec;
        let p = &self.plan;
        let range_fields = match p.range_slice() {
            Some((offset, len)) => {
                format!(",\"range_offset\":{offset},\"range_len\":{len}")
            }
            None => String::new(),
        };
        format!(
            "{{\"kind\":\"manifest\",\"schema\":\"{SHARD_SCHEMA}\",\"model\":\"{}\",\
             \"stages\":{},\"procs\":{},\
             \"comp_lo_bits\":{},\"comp_hi_bits\":{},\
             \"comm_lo_bits\":{},\"comm_hi_bits\":{},\
             \"count\":{},\"seed_base\":{},\"cap\":{},\
             \"shard_index\":{},\"num_shards\":{},\
             \"seed_start\":{},\"shard_count\":{}{range_fields}}}",
            model_name(s.model),
            s.cfg.stages,
            s.cfg.procs,
            s.cfg.comp.lo.to_bits(),
            s.cfg.comp.hi.to_bits(),
            s.cfg.comm.lo.to_bits(),
            s.cfg.comm.hi.to_bits(),
            s.count,
            s.seed_base,
            s.cap,
            p.shard_index,
            p.num_shards,
            p.seed_start(),
            p.shard_count(),
        )
    }

    /// Parses a manifest line (`path` only labels errors).
    pub fn parse_line(line: &str, path: &str) -> Result<ShardManifest, DistError> {
        let corrupt = |reason: String| DistError::Corrupt { path: path.to_string(), reason };
        let doc = parse(line).map_err(|e| corrupt(format!("manifest line: {e}")))?;
        let str_field = |key: &str| -> Result<&str, DistError> {
            doc.get(key)
                .and_then(JsonValue::as_str)
                .ok_or_else(|| corrupt(format!("manifest field {key:?} missing or not a string")))
        };
        let u64_field = |key: &str| -> Result<u64, DistError> {
            doc.get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| corrupt(format!("manifest field {key:?} missing or not an integer")))
        };
        if str_field("kind")? != "manifest" {
            return Err(corrupt("first line is not a manifest".to_string()));
        }
        let schema = str_field("schema")?;
        if schema != SHARD_SCHEMA {
            return Err(corrupt(format!(
                "unknown shard schema {schema:?} (expected {SHARD_SCHEMA:?})"
            )));
        }
        let model = parse_model(str_field("model")?)
            .ok_or_else(|| corrupt("manifest field \"model\" is not a known model".to_string()))?;
        let spec = CampaignSpec {
            cfg: GenConfig {
                stages: u64_field("stages")? as usize,
                procs: u64_field("procs")? as usize,
                comp: Range::new(
                    f64::from_bits(u64_field("comp_lo_bits")?),
                    f64::from_bits(u64_field("comp_hi_bits")?),
                ),
                comm: Range::new(
                    f64::from_bits(u64_field("comm_lo_bits")?),
                    f64::from_bits(u64_field("comm_hi_bits")?),
                ),
            },
            model,
            count: u64_field("count")? as usize,
            seed_base: u64_field("seed_base")?,
            cap: u64_field("cap")? as usize,
        };
        let manifest = if doc.get("range_offset").is_some() || doc.get("range_len").is_some() {
            let plan = ShardPlan::range(
                spec.seed_base,
                spec.count,
                u64_field("range_offset")? as usize,
                u64_field("range_len")? as usize,
            )
            .map_err(|e| corrupt(format!("manifest declares an invalid range: {e}")))?;
            ShardManifest { spec, plan }
        } else {
            ShardManifest::new(
                spec,
                u64_field("shard_index")? as usize,
                u64_field("num_shards")? as usize,
            )
            .map_err(|e| corrupt(format!("manifest declares an invalid plan: {e}")))?
        };
        // The redundant slice fields must agree with the plan arithmetic —
        // a shard claiming a foreign slice is corrupt, not merely odd.
        let (claimed_start, claimed_count) =
            (u64_field("seed_start")?, u64_field("shard_count")? as usize);
        if claimed_start != manifest.plan.seed_start()
            || claimed_count != manifest.plan.shard_count()
        {
            return Err(corrupt(format!(
                "manifest claims seeds {claimed_start}..{} but shard {}/{} of this campaign \
                 owns {}..{}",
                claimed_start + claimed_count as u64,
                manifest.plan.shard_index,
                manifest.plan.num_shards,
                manifest.plan.seed_start(),
                manifest.plan.seed_end(),
            )));
        }
        Ok(manifest)
    }

    /// First campaign-level difference between two manifests (ignores
    /// `shard_index`, which legitimately differs between shards), as a
    /// human-readable `field: a vs b` description — `None` when the two
    /// shards belong to the same campaign and plan layout.
    pub fn campaign_mismatch(&self, other: &ShardManifest) -> Option<String> {
        let a = &self.spec;
        let b = &other.spec;
        let fields: [(&str, String, String); 10] = [
            ("model", model_name(a.model).into(), model_name(b.model).into()),
            ("stages", a.cfg.stages.to_string(), b.cfg.stages.to_string()),
            ("procs", a.cfg.procs.to_string(), b.cfg.procs.to_string()),
            ("comp.lo", a.cfg.comp.lo.to_string(), b.cfg.comp.lo.to_string()),
            ("comp.hi", a.cfg.comp.hi.to_string(), b.cfg.comp.hi.to_string()),
            ("comm.lo", a.cfg.comm.lo.to_string(), b.cfg.comm.lo.to_string()),
            ("comm.hi", a.cfg.comm.hi.to_string(), b.cfg.comm.hi.to_string()),
            ("count", a.count.to_string(), b.count.to_string()),
            ("seed_base", a.seed_base.to_string(), b.seed_base.to_string()),
            ("cap", a.cap.to_string(), b.cap.to_string()),
        ];
        // Bitwise range comparison: a NaN or -0.0 smuggled into a range
        // must not compare as "same campaign".
        let bit_pairs = [
            (a.cfg.comp.lo, b.cfg.comp.lo),
            (a.cfg.comp.hi, b.cfg.comp.hi),
            (a.cfg.comm.lo, b.cfg.comm.lo),
            (a.cfg.comm.hi, b.cfg.comm.hi),
        ];
        for (k, (x, y)) in bit_pairs.iter().enumerate() {
            if x.to_bits() != y.to_bits() {
                let (name, va, vb) = &fields[3 + k];
                return Some(format!("{name}: {va} vs {vb}"));
            }
        }
        for (name, va, vb) in &fields {
            if va != vb {
                return Some(format!("{name}: {va} vs {vb}"));
            }
        }
        // Fraction shards of one campaign must share the shard layout.
        // Range shards carry explicit slices instead: any mix of slices of
        // the same campaign is layout-compatible (the merge checks that
        // the *covered* ranges tile the seed space), and a range shard is
        // also compatible with fraction shards.
        if self.plan.range_slice().is_none()
            && other.plan.range_slice().is_none()
            && self.plan.num_shards != other.plan.num_shards
        {
            return Some(format!(
                "num_shards: {} vs {}",
                self.plan.num_shards, other.plan.num_shards
            ));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> CampaignSpec {
        CampaignSpec {
            cfg: GenConfig {
                stages: 2,
                procs: 7,
                comp: Range::constant(1.0),
                comm: Range::new(5.0, 10.0),
            },
            model: CommModel::Strict,
            count: 100,
            seed_base: 2009,
            cap: 400_000,
        }
    }

    #[test]
    fn manifest_round_trips_through_its_line() {
        let manifest = ShardManifest::new(spec(), 1, 3).unwrap();
        let line = manifest.to_line();
        assert!(!line.contains('\n'));
        let back = ShardManifest::parse_line(&line, "s1.ndjson").unwrap();
        assert_eq!(back, manifest);
        assert_eq!(back.plan.seed_start(), 2009 + 34);
        assert_eq!(back.plan.shard_count(), 33);
        assert!(manifest.campaign_mismatch(&back).is_none());
    }

    #[test]
    fn range_manifests_round_trip_and_are_layout_compatible() {
        let manifest = ShardManifest::new_range(spec(), 34, 33).unwrap();
        let line = manifest.to_line();
        assert!(line.contains("\"range_offset\":34,\"range_len\":33"), "{line}");
        let back = ShardManifest::parse_line(&line, "r2043-33.ndjson").unwrap();
        assert_eq!(back, manifest);
        assert_eq!(back.plan.seed_start(), 2043);
        assert_eq!(back.plan.shard_count(), 33);

        // Different slices of one campaign are the same campaign; so is a
        // range shard next to a fraction shard.
        let other = ShardManifest::new_range(spec(), 0, 34).unwrap();
        assert!(manifest.campaign_mismatch(&other).is_none());
        let fraction = ShardManifest::new(spec(), 1, 3).unwrap();
        assert!(manifest.campaign_mismatch(&fraction).is_none());

        // A range overshooting the campaign is corrupt at parse time.
        let doctored = line.replace("\"range_len\":33", "\"range_len\":90");
        let err = ShardManifest::parse_line(&doctored, "x").unwrap_err();
        assert!(matches!(err, DistError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn mismatches_are_diagnosed_field_by_field() {
        let a = ShardManifest::new(spec(), 0, 3).unwrap();
        let mut other = spec();
        other.model = CommModel::Overlap;
        let b = ShardManifest::new(other, 1, 3).unwrap();
        let diff = a.campaign_mismatch(&b).expect("differs");
        assert!(diff.contains("model"), "{diff}");

        let mut other = spec();
        other.cfg.comm = Range::new(5.0, 11.0);
        let c = ShardManifest::new(other, 1, 3).unwrap();
        let diff = a.campaign_mismatch(&c).expect("differs");
        assert!(diff.contains("comm.hi"), "{diff}");

        let d = ShardManifest::new(spec(), 1, 4).unwrap();
        let diff = a.campaign_mismatch(&d).expect("differs");
        assert!(diff.contains("num_shards"), "{diff}");

        // Same campaign, different shard index: NOT a mismatch.
        let e = ShardManifest::new(spec(), 2, 3).unwrap();
        assert!(a.campaign_mismatch(&e).is_none());
    }

    #[test]
    fn foreign_slice_claims_are_corrupt() {
        let line = ShardManifest::new(spec(), 1, 3).unwrap().to_line();
        let doctored = line.replace("\"seed_start\":2043", "\"seed_start\":2044");
        let err = ShardManifest::parse_line(&doctored, "x").unwrap_err();
        assert!(matches!(err, DistError::Corrupt { .. }), "{err}");

        let garbage = ShardManifest::parse_line("{\"kind\":\"outcome\"}", "x").unwrap_err();
        assert!(matches!(garbage, DistError::Corrupt { .. }), "{garbage}");
    }
}
