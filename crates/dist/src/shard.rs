//! The streaming NDJSON shard file: writer, checkpoint/resume, reader.
//!
//! # File format (`repwf-shard/v1`)
//!
//! One JSON object per line:
//!
//! ```text
//! {"kind":"manifest", ...}                          // header, see manifest.rs
//! {"kind":"outcome","seed":2043,"num_paths":60,
//!  "mct_bits":...,"period_bits":...,"resolution":"exact"}   // one per experiment
//! ...                                               // strictly in seed order
//! {"kind":"footer","records":33,"checksum":"94cd4b9672a1e3f0"}
//! ```
//!
//! Floating-point fields travel as **u64 bit patterns**, so a record
//! round-trips bit-for-bit (including infinities from degenerate
//! simulator-fallback draws, which plain JSON floats cannot carry). The
//! footer checksum is FNV-1a/64 over the outcome-line bytes (newlines
//! included), chained in order — cheap, streaming, and enough to catch
//! torn or hand-edited files at merge time.
//!
//! Records are appended **in seed order** even though the campaign runs
//! on the multi-threaded work-stealing executor (the ordered sink of
//! [`repwf_gen::campaign::run_campaign_streamed`]); a killed process
//! therefore leaves `manifest + k complete records`, which is exactly a
//! checkpoint. [`run_shard`] validates such a prefix — manifest match,
//! seed contiguity, record shape — drops a torn trailing line, and
//! resumes from the first missing seed. Because every outcome is a pure
//! function of its seed, the resumed file converges to the same bytes as
//! an uninterrupted run.

use crate::json::{parse, JsonValue};
use crate::manifest::{CampaignSpec, ShardManifest};
use crate::DistError;
use repwf_gen::campaign::{run_campaign_streamed, ExperimentOutcome, Resolution};
use std::io::{Seek as _, Write as _};
use std::path::Path;
use std::sync::Mutex;

/// FNV-1a 64-bit running checksum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Checksum(u64);

impl Checksum {
    /// The empty checksum (FNV offset basis).
    pub fn new() -> Checksum {
        Checksum(0xcbf2_9ce4_8422_2325)
    }

    /// Folds bytes in.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Lower-case 16-digit hex rendering (the footer format).
    pub fn hex(&self) -> String {
        format!("{:016x}", self.0)
    }

    /// The raw 64-bit state (for snapshotting mid-stream).
    pub fn state(&self) -> u64 {
        self.0
    }

    /// Restores a checksum from a [`state`](Checksum::state) snapshot.
    pub fn from_state(state: u64) -> Checksum {
        Checksum(state)
    }
}

impl Default for Checksum {
    fn default() -> Self {
        Checksum::new()
    }
}

/// Serializes one outcome as its NDJSON line (trailing newline included).
pub fn outcome_line(o: &ExperimentOutcome) -> String {
    format!(
        "{{\"kind\":\"outcome\",\"seed\":{},\"num_paths\":{},\"mct_bits\":{},\
         \"period_bits\":{},\"resolution\":\"{}\"}}\n",
        o.seed,
        o.num_paths,
        o.mct.to_bits(),
        o.period.to_bits(),
        match o.resolution {
            Resolution::Exact => "exact",
            Resolution::Simulated => "simulated",
        },
    )
}

/// Renders the footer line. `short` marks a file deliberately closed
/// early — a supervisor claim unit whose tail was re-split away — via a
/// redundant `covered` field (equal to `records`): its presence tells the
/// scanner that `records < shard_count` is an intentional partial cover,
/// not a truncation. Classic full shards keep the historical byte layout.
fn footer_line(records: usize, short: bool, checksum: &Checksum) -> String {
    let covered = if short { format!("\"covered\":{records},") } else { String::new() };
    format!(
        "{{\"kind\":\"footer\",\"records\":{records},{covered}\"checksum\":\"{}\"}}\n",
        checksum.hex()
    )
}

/// A classified non-manifest shard line.
enum Record {
    Outcome(ExperimentOutcome),
    Footer { records: usize, covered: Option<usize>, checksum: String },
}

fn parse_record(line: &str) -> Result<Record, String> {
    let doc = parse(line).map_err(|e| format!("unparseable line: {e}"))?;
    let kind = doc
        .get("kind")
        .and_then(JsonValue::as_str)
        .ok_or("line has no \"kind\" field")?;
    let u64_field = |key: &str| -> Result<u64, String> {
        doc.get(key)
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| format!("field {key:?} missing or not an integer"))
    };
    match kind {
        "outcome" => Ok(Record::Outcome(ExperimentOutcome {
            seed: u64_field("seed")?,
            num_paths: doc
                .get("num_paths")
                .and_then(JsonValue::as_u128)
                .ok_or("field \"num_paths\" missing or not an integer")?,
            mct: f64::from_bits(u64_field("mct_bits")?),
            period: f64::from_bits(u64_field("period_bits")?),
            resolution: match doc.get("resolution").and_then(JsonValue::as_str) {
                Some("exact") => Resolution::Exact,
                Some("simulated") => Resolution::Simulated,
                other => return Err(format!("unknown resolution {other:?}")),
            },
        })),
        "footer" => Ok(Record::Footer {
            records: u64_field("records")? as usize,
            covered: match doc.get("covered") {
                None => None,
                Some(v) => Some(
                    v.as_u64().ok_or("footer field \"covered\" is not an integer")? as usize,
                ),
            },
            checksum: doc
                .get("checksum")
                .and_then(JsonValue::as_str)
                .ok_or("footer has no \"checksum\"")?
                .to_string(),
        }),
        other => Err(format!("unknown line kind {other:?}")),
    }
}

/// Validated scan of a shard file's bytes.
pub(crate) struct Scan {
    pub(crate) manifest: ShardManifest,
    pub(crate) outcomes: Vec<ExperimentOutcome>,
    /// Byte length of the valid prefix (manifest + complete records); a
    /// torn trailing line sits beyond this.
    pub(crate) valid_len: usize,
    /// Whether a valid footer closed the file. An **early-closed** file
    /// (footer with a `covered` field below the declared shard count — a
    /// supervisor unit whose tail was split away) counts as complete: it
    /// fully covers the seeds it claims.
    pub(crate) complete: bool,
}

/// Scans shard-file text: validates the manifest, every record's shape
/// and seed, and the footer. A **torn tail** — a final chunk without its
/// newline, or a final line that no longer parses — is tolerated and
/// excluded from `valid_len` (that is the checkpoint a killed writer
/// leaves); any interior violation, out-of-order seed, or checksum
/// mismatch is [`DistError::Corrupt`].
pub(crate) fn scan(text: &str, path: &str) -> Result<Scan, DistError> {
    let corrupt = |reason: String| DistError::Corrupt { path: path.to_string(), reason };
    let manifest = manifest_of(text, path)?;
    let expected = manifest.plan.shard_count();
    let mut chunks = text.split_inclusive('\n').peekable();
    let first = chunks.next().expect("manifest_of checked non-emptiness");

    let mut outcomes: Vec<ExperimentOutcome> = Vec::new();
    let mut checksum = Checksum::new();
    let mut valid_len = first.len();
    let mut complete = false;
    let mut line_no = 1usize;
    while let Some(chunk) = chunks.next() {
        line_no += 1;
        let is_last = chunks.peek().is_none();
        let torn = |reason: &str| -> Result<(), DistError> {
            if is_last {
                Ok(()) // checkpoint boundary: drop the torn tail
            } else {
                Err(corrupt(format!("line {line_no}: {reason}")))
            }
        };
        if !chunk.ends_with('\n') {
            torn("line is truncated")?;
            break;
        }
        let record = match parse_record(chunk.trim_end_matches('\n')) {
            Ok(r) => r,
            Err(reason) => {
                torn(&reason)?;
                break;
            }
        };
        match record {
            Record::Outcome(o) => {
                let expected_seed = manifest.plan.seed_start() + outcomes.len() as u64;
                if outcomes.len() == expected {
                    return Err(corrupt(format!(
                        "line {line_no}: more records than the shard's {expected} seeds"
                    )));
                }
                if o.seed != expected_seed {
                    return Err(corrupt(format!(
                        "line {line_no}: record has seed {}, expected {expected_seed} \
                         (records must be contiguous in seed order)",
                        o.seed
                    )));
                }
                checksum.update(chunk.as_bytes());
                valid_len += chunk.len();
                outcomes.push(o);
            }
            Record::Footer { records, covered, checksum: claimed } => {
                if !is_last {
                    return Err(corrupt(format!("line {line_no}: footer is not the last line")));
                }
                if records != outcomes.len() {
                    return Err(corrupt(format!(
                        "footer says {records} records, file has {} of the shard's {expected}",
                        outcomes.len()
                    )));
                }
                match covered {
                    // Classic footer: the file must hold the full shard.
                    None if records != expected => {
                        return Err(corrupt(format!(
                            "footer says {records} records, file has {} of the shard's \
                             {expected}",
                            outcomes.len()
                        )));
                    }
                    // Early close: `covered` is redundant with `records`
                    // by construction; a disagreement is tampering.
                    Some(c) if c != records => {
                        return Err(corrupt(format!(
                            "footer covers {c} seeds but holds {records} records"
                        )));
                    }
                    _ => {}
                }
                if claimed != checksum.hex() {
                    return Err(corrupt(format!(
                        "footer checksum {claimed} does not match recomputed {}",
                        checksum.hex()
                    )));
                }
                valid_len += chunk.len();
                complete = true;
            }
        }
    }
    Ok(Scan { manifest, outcomes, valid_len, complete })
}

/// Parses just the manifest line of shard-file text — the cheap
/// first-phase check the merger runs over every file *before* paying the
/// full record-by-record parse of any of them, so a mismatched or
/// duplicate shard is diagnosed fast regardless of shard sizes.
pub(crate) fn manifest_of(text: &str, path: &str) -> Result<ShardManifest, DistError> {
    let corrupt = |reason: &str| DistError::Corrupt {
        path: path.to_string(),
        reason: reason.to_string(),
    };
    let first = text
        .split_inclusive('\n')
        .next()
        .ok_or_else(|| corrupt("file is empty"))?;
    if !first.ends_with('\n') {
        return Err(corrupt("manifest line is truncated"));
    }
    ShardManifest::parse_line(first.trim_end_matches('\n'), path)
}

/// Validates **complete** shard-file text (manifest, all records, valid
/// footer). An unfinished shard is an error naming the resume command —
/// the merger must never silently accept partial data.
pub(crate) fn read_complete(
    text: &str,
    name: &str,
) -> Result<(ShardManifest, Vec<ExperimentOutcome>), DistError> {
    let scan = scan(text, name)?;
    if !scan.complete {
        return Err(DistError::ShardSet(format!(
            "{name} is incomplete ({} of {} records, no valid footer) — re-run its \
             `repwf campaign --shard {}/{}` command to finish it",
            scan.outcomes.len(),
            scan.manifest.plan.shard_count(),
            scan.manifest.plan.shard_index,
            scan.manifest.plan.num_shards,
        )));
    }
    Ok((scan.manifest, scan.outcomes))
}

/// Reads a **complete** shard file from disk (see `read_complete`).
pub fn read_shard(path: &Path) -> Result<(ShardManifest, Vec<ExperimentOutcome>), DistError> {
    let name = path.display().to_string();
    let text = std::fs::read_to_string(path)
        .map_err(|e| DistError::Io(format!("cannot read {name}: {e}")))?;
    read_complete(&text, &name)
}

/// Buffered, checksummed writer of one shard (or supervisor range) file.
///
/// The writer keeps the durability discipline in one place:
///
/// * records are buffered and **flushed every `flush_every` records**
///   (checkpoint freshness: a SIGKILL discards at most `flush_every − 1`
///   buffered records, so resume restarts near where the worker died);
/// * the file is **fsynced before the footer** is appended (a shard that
///   reports success can never lose its body to a crash, and a footer
///   never lands before its records) and fsynced again after it;
/// * per-record byte offsets and checksum states are tracked, so the
///   writer can **truncate back to any record count** exactly (resume
///   after a torn tail, early close after a re-split) without rescanning.
pub(crate) struct ShardWriter {
    file: std::fs::File,
    name: String,
    /// Unflushed tail bytes (records accepted but not yet written out).
    buf: Vec<u8>,
    flush_every: usize,
    /// `offsets[k]` = file byte length after `k` records (offsets[0] is
    /// the manifest line).
    offsets: Vec<u64>,
    /// FNV state after `k` records (raw bits, parallel to `offsets`).
    checksums: Vec<u64>,
    checksum: Checksum,
    /// Records accepted (flushed + buffered).
    written: usize,
    /// Records whose bytes have reached the file.
    flushed: usize,
}

impl ShardWriter {
    fn io(&self, e: std::io::Error) -> DistError {
        DistError::Io(format!("{}: {e}", self.name))
    }

    /// Wraps a file positioned at the end of a valid prefix: the manifest
    /// line plus `outcomes` complete records (the resume checkpoint, or
    /// an empty fresh file). Offsets and checksum states are rebuilt from
    /// the outcomes — every record line is a pure function of its
    /// outcome, so the reconstruction is exact.
    pub(crate) fn resume(
        file: std::fs::File,
        name: String,
        manifest_len: u64,
        outcomes: &[ExperimentOutcome],
        flush_every: usize,
    ) -> ShardWriter {
        let mut offsets = Vec::with_capacity(outcomes.len() + 1);
        let mut checksums = Vec::with_capacity(outcomes.len() + 1);
        let mut checksum = Checksum::new();
        let mut len = manifest_len;
        offsets.push(len);
        checksums.push(checksum.state());
        for outcome in outcomes {
            let line = outcome_line(outcome);
            checksum.update(line.as_bytes());
            len += line.len() as u64;
            offsets.push(len);
            checksums.push(checksum.state());
        }
        ShardWriter {
            file,
            name,
            buf: Vec::new(),
            flush_every: flush_every.max(1),
            offsets,
            checksums,
            checksum,
            written: outcomes.len(),
            flushed: outcomes.len(),
        }
    }

    /// Records accepted so far (flushed + buffered).
    /// Appends one record, flushing at the cadence.
    pub(crate) fn append(&mut self, outcome: &ExperimentOutcome) -> Result<(), DistError> {
        let line = outcome_line(outcome);
        self.checksum.update(line.as_bytes());
        self.buf.extend_from_slice(line.as_bytes());
        self.offsets.push(self.offsets[self.written] + line.len() as u64);
        self.checksums.push(self.checksum.state());
        self.written += 1;
        if self.written - self.flushed >= self.flush_every {
            self.flush()?;
        }
        Ok(())
    }

    /// Writes the buffered tail out to the file.
    pub(crate) fn flush(&mut self) -> Result<(), DistError> {
        if !self.buf.is_empty() {
            let buf = std::mem::take(&mut self.buf);
            self.file.write_all(&buf).map_err(|e| self.io(e))?;
        }
        self.flushed = self.written;
        Ok(())
    }

    /// Truncates back to exactly `keep` records (buffered records are
    /// dropped from memory; flushed records beyond `keep` are cut with
    /// `set_len` and the truncation is fsynced so a crash cannot resurrect
    /// them under a later footer).
    pub(crate) fn truncate_to(&mut self, keep: usize) -> Result<(), DistError> {
        assert!(keep <= self.written, "cannot truncate forward");
        if keep == self.written {
            return Ok(());
        }
        let keep_len = self.offsets[keep];
        if keep >= self.flushed {
            // The cut lands in the buffer: drop the buffered excess only.
            let flushed_len = self.offsets[self.flushed];
            self.buf.truncate((keep_len - flushed_len) as usize);
        } else {
            self.buf.clear();
            self.file.set_len(keep_len).map_err(|e| self.io(e))?;
            // set_len does not move the cursor: without the seek the next
            // write would land past EOF and zero-fill the cut, leaving a
            // footer stranded behind an unparseable NUL run.
            self.file
                .seek(std::io::SeekFrom::Start(keep_len))
                .map_err(|e| self.io(e))?;
            self.file.sync_data().map_err(|e| self.io(e))?;
            self.flushed = keep;
        }
        self.written = keep;
        self.offsets.truncate(keep + 1);
        self.checksums.truncate(keep + 1);
        self.checksum = Checksum::from_state(self.checksums[keep]);
        Ok(())
    }

    /// Flushes, **fsyncs the records**, appends the footer (`short` when
    /// the file deliberately covers fewer seeds than its manifest
    /// declares), and fsyncs again so completion is durable before any
    /// completion marker is written elsewhere.
    pub(crate) fn finish(&mut self, short: bool, checksum_xor: u64) -> Result<(), DistError> {
        self.flush()?;
        self.file.sync_data().map_err(|e| self.io(e))?;
        let footer_sum = Checksum::from_state(self.checksum.state() ^ checksum_xor);
        let line = footer_line(self.written, short, &footer_sum);
        self.file.write_all(line.as_bytes()).map_err(|e| self.io(e))?;
        self.file.sync_data().map_err(|e| self.io(e))?;
        Ok(())
    }

    /// Simulates a SIGKILL: the unflushed tail vanishes (never reaches
    /// the file) and, optionally, `torn` bytes of a half-written next
    /// line are left behind. Used by the deterministic fault injector.
    pub(crate) fn kill(mut self, torn: Option<&[u8]>) -> Result<usize, DistError> {
        self.buf.clear();
        if let Some(bytes) = torn {
            self.file.write_all(bytes).map_err(|e| self.io(e))?;
        }
        Ok(self.flushed)
    }
}

/// What [`run_shard`] did.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardRunSummary {
    /// The shard's manifest (plan slice included).
    pub manifest: ShardManifest,
    /// Records found valid on disk and kept (checkpoint).
    pub resumed: usize,
    /// Records newly computed and appended by this run.
    pub ran: usize,
}

/// Progress callback of [`run_shard`]: `(records_on_disk, shard_count)`.
pub type ShardProgress<'a> = &'a (dyn Fn(usize, usize) + Sync);

/// Options of [`run_shard_opts`] (and of the supervisor's range runner).
#[derive(Debug, Clone, Default)]
pub struct ShardRunOptions {
    /// Records per buffered flush (0 = the default cadence,
    /// [`DEFAULT_FLUSH_EVERY`]). A SIGKILL discards at most
    /// `flush_every − 1` records past the last flush, so smaller values
    /// trade write syscalls for checkpoint freshness.
    pub flush_every: usize,
    /// Deterministic fault injection (tests, chaos CI). `None` in
    /// production.
    pub fault: Option<crate::fault::FaultPlan>,
}

/// Default flush cadence of the shard writer, in records.
pub const DEFAULT_FLUSH_EVERY: usize = 64;

impl ShardRunOptions {
    pub(crate) fn cadence(&self) -> usize {
        if self.flush_every == 0 { DEFAULT_FLUSH_EVERY } else { self.flush_every }
    }
}

/// A validated checkpoint: what [`open_checkpoint`] found at the path.
pub(crate) struct Checkpoint {
    /// Records kept from disk (the resumed prefix, in seed order).
    pub(crate) outcomes: Vec<ExperimentOutcome>,
    /// Writer positioned right after the kept records. For a `complete`
    /// file the footer still sits beyond the writer's offsets — only
    /// touch the writer after `truncate_to` below the record count.
    pub(crate) writer: ShardWriter,
    /// Whether a valid footer closed the file.
    pub(crate) complete: bool,
}

/// Opens (or creates) a shard/range file for `manifest` and validates the
/// checkpoint: a missing file becomes a fresh manifest-only file, a torn
/// tail is truncated away (and the truncation fsynced), a foreign or
/// divergent manifest is refused. With `quarantine`, a corrupt file is
/// renamed to `<path>.quarantine-<k>` and restarted fresh instead of
/// failing — the supervisor's retry path for e.g. a corrupted footer —
/// while manifest mismatches still propagate (they are configuration
/// errors, not data loss).
pub(crate) fn open_checkpoint(
    manifest: &ShardManifest,
    path: &Path,
    flush_every: usize,
    quarantine: bool,
) -> Result<Checkpoint, DistError> {
    let name = path.display().to_string();
    let io = |e: std::io::Error| DistError::Io(format!("{name}: {e}"));

    // A file holding only a torn prefix of *this shard's own* manifest
    // line is a process killed during the very first write — restart it
    // fresh (there are zero records to lose); a torn first line that is
    // NOT our manifest prefix stays an error, so a foreign file is never
    // silently overwritten.
    let scanned = match std::fs::read_to_string(path) {
        Ok(text) if text.is_empty() => None,
        Ok(text)
            if !text.contains('\n')
                && format!("{}\n", manifest.to_line()).starts_with(&text) =>
        {
            None
        }
        Ok(text) => match scan(&text, &name) {
            Ok(scan) => Some(scan),
            Err(err @ DistError::Corrupt { .. }) if quarantine => {
                quarantine_file(path, &name, &err)?;
                None
            }
            Err(e) => return Err(e),
        },
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
        Err(e) => return Err(io(e)),
    };
    match scanned {
        Some(scanned) => {
            if scanned.manifest.plan != manifest.plan {
                return Err(DistError::ManifestMismatch {
                    path: name,
                    reason: format!(
                        "file covers seeds {}..{} as shard {}/{}, this run owns {}..{} as \
                         shard {}/{}",
                        scanned.manifest.plan.seed_start(),
                        scanned.manifest.plan.seed_end(),
                        scanned.manifest.plan.shard_index,
                        scanned.manifest.plan.num_shards,
                        manifest.plan.seed_start(),
                        manifest.plan.seed_end(),
                        manifest.plan.shard_index,
                        manifest.plan.num_shards,
                    ),
                });
            }
            if let Some(diff) = scanned.manifest.campaign_mismatch(manifest) {
                return Err(DistError::ManifestMismatch {
                    path: name,
                    reason: format!("existing file vs this run: {diff}"),
                });
            }
            let file = std::fs::OpenOptions::new().write(true).open(path).map_err(io)?;
            let manifest_len = format!("{}\n", manifest.to_line()).len() as u64;
            if !scanned.complete {
                // Truncate the torn tail; fsync so the cut is durable
                // before new records land past it.
                file.set_len(scanned.valid_len as u64).map_err(io)?;
                file.sync_data().map_err(io)?;
            }
            let mut file = file;
            use std::io::Seek as _;
            file.seek(std::io::SeekFrom::End(0)).map_err(io)?;
            let writer =
                ShardWriter::resume(file, name, manifest_len, &scanned.outcomes, flush_every);
            Ok(Checkpoint { outcomes: scanned.outcomes, writer, complete: scanned.complete })
        }
        None => {
            let mut file = std::fs::File::create(path).map_err(io)?;
            // One write for line + newline: the only torn-manifest state a
            // kill can leave is a prefix of this exact line, which the
            // restart check above recognizes as ours.
            let line = format!("{}\n", manifest.to_line());
            file.write_all(line.as_bytes()).map_err(io)?;
            let writer = ShardWriter::resume(file, name, line.len() as u64, &[], flush_every);
            Ok(Checkpoint { outcomes: Vec::new(), writer, complete: false })
        }
    }
}

/// Renames a corrupt file out of the way (`<path>.quarantine-<k>`),
/// keeping the evidence while freeing the path for a fresh attempt.
fn quarantine_file(path: &Path, name: &str, err: &DistError) -> Result<(), DistError> {
    for k in 0..64 {
        let target = path.with_file_name(format!(
            "{}.quarantine-{k}",
            path.file_name().and_then(|n| n.to_str()).unwrap_or("shard"),
        ));
        if target.exists() {
            continue;
        }
        std::fs::rename(path, &target)
            .map_err(|e| DistError::Io(format!("quarantining {name}: {e}")))?;
        return Ok(());
    }
    Err(DistError::Io(format!("too many quarantined copies of {name} ({err})")))
}

/// Runs (or resumes) shard `shard_index` of `num_shards` of the campaign
/// described by `spec`, streaming records to `path` in seed order.
///
/// * No file at `path` → fresh run: manifest, records, footer.
/// * A partial file → **resume**: the prefix is validated against this
///   campaign's manifest (a foreign or divergent manifest is a
///   [`DistError::ManifestMismatch`], never overwritten), a torn
///   trailing line is truncated away, and the campaign continues from
///   the first missing seed. Already-valid records are *not* recomputed.
/// * A complete file → validated, then returned with `ran == 0`.
///
/// The resulting bytes are identical for any `threads` value and any
/// kill/resume history, because records are appended in seed order and
/// each is a pure function of `(spec, seed)`.
///
/// **Single writer per shard file.** Resume is kill-safe, but the file
/// is not locked against *concurrent* writers: two simultaneous runs of
/// the same shard command would interleave appends and corrupt the
/// checkpoint (the damage is diagnosed at the next resume or merge via
/// the seed-contiguity and checksum validation, never silently
/// accepted). Schedulers that auto-restart shards must wait for the
/// previous attempt to exit first. (An exclusive lock file would catch
/// this earlier, but a kill would then strand a stale lock and break
/// the re-run-to-resume contract, which is the more common path.)
pub fn run_shard(
    spec: &CampaignSpec,
    shard_index: usize,
    num_shards: usize,
    threads: usize,
    path: &Path,
    progress: Option<ShardProgress<'_>>,
) -> Result<ShardRunSummary, DistError> {
    run_shard_opts(
        spec,
        shard_index,
        num_shards,
        threads,
        path,
        progress,
        &ShardRunOptions::default(),
    )
}

/// [`run_shard`] with explicit [`ShardRunOptions`] (flush cadence, fault
/// injection).
pub fn run_shard_opts(
    spec: &CampaignSpec,
    shard_index: usize,
    num_shards: usize,
    threads: usize,
    path: &Path,
    progress: Option<ShardProgress<'_>>,
    opts: &ShardRunOptions,
) -> Result<ShardRunSummary, DistError> {
    let manifest = ShardManifest::new(*spec, shard_index, num_shards)?;
    run_manifest(&manifest, threads, path, progress, opts, false)
}

/// Runs (or resumes) the explicit slice `offset..offset+len` of the
/// campaign as a standalone **range** shard file — the `repwf campaign
/// --range OFF+LEN` command that merge diagnostics print next to each
/// coverage gap, and the manual way to fill in a degraded supervisor
/// unit. Same checkpoint/resume semantics as [`run_shard`].
pub fn run_range(
    spec: &CampaignSpec,
    offset: usize,
    len: usize,
    threads: usize,
    path: &Path,
    progress: Option<ShardProgress<'_>>,
    opts: &ShardRunOptions,
) -> Result<ShardRunSummary, DistError> {
    let manifest = ShardManifest::new_range(*spec, offset, len)?;
    run_manifest(&manifest, threads, path, progress, opts, false)
}

/// Shared run core for fraction shards and supervisor range units: open
/// (or create) the checkpoint for `manifest`, stream the missing seeds to
/// the file, close with a footer. `quarantine` relaxes corrupt-file
/// handling for the supervisor's retry path (see [`open_checkpoint`]).
pub(crate) fn run_manifest(
    manifest: &ShardManifest,
    threads: usize,
    path: &Path,
    progress: Option<ShardProgress<'_>>,
    opts: &ShardRunOptions,
    quarantine: bool,
) -> Result<ShardRunSummary, DistError> {
    let checkpoint = open_checkpoint(manifest, path, opts.cadence(), quarantine)?;
    let total = manifest.plan.shard_count();
    let resumed = checkpoint.outcomes.len();
    if checkpoint.complete {
        if let Some(cb) = progress {
            cb(resumed, total);
        }
        return Ok(ShardRunSummary { manifest: *manifest, resumed, ran: 0 });
    }
    let ran = stream_records(manifest, checkpoint.writer, resumed, threads, progress, opts)?;
    Ok(ShardRunSummary { manifest: *manifest, resumed, ran })
}

/// State the streaming sink mutates under the executor's reorder lock.
struct SinkState {
    /// `None` once the writer was consumed by an injected kill.
    writer: Option<ShardWriter>,
    /// First I/O error (stops further writes, keeping the prefix valid).
    error: Option<DistError>,
    /// Records appended by this run (not counting the resumed prefix).
    ran: usize,
}

/// Streams seeds `resumed..total` of the manifest's slice into `writer`
/// in seed order, applies any injected faults, and closes the file with
/// a footer. Returns the number of records newly computed.
fn stream_records(
    manifest: &ShardManifest,
    writer: ShardWriter,
    resumed: usize,
    threads: usize,
    progress: Option<ShardProgress<'_>>,
    opts: &ShardRunOptions,
) -> Result<usize, DistError> {
    let spec = &manifest.spec;
    let total = manifest.plan.shard_count();
    let next_seed = manifest.plan.seed_start() + resumed as u64;
    let remaining = total - resumed;
    if let Some(cb) = progress {
        cb(resumed, total);
    }
    let fault = opts.fault.clone().unwrap_or_default();

    // Stream the remaining seeds in order; the sink runs under the
    // executor's reorder lock, so writes land in seed order at any
    // thread count. An I/O error (or injected kill) stops further writes
    // — the on-disk prefix stays a valid checkpoint — and is reported
    // after the run.
    let state = Mutex::new(SinkState { writer: Some(writer), error: None, ran: 0 });
    run_campaign_streamed(
        &spec.cfg,
        spec.model,
        remaining,
        next_seed,
        threads,
        spec.cap,
        &|outcome| {
            if fault.slow_ms > 0 {
                // Straggler injection sleeps *outside* the sink lock so a
                // slow worker stalls throughput, not correctness.
                std::thread::sleep(std::time::Duration::from_millis(fault.slow_ms));
            }
            let mut s = state.lock().expect("shard writer poisoned");
            if s.writer.is_none() || s.error.is_some() {
                return;
            }
            if fault.kill_after == Some(s.ran) {
                // The injected SIGKILL: the unflushed buffer vanishes and
                // (optionally) a torn prefix of this very record's line is
                // left behind — exactly the disk state a real kill leaves.
                let line = outcome_line(outcome);
                let torn_len = fault.torn.min(line.len().saturating_sub(1));
                let torn = (torn_len > 0).then(|| &line.as_bytes()[..torn_len]);
                let writer = s.writer.take().expect("writer present");
                let flushed = writer.kill(torn);
                if fault.process_exit {
                    std::process::exit(crate::fault::KILL_EXIT_CODE);
                }
                s.error = Some(match flushed {
                    Ok(flushed) => DistError::Fault(format!(
                        "injected kill after {} records ({flushed} flushed to disk)",
                        s.ran
                    )),
                    Err(e) => e,
                });
                return;
            }
            if let Err(e) = s.writer.as_mut().expect("checked above").append(outcome) {
                s.error = Some(e);
                return;
            }
            s.ran += 1;
            if let Some(cb) = progress {
                cb(resumed + s.ran, total);
            }
        },
    );
    let state = state.into_inner().expect("shard writer poisoned");
    if let Some(e) = state.error {
        return Err(e);
    }
    let mut writer = state.writer.expect("no error, so the writer survived");
    debug_assert_eq!(resumed + state.ran, total);
    // This path always writes the full slice; early-closed (`short`)
    // footers come from the supervisor's re-split truncation, which calls
    // `ShardWriter::finish(true, _)` itself.
    writer.finish(false, if fault.corrupt_footer { FOOTER_CORRUPTION_XOR } else { 0 })?;
    Ok(state.ran)
}

/// The deterministic damage `FaultPlan::corrupt_footer` applies to the
/// footer checksum (any nonzero constant works; this one is greppable).
pub(crate) const FOOTER_CORRUPTION_XOR: u64 = 0x0bad_f00d_0bad_f00d;
