//! The streaming NDJSON shard file: writer, checkpoint/resume, reader.
//!
//! # File format (`repwf-shard/v1`)
//!
//! One JSON object per line:
//!
//! ```text
//! {"kind":"manifest", ...}                          // header, see manifest.rs
//! {"kind":"outcome","seed":2043,"num_paths":60,
//!  "mct_bits":...,"period_bits":...,"resolution":"exact"}   // one per experiment
//! ...                                               // strictly in seed order
//! {"kind":"footer","records":33,"checksum":"94cd4b9672a1e3f0"}
//! ```
//!
//! Floating-point fields travel as **u64 bit patterns**, so a record
//! round-trips bit-for-bit (including infinities from degenerate
//! simulator-fallback draws, which plain JSON floats cannot carry). The
//! footer checksum is FNV-1a/64 over the outcome-line bytes (newlines
//! included), chained in order — cheap, streaming, and enough to catch
//! torn or hand-edited files at merge time.
//!
//! Records are appended **in seed order** even though the campaign runs
//! on the multi-threaded work-stealing executor (the ordered sink of
//! [`repwf_gen::campaign::run_campaign_streamed`]); a killed process
//! therefore leaves `manifest + k complete records`, which is exactly a
//! checkpoint. [`run_shard`] validates such a prefix — manifest match,
//! seed contiguity, record shape — drops a torn trailing line, and
//! resumes from the first missing seed. Because every outcome is a pure
//! function of its seed, the resumed file converges to the same bytes as
//! an uninterrupted run.

use crate::json::{parse, JsonValue};
use crate::manifest::{CampaignSpec, ShardManifest};
use crate::DistError;
use repwf_gen::campaign::{run_campaign_streamed, ExperimentOutcome, Resolution};
use std::io::Write as _;
use std::path::Path;
use std::sync::Mutex;

/// FNV-1a 64-bit running checksum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Checksum(u64);

impl Checksum {
    /// The empty checksum (FNV offset basis).
    pub fn new() -> Checksum {
        Checksum(0xcbf2_9ce4_8422_2325)
    }

    /// Folds bytes in.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Lower-case 16-digit hex rendering (the footer format).
    pub fn hex(&self) -> String {
        format!("{:016x}", self.0)
    }
}

impl Default for Checksum {
    fn default() -> Self {
        Checksum::new()
    }
}

/// Serializes one outcome as its NDJSON line (trailing newline included).
pub fn outcome_line(o: &ExperimentOutcome) -> String {
    format!(
        "{{\"kind\":\"outcome\",\"seed\":{},\"num_paths\":{},\"mct_bits\":{},\
         \"period_bits\":{},\"resolution\":\"{}\"}}\n",
        o.seed,
        o.num_paths,
        o.mct.to_bits(),
        o.period.to_bits(),
        match o.resolution {
            Resolution::Exact => "exact",
            Resolution::Simulated => "simulated",
        },
    )
}

fn footer_line(records: usize, checksum: &Checksum) -> String {
    format!("{{\"kind\":\"footer\",\"records\":{records},\"checksum\":\"{}\"}}\n", checksum.hex())
}

/// A classified non-manifest shard line.
enum Record {
    Outcome(ExperimentOutcome),
    Footer { records: usize, checksum: String },
}

fn parse_record(line: &str) -> Result<Record, String> {
    let doc = parse(line).map_err(|e| format!("unparseable line: {e}"))?;
    let kind = doc
        .get("kind")
        .and_then(JsonValue::as_str)
        .ok_or("line has no \"kind\" field")?;
    let u64_field = |key: &str| -> Result<u64, String> {
        doc.get(key)
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| format!("field {key:?} missing or not an integer"))
    };
    match kind {
        "outcome" => Ok(Record::Outcome(ExperimentOutcome {
            seed: u64_field("seed")?,
            num_paths: doc
                .get("num_paths")
                .and_then(JsonValue::as_u128)
                .ok_or("field \"num_paths\" missing or not an integer")?,
            mct: f64::from_bits(u64_field("mct_bits")?),
            period: f64::from_bits(u64_field("period_bits")?),
            resolution: match doc.get("resolution").and_then(JsonValue::as_str) {
                Some("exact") => Resolution::Exact,
                Some("simulated") => Resolution::Simulated,
                other => return Err(format!("unknown resolution {other:?}")),
            },
        })),
        "footer" => Ok(Record::Footer {
            records: u64_field("records")? as usize,
            checksum: doc
                .get("checksum")
                .and_then(JsonValue::as_str)
                .ok_or("footer has no \"checksum\"")?
                .to_string(),
        }),
        other => Err(format!("unknown line kind {other:?}")),
    }
}

/// Validated scan of a shard file's bytes.
struct Scan {
    manifest: ShardManifest,
    outcomes: Vec<ExperimentOutcome>,
    checksum: Checksum,
    /// Byte length of the valid prefix (manifest + complete records); a
    /// torn trailing line sits beyond this.
    valid_len: usize,
    /// Whether a valid footer closed the file.
    complete: bool,
}

/// Scans shard-file text: validates the manifest, every record's shape
/// and seed, and the footer. A **torn tail** — a final chunk without its
/// newline, or a final line that no longer parses — is tolerated and
/// excluded from `valid_len` (that is the checkpoint a killed writer
/// leaves); any interior violation, out-of-order seed, or checksum
/// mismatch is [`DistError::Corrupt`].
fn scan(text: &str, path: &str) -> Result<Scan, DistError> {
    let corrupt = |reason: String| DistError::Corrupt { path: path.to_string(), reason };
    let manifest = manifest_of(text, path)?;
    let expected = manifest.plan.shard_count();
    let mut chunks = text.split_inclusive('\n').peekable();
    let first = chunks.next().expect("manifest_of checked non-emptiness");

    let mut outcomes: Vec<ExperimentOutcome> = Vec::new();
    let mut checksum = Checksum::new();
    let mut valid_len = first.len();
    let mut complete = false;
    let mut line_no = 1usize;
    while let Some(chunk) = chunks.next() {
        line_no += 1;
        let is_last = chunks.peek().is_none();
        let torn = |reason: &str| -> Result<(), DistError> {
            if is_last {
                Ok(()) // checkpoint boundary: drop the torn tail
            } else {
                Err(corrupt(format!("line {line_no}: {reason}")))
            }
        };
        if !chunk.ends_with('\n') {
            torn("line is truncated")?;
            break;
        }
        let record = match parse_record(chunk.trim_end_matches('\n')) {
            Ok(r) => r,
            Err(reason) => {
                torn(&reason)?;
                break;
            }
        };
        match record {
            Record::Outcome(o) => {
                let expected_seed = manifest.plan.seed_start() + outcomes.len() as u64;
                if outcomes.len() == expected {
                    return Err(corrupt(format!(
                        "line {line_no}: more records than the shard's {expected} seeds"
                    )));
                }
                if o.seed != expected_seed {
                    return Err(corrupt(format!(
                        "line {line_no}: record has seed {}, expected {expected_seed} \
                         (records must be contiguous in seed order)",
                        o.seed
                    )));
                }
                checksum.update(chunk.as_bytes());
                valid_len += chunk.len();
                outcomes.push(o);
            }
            Record::Footer { records, checksum: claimed } => {
                if !is_last {
                    return Err(corrupt(format!("line {line_no}: footer is not the last line")));
                }
                if records != outcomes.len() || records != expected {
                    return Err(corrupt(format!(
                        "footer says {records} records, file has {} of the shard's {expected}",
                        outcomes.len()
                    )));
                }
                if claimed != checksum.hex() {
                    return Err(corrupt(format!(
                        "footer checksum {claimed} does not match recomputed {}",
                        checksum.hex()
                    )));
                }
                valid_len += chunk.len();
                complete = true;
            }
        }
    }
    Ok(Scan { manifest, outcomes, checksum, valid_len, complete })
}

/// Parses just the manifest line of shard-file text — the cheap
/// first-phase check the merger runs over every file *before* paying the
/// full record-by-record parse of any of them, so a mismatched or
/// duplicate shard is diagnosed fast regardless of shard sizes.
pub(crate) fn manifest_of(text: &str, path: &str) -> Result<ShardManifest, DistError> {
    let corrupt = |reason: &str| DistError::Corrupt {
        path: path.to_string(),
        reason: reason.to_string(),
    };
    let first = text
        .split_inclusive('\n')
        .next()
        .ok_or_else(|| corrupt("file is empty"))?;
    if !first.ends_with('\n') {
        return Err(corrupt("manifest line is truncated"));
    }
    ShardManifest::parse_line(first.trim_end_matches('\n'), path)
}

/// Validates **complete** shard-file text (manifest, all records, valid
/// footer). An unfinished shard is an error naming the resume command —
/// the merger must never silently accept partial data.
pub(crate) fn read_complete(
    text: &str,
    name: &str,
) -> Result<(ShardManifest, Vec<ExperimentOutcome>), DistError> {
    let scan = scan(text, name)?;
    if !scan.complete {
        return Err(DistError::ShardSet(format!(
            "{name} is incomplete ({} of {} records, no valid footer) — re-run its \
             `repwf campaign --shard {}/{}` command to finish it",
            scan.outcomes.len(),
            scan.manifest.plan.shard_count(),
            scan.manifest.plan.shard_index,
            scan.manifest.plan.num_shards,
        )));
    }
    Ok((scan.manifest, scan.outcomes))
}

/// Reads a **complete** shard file from disk (see `read_complete`).
pub fn read_shard(path: &Path) -> Result<(ShardManifest, Vec<ExperimentOutcome>), DistError> {
    let name = path.display().to_string();
    let text = std::fs::read_to_string(path)
        .map_err(|e| DistError::Io(format!("cannot read {name}: {e}")))?;
    read_complete(&text, &name)
}

/// What [`run_shard`] did.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardRunSummary {
    /// The shard's manifest (plan slice included).
    pub manifest: ShardManifest,
    /// Records found valid on disk and kept (checkpoint).
    pub resumed: usize,
    /// Records newly computed and appended by this run.
    pub ran: usize,
}

/// Progress callback of [`run_shard`]: `(records_on_disk, shard_count)`.
pub type ShardProgress<'a> = &'a (dyn Fn(usize, usize) + Sync);

/// Runs (or resumes) shard `shard_index` of `num_shards` of the campaign
/// described by `spec`, streaming records to `path` in seed order.
///
/// * No file at `path` → fresh run: manifest, records, footer.
/// * A partial file → **resume**: the prefix is validated against this
///   campaign's manifest (a foreign or divergent manifest is a
///   [`DistError::ManifestMismatch`], never overwritten), a torn
///   trailing line is truncated away, and the campaign continues from
///   the first missing seed. Already-valid records are *not* recomputed.
/// * A complete file → validated, then returned with `ran == 0`.
///
/// The resulting bytes are identical for any `threads` value and any
/// kill/resume history, because records are appended in seed order and
/// each is a pure function of `(spec, seed)`.
///
/// **Single writer per shard file.** Resume is kill-safe, but the file
/// is not locked against *concurrent* writers: two simultaneous runs of
/// the same shard command would interleave appends and corrupt the
/// checkpoint (the damage is diagnosed at the next resume or merge via
/// the seed-contiguity and checksum validation, never silently
/// accepted). Schedulers that auto-restart shards must wait for the
/// previous attempt to exit first. (An exclusive lock file would catch
/// this earlier, but a kill would then strand a stale lock and break
/// the re-run-to-resume contract, which is the more common path.)
pub fn run_shard(
    spec: &CampaignSpec,
    shard_index: usize,
    num_shards: usize,
    threads: usize,
    path: &Path,
    progress: Option<ShardProgress<'_>>,
) -> Result<ShardRunSummary, DistError> {
    let name = path.display().to_string();
    let manifest = ShardManifest::new(*spec, shard_index, num_shards)?;
    let io = |e: std::io::Error| DistError::Io(format!("{name}: {e}"));

    // Open the checkpoint, if any. A file holding only a torn prefix of
    // *this shard's own* manifest line is a process killed during the
    // very first write — restart it fresh (there are zero records to
    // lose); a torn first line that is NOT our manifest prefix stays an
    // error, so a foreign file is never silently overwritten.
    let existing = match std::fs::read_to_string(path) {
        Ok(text) if text.is_empty() => None,
        Ok(text)
            if !text.contains('\n')
                && format!("{}\n", manifest.to_line()).starts_with(&text) =>
        {
            None
        }
        Ok(text) => Some(scan(&text, &name)?),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
        Err(e) => return Err(io(e)),
    };
    let (resumed, checksum, file) = match existing {
        Some(scan) => {
            if scan.manifest.plan.shard_index != manifest.plan.shard_index {
                return Err(DistError::ManifestMismatch {
                    path: name,
                    reason: format!(
                        "file holds shard {}/{}, this run is shard {}/{}",
                        scan.manifest.plan.shard_index,
                        scan.manifest.plan.num_shards,
                        manifest.plan.shard_index,
                        manifest.plan.num_shards,
                    ),
                });
            }
            if let Some(diff) = scan.manifest.campaign_mismatch(&manifest) {
                return Err(DistError::ManifestMismatch {
                    path: name,
                    reason: format!("existing file vs this run: {diff}"),
                });
            }
            if scan.complete {
                if let Some(cb) = progress {
                    cb(scan.outcomes.len(), manifest.plan.shard_count());
                }
                return Ok(ShardRunSummary {
                    manifest,
                    resumed: scan.outcomes.len(),
                    ran: 0,
                });
            }
            // Truncate the torn tail, then append from the checkpoint.
            let truncate = std::fs::OpenOptions::new().write(true).open(path).map_err(io)?;
            truncate.set_len(scan.valid_len as u64).map_err(io)?;
            drop(truncate);
            let file = std::fs::OpenOptions::new().append(true).open(path).map_err(io)?;
            (scan.outcomes.len(), scan.checksum, file)
        }
        None => {
            let mut file = std::fs::File::create(path).map_err(io)?;
            // One write for line + newline: the only torn-manifest state a
            // kill can leave is a prefix of this exact line, which the
            // restart check above recognizes as ours.
            file.write_all(format!("{}\n", manifest.to_line()).as_bytes()).map_err(io)?;
            (0, Checksum::new(), file)
        }
    };

    let total = manifest.plan.shard_count();
    let next_seed = manifest.plan.seed_start() + resumed as u64;
    let remaining = total - resumed;
    if let Some(cb) = progress {
        cb(resumed, total);
    }

    // Stream the remaining seeds in order; the sink runs under the
    // executor's reorder lock, so writes land in seed order at any
    // thread count. An I/O error stops further writes (keeping the
    // on-disk prefix valid) and is reported after the run.
    let state = Mutex::new((file, checksum, resumed, None::<String>));
    run_campaign_streamed(
        &spec.cfg,
        spec.model,
        remaining,
        next_seed,
        threads,
        spec.cap,
        &|outcome| {
            let mut s = state.lock().expect("shard writer poisoned");
            let (file, checksum, written, error) = &mut *s;
            if error.is_some() {
                return;
            }
            let line = outcome_line(outcome);
            if let Err(e) = file.write_all(line.as_bytes()) {
                *error = Some(e.to_string());
                return;
            }
            checksum.update(line.as_bytes());
            *written += 1;
            if let Some(cb) = progress {
                cb(*written, total);
            }
        },
    );
    let (mut file, checksum, written, error) =
        state.into_inner().expect("shard writer poisoned");
    if let Some(e) = error {
        return Err(DistError::Io(format!("{name}: {e}")));
    }
    debug_assert_eq!(written, total);
    file.write_all(footer_line(total, &checksum).as_bytes()).map_err(io)?;
    file.flush().map_err(io)?;
    Ok(ShardRunSummary { manifest, resumed, ran: remaining })
}
