//! The campaign JSON document, shared by `repwf campaign --json` and
//! `repwf merge --json`.
//!
//! Both commands build their output through [`campaign_doc`], so "a
//! merged campaign is byte-identical to the unsharded run" is a
//! structural property of the code — there is exactly one serializer —
//! rather than two implementations kept in sync by tests alone.

use crate::json::Json;
use crate::manifest::{model_name, CampaignSpec};
use repwf_gen::campaign::{CampaignResult, Resolution};
use repwf_gen::Range;

/// Builds the structured campaign document: the spec echo, the
/// associative aggregates (via [`CampaignResult::accum`], the same folds
/// the shard merger recombines) and the per-experiment outcomes in seed
/// order.
pub fn campaign_doc(spec: &CampaignSpec, res: &CampaignResult) -> Json {
    let accum = res.accum();
    // Shape statistics are computed from the *spec* (replaying only the
    // replica RNG prefix of every seed), never from the outcomes: a
    // merged sharded campaign reports the same values as the unsharded
    // run regardless of which runner executed the experiments.
    let (distinct_shapes, batch_hit_rate) =
        repwf_gen::campaign::shape_stats(&spec.cfg, spec.count, spec.seed_base);
    // Structural-solve totals, equally spec-derived (a replay of the
    // batched scheduler's routing): merged and unsharded documents agree
    // byte for byte no matter who ran the experiments.
    let structural = repwf_gen::campaign::structural_stats(
        &spec.cfg,
        spec.model,
        spec.count,
        spec.seed_base,
        spec.cap,
    );
    let outcomes: Vec<Json> = res
        .outcomes
        .iter()
        .map(|o| {
            Json::Obj(vec![
                ("seed", Json::UInt(u128::from(o.seed))),
                ("num_paths", Json::UInt(o.num_paths)),
                ("mct", Json::Num(o.mct)),
                ("period", Json::Num(o.period)),
                ("gap", Json::Num(o.gap())),
                (
                    "resolution",
                    Json::str(match o.resolution {
                        Resolution::Exact => "exact",
                        Resolution::Simulated => "simulated",
                    }),
                ),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("model", Json::str(model_name(spec.model))),
        (
            "config",
            Json::Obj(vec![
                ("stages", Json::UInt(spec.cfg.stages as u128)),
                ("procs", Json::UInt(spec.cfg.procs as u128)),
                ("comp", range_json(spec.cfg.comp)),
                ("comm", range_json(spec.cfg.comm)),
            ]),
        ),
        ("count", Json::UInt(spec.count as u128)),
        ("seed", Json::UInt(u128::from(spec.seed_base))),
        ("cap", Json::UInt(spec.cap as u128)),
        ("distinct_shapes", Json::UInt(distinct_shapes as u128)),
        ("batch_hit_rate", Json::Num(batch_hit_rate)),
        ("patched_solves", Json::UInt(u128::from(structural.patched_solves))),
        ("csr_builds", Json::UInt(u128::from(structural.csr_builds))),
        ("tarjan_runs", Json::UInt(u128::from(structural.tarjan_runs))),
        ("no_critical", Json::UInt(accum.no_critical as u128)),
        ("max_gap_pct", Json::Num(accum.max_gap() * 100.0)),
        ("simulated", Json::UInt(accum.simulated as u128)),
        ("outcomes", Json::Arr(outcomes)),
    ])
}

/// [`campaign_doc`] for a **partial** merge (`repwf merge
/// --allow-partial` with gaps): the same document — identical spec echo,
/// aggregates over the covered outcomes — plus a `"partial": true`
/// marker and the exact uncovered seed ranges, inserted *before* the
/// outcomes array. A degraded campaign is structurally distinguishable
/// from a complete one; the two documents can never be byte-identical.
pub fn campaign_doc_partial(
    spec: &CampaignSpec,
    res: &CampaignResult,
    missing: &[(u64, u64)],
) -> Json {
    let Json::Obj(mut fields) = campaign_doc(spec, res) else {
        unreachable!("campaign_doc builds an object")
    };
    let ranges: Vec<Json> = missing
        .iter()
        .map(|&(start, end)| {
            Json::Obj(vec![
                ("seed_start", Json::UInt(u128::from(start))),
                ("seed_end", Json::UInt(u128::from(end))),
            ])
        })
        .collect();
    let at = fields.iter().position(|(k, _)| *k == "outcomes").unwrap_or(fields.len());
    fields.insert(at, ("partial", Json::Bool(true)));
    fields.insert(at + 1, ("missing_ranges", Json::Arr(ranges)));
    Json::Obj(fields)
}

fn range_json(r: Range) -> Json {
    Json::Obj(vec![("lo", Json::Num(r.lo)), ("hi", Json::Num(r.hi))])
}
