//! The elastic, coordinator-free campaign supervisor.
//!
//! [`supervise`] runs one **worker loop** against a shared campaign
//! directory; run it from as many processes, threads or hosts as you
//! like — there is no coordinator, no network protocol, and no shared
//! state beyond a directory of files, yet the campaign runs to
//! completion across worker deaths, stragglers and retries, and the
//! final merge is **byte-identical** to the unsharded single-process
//! run.
//!
//! # The protocol, entirely in files
//!
//! The campaign's seed range is split into contiguous **units**. A unit
//! named `r<offset>-<len>` owns the campaign slice `offset..offset+len`
//! and materializes as up to four files:
//!
//! ```text
//! campaign.json            pinned spec + unit count (first worker writes
//!                          it atomically; later workers verify and adopt)
//! r128-64.ndjson           the unit's NDJSON shard file (checkpointed)
//! leases/r128-64.lease     the active claim (mtime = heartbeat)
//! done/r128-64.done        completion marker: {"covered":N}, fsynced
//! splits/r128-64.split     re-split marker for the *level* len=64
//! ```
//!
//! * **Claiming** — a worker claims a free unit by atomically creating
//!   its lease file ([`crate::lease`]); exactly one claimant wins.
//! * **Death** — a worker that stops heartbeating goes stale after
//!   `lease_timeout`; the next claimant takes the lease over (fenced by
//!   an atomic per-attempt tombstone link) and **resumes from the dead
//!   worker's checkpoint**
//!   — completed records are validated and kept, never recomputed.
//! * **Retry budget** — takeovers are gated by bounded exponential
//!   backoff with deterministic seeded jitter ([`crate::lease::RetryPolicy`]);
//!   after `max_attempts` a unit is reported **degraded** instead of
//!   retried forever.
//! * **Re-splitting** — when a worker runs out of claimable work while a
//!   straggler still holds a large unit, it creates a **split marker**
//!   for the straggler's current effective length `l`. The marker is
//!   atomically created (`create_new`), and the split point `offset +
//!   l/2` is a pure function of the range, so racing thieves agree. The
//!   straggler's unit shrinks to `l/2` (it truncates any overshoot at
//!   its next chunk boundary and closes early), and the upper half
//!   becomes a brand-new claimable unit. Sound because units are
//!   contiguous seed ranges and the campaign aggregates are associative:
//!   the merged bytes cannot tell how the range was cut.
//! * **Completion** — after the footer is fsynced the worker writes the
//!   unit's **done marker** carrying the covered record count, then
//!   releases the lease.
//!
//! # The split/done race (Dekker via `create_new`)
//!
//! A thief may split a unit in the same instant its owner completes it.
//! Both sides create their artifact first and read the other's second:
//! the thief creates the split marker then reads the done marker; the
//! owner writes the done marker then (implicitly, at enumeration time)
//! sees the split marker. A split marker at level `l` is **void** iff
//! the unit's done marker covers more than `l/2` seeds — in that case
//! the upper half is already durably covered and no child unit exists.
//! Because unit enumeration ([`enumerate_units`]) applies the void rule
//! from the same durable files on every worker, all workers agree on
//! the unit set without talking to each other. A thief that claimed a
//! child before the void became visible re-enumerates, finds its unit
//! gone, and abandons the orphan file (wasted work, never wrong bytes:
//! the final merge takes exactly the enumerated units).
//!
//! # Determinism
//!
//! Record bytes are pure functions of `(spec, seed)`, so no failure
//! history changes them. Fault injection ([`crate::fault`]) is seeded and
//! the backoff schedule is a pure function of `(policy, offset,
//! attempt)`, so an entire chaos run — kills, takeovers, retries,
//! splits — is reproducible from its seeds, and the run summary echoes
//! the exact backoff gates it applied.

use crate::fault::FaultPlan;
use crate::lease::{self, Lease, LeaseInfo, LeaseProgress, RetryPolicy};
use crate::manifest::{CampaignSpec, ShardManifest};
use crate::shard::{open_checkpoint, outcome_line, ShardRunOptions};
use crate::DistError;
use repwf_gen::campaign::{run_campaign_streamed, ExperimentOutcome};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Duration;

/// Knobs of one supervisor worker. `Default` is tuned for local
/// multi-process runs; fleet runs mostly raise `lease_timeout`.
#[derive(Debug, Clone)]
pub struct SuperviseOptions {
    /// Worker identity recorded in leases (diagnostics only).
    /// Empty → `host-<pid>`.
    pub owner: String,
    /// Compute threads for this worker's experiments.
    pub threads: usize,
    /// Number of initial claim units. The first worker to create
    /// `campaign.json` pins it; later workers adopt the pinned value.
    /// 0 → 8 (clamped to the experiment count).
    pub units: usize,
    /// Heartbeat staleness threshold: a lease older than this is dead.
    /// Must comfortably exceed the worst-case chunk duration
    /// (`flush_every` records), since workers heartbeat once per chunk.
    pub lease_timeout: Duration,
    /// Retry gating (backoff base/cap, max attempts, jitter seed).
    pub retry: RetryPolicy,
    /// Flush cadence of the shard writer (0 → default; also the chunk
    /// size between heartbeats and re-split checks).
    pub flush_every: usize,
    /// Injected fault, fired on this worker's **first fresh claim**
    /// (attempt 1) only — retries and takeovers run clean, so a chaos
    /// run recovers instead of dying identically forever.
    pub fault: Option<FaultPlan>,
    /// Units with effective length below this are never split.
    /// 0 → twice the flush cadence.
    pub split_min: usize,
    /// Idle wait between directory scans when nothing is claimable.
    pub poll: Duration,
}

impl Default for SuperviseOptions {
    fn default() -> Self {
        SuperviseOptions {
            owner: String::new(),
            threads: 1,
            units: 0,
            lease_timeout: Duration::from_secs(10),
            retry: RetryPolicy::default(),
            flush_every: 0,
            fault: None,
            split_min: 0,
            poll: Duration::from_millis(25),
        }
    }
}

/// How one claim ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClaimOutcome {
    /// The unit completed (footer + done marker durable).
    Completed,
    /// The lease was taken over mid-run; this worker stopped writing.
    Lost,
    /// An injected fault fired (the message names it).
    Faulted(String),
}

/// One claim this worker made, with the deterministic retry context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClaimReport {
    /// Unit slice start within the campaign.
    pub offset: usize,
    /// Declared unit length (the file may cover less after re-splits).
    pub declared: usize,
    /// Claim generation (1 = fresh, >1 = takeover of a dead claim).
    pub attempt: u32,
    /// Whether this claim took over a stale or failed lease.
    pub takeover: bool,
    /// The backoff gate that applied before this claim (zero for fresh
    /// claims) — a pure function of `(retry policy, offset, attempt-1)`,
    /// so the whole schedule is reproducible from the seeds.
    pub backoff: Duration,
    /// Checkpoint records inherited from previous attempts.
    pub resumed: usize,
    /// Records computed by this claim.
    pub ran: usize,
    /// Final covered length when completed (≤ declared after re-splits).
    pub covered: usize,
    /// How the claim ended.
    pub outcome: ClaimOutcome,
}

/// A unit that ran out of retry budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegradedUnit {
    /// Unit slice start within the campaign.
    pub offset: usize,
    /// Seeds the unit still owes (effective length minus checkpointed
    /// records is unknown here; this is the declared remainder's slice).
    pub len: usize,
    /// Attempts burned.
    pub attempts: u32,
}

/// What one [`supervise`] worker did, and how the campaign stands.
#[derive(Debug, Clone)]
pub struct SuperviseSummary {
    /// This worker's identity.
    pub owner: String,
    /// The pinned unit count.
    pub units: usize,
    /// Every claim this worker made, in order.
    pub claims: Vec<ClaimReport>,
    /// Split markers this worker created: `(offset, level)`.
    pub splits: Vec<(usize, usize)>,
    /// Units out of retry budget (empty on a complete campaign).
    pub degraded: Vec<DegradedUnit>,
    /// Whether every unit is done (then `files` holds the merge set).
    pub complete: bool,
    /// The enumerated unit files in offset order, when complete —
    /// exactly the set to pass to [`crate::merge_paths`].
    pub files: Vec<PathBuf>,
}

/// One enumerated claim unit (pure function of the durable marker files).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Unit {
    /// Slice start within the campaign.
    pub offset: usize,
    /// Declared length (the lease/file/marker namespace key).
    pub declared: usize,
    /// Effective length after honoring non-void split markers.
    pub eff: usize,
    /// Covered count from the done marker, when the unit is complete.
    pub done: Option<usize>,
}

impl Unit {
    /// Canonical name, the key of every file the unit owns.
    pub fn name(&self) -> String {
        format!("r{}-{}", self.offset, self.declared)
    }
}

fn file_path(dir: &Path, unit: &Unit) -> PathBuf {
    dir.join(format!("{}.ndjson", unit.name()))
}
fn lease_path(dir: &Path, unit: &Unit) -> PathBuf {
    dir.join("leases").join(format!("{}.lease", unit.name()))
}
fn done_path(dir: &Path, offset: usize, declared: usize) -> PathBuf {
    dir.join("done").join(format!("r{offset}-{declared}.done"))
}
fn split_path(dir: &Path, offset: usize, level: usize) -> PathBuf {
    dir.join("splits").join(format!("r{offset}-{level}.split"))
}

fn io_err(path: &Path, e: std::io::Error) -> DistError {
    DistError::Io(format!("{}: {e}", path.display()))
}

/// Reads a done marker's covered count, if the marker exists.
fn read_done(dir: &Path, offset: usize, declared: usize) -> Result<Option<usize>, DistError> {
    let path = done_path(dir, offset, declared);
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(io_err(&path, e)),
    };
    let doc = crate::json::parse(text.trim()).map_err(|e| DistError::Corrupt {
        path: path.display().to_string(),
        reason: format!("unreadable done marker: {e}"),
    })?;
    let covered = doc
        .get("covered")
        .and_then(crate::json::JsonValue::as_u64)
        .ok_or_else(|| DistError::Corrupt {
            path: path.display().to_string(),
            reason: "done marker has no \"covered\" count".to_string(),
        })?;
    Ok(Some(covered as usize))
}

/// Writes a unit's done marker durably. Completion must already be
/// durable in the unit file (fsynced footer) before this is called.
///
/// The marker is written to a private temp file and renamed into place:
/// the rename is atomic, so a concurrent [`enumerate_units`] either sees
/// no marker or the whole marker — never a half-written one (a
/// `create_new` + write would expose an empty marker between the two).
/// Concurrent completers (both sides of a fencing race) write identical
/// contents — `covered` restates the unit file's fsynced footer either
/// way — so last-rename-wins is indistinguishable from first.
/// A temp-file path next to `path`, unique per writer: worker threads
/// share the pid, so a process-wide sequence number keeps two
/// same-process publishers off each other's temp file.
fn tmp_sibling(path: &Path) -> PathBuf {
    static TMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    path.with_extension(format!(
        "tmp-{}-{}",
        std::process::id(),
        TMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ))
}

fn write_done(dir: &Path, offset: usize, declared: usize, covered: usize) -> Result<(), DistError> {
    use std::io::Write as _;
    let path = done_path(dir, offset, declared);
    let tmp = tmp_sibling(&path);
    let mut file = std::fs::File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
    file.write_all(format!("{{\"covered\":{covered}}}\n").as_bytes())
        .map_err(|e| io_err(&tmp, e))?;
    file.sync_data().map_err(|e| io_err(&tmp, e))?;
    drop(file);
    std::fs::rename(&tmp, &path).map_err(|e| io_err(&path, e))?;
    Ok(())
}

/// Enumerates the campaign's units from the durable marker files: the
/// pinned initial partition, expanded by every **non-void** split marker
/// (see the module docs for the void rule). Every worker computes the
/// identical set from the same files.
pub fn enumerate_units(
    dir: &Path,
    seed_base: u64,
    count: usize,
    units: usize,
) -> Result<Vec<Unit>, DistError> {
    let mut queue: Vec<(usize, usize)> = (0..units)
        .map(|i| {
            let plan = crate::ShardPlan::new(seed_base, count, i, units)?;
            Ok((plan.shard_offset(), plan.shard_count()))
        })
        .collect::<Result<_, DistError>>()?;
    let mut out = Vec::new();
    while let Some((offset, declared)) = queue.pop() {
        let done = read_done(dir, offset, declared)?;
        let mut eff = declared;
        while eff >= 2
            && split_path(dir, offset, eff).exists()
            && done.is_none_or(|c| c <= eff / 2)
        {
            queue.push((offset + eff / 2, eff - eff / 2));
            eff /= 2;
        }
        debug_assert!(done.is_none_or(|c| c == eff), "done covers exactly the effective slice");
        out.push(Unit { offset, declared, eff, done });
    }
    out.sort_by_key(|u| u.offset);
    Ok(out)
}

/// Pins (or adopts) the campaign spec and unit count in `campaign.json`.
/// The first worker creates the file atomically; every later worker
/// verifies its spec **bitwise** against the pinned one and adopts the
/// pinned unit count, so workers launched with divergent flags fail loud
/// instead of writing incompatible shards.
fn pin_campaign(dir: &Path, spec: &CampaignSpec, units: usize) -> Result<usize, DistError> {
    use std::io::Write as _;
    let path = dir.join("campaign.json");
    let line = ShardManifest::new(*spec, 0, 1)?.to_line();
    let body = format!("{line}\n{{\"kind\":\"supervise\",\"units\":{units}}}\n");
    // Publish via a private temp file + hard_link: the link is atomic
    // first-wins WITH full contents, so a worker that loses the pin race
    // never reads a half-written campaign file (create_new + write would
    // expose one between the two syscalls).
    let tmp = tmp_sibling(&path);
    {
        let mut file = std::fs::File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
        file.write_all(body.as_bytes()).map_err(|e| io_err(&tmp, e))?;
        file.sync_data().map_err(|e| io_err(&tmp, e))?;
    }
    let link = std::fs::hard_link(&tmp, &path);
    let _ = std::fs::remove_file(&tmp);
    match link {
        Ok(()) => return Ok(units),
        Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {}
        Err(e) => return Err(io_err(&path, e)),
    }
    let name = path.display().to_string();
    let text = std::fs::read_to_string(&path).map_err(|e| io_err(&path, e))?;
    let mut lines = text.lines();
    let pinned = ShardManifest::parse_line(lines.next().unwrap_or(""), &name)?;
    let ours = ShardManifest::new(*spec, 0, 1)?;
    if let Some(diff) = pinned.campaign_mismatch(&ours) {
        return Err(DistError::ManifestMismatch {
            path: name,
            reason: format!("this worker's flags vs the pinned campaign: {diff}"),
        });
    }
    let units_doc = crate::json::parse(lines.next().unwrap_or("").trim())
        .map_err(|e| DistError::Corrupt { path: name.clone(), reason: format!("pin line: {e}") })?;
    units_doc
        .get("units")
        .and_then(crate::json::JsonValue::as_u64)
        .map(|u| u as usize)
        .ok_or(DistError::Corrupt { path: name, reason: "pin has no \"units\"".to_string() })
}

struct Worker<'a> {
    dir: &'a Path,
    spec: CampaignSpec,
    units: usize,
    owner: String,
    opts: &'a SuperviseOptions,
    /// The injected fault, consumed by the first fresh claim.
    fault_pending: Option<FaultPlan>,
    summary: SuperviseSummary,
}

/// Runs one supervisor worker loop against campaign directory `dir`
/// until the campaign completes or every unfinished unit is out of
/// retry budget. Safe (and intended) to run concurrently from many
/// processes and hosts sharing `dir`.
pub fn supervise(
    dir: &Path,
    spec: &CampaignSpec,
    opts: &SuperviseOptions,
) -> Result<SuperviseSummary, DistError> {
    for sub in ["leases", "done", "splits"] {
        std::fs::create_dir_all(dir.join(sub)).map_err(|e| io_err(&dir.join(sub), e))?;
    }
    let requested = if opts.units == 0 { 8 } else { opts.units };
    let units = pin_campaign(dir, spec, requested.clamp(1, spec.count.max(1)))?;
    let owner = if opts.owner.is_empty() {
        format!("worker-{}", std::process::id())
    } else {
        opts.owner.clone()
    };
    let mut worker = Worker {
        dir,
        spec: *spec,
        units,
        owner: owner.clone(),
        opts,
        fault_pending: opts.fault.clone(),
        summary: SuperviseSummary {
            owner,
            units,
            claims: Vec::new(),
            splits: Vec::new(),
            degraded: Vec::new(),
            complete: false,
            files: Vec::new(),
        },
    };
    worker.run()?;
    Ok(worker.summary)
}

impl Worker<'_> {
    fn run(&mut self) -> Result<(), DistError> {
        loop {
            let units =
                enumerate_units(self.dir, self.spec.seed_base, self.spec.count, self.units)?;
            let pending: Vec<&Unit> = units.iter().filter(|u| u.done.is_none()).collect();
            if pending.is_empty() {
                self.summary.complete = true;
                self.summary.degraded.clear();
                self.summary.files =
                    units.iter().map(|u| file_path(self.dir, u)).collect();
                return Ok(());
            }

            // Pass 1 — claim work: a free unit, or a reclaimable stale
            // or failed lease past its backoff gate.
            let mut claimed = false;
            let mut degraded: Vec<DegradedUnit> = Vec::new();
            let mut busy: Vec<&Unit> = Vec::new();
            for &unit in &pending {
                match self.try_claim(unit)? {
                    Claimed::Ran => {
                        claimed = true;
                        break; // re-enumerate: the world changed
                    }
                    Claimed::Degraded(d) => degraded.push(d),
                    Claimed::Busy => busy.push(unit),
                    Claimed::Raced => {} // someone else got it; rescan
                }
            }
            if claimed {
                continue;
            }
            if degraded.len() == pending.len() {
                // Nothing left but exhausted units: report, don't spin.
                self.summary.degraded = degraded;
                self.summary.complete = false;
                return Ok(());
            }

            // Pass 2 — no claimable work, but live holders exist: split
            // the largest splittable straggler and rescan (its upper
            // half becomes a fresh unit).
            if self.try_split(&busy)? {
                continue;
            }
            std::thread::sleep(self.opts.poll);
        }
    }

    /// Attempts to claim and run one unit.
    fn try_claim(&mut self, unit: &Unit) -> Result<Claimed, DistError> {
        let lease_path = lease_path(self.dir, unit);
        let salt = self.opts.retry.jitter_seed ^ unit.offset as u64;
        let (lease, takeover, backoff) = match lease::inspect(&lease_path)? {
            None => match Lease::claim(&lease_path, &self.owner, 1, salt)? {
                Some(lease) => {
                    repwf_obs::counter_add(repwf_obs::CounterId::LeaseClaims, 1);
                    repwf_obs::event(
                        "lease_claim",
                        &[("offset", unit.offset as u64), ("len", unit.eff as u64)],
                    );
                    (lease, false, Duration::ZERO)
                }
                None => return Ok(Claimed::Raced),
            },
            Some(info) => {
                if info.exhausted(self.opts.lease_timeout, &self.opts.retry) {
                    return Ok(Claimed::Degraded(DegradedUnit {
                        offset: unit.offset,
                        len: unit.eff,
                        attempts: info.attempt,
                    }));
                }
                if !info.reclaimable(unit.offset, self.opts.lease_timeout, &self.opts.retry) {
                    return Ok(Claimed::Busy);
                }
                let backoff = self.opts.retry.backoff(unit.offset, info.attempt);
                match lease::take_over(&lease_path, &info, &self.owner, salt)? {
                    Some(lease) => {
                        // An observed failure re-run is a *retry*; stealing
                        // from a silently dead owner is a *takeover*.
                        repwf_obs::counter_add(
                            if info.failed {
                                repwf_obs::CounterId::LeaseRetries
                            } else {
                                repwf_obs::CounterId::LeaseTakeovers
                            },
                            1,
                        );
                        repwf_obs::event(
                            if info.failed { "lease_retry" } else { "lease_takeover" },
                            &[
                                ("offset", unit.offset as u64),
                                ("attempt", u64::from(lease.attempt)),
                            ],
                        );
                        (lease, true, backoff)
                    }
                    None => return Ok(Claimed::Raced),
                }
            }
        };
        let attempt = lease.attempt;
        let fault = if attempt == 1 { self.fault_pending.take() } else { None };
        let mut report = ClaimReport {
            offset: unit.offset,
            declared: unit.declared,
            attempt,
            takeover,
            backoff,
            resumed: 0,
            ran: 0,
            covered: 0,
            outcome: ClaimOutcome::Completed,
        };
        match self.run_unit(unit, &lease, fault.as_ref(), &mut report) {
            Ok(()) => {
                lease.release()?;
            }
            Err(DistError::Fault(msg)) => {
                report.outcome = ClaimOutcome::Faulted(msg);
                lease.mark_failed()?;
            }
            Err(e) => {
                // Real failure: mark the lease failed so the retry gate
                // skips the staleness timeout, then surface the error.
                let _ = lease.mark_failed();
                return Err(e);
            }
        }
        self.summary.claims.push(report);
        Ok(Claimed::Ran)
    }

    /// Runs one claimed unit to completion: resume the checkpoint, then
    /// chunked compute with a heartbeat and re-split check per chunk.
    fn run_unit(
        &self,
        unit: &Unit,
        lease: &Lease,
        fault: Option<&FaultPlan>,
        report: &mut ClaimReport,
    ) -> Result<(), DistError> {
        let started = std::time::Instant::now();
        let manifest = ShardManifest::new_range(self.spec, unit.offset, unit.declared)?;
        let file = file_path(self.dir, unit);
        let opts = ShardRunOptions { flush_every: self.opts.flush_every, fault: None };
        let cadence = opts.cadence();
        let checkpoint = open_checkpoint(&manifest, &file, cadence, true)?;
        let mut writer = checkpoint.writer;
        let mut written = checkpoint.outcomes.len();
        report.resumed = written;
        drop(checkpoint.outcomes);

        if checkpoint.complete {
            // A previous owner died between the fsynced footer and the
            // done marker: just finish the bookkeeping.
            report.covered = written;
            return write_done(self.dir, unit.offset, unit.declared, written);
        }

        let mut ran = 0usize;
        loop {
            let eff = self.effective_len(unit.offset, unit.declared)?;
            if written > eff {
                // A split landed behind us: give the upper half back.
                writer.truncate_to(eff)?;
                written = eff;
            }
            if written >= eff {
                break;
            }
            let chunk = cadence.min(eff - written);
            let outcomes = self.compute_chunk(
                manifest.plan.seed_start() + written as u64,
                chunk,
                fault.map_or(0, |f| f.slow_ms),
            );
            for outcome in &outcomes {
                if let Some(f) = fault {
                    if f.kill_after == Some(ran) {
                        let line = outcome_line(outcome);
                        let torn_len = f.torn.min(line.len().saturating_sub(1));
                        let torn = (torn_len > 0).then(|| &line.as_bytes()[..torn_len]);
                        let flushed = writer.kill(torn)?;
                        if f.process_exit {
                            std::process::exit(crate::fault::KILL_EXIT_CODE);
                        }
                        report.ran = ran;
                        return Err(DistError::Fault(format!(
                            "injected kill after {ran} records ({flushed} flushed)"
                        )));
                    }
                }
                writer.append(outcome)?;
                written += 1;
                ran += 1;
            }
            writer.flush()?;
            report.ran = ran;
            repwf_obs::counter_add(repwf_obs::CounterId::LeaseHeartbeats, 1);
            repwf_obs::event(
                "lease_heartbeat",
                &[("offset", unit.offset as u64), ("records", written as u64)],
            );
            let progress = LeaseProgress {
                records: written as u64,
                start_records: report.resumed as u64,
                elapsed_ms: started.elapsed().as_millis() as u64,
            };
            if !lease.heartbeat_progress(progress)? {
                return Err(DistError::Fault(format!(
                    "lease for {} taken over mid-run; stopped writing",
                    unit.name()
                )));
            }
        }

        let corrupt = fault.is_some_and(|f| f.corrupt_footer);
        writer.finish(written < unit.declared, if corrupt {
            crate::shard::FOOTER_CORRUPTION_XOR
        } else {
            0
        })?;
        if corrupt {
            // Simulate dying between the (damaged) footer and the done
            // marker: the next claimant quarantines the file and reruns.
            report.ran = ran;
            return Err(DistError::Fault("injected corrupt footer".to_string()));
        }
        write_done(self.dir, unit.offset, unit.declared, written)?;
        report.ran = ran;
        report.covered = written;
        Ok(())
    }

    /// The unit's current effective length: its declared length halved
    /// once per split marker along the chain. (No void check: a unit
    /// being run has no done marker yet.)
    fn effective_len(&self, offset: usize, declared: usize) -> Result<usize, DistError> {
        let mut eff = declared;
        while eff >= 2 && split_path(self.dir, offset, eff).exists() {
            eff /= 2;
        }
        Ok(eff)
    }

    /// Computes `chunk` outcomes from `seed_start`, in seed order, on
    /// this worker's threads.
    fn compute_chunk(
        &self,
        seed_start: u64,
        chunk: usize,
        slow_ms: u64,
    ) -> Vec<ExperimentOutcome> {
        let sink = Mutex::new(Vec::with_capacity(chunk));
        run_campaign_streamed(
            &self.spec.cfg,
            self.spec.model,
            chunk,
            seed_start,
            self.opts.threads,
            self.spec.cap,
            &|outcome| {
                if slow_ms > 0 {
                    std::thread::sleep(Duration::from_millis(slow_ms));
                }
                sink.lock().expect("chunk sink poisoned").push(outcome.clone());
            },
        );
        let outcomes = sink.into_inner().expect("chunk sink poisoned");
        debug_assert!(outcomes.windows(2).all(|w| w[0].seed < w[1].seed));
        outcomes
    }

    /// Splits the largest busy unit whose effective length allows it.
    /// Returns whether a marker was created.
    fn try_split(&mut self, busy: &[&Unit]) -> Result<bool, DistError> {
        let split_min = if self.opts.split_min == 0 {
            2 * ShardRunOptions { flush_every: self.opts.flush_every, fault: None }.cadence()
        } else {
            self.opts.split_min
        };
        let Some(victim) = busy.iter().filter(|u| u.eff >= split_min).max_by_key(|u| u.eff)
        else {
            return Ok(false);
        };
        let path = split_path(self.dir, victim.offset, victim.eff);
        match std::fs::OpenOptions::new().write(true).create_new(true).open(&path) {
            Ok(_) => {
                // Dekker step 2: the marker is down; if the owner's done
                // marker meanwhile covers past the split point, the
                // marker is void and enumeration will ignore it — either
                // way the next rescan computes the truth.
                repwf_obs::counter_add(repwf_obs::CounterId::LeaseSplits, 1);
                repwf_obs::event(
                    "lease_split",
                    &[("offset", victim.offset as u64), ("len", victim.eff as u64)],
                );
                self.summary.splits.push((victim.offset, victim.eff));
                Ok(true)
            }
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => Ok(false),
            Err(e) => Err(io_err(&path, e)),
        }
    }
}

enum Claimed {
    /// Claimed and ran a unit (in whatever way it ended).
    Ran,
    /// Unit is out of retry budget.
    Degraded(DegradedUnit),
    /// Unit is held by a live (or not-yet-reclaimable) lease.
    Busy,
    /// Lost a claim race; the directory changed under us.
    Raced,
}

/// One unit's standing, as reported by [`status`].
#[derive(Debug, Clone)]
pub struct UnitStatus {
    /// The unit.
    pub unit: Unit,
    /// Records durable in the unit file (validated prefix), with the
    /// file's completeness.
    pub records: usize,
    /// Whether the file carries a valid footer.
    pub file_complete: bool,
    /// The current lease, if any.
    pub lease: Option<LeaseInfo>,
}

/// A point-in-time scan of a supervised campaign directory.
#[derive(Debug, Clone)]
pub struct CampaignStatus {
    /// The pinned campaign.
    pub spec: CampaignSpec,
    /// The pinned unit count.
    pub units: usize,
    /// Per-unit standing, in offset order.
    pub unit_status: Vec<UnitStatus>,
    /// Whether every unit is done.
    pub complete: bool,
}

/// Scans a supervised campaign directory without claiming anything
/// (the `repwf dist status` command).
pub fn status(dir: &Path) -> Result<CampaignStatus, DistError> {
    let path = dir.join("campaign.json");
    let name = path.display().to_string();
    let text = std::fs::read_to_string(&path)
        .map_err(|e| DistError::Io(format!("{name}: {e} (not a supervised campaign dir?)")))?;
    let mut lines = text.lines();
    let pinned = ShardManifest::parse_line(lines.next().unwrap_or(""), &name)?;
    let units = crate::json::parse(lines.next().unwrap_or("").trim())
        .ok()
        .and_then(|doc| doc.get("units").and_then(crate::json::JsonValue::as_u64))
        .ok_or(DistError::Corrupt { path: name, reason: "pin has no \"units\"".to_string() })?
        as usize;
    let spec = pinned.spec;
    let enumerated = enumerate_units(dir, spec.seed_base, spec.count, units)?;
    let mut unit_status = Vec::with_capacity(enumerated.len());
    for unit in enumerated {
        let file = file_path(dir, &unit);
        let (records, file_complete) = match std::fs::read_to_string(&file) {
            Ok(text) => {
                let file_name = file.display().to_string();
                match crate::shard::scan(&text, &file_name) {
                    Ok(scan) => (scan.outcomes.len(), scan.complete),
                    Err(_) => (0, false), // corrupt counts as nothing durable
                }
            }
            Err(_) => (0, false),
        };
        let lease = lease::inspect(&lease_path(dir, &unit))?;
        unit_status.push(UnitStatus { unit, records, file_complete, lease });
    }
    let complete = unit_status.iter().all(|u| u.unit.done.is_some());
    Ok(CampaignStatus { spec, units, unit_status, complete })
}
