//! Lease files: coordination-free claims over campaign seed ranges.
//!
//! The supervisor has no coordinator process — workers coordinate purely
//! through a shared directory (local disk, NFS, anything with atomic
//! `create_new`, `rename` and `hard_link`). A worker **claims** a range
//! unit by atomically creating its lease file (`O_CREAT|O_EXCL`: exactly
//! one winner); it **heartbeats** by rewriting the lease in place (the
//! file's mtime is the heartbeat timestamp); a lease whose mtime is older
//! than the configured timeout is **stale** and may be taken over.
//! Takeover is fenced by a per-attempt tombstone planted with an atomic
//! `hard_link` — the link fails with `AlreadyExists` once any thief has
//! planted it, so of several racing thieves exactly one proceeds — and it
//! **replaces** the condemned lease in place (tmp + rename, the path is
//! never unoccupied) with a fresh lease, attempt counter bumped.
//!
//! **Backoff.** Retries are gated by bounded exponential backoff with
//! deterministic seeded jitter (see [`RetryPolicy`]): a range on attempt
//! `a` is reclaimable only `timeout + backoff(a)` after its last
//! heartbeat (`backoff(a)` alone if the previous owner *marked* the lease
//! failed — an observed death needs no silent-death grace). Once
//! `attempt >= max_attempts` the range is never retaken automatically and
//! is reported **degraded**.
//!
//! **Fencing is best-effort.** Each lease carries a claim token; the
//! owner verifies the token before heartbeating or flushing, so a worker
//! that lost its lease stops writing at the next check rather than
//! racing its replacement indefinitely. A residual window remains (the
//! check and the subsequent write are not one atomic step); if both
//! parties do write, the damage is *detected* — the shard scan's seed
//! contiguity and checksum validation refuse the file — never silently
//! merged. Pick `timeout` well above the flush cadence so the window is
//! never entered in practice.

use crate::fault::splitmix64;
use crate::json::{parse, JsonValue};
use crate::DistError;
use std::path::{Path, PathBuf};
use std::time::{Duration, SystemTime};

/// Retry gating: bounded exponential backoff with deterministic jitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Base delay of the exponential schedule (attempt 1 → `base`).
    pub base: Duration,
    /// Ceiling of the exponential schedule.
    pub cap: Duration,
    /// Attempts after which a range is degraded instead of retried.
    pub max_attempts: u32,
    /// Seed of the deterministic jitter (`splitmix64` over
    /// `seed ^ range_start ^ attempt`), so a chaos run's whole backoff
    /// schedule is reproducible from the run's seed.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base: Duration::from_millis(250),
            cap: Duration::from_secs(30),
            max_attempts: 4,
            jitter_seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The backoff before retry attempt `attempt + 1` may claim a range
    /// that died on `attempt`: `min(base · 2^(attempt−1), cap)` plus
    /// deterministic jitter in `[0, base)`. Pure function of
    /// `(policy, range_start, attempt)` — every worker computes the same
    /// gate, and the run summary can echo the exact schedule.
    pub fn backoff(&self, range_start: usize, attempt: u32) -> Duration {
        let shift = attempt.saturating_sub(1).min(20);
        let exp = self.base.saturating_mul(1 << shift).min(self.cap);
        let jitter_ns = splitmix64(
            self.jitter_seed ^ (range_start as u64) ^ (u64::from(attempt) << 48),
        ) % self.base.as_nanos().max(1) as u64;
        exp + Duration::from_nanos(jitter_ns)
    }
}

/// Checkpoint progress an owner publishes with its heartbeats, so `repwf
/// dist status` can report per-unit throughput without touching (or even
/// being able to read) the unit files mid-write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaseProgress {
    /// Records in the unit file at the last heartbeat.
    pub records: u64,
    /// Records already present when this attempt claimed the unit (a
    /// resumed checkpoint) — throughput counts only this attempt's work.
    pub start_records: u64,
    /// Milliseconds this attempt has been running at the last heartbeat.
    pub elapsed_ms: u64,
}

impl LeaseProgress {
    /// Records per second written by the current attempt
    /// (`(records − start_records) / elapsed`); `None` until the attempt
    /// has run long enough to measure (≥ 1ms) and written something.
    pub fn records_per_sec(&self) -> Option<f64> {
        let done = self.records.saturating_sub(self.start_records);
        if self.elapsed_ms == 0 || done == 0 {
            return None;
        }
        Some(done as f64 * 1000.0 / self.elapsed_ms as f64)
    }
}

/// A decoded lease file (someone else's claim, observed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeaseInfo {
    /// Claimant identifier (informational, e.g. `host:pid`).
    pub owner: String,
    /// Claim generation: 1 on first claim, +1 per takeover.
    pub attempt: u32,
    /// Fencing token of the current claim.
    pub token: u64,
    /// Whether the owner marked the claim failed before exiting (an
    /// observed death: reclaimable after backoff alone, no timeout).
    pub failed: bool,
    /// Age of the last heartbeat.
    pub age: Duration,
    /// Checkpoint progress published with the last heartbeat; `None` on
    /// leases that have not heartbeated progress yet (fresh claims, or
    /// files written by older workers — the fields are parsed leniently).
    pub progress: Option<LeaseProgress>,
}

impl LeaseInfo {
    /// Whether this lease may be taken over now under `policy` and
    /// `timeout`: dead long enough (or marked failed) *and* past the
    /// attempt's backoff gate *and* not exhausted.
    pub fn reclaimable(&self, range_start: usize, timeout: Duration, policy: &RetryPolicy) -> bool {
        if self.attempt >= policy.max_attempts {
            return false;
        }
        let gate = if self.failed {
            policy.backoff(range_start, self.attempt)
        } else {
            timeout + policy.backoff(range_start, self.attempt)
        };
        self.age >= gate
    }

    /// Whether the range is out of retry budget (stale or failed, but
    /// never to be retaken automatically).
    pub fn exhausted(&self, timeout: Duration, policy: &RetryPolicy) -> bool {
        self.attempt >= policy.max_attempts && (self.failed || self.age >= timeout)
    }
}

/// A lease this worker holds.
#[derive(Debug)]
pub struct Lease {
    path: PathBuf,
    /// Claimant identifier recorded in the file.
    pub owner: String,
    /// Claim generation of this hold.
    pub attempt: u32,
    token: u64,
}

fn lease_body(
    owner: &str,
    attempt: u32,
    token: u64,
    failed: bool,
    progress: Option<LeaseProgress>,
) -> String {
    // Owner ids are short host:pid strings; escape just enough that any
    // input still yields a parseable line.
    let owner: String = owner
        .chars()
        .map(|c| match c {
            '"' | '\\' => '_',
            c if (c as u32) < 0x20 => '_',
            c => c,
        })
        .collect();
    let progress = match progress {
        Some(p) => format!(
            ",\"records\":{},\"start_records\":{},\"elapsed_ms\":{}",
            p.records, p.start_records, p.elapsed_ms
        ),
        None => String::new(),
    };
    format!(
        "{{\"owner\":\"{owner}\",\"attempt\":{attempt},\"token\":{token},\"failed\":{failed}{progress}}}\n"
    )
}

fn io_err(path: &Path, e: std::io::Error) -> DistError {
    DistError::Io(format!("{}: {e}", path.display()))
}

/// Mints a fencing token. The process id and a process-wide counter are
/// mixed in so two workers in one process (or one worker re-claiming)
/// can never mint equal tokens for the same attempt — token equality is
/// what `still_owned` fencing rests on.
fn fresh_token(token_salt: u64, attempt: u32) -> u64 {
    static CLAIM_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let seq = CLAIM_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    splitmix64(
        token_salt
            ^ u64::from(std::process::id())
            ^ (u64::from(attempt) << 32)
            ^ seq.rotate_left(17),
    )
}

impl Lease {
    /// Atomically claims `path` (`create_new`): `Ok(Some)` on the win,
    /// `Ok(None)` when someone else holds it.
    pub fn claim(
        path: &Path,
        owner: &str,
        attempt: u32,
        token_salt: u64,
    ) -> Result<Option<Lease>, DistError> {
        use std::io::Write as _;
        let token = fresh_token(token_salt, attempt);
        let mut file = match std::fs::OpenOptions::new().write(true).create_new(true).open(path)
        {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => return Ok(None),
            Err(e) => return Err(io_err(path, e)),
        };
        file.write_all(lease_body(owner, attempt, token, false, None).as_bytes())
            .map_err(|e| io_err(path, e))?;
        Ok(Some(Lease { path: path.to_path_buf(), owner: owner.to_string(), attempt, token }))
    }

    /// Installs a fresh claim **over** an existing (condemned) lease by
    /// atomic rename. Unlike [`Lease::claim`] the path is never left
    /// unoccupied, so no concurrent claimant can observe a bare path
    /// mid-takeover; the previous owner, if somehow still alive, fails
    /// its next token check and stops.
    fn replace(
        path: &Path,
        owner: &str,
        attempt: u32,
        token_salt: u64,
    ) -> Result<Lease, DistError> {
        use std::io::Write as _;
        static TMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let token = fresh_token(token_salt, attempt);
        let tmp = path.with_extension(format!(
            "newlease-{}-{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        ));
        let mut file = std::fs::File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
        file.write_all(lease_body(owner, attempt, token, false, None).as_bytes())
            .map_err(|e| io_err(&tmp, e))?;
        drop(file);
        std::fs::rename(&tmp, path).map_err(|e| io_err(path, e))?;
        Ok(Lease { path: path.to_path_buf(), owner: owner.to_string(), attempt, token })
    }

    /// Refreshes the heartbeat (rewrites the lease, bumping its mtime)
    /// after verifying this worker still owns it. `Ok(false)` = the lease
    /// was taken over (or removed): stop writing to the range.
    pub fn heartbeat(&self) -> Result<bool, DistError> {
        if !self.still_owned()? {
            return Ok(false);
        }
        self.rewrite(false, None)
    }

    /// [`Lease::heartbeat`] that also publishes checkpoint progress for
    /// `repwf dist status` throughput reporting.
    pub fn heartbeat_progress(&self, progress: LeaseProgress) -> Result<bool, DistError> {
        if !self.still_owned()? {
            return Ok(false);
        }
        self.rewrite(false, Some(progress))
    }

    /// Marks the claim failed (observed death) so the retry gate skips
    /// the staleness timeout. Ownership loss is not an error here — the
    /// range is someone else's problem already.
    pub fn mark_failed(&self) -> Result<(), DistError> {
        if self.still_owned()? {
            self.rewrite(true, None)?;
        }
        Ok(())
    }

    /// Releases the lease after successful completion (the done marker,
    /// written first, is what records completion — the lease file is just
    /// noise once it exists). Already-stolen leases release as a no-op.
    pub fn release(self) -> Result<(), DistError> {
        if self.still_owned()? {
            match std::fs::remove_file(&self.path) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(io_err(&self.path, e)),
            }
        }
        Ok(())
    }

    /// Whether the file at the lease path still carries this claim's
    /// token.
    pub fn still_owned(&self) -> Result<bool, DistError> {
        match read_lease_text(&self.path)? {
            Some((info, _)) => Ok(info.token == self.token),
            None => Ok(false),
        }
    }

    fn rewrite(&self, failed: bool, progress: Option<LeaseProgress>) -> Result<bool, DistError> {
        use std::io::Write as _;
        // Plain in-place rewrite (no tmp+rename): a rename would recreate
        // the path even after a thief removed it, resurrecting a dead
        // claim. With open(existing-only), losing the race surfaces as
        // NotFound = ownership lost.
        let mut file = match std::fs::OpenOptions::new().write(true).open(&self.path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(false),
            Err(e) => return Err(io_err(&self.path, e)),
        };
        let body = lease_body(&self.owner, self.attempt, self.token, failed, progress);
        file.set_len(0).map_err(|e| io_err(&self.path, e))?;
        file.write_all(body.as_bytes()).map_err(|e| io_err(&self.path, e))?;
        Ok(true)
    }
}

fn read_lease_text(path: &Path) -> Result<Option<(LeaseInfo, SystemTime)>, DistError> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(io_err(path, e)),
    };
    // The lease can vanish (released, or cleared by a takeover) between
    // the read above and this stat — that is a no-lease observation, not
    // an error.
    let mtime = match std::fs::metadata(path).and_then(|m| m.modified()) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(io_err(path, e)),
    };
    // A lease caught mid-rewrite parses as corrupt; treat it as a live
    // claim of unknown shape (age 0) rather than failing the scan — the
    // next heartbeat makes it readable again.
    let parsed = parse(text.trim()).ok();
    let info = match parsed {
        Some(doc) => {
            // Progress fields are optional (plain heartbeats and leases
            // written by older workers omit them): require all three
            // before reporting any.
            let progress = match (
                doc.get("records").and_then(JsonValue::as_u64),
                doc.get("start_records").and_then(JsonValue::as_u64),
                doc.get("elapsed_ms").and_then(JsonValue::as_u64),
            ) {
                (Some(records), Some(start_records), Some(elapsed_ms)) => {
                    Some(LeaseProgress { records, start_records, elapsed_ms })
                }
                _ => None,
            };
            LeaseInfo {
                owner: doc
                    .get("owner")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("<unreadable>")
                    .to_string(),
                attempt: doc.get("attempt").and_then(JsonValue::as_u64).unwrap_or(1) as u32,
                token: doc.get("token").and_then(JsonValue::as_u64).unwrap_or(0),
                failed: matches!(doc.get("failed"), Some(JsonValue::Bool(true))),
                age: Duration::ZERO,
                progress,
            }
        }
        None => LeaseInfo {
            owner: "<unreadable>".to_string(),
            attempt: 1,
            token: 0,
            failed: false,
            age: Duration::ZERO,
            progress: None,
        },
    };
    Ok(Some((info, mtime)))
}

/// Reads the lease at `path`, if any, with its heartbeat age.
pub fn inspect(path: &Path) -> Result<Option<LeaseInfo>, DistError> {
    Ok(read_lease_text(path)?.map(|(mut info, mtime)| {
        info.age = SystemTime::now().duration_since(mtime).unwrap_or(Duration::ZERO);
        info
    }))
}

/// A takeover that died between planting its tombstone and installing
/// the replacement lease is recovered only once the tombstone is at
/// least this old — a live winner completes the two steps within
/// microseconds, so an old tombstone with the condemned lease still in
/// place can only mean the thief is gone.
const TAKEOVER_RECOVERY_GRACE: Duration = Duration::from_secs(5);

/// Takes over a reclaimable lease: atomically plants a per-attempt
/// tombstone (`<path>.tomb-<attempt>`, a hard link to the condemned
/// lease), then **replaces** the condemned lease in place with a fresh
/// `attempt + 1` claim via tmp + rename. `Ok(None)` = lost the race.
///
/// Two invariants carry the safety argument:
///
/// * The tombstone is planted with `hard_link`, NOT `rename`: rename
///   overwrites an existing tombstone, so a thief acting on stale
///   [`LeaseInfo`] could move the *winning thief's fresh lease* into the
///   tombstone and claim the freed path — two live owners of one unit.
///   `hard_link` fails with `AlreadyExists` once any thief has planted
///   the attempt's tombstone, so exactly one takeover per attempt
///   proceeds.
/// * The path is never unoccupied mid-takeover: the condemned lease is
///   replaced by rename, not removed and re-claimed, so no concurrent
///   worker can observe a bare path and slip in a fresh attempt-1 claim
///   (which would reset the retry budget and sidestep the backoff gate).
pub fn take_over(
    path: &Path,
    stale: &LeaseInfo,
    new_owner: &str,
    token_salt: u64,
) -> Result<Option<Lease>, DistError> {
    take_over_with_grace(path, stale, new_owner, token_salt, TAKEOVER_RECOVERY_GRACE)
}

fn take_over_with_grace(
    path: &Path,
    stale: &LeaseInfo,
    new_owner: &str,
    token_salt: u64,
    grace: Duration,
) -> Result<Option<Lease>, DistError> {
    let tomb = path.with_file_name(format!(
        "{}.tomb-{}",
        path.file_name().and_then(|n| n.to_str()).unwrap_or("lease"),
        stale.attempt,
    ));
    match std::fs::hard_link(path, &tomb) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
            // The attempt's tombstone exists: a racing thief won (the
            // common case — concede), or a thief died between planting
            // the tombstone and replacing the lease. Tombstone and
            // condemned lease were one inode, so the condemned claim is
            // still in place iff path and tombstone hold the same bytes;
            // the age gate rules out a live winner mid-takeover.
            let meta = match std::fs::metadata(&tomb) {
                Ok(m) => m,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
                Err(e) => return Err(io_err(&tomb, e)),
            };
            let age = meta
                .modified()
                .ok()
                .and_then(|t| SystemTime::now().duration_since(t).ok())
                .unwrap_or(Duration::ZERO);
            if age < grace {
                return Ok(None);
            }
            let tomb_bytes = match std::fs::read(&tomb) {
                Ok(b) => b,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
                Err(e) => return Err(io_err(&tomb, e)),
            };
            match std::fs::read(path) {
                Ok(cur) if cur == tomb_bytes => {}
                Ok(_) => return Ok(None),
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
                Err(e) => return Err(io_err(path, e)),
            }
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(io_err(path, e)),
    }
    Lease::replace(path, new_owner, stale.attempt + 1, token_salt).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "repwf-lease-{}-{:?}",
            std::process::id(),
            std::thread::current().id(),
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn claim_is_exclusive_and_release_frees() {
        let path = dir().join("r0-10.lease");
        let _ = std::fs::remove_file(&path);
        let lease = Lease::claim(&path, "w1", 1, 7).unwrap().expect("first claim wins");
        assert!(Lease::claim(&path, "w2", 1, 8).unwrap().is_none(), "second claim loses");
        let info = inspect(&path).unwrap().expect("lease readable");
        assert_eq!((info.owner.as_str(), info.attempt, info.failed), ("w1", 1, false));
        assert!(lease.heartbeat().unwrap());
        lease.release().unwrap();
        assert!(inspect(&path).unwrap().is_none());
        assert!(Lease::claim(&path, "w2", 1, 8).unwrap().is_some());
    }

    fn tomb_of(path: &std::path::Path, attempt: u32) -> std::path::PathBuf {
        path.with_file_name(format!(
            "{}.tomb-{attempt}",
            path.file_name().and_then(|n| n.to_str()).unwrap(),
        ))
    }

    #[test]
    fn takeover_fences_the_old_owner() {
        let path = dir().join("r10-10.lease");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(tomb_of(&path, 1));
        let old = Lease::claim(&path, "dead", 1, 1).unwrap().unwrap();
        let stale = inspect(&path).unwrap().unwrap();
        let new = take_over(&path, &stale, "thief", 2).unwrap().expect("rename wins");
        assert_eq!(new.attempt, 2);
        // The dead owner notices at its next heartbeat and stops.
        assert!(!old.heartbeat().unwrap());
        assert!(old.release().is_ok(), "stolen lease releases as a no-op");
        assert!(inspect(&path).unwrap().unwrap().owner == "thief");
        // Losing thief: the lease file is gone from under the takeover.
        assert!(take_over(&path.with_extension("gone"), &stale, "late", 3).unwrap().is_none());
    }

    #[test]
    fn a_thief_with_stale_info_cannot_steal_the_winners_fresh_lease() {
        let path = dir().join("r30-10.lease");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(tomb_of(&path, 1));
        let old = Lease::claim(&path, "dead", 1, 1).unwrap().unwrap();
        old.mark_failed().unwrap();
        let stale = inspect(&path).unwrap().unwrap();
        let winner = take_over(&path, &stale, "w", 2).unwrap().expect("first thief wins");
        // The second thief still holds the pre-takeover LeaseInfo. A
        // rename-planted tombstone would move the winner's fresh lease
        // into the tombstone here and hand the freed path to the loser —
        // two live owners appending to one unit file.
        assert!(
            take_over(&path, &stale, "loser", 3).unwrap().is_none(),
            "a thief acting on condemned-attempt info must lose",
        );
        assert!(winner.heartbeat().unwrap(), "winner's lease is untouched");
        assert_eq!(inspect(&path).unwrap().unwrap().owner, "w");
    }

    #[test]
    fn a_half_finished_takeover_is_recoverable() {
        let path = dir().join("r40-10.lease");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(tomb_of(&path, 1));
        let old = Lease::claim(&path, "dead", 1, 1).unwrap().unwrap();
        old.mark_failed().unwrap();
        let stale = inspect(&path).unwrap().unwrap();
        // Simulate a thief that died between planting the tombstone and
        // replacing the lease: the tombstone exists, hard-linked to the
        // still-condemned lease. Grace zero stands in for the tombstone
        // having aged past TAKEOVER_RECOVERY_GRACE.
        std::fs::hard_link(&path, tomb_of(&path, 1)).unwrap();
        let heir = take_over_with_grace(&path, &stale, "heir", 4, Duration::ZERO)
            .unwrap()
            .expect("recovery finishes the dead thief's takeover");
        assert_eq!(heir.attempt, 2);
        assert_eq!(inspect(&path).unwrap().unwrap().owner, "heir");
    }

    #[test]
    fn mark_failed_round_trips_and_gates_on_backoff_only() {
        let path = dir().join("r20-10.lease");
        let _ = std::fs::remove_file(&path);
        let lease = Lease::claim(&path, "w1", 2, 9).unwrap().unwrap();
        lease.mark_failed().unwrap();
        let info = inspect(&path).unwrap().unwrap();
        assert!(info.failed);
        let policy = RetryPolicy { base: Duration::ZERO, ..RetryPolicy::default() };
        // Zero base → zero backoff → failed leases reclaim immediately,
        // while a live (non-failed) lease still waits out the timeout.
        assert!(info.reclaimable(20, Duration::from_secs(3600), &policy));
        let live = LeaseInfo { failed: false, ..info.clone() };
        assert!(!live.reclaimable(20, Duration::from_secs(3600), &policy));
        // Exhaustion: at max_attempts a failed lease is degraded, not
        // reclaimable.
        let worn = LeaseInfo { attempt: policy.max_attempts, ..info };
        assert!(!worn.reclaimable(20, Duration::from_secs(3600), &policy));
        assert!(worn.exhausted(Duration::from_secs(3600), &policy));
    }

    #[test]
    fn heartbeat_progress_round_trips_and_derives_throughput() {
        let path = dir().join("r50-10.lease");
        let _ = std::fs::remove_file(&path);
        let lease = Lease::claim(&path, "w1", 1, 11).unwrap().unwrap();
        assert!(
            inspect(&path).unwrap().unwrap().progress.is_none(),
            "fresh claim publishes no progress"
        );
        let p = LeaseProgress { records: 120, start_records: 20, elapsed_ms: 4000 };
        assert!(lease.heartbeat_progress(p).unwrap());
        let info = inspect(&path).unwrap().unwrap();
        assert_eq!(info.progress, Some(p));
        assert_eq!(p.records_per_sec(), Some(25.0));
        // No records yet, or no measurable time: no rate (never a NaN/inf).
        let idle = LeaseProgress { records: 20, start_records: 20, elapsed_ms: 4000 };
        assert_eq!(idle.records_per_sec(), None);
        let instant = LeaseProgress { records: 50, start_records: 0, elapsed_ms: 0 };
        assert_eq!(instant.records_per_sec(), None);
        // A plain heartbeat keeps the lease valid but drops the snapshot.
        assert!(lease.heartbeat().unwrap());
        assert!(inspect(&path).unwrap().unwrap().progress.is_none());
        lease.release().unwrap();
    }

    #[test]
    fn backoff_is_deterministic_bounded_and_monotone_in_expectation() {
        let policy = RetryPolicy {
            base: Duration::from_millis(100),
            cap: Duration::from_secs(2),
            max_attempts: 10,
            jitter_seed: 42,
        };
        for attempt in 1..10 {
            let a = policy.backoff(17, attempt);
            let b = policy.backoff(17, attempt);
            assert_eq!(a, b, "jitter must be deterministic");
            let exp = policy.base.saturating_mul(1 << (attempt - 1)).min(policy.cap);
            assert!(a >= exp && a < exp + policy.base, "attempt {attempt}: {a:?}");
        }
        assert_ne!(policy.backoff(17, 3), policy.backoff(18, 3), "jitter varies by range");
    }
}
