//! **repwf-dist** — sharded, resumable, merge-exact campaign execution
//! across processes and hosts.
//!
//! The paper's headline experiments are large randomized campaigns
//! (thousands of sampled pipeline/platform instances per Table 2 point).
//! Since experiment `k` derives *all* of its randomness from
//! `seed_base + k`, the seed space partitions deterministically — the
//! same property that makes campaign results bit-identical at any thread
//! count also makes them bit-identical at any **process and host count**,
//! if the decomposition is fixed up front (the approach of Bobpp-style
//! deterministic work decomposition). This crate supplies that
//! decomposition and the machinery around it:
//!
//! * [`plan::ShardPlan`] — contiguous deterministic partition of a
//!   campaign's seed range into `num_shards` shards. Pure arithmetic:
//!   every party (shard runners on different hosts, the merger, tests)
//!   derives the same ranges from `(seed_base, count, num_shards)`.
//! * [`manifest::ShardManifest`] — a serialized JSON header pinning the
//!   generator config, communication model, TPN cap and seed range, so a
//!   shard file is **self-describing** and verifiable at merge time;
//!   mismatched manifests are diagnosed field by field, never silently
//!   accepted.
//! * [`shard`] — the streaming NDJSON shard writer: one record per
//!   [`repwf_gen::ExperimentOutcome`] (f64s as exact bit patterns),
//!   appended **in seed order** while the campaign runs multi-threaded
//!   (via [`repwf_par::par_map_init_ordered`]), plus a footer with the
//!   record count and a checksum. **Checkpoint/resume**: on restart,
//!   [`shard::run_shard`] re-opens a partial file, validates the prefix,
//!   truncates a torn trailing line and continues from the first missing
//!   seed — converging to the same bytes as an uninterrupted run.
//! * [`merge`] — the **exact merger**: validates that the shard files
//!   tile the campaign's seed range exactly (missing, duplicate and
//!   foreign shards are errors), concatenates outcomes in seed order and
//!   recombines the associative [`repwf_gen::CampaignAccum`] aggregates.
//!   The merged [`report::campaign_doc`] JSON is **byte-identical** to
//!   the unsharded `repwf campaign --json` output for any
//!   `num_shards × threads` combination (property-tested in
//!   `tests/shard_props.rs` and pinned end-to-end by the CLI tests and
//!   the CI `shard-smoke` job).
//! * [`report`] — the campaign JSON document builder shared by
//!   `repwf campaign --json` and `repwf merge --json` (sharing one
//!   builder is what makes "byte-identical" a structural guarantee
//!   rather than a test-enforced coincidence), and [`json`] — the
//!   dependency-free JSON writer/parser it builds on (moved here from
//!   the CLI; the parser keeps integer tokens exact up to u128, which
//!   the bit-pattern round-trip relies on).
//!
//! # Workflow
//!
//! ```text
//! host A $ repwf campaign --count 9000 --shard 0/3 --out s0.ndjson
//! host B $ repwf campaign --count 9000 --shard 1/3 --out s1.ndjson
//! host C $ repwf campaign --count 9000 --shard 2/3 --out s2.ndjson
//!     ... copy the .ndjson files anywhere ...
//!        $ repwf merge s0.ndjson s1.ndjson s2.ndjson --json
//!        # == repwf campaign --count 9000 --json, byte for byte
//! ```
//!
//! A killed shard is simply re-run with the same command line; completed
//! experiments are validated and skipped, not recomputed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod json;
pub mod lease;
pub mod manifest;
pub mod merge;
pub mod plan;
pub mod report;
pub mod shard;
pub mod supervise;

pub use fault::FaultPlan;
pub use lease::{LeaseInfo, LeaseProgress};
pub use manifest::{CampaignSpec, ShardManifest};
pub use merge::{merge_paths, merge_paths_partial, MergeReport, MergedCampaign};
pub use plan::ShardPlan;
pub use shard::{
    read_shard, run_range, run_shard, run_shard_opts, ShardRunOptions, ShardRunSummary,
};
pub use supervise::{status, supervise, SuperviseOptions, SuperviseSummary};

/// Errors of the distributed campaign subsystem.
///
/// Every variant carries a human-readable diagnosis: the CLI surfaces
/// these verbatim, and the merge/resume paths are required to *diagnose*
/// inconsistent inputs (mismatched manifests, missing or duplicate
/// seeds, torn files) rather than silently accept them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DistError {
    /// Filesystem failure (open/read/write/truncate).
    Io(String),
    /// Invalid shard plan or option values (e.g. `--shard 3/3`).
    Plan(String),
    /// A shard file violates the NDJSON shard format beyond a torn tail:
    /// unparseable interior line, out-of-order seed, bad checksum.
    Corrupt {
        /// Offending file.
        path: String,
        /// What exactly is wrong, with a line number where possible.
        reason: String,
    },
    /// A shard file's manifest disagrees with the expected campaign
    /// (different config, model, cap, seed range or shard layout).
    ManifestMismatch {
        /// Offending file.
        path: String,
        /// First differing field, with both values.
        reason: String,
    },
    /// The set of shard files does not tile the campaign exactly
    /// (missing or duplicate shard indices, or an incomplete shard).
    ShardSet(String),
    /// An **injected** fault fired (deterministic chaos testing): the
    /// worker behaved exactly as a killed process would — valid
    /// checkpoint prefix on disk, nothing merged — and reports it here
    /// instead of dying, so in-process tests can assert on the recovery.
    Fault(String),
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistError::Io(m) => write!(f, "i/o error: {m}"),
            DistError::Plan(m) => write!(f, "invalid shard plan: {m}"),
            DistError::Corrupt { path, reason } => {
                write!(f, "corrupt shard file {path}: {reason}")
            }
            DistError::ManifestMismatch { path, reason } => {
                write!(f, "manifest mismatch in {path}: {reason}")
            }
            DistError::ShardSet(m) => write!(f, "inconsistent shard set: {m}"),
            DistError::Fault(m) => write!(f, "injected fault: {m}"),
        }
    }
}

impl std::error::Error for DistError {}
