//! Minimal JSON document builder (deterministic key order, no deps).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Finite floating-point number (non-finite renders as `null`).
    Num(f64),
    /// Unsigned integer (covers path counts up to `u128`).
    UInt(u128),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object; keys keep insertion order so output is deterministic.
    Obj(Vec<(&'static str, Json)>),
}

impl Json {
    /// Convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Serializes with two-space indentation and a trailing newline.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                if x.is_finite() {
                    // `{}` on f64 is shortest-round-trip and never scientific.
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (k, item) in items.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (k, (key, value)) in fields.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parsed JSON value (owned keys, unlike the writer-side [`Json`] whose
/// object keys are static). Used by `repwf bench --check` to read committed
/// baselines back in and by the shard-file readers of this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A JSON number with a sign, fraction or exponent.
    Num(f64),
    /// An unsigned-integer JSON number (plain digit run), kept exact.
    ///
    /// Shard manifests and records carry f64 **bit patterns** and path
    /// counts as u64/u128 integers; routing every number through f64
    /// would silently corrupt values above 2^53, so integer tokens keep
    /// full precision.
    UInt(u128),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<JsonValue>),
    /// Object, in document order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member of an object by key.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number (integers convert lossily above
    /// 2^53, like any f64).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(x) => Some(*x),
            JsonValue::UInt(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// Exact unsigned integer, if this is an integer token that fits u64.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::UInt(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// Exact unsigned integer, if this is an integer token.
    pub fn as_u128(&self) -> Option<u128> {
        match self {
            JsonValue::UInt(n) => Some(*n),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses a JSON document (strict enough for round-tripping this crate's
/// own output; errors carry a byte offset).
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let JsonValue::Str(key) = parse_value(b, pos)? else {
                    return Err(format!("object key must be a string at byte {pos}"));
                };
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                fields.push((key, parse_value(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            let mut out = String::new();
            loop {
                match b.get(*pos) {
                    None => return Err("unterminated string".to_string()),
                    Some(b'"') => {
                        *pos += 1;
                        return Ok(JsonValue::Str(out));
                    }
                    Some(b'\\') => {
                        *pos += 1;
                        match b.get(*pos) {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'n') => out.push('\n'),
                            Some(b'r') => out.push('\r'),
                            Some(b't') => out.push('\t'),
                            Some(b'u') => {
                                let hex = b
                                    .get(*pos + 1..*pos + 5)
                                    .ok_or("truncated \\u escape")?;
                                let code = u32::from_str_radix(
                                    std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                    16,
                                )
                                .map_err(|e| e.to_string())?;
                                out.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| format!("bad \\u escape {code:#x}"))?,
                                );
                                *pos += 4;
                            }
                            other => return Err(format!("bad escape {other:?}")),
                        }
                        *pos += 1;
                    }
                    Some(_) => {
                        // Consume one UTF-8 scalar (multi-byte safe).
                        let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                        let c = rest.chars().next().expect("non-empty");
                        out.push(c);
                        *pos += c.len_utf8();
                    }
                }
            }
        }
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(JsonValue::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(JsonValue::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(JsonValue::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let raw = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
            // A plain digit run is an exact unsigned integer (bit patterns,
            // seeds, path counts); anything signed/fractional/exponential
            // is a float.
            if raw.bytes().all(|c| c.is_ascii_digit()) {
                if let Ok(n) = raw.parse::<u128>() {
                    return Ok(JsonValue::UInt(n));
                }
            }
            raw.parse::<f64>()
                .map(JsonValue::Num)
                .map_err(|_| format!("invalid number {raw:?} at byte {start}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_writer_output() {
        let doc = Json::Obj(vec![
            ("name", Json::str("bench \"x\"\n")),
            ("value", Json::Num(1.25)),
            ("count", Json::UInt(42)),
            ("flag", Json::Bool(true)),
            ("missing", Json::Null),
            ("xs", Json::Arr(vec![Json::Num(-3.5), Json::Num(1e-9)])),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ]);
        let parsed = parse(&doc.to_string_pretty()).unwrap();
        assert_eq!(parsed.get("name").unwrap().as_str().unwrap(), "bench \"x\"\n");
        assert_eq!(parsed.get("value").unwrap().as_f64().unwrap(), 1.25);
        assert_eq!(parsed.get("count").unwrap().as_f64().unwrap(), 42.0);
        assert_eq!(parsed.get("flag").unwrap(), &JsonValue::Bool(true));
        assert_eq!(parsed.get("missing").unwrap(), &JsonValue::Null);
        let xs = parsed.get("xs").unwrap().as_arr().unwrap();
        assert_eq!(xs[0].as_f64().unwrap(), -3.5);
        assert_eq!(xs[1].as_f64().unwrap(), 1e-9);
        assert_eq!(parsed.get("empty_arr").unwrap().as_arr().unwrap().len(), 0);
    }

    #[test]
    fn integer_tokens_keep_full_precision() {
        // 2^63 + 1 is not representable in f64; shard records depend on
        // u64 bit patterns surviving a parse round-trip exactly.
        let bits = (1u64 << 63) + 1;
        let doc = parse(&format!(
            "{{\"bits\": {bits}, \"big\": {}, \"neg\": -7, \"frac\": 2.0}}",
            u128::MAX
        ))
        .unwrap();
        assert_eq!(doc.get("bits").unwrap().as_u64(), Some(bits));
        assert_eq!(doc.get("big").unwrap().as_u128(), Some(u128::MAX));
        assert_eq!(doc.get("neg").unwrap().as_u64(), None, "negatives are not UInt");
        assert_eq!(doc.get("neg").unwrap().as_f64(), Some(-7.0));
        assert_eq!(doc.get("frac").unwrap(), &JsonValue::Num(2.0));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("123 456").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn renders_nested_documents() {
        let doc = Json::Obj(vec![
            ("name", Json::str("Example \"A\"")),
            ("period", Json::Num(189.0)),
            ("paths", Json::UInt(6)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            ("xs", Json::Arr(vec![Json::Num(1.5), Json::Num(2.0)])),
        ]);
        let text = doc.to_string_pretty();
        assert!(text.contains("\"name\": \"Example \\\"A\\\"\""));
        assert!(text.contains("\"period\": 189"));
        assert!(text.contains("\"paths\": 6"));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn non_finite_is_null() {
        assert_eq!(Json::Num(f64::NAN).to_string_pretty(), "null\n");
    }
}
