//! The exact merger: shard files → the unsharded campaign result.

use crate::manifest::CampaignSpec;
use crate::DistError;
use repwf_gen::campaign::{CampaignAccum, CampaignResult, ExperimentOutcome};
use std::path::Path;

/// A merged campaign: the spec every shard agreed on, the concatenated
/// outcomes, and the recombined associative aggregates.
#[derive(Debug, Clone, PartialEq)]
pub struct MergedCampaign {
    /// The campaign all shards belong to.
    pub spec: CampaignSpec,
    /// How many shards tiled it.
    pub num_shards: usize,
    /// Outcomes in seed order — exactly what the unsharded
    /// [`repwf_gen::run_campaign`] returns for `spec`.
    pub result: CampaignResult,
    /// Aggregates merged shard-by-shard through
    /// [`CampaignAccum::merge`] — bit-identical to `result.accum()`
    /// (asserted in debug builds) because every fold is associative.
    pub accum: CampaignAccum,
}

/// Reads, validates and merges a set of shard files.
///
/// Guarantees on success: the shards share one campaign spec and plan
/// layout bitwise, their indices are exactly `0..num_shards` (each once),
/// every shard is complete with a matching checksum, and the
/// concatenated outcomes cover seeds `seed_base..seed_base+count` with no
/// gap or duplicate. Anything else is a diagnosed [`DistError`] — a
/// merge never silently drops or deduplicates data.
///
/// The merged result is **bit-identical** to the unsharded campaign: the
/// outcome list is byte-for-byte the one `run_campaign` produces (each
/// outcome is a pure function of its seed, transported as exact bit
/// patterns), and the aggregates recombine associatively.
pub fn merge_paths<P: AsRef<Path>>(paths: &[P]) -> Result<MergedCampaign, DistError> {
    if paths.is_empty() {
        return Err(DistError::ShardSet("no shard files given".to_string()));
    }
    // Phase 1 — read every file and parse only its manifest line: all
    // set-level problems (mismatched campaign, duplicate or missing
    // indices) are diagnosed from the headers alone, before paying the
    // record-by-record parse of even one large shard.
    let mut files: Vec<(String, String, crate::manifest::ShardManifest)> =
        Vec::with_capacity(paths.len());
    for path in paths {
        let path = path.as_ref();
        let name = path.display().to_string();
        let text = std::fs::read_to_string(path)
            .map_err(|e| DistError::Io(format!("cannot read {name}: {e}")))?;
        let manifest = crate::shard::manifest_of(&text, &name)?;
        files.push((name, text, manifest));
    }

    let (first_path, _, first_manifest) = &files[0];
    for (path, _, manifest) in &files[1..] {
        if let Some(diff) = first_manifest.campaign_mismatch(manifest) {
            return Err(DistError::ManifestMismatch {
                path: path.clone(),
                reason: format!("disagrees with {first_path} on {diff}"),
            });
        }
    }
    let spec = first_manifest.spec;
    let num_shards = first_manifest.plan.num_shards;

    // Exactly one shard per index.
    let mut slot_of_index: Vec<Option<usize>> = vec![None; num_shards];
    for (slot, (path, _, manifest)) in files.iter().enumerate() {
        let index = manifest.plan.shard_index;
        if let Some(previous) = slot_of_index[index] {
            return Err(DistError::ShardSet(format!(
                "duplicate shard {index}/{num_shards}: {} and {path}",
                files[previous].0
            )));
        }
        slot_of_index[index] = Some(slot);
    }
    let missing: Vec<String> = slot_of_index
        .iter()
        .enumerate()
        .filter(|(_, slot)| slot.is_none())
        .map(|(index, _)| index.to_string())
        .collect();
    if !missing.is_empty() {
        return Err(DistError::ShardSet(format!(
            "missing shard(s) {} of {num_shards}",
            missing.join(", ")
        )));
    }

    // Phase 2 — full validation (records, seed contiguity, footer,
    // checksum) and concatenation in shard-index order (= seed order),
    // recombining the associative aggregates.
    let mut outcomes: Vec<ExperimentOutcome> = Vec::with_capacity(spec.count);
    let mut accum = CampaignAccum::new();
    for slot in slot_of_index {
        let (name, text, manifest) = &files[slot.expect("all indices covered above")];
        let (_, mut shard_outcomes) = crate::shard::read_complete(text, name)?;
        debug_assert_eq!(shard_outcomes.len(), manifest.plan.shard_count());
        debug_assert_eq!(
            shard_outcomes.first().map(|o| o.seed),
            (manifest.plan.shard_count() > 0).then(|| manifest.plan.seed_start()),
        );
        let mut shard_accum = CampaignAccum::new();
        for outcome in &shard_outcomes {
            shard_accum.push(outcome);
        }
        accum.merge(&shard_accum);
        outcomes.append(&mut shard_outcomes);
    }
    debug_assert_eq!(outcomes.len(), spec.count);
    let result = CampaignResult { outcomes };
    debug_assert_eq!(accum, result.accum(), "shard-merged aggregates must be exact");
    Ok(MergedCampaign { spec, num_shards, result, accum })
}
