//! The exact merger: shard files → the unsharded campaign result.
//!
//! Two kinds of input tile a campaign's seed range:
//!
//! * **fraction shards** (`--shard I/N`): indices must be exactly
//!   `0..N`, each exactly once — diagnosed by index, as always;
//! * **range shards** (supervisor claim units, `--range OFF+LEN`):
//!   arbitrary contiguous slices, possibly early-closed after a
//!   re-split — diagnosed by **coverage**: the covered spans must tile
//!   `0..count` with no gap and no overlap.
//!
//! Either way a failed validation names the *exact uncovered seed
//! ranges* and a ready-to-run command per gap. [`merge_paths_partial`]
//! (the `--allow-partial` path) degrades instead of refusing: it merges
//! every valid record — including the checkpoint prefix of an
//! incomplete shard — and reports the missing ranges explicitly, so a
//! degraded campaign still yields its partial statistics plus a precise
//! work list. Corrupt files (checksum, interior damage) are refused in
//! both modes; partial means *missing data tolerated*, never *bad data
//! accepted*.

use crate::manifest::{model_name, CampaignSpec};
use crate::DistError;
use repwf_gen::campaign::{CampaignAccum, CampaignResult, ExperimentOutcome};
use std::path::Path;

/// A merged campaign: the spec every shard agreed on, the concatenated
/// outcomes, and the recombined associative aggregates.
#[derive(Debug, Clone, PartialEq)]
pub struct MergedCampaign {
    /// The campaign all shards belong to.
    pub spec: CampaignSpec,
    /// How many shard files merged into it.
    pub num_shards: usize,
    /// Outcomes in seed order — exactly what the unsharded
    /// [`repwf_gen::run_campaign`] returns for `spec` (on a partial
    /// merge, the covered subsequence of it).
    pub result: CampaignResult,
    /// Aggregates merged shard-by-shard through
    /// [`CampaignAccum::merge`] — bit-identical to `result.accum()`
    /// (asserted in debug builds) because every fold is associative.
    pub accum: CampaignAccum,
}

/// Result of a coverage-tolerant merge ([`merge_paths_partial`]).
#[derive(Debug, Clone, PartialEq)]
pub struct MergeReport {
    /// Everything that merged.
    pub merged: MergedCampaign,
    /// Uncovered seed ranges `[start, end)`, empty when the merge is in
    /// fact complete.
    pub missing: Vec<(u64, u64)>,
}

/// Reads, validates and merges a set of shard files **exactly**.
///
/// Guarantees on success: the shards share one campaign spec bitwise,
/// every shard is complete with a matching checksum, and the
/// concatenated outcomes cover seeds `seed_base..seed_base+count` with no
/// gap or duplicate. Anything else is a diagnosed [`DistError`] — a
/// merge never silently drops or deduplicates data.
///
/// The merged result is **bit-identical** to the unsharded campaign: the
/// outcome list is byte-for-byte the one `run_campaign` produces (each
/// outcome is a pure function of its seed, transported as exact bit
/// patterns), and the aggregates recombine associatively.
pub fn merge_paths<P: AsRef<Path>>(paths: &[P]) -> Result<MergedCampaign, DistError> {
    merge_core(paths, false).map(|report| {
        debug_assert!(report.missing.is_empty());
        report.merged
    })
}

/// [`merge_paths`] with **missing coverage tolerated**: incomplete
/// shards contribute their validated checkpoint prefix, uncovered
/// ranges are reported instead of refused. Corruption and manifest
/// mismatches still fail.
pub fn merge_paths_partial<P: AsRef<Path>>(paths: &[P]) -> Result<MergeReport, DistError> {
    merge_core(paths, true)
}

/// Renders the campaign's command-line flags, so coverage diagnostics
/// can print ready-to-run resume commands.
pub(crate) fn campaign_flags(spec: &CampaignSpec) -> String {
    let range_text = |r: repwf_gen::Range| {
        if r.lo == r.hi {
            format!("{}", r.lo)
        } else {
            format!("{}..{}", r.lo, r.hi)
        }
    };
    format!(
        "--stages {} --procs {} --comp {} --comm {} --count {} --seed {} --cap {} --model {}",
        spec.cfg.stages,
        spec.cfg.procs,
        range_text(spec.cfg.comp),
        range_text(spec.cfg.comm),
        spec.count,
        spec.seed_base,
        spec.cap,
        model_name(spec.model),
    )
}

/// One gap diagnosis line: the exact seed range plus the command that
/// computes exactly the missing slice.
fn gap_line(spec: &CampaignSpec, offset: usize, end: usize) -> String {
    let len = end - offset;
    format!(
        "  seeds {}..{} uncovered — run: repwf campaign {} --range {offset}+{len} \
         --out r{offset}-{len}.ndjson",
        spec.seed_base + offset as u64,
        spec.seed_base + end as u64,
        campaign_flags(spec),
    )
}

fn merge_core<P: AsRef<Path>>(paths: &[P], allow_partial: bool) -> Result<MergeReport, DistError> {
    if paths.is_empty() {
        return Err(DistError::ShardSet("no shard files given".to_string()));
    }
    // Phase 1 — read every file and parse only its manifest line: all
    // set-level problems (mismatched campaign, duplicate or missing
    // indices) are diagnosed from the headers alone, before paying the
    // record-by-record parse of even one large shard.
    let mut files: Vec<(String, String, crate::manifest::ShardManifest)> =
        Vec::with_capacity(paths.len());
    for path in paths {
        let path = path.as_ref();
        let name = path.display().to_string();
        let text = std::fs::read_to_string(path)
            .map_err(|e| DistError::Io(format!("cannot read {name}: {e}")))?;
        let manifest = crate::shard::manifest_of(&text, &name)?;
        files.push((name, text, manifest));
    }

    let (first_path, _, first_manifest) = &files[0];
    for (path, _, manifest) in &files[1..] {
        if let Some(diff) = first_manifest.campaign_mismatch(manifest) {
            return Err(DistError::ManifestMismatch {
                path: path.clone(),
                reason: format!("disagrees with {first_path} on {diff}"),
            });
        }
    }
    let spec = first_manifest.spec;

    // Index bookkeeping applies to the classic all-fraction, exact case:
    // shard indices are the crisper diagnosis when they exist, and the
    // historical messages stay stable for scripts that grep them.
    let all_fraction = files.iter().all(|(_, _, m)| m.plan.range_slice().is_none());
    if all_fraction && !allow_partial {
        let num_shards = first_manifest.plan.num_shards;
        let mut slot_of_index: Vec<Option<usize>> = vec![None; num_shards];
        for (slot, (path, _, manifest)) in files.iter().enumerate() {
            let index = manifest.plan.shard_index;
            if let Some(previous) = slot_of_index[index] {
                return Err(DistError::ShardSet(format!(
                    "duplicate shard {index}/{num_shards}: {} and {path}",
                    files[previous].0
                )));
            }
            slot_of_index[index] = Some(slot);
        }
        let missing: Vec<usize> = slot_of_index
            .iter()
            .enumerate()
            .filter(|(_, slot)| slot.is_none())
            .map(|(index, _)| index)
            .collect();
        if !missing.is_empty() {
            // The historical one-line diagnosis, now followed by the
            // exact seed ranges and the command that fills each gap.
            let mut msg = format!(
                "missing shard(s) {} of {num_shards}",
                missing.iter().map(ToString::to_string).collect::<Vec<_>>().join(", ")
            );
            for index in missing {
                let plan = crate::ShardPlan::new(spec.seed_base, spec.count, index, num_shards)?;
                msg.push('\n');
                msg.push_str(&format!(
                    "  seeds {}..{} uncovered — run: repwf campaign {} --shard \
                     {index}/{num_shards} --out shard{index}.ndjson",
                    plan.seed_start(),
                    plan.seed_end(),
                    campaign_flags(&spec),
                ));
            }
            return Err(DistError::ShardSet(msg));
        }
    }

    // Phase 2 — full validation of every file (records, seed contiguity,
    // footer, checksum), collecting each file's covered span.
    struct Cover {
        slot: usize,
        offset: usize,
        take: usize,
    }
    let mut covers: Vec<Cover> = Vec::with_capacity(files.len());
    let mut outcomes_of: Vec<Vec<ExperimentOutcome>> = Vec::with_capacity(files.len());
    for (slot, (name, text, manifest)) in files.iter().enumerate() {
        let scan = crate::shard::scan(text, name)?;
        if !scan.complete && !allow_partial {
            let plan = &manifest.plan;
            let resume = match plan.range_slice() {
                Some((offset, len)) => format!(
                    "repwf campaign {} --range {offset}+{len} --out {name}",
                    campaign_flags(&spec)
                ),
                None => format!(
                    "repwf campaign {} --shard {}/{} --out {name}",
                    campaign_flags(&spec),
                    plan.shard_index,
                    plan.num_shards
                ),
            };
            return Err(DistError::ShardSet(format!(
                "{name} is incomplete ({} of {} records, no valid footer) — finish it with: \
                 {resume}\n  (or merge what exists with --allow-partial)",
                scan.outcomes.len(),
                plan.shard_count(),
            )));
        }
        covers.push(Cover {
            slot,
            offset: manifest.plan.shard_offset(),
            take: scan.outcomes.len(),
        });
        outcomes_of.push(scan.outcomes);
    }
    covers.sort_by_key(|c| (c.offset, c.slot));

    // Phase 3 — walk the covers in offset order and require (exact) or
    // report (partial) a perfect tiling of `0..count`.
    let mut outcomes: Vec<ExperimentOutcome> = Vec::with_capacity(spec.count);
    let mut accum = CampaignAccum::new();
    let mut missing: Vec<(usize, usize)> = Vec::new();
    let mut expected = 0usize;
    for cover in &covers {
        let name = &files[cover.slot].0;
        if cover.offset > expected {
            missing.push((expected, cover.offset));
            expected = cover.offset;
        }
        let end = cover.offset + cover.take;
        if cover.offset < expected {
            // Overlap. Every record is a pure function of its seed, so
            // overlapping files carry identical bytes and trimming is
            // sound — but an *exact* merge refuses: overlap means the
            // shard set is not the tiling it claims to be.
            if !allow_partial {
                return Err(DistError::ShardSet(format!(
                    "overlapping coverage: {name} begins at seed {} but seeds up to {} are \
                     already covered",
                    spec.seed_base + cover.offset as u64,
                    spec.seed_base + expected as u64,
                )));
            }
            if end <= expected {
                continue; // fully redundant file
            }
        }
        let skip = expected - cover.offset;
        let mut file_accum = CampaignAccum::new();
        for outcome in &outcomes_of[cover.slot][skip..] {
            file_accum.push(outcome);
        }
        accum.merge(&file_accum);
        outcomes.extend_from_slice(&outcomes_of[cover.slot][skip..]);
        expected = end;
    }
    if expected < spec.count {
        missing.push((expected, spec.count));
    }
    if !missing.is_empty() && !allow_partial {
        let total: usize = missing.iter().map(|(s, e)| e - s).sum();
        let mut msg =
            format!("coverage incomplete: {total} of {} experiments missing", spec.count);
        for &(start, end) in &missing {
            msg.push('\n');
            msg.push_str(&gap_line(&spec, start, end));
        }
        return Err(DistError::ShardSet(msg));
    }

    debug_assert!(allow_partial || outcomes.len() == spec.count);
    debug_assert!(outcomes.windows(2).all(|w| w[0].seed < w[1].seed));
    let result = CampaignResult { outcomes };
    debug_assert_eq!(accum, result.accum(), "shard-merged aggregates must be exact");
    Ok(MergeReport {
        merged: MergedCampaign { spec, num_shards: files.len(), result, accum },
        missing: missing
            .into_iter()
            .map(|(s, e)| (spec.seed_base + s as u64, spec.seed_base + e as u64))
            .collect(),
    })
}
