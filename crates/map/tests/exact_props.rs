//! Property tests of the exact optimizer (the correctness spine of the
//! "exact" claim):
//!
//! * **Differential** — on random small instances (`n ≤ 4`, `p ≤ 5`, both
//!   communication models, occasionally with a dead link), the
//!   branch-and-bound optimum is **bit-identical** to exhaustive
//!   enumeration's: same period bit pattern, same canonical mapping —
//!   including instances where every mapping is infeasible. Enumeration
//!   uses a cold oracle and no bounds, so it shares none of the machinery
//!   under test (pruning, warm starts, patched solves, task
//!   partitioning).
//! * **Determinism** — the exact solve at worker counts {1, 2, 4} is
//!   byte-identical: period bits, mapping, and every `ExactStats`
//!   counter (the counters are scheduling-independent by construction:
//!   per-task values summed over statically-numbered tasks).
//! * **Exactness discipline** — a strict-model candidate above the TPN
//!   transition cap aborts with the typed `CandidateTooLarge` error
//!   instead of silently certifying a simulator estimate.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use repwf_core::model::{CommModel, Pipeline, Platform};
use repwf_gen::{GenConfig, Range};
use repwf_map::exact::{solve, search_space_size, ExactError, ExactOptions};
use repwf_map::enumerate;

/// Draws a random small instance. `dead_link` occasionally severs one
/// processor pair so infeasible leaves (validation failures in the
/// enumerator, infinite-bound prunes in the solver) are exercised too.
fn instance(seed: u64, stages: usize, extra_procs: usize, dead_link: bool) -> (Pipeline, Platform) {
    let procs = (stages + extra_procs).min(5);
    let cfg = GenConfig {
        stages,
        procs,
        comp: Range::new(1.0, 10.0),
        comm: Range::new(1.0, 5.0),
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let (pipeline, mut platform, _mapping) = repwf_gen::sampler::sample_parts(&cfg, &mut rng);
    if dead_link {
        let u = rng.gen_range(0..procs);
        let v = rng.gen_range(0..procs);
        platform.set_bandwidth(u, v, 0.0);
    }
    (pipeline, platform)
}

fn model(strict: u8) -> CommModel {
    if strict == 0 { CommModel::Overlap } else { CommModel::Strict }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Satellite 1: B&B optimum == brute-force optimum, bit for bit.
    #[test]
    fn exact_matches_enumeration(
        seed in 0u64..4096,
        stages in 1usize..=4,
        extra in 0usize..=3,
        strict in 0u8..2,
        dead in 0u8..4,
    ) {
        let (pipeline, platform) = instance(seed, stages, extra, dead == 0);
        let model = model(strict);
        let truth = enumerate::optimum(&pipeline, &platform, model).unwrap();
        let opts = ExactOptions { model, ..ExactOptions::default() };
        let res = solve(&pipeline, &platform, &opts).unwrap();

        // Enumeration must have covered the whole space…
        prop_assert_eq!(
            Some(truth.leaves as u128),
            search_space_size(pipeline.num_stages(), platform.num_procs())
        );
        prop_assert_eq!(res.space, Some(truth.leaves as u128));
        // …and branch-and-bound must never do more leaf work than it.
        prop_assert!(res.stats.evaluated <= truth.evaluated);

        match (&truth.best, &res.best) {
            (None, None) => {}
            (Some((tm, tp)), Some((em, ep))) => {
                prop_assert_eq!(tp.to_bits(), ep.to_bits());
                prop_assert_eq!(tm, em);
            }
            (t, e) => prop_assert!(false, "feasibility mismatch: enum {:?} vs exact {:?}", t, e),
        }
    }

    /// Satellite 2: worker counts {1, 2, 4} give byte-identical results —
    /// period bits, mapping, and all scheduling-independent counters.
    #[test]
    fn exact_is_identical_at_any_worker_count(
        seed in 0u64..4096,
        stages in 1usize..=4,
        extra in 0usize..=3,
        strict in 0u8..2,
    ) {
        let (pipeline, platform) = instance(seed, stages, extra, false);
        let solve_at = |threads| {
            let opts = ExactOptions { model: model(strict), threads, ..ExactOptions::default() };
            solve(&pipeline, &platform, &opts).unwrap()
        };
        let base = solve_at(1);
        for threads in [2usize, 4] {
            let run = solve_at(threads);
            match (&base.best, &run.best) {
                (None, None) => {}
                (Some((bm, bp)), Some((rm, rp))) => {
                    prop_assert_eq!(bp.to_bits(), rp.to_bits());
                    prop_assert_eq!(bm, rm);
                }
                (b, r) => prop_assert!(false, "feasibility mismatch: {:?} vs {:?}", b, r),
            }
            prop_assert_eq!(base.stats, run.stats);
            prop_assert_eq!(base.space, run.space);
        }
    }
}

/// Satellite 1 (edge): every mapping infeasible — all inter-processor
/// links dead. Both solvers must agree on `None` rather than erroring or
/// inventing a period.
#[test]
fn all_infeasible_instance_yields_none_from_both_solvers() {
    let pipeline = Pipeline::new(vec![2.0, 3.0], vec![1.0]).unwrap();
    let mut platform = Platform::uniform(3, 1.0, 1.0);
    for u in 0..3 {
        for v in 0..3 {
            platform.set_bandwidth(u, v, 0.0);
        }
    }
    for model in [CommModel::Overlap, CommModel::Strict] {
        let truth = enumerate::optimum(&pipeline, &platform, model).unwrap();
        assert!(truth.best.is_none());
        assert_eq!(truth.evaluated, 0);
        assert_eq!(truth.infeasible, truth.leaves);
        for threads in [1, 2, 4] {
            let opts = ExactOptions { model, threads, ..ExactOptions::default() };
            let res = solve(&pipeline, &platform, &opts).unwrap();
            assert!(res.best.is_none(), "model {model:?} threads {threads}");
            assert_eq!(res.stats.evaluated, 0, "dead links must be pruned, not evaluated");
        }
    }
}

/// Satellite 4: a strict-model candidate above the TPN cap must abort
/// with the typed error — never fall back to the simulator's estimate
/// (which `repwf_map::evaluate_with` would happily return).
#[test]
fn over_cap_strict_candidate_is_a_typed_refusal() {
    let pipeline = Pipeline::new(vec![2.0, 9.0], vec![0.5]).unwrap();
    let platform = Platform::uniform(4, 1.0, 10.0);
    let opts = ExactOptions {
        model: CommModel::Strict,
        max_transitions: 2,
        ..ExactOptions::default()
    };
    let err = solve(&pipeline, &platform, &opts).unwrap_err();
    match &err {
        ExactError::CandidateTooLarge { mapping, .. } => {
            assert!(!mapping.is_one_to_one(), "one-to-one solves bypass the TPN entirely");
        }
        other => panic!("expected CandidateTooLarge, got {other:?}"),
    }
    // The same search with a real cap succeeds — the refusal above was
    // about the cap, not the instance.
    let ok = solve(
        &pipeline,
        &platform,
        &ExactOptions { model: CommModel::Strict, ..ExactOptions::default() },
    )
    .unwrap();
    assert!(ok.best.is_some());
}
