//! Exact mapping optimization: deterministic parallel branch-and-bound.
//!
//! The mapping problem is NP-hard even without replication (Benoit &
//! Robert, JPDC 2008 — reference \[3\] of the paper), so the heuristics of
//! this crate come with no optimality guarantee. For small instances this
//! module closes that gap: [`solve`] searches the **entire** ordered
//! replica-assignment space — round-robin order within a stage's
//! processor list changes the period, so the space is ordered tuples, not
//! sets — and returns a certified optimum, or `None` when every mapping
//! is infeasible.
//!
//! # Bound hierarchy
//!
//! A search node is a *prefix*: stages `0..k` carry their final ordered
//! tuples, later stages are open. Each node is priced by
//! [`MappingOracle::prefix_period_bound`], the maximum of two lower
//! bounds on the period of any completion, checked cheapest-first:
//!
//! 1. **partial `M_ct`** — every cycle-time component the prefix already
//!    determines (`C_comp` of assigned replicas, `C_in`/`C_out` between
//!    assigned neighbors, via the round-robin partner averages of
//!    `repwf_core::cycle_time`), with unknown boundary components bounded
//!    by zero; valid for both [`CommModel`]s because the period is at
//!    least `M_ct`;
//! 2. **single-stage floors** for the open stages — stage `i` on `m`
//!    replicas has `M_ct ≥ w_i / (m · max Π)`, maximized over what the
//!    unused processors could still provide.
//!
//! A subtree is cut when its bound strictly exceeds the **incumbent**
//! period (never on equality — an equal-period mapping may win the
//! canonical tie-break), or when the bound is infinite (no feasible
//! completion exists). Surviving leaves are evaluated through one warm
//! [`MappingOracle`] per worker, so same-shape siblings re-solve on the
//! engine's shape-cached patch path.
//!
//! # Deterministic parallelism
//!
//! The tree is split into **statically-numbered subtree tasks** — one per
//! (stage-0 tuple length, stage-0 first processor) pair, the scheme Bobpp
//! uses for reproducible constraint-program search — executed over
//! `repwf_par`'s work-stealing executor with one engine arena per worker.
//! Each task starts from a fresh oracle state (warm-start, patch and
//! `M_ct` caches reset; the arenas' *allocations* are reused, never their
//! answers) and its own incumbent, so every task's result and counters
//! are pure functions of its task id. Task results are then folded **in
//! task-index order** ([`repwf_par::par_map_init_reduce`]) with the
//! associative best-period / lexicographic-mapping merge. The returned
//! optimum — period bits, mapping, and every [`ExactStats`] counter — is
//! therefore identical at 1, 2, or N workers.
//!
//! # Exactness discipline
//!
//! Unlike the heuristic oracle ([`crate::evaluate_with`]), `solve`
//! **never** falls back to the discrete-event simulator: a simulated
//! period is an estimate, and certifying one as optimal would be a lie.
//! A candidate whose strict-model TPN exceeds the size cap aborts the
//! search with [`ExactError::CandidateTooLarge`] instead.

use crate::enumerate::better_incumbent;
use repwf_core::engine::{MappingOracle, PeriodEngine};
use repwf_core::model::{CommModel, Mapping, Pipeline, Platform};
use repwf_core::period::{Method, PeriodError};
use repwf_core::tpn_build::{BuildError, BuildOptions};

/// Options for the exact search.
#[derive(Debug, Clone)]
pub struct ExactOptions {
    /// Communication model to optimize for.
    pub model: CommModel,
    /// Worker threads (the result is identical at any value).
    pub threads: usize,
    /// Known-achievable upper bound on the optimum (e.g. the *exactly
    /// re-evaluated* period of a heuristic mapping): subtrees bounded
    /// strictly above it are pruned from the start. Must be attainable by
    /// some feasible mapping, otherwise [`ExactResult::best`] may come
    /// back `None` even though feasible mappings exist.
    pub initial_bound: Option<f64>,
    /// TPN transition cap for strict-model leaf evaluations; a leaf above
    /// it aborts with [`ExactError::CandidateTooLarge`].
    pub max_transitions: usize,
}

impl Default for ExactOptions {
    fn default() -> Self {
        ExactOptions {
            model: CommModel::Overlap,
            threads: 1,
            initial_bound: None,
            max_transitions: BuildOptions::default().max_transitions,
        }
    }
}

/// Scheduling-independent search counters: every field is a sum of
/// per-task values, and each task is a pure function of its task id, so
/// the whole struct is bit-identical at any worker count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExactStats {
    /// Statically-numbered subtree tasks the tree was split into.
    pub tasks: u64,
    /// Prefix nodes priced by the lower bound (stage-tuple completions,
    /// leaves included).
    pub nodes: u64,
    /// Subtrees cut because their bound exceeded the incumbent (or was
    /// infinite).
    pub pruned: u64,
    /// Leaves whose period the oracle computed.
    pub evaluated: u64,
    /// Leaves rejected as infeasible (validation failure).
    pub infeasible: u64,
}

impl ExactStats {
    fn absorb(&mut self, other: &ExactStats) {
        self.nodes += other.nodes;
        self.pruned += other.pruned;
        self.evaluated += other.evaluated;
        self.infeasible += other.infeasible;
    }
}

/// Why an exact search refused to answer.
#[derive(Debug, Clone, PartialEq)]
pub enum ExactError {
    /// A candidate's TPN exceeded the transition cap. The heuristic
    /// oracle would fall back to the simulator here; `exact` refuses —
    /// a simulated estimate cannot certify an optimum.
    CandidateTooLarge {
        /// The candidate that overflowed.
        mapping: Mapping,
        /// The underlying build failure (size and cap).
        error: BuildError,
    },
    /// The period solver failed on a candidate (numeric trouble).
    Analysis {
        /// The candidate that failed.
        mapping: Mapping,
        /// The solver's diagnosis.
        message: String,
    },
}

impl std::fmt::Display for ExactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExactError::CandidateTooLarge { mapping, error } => write!(
                f,
                "exact search aborted: candidate {:?} needs a TPN above the cap ({error}); \
                 refusing the simulator fallback — an estimate cannot certify an optimum",
                mapping.assignment()
            ),
            ExactError::Analysis { mapping, message } => {
                write!(f, "exact search aborted on candidate {:?}: {message}", mapping.assignment())
            }
        }
    }
}

impl std::error::Error for ExactError {}

/// The outcome of an exact search.
#[derive(Debug, Clone)]
pub struct ExactResult {
    /// The optimal mapping and its period — the lexicographically
    /// smallest assignment among period-optimal ones — or `None` when
    /// every mapping in the space is infeasible (or none attains
    /// [`ExactOptions::initial_bound`]).
    pub best: Option<(Mapping, f64)>,
    /// Scheduling-independent node/prune counters.
    pub stats: ExactStats,
    /// Total number of leaves in the search space
    /// ([`search_space_size`]); `None` on `u128` overflow.
    pub space: Option<u128>,
}

/// Number of ordered replica assignments of `stages` stages onto `procs`
/// processors: each stage takes a nonempty ordered tuple, tuples are
/// disjoint, and processors may remain unused. `None` on `u128` overflow.
///
/// `f(0, a) = 1`, `f(k, a) = Σ_{m=1}^{a-(k-1)} P(a, m) · f(k-1, a-m)`
/// with `P(a, m)` the falling factorial — the denominator of the bench
/// suite's `exact_prune_ratio` index.
pub fn search_space_size(stages: usize, procs: usize) -> Option<u128> {
    let mut f = vec![vec![0u128; procs + 1]; stages + 1];
    for cell in &mut f[0] {
        *cell = 1;
    }
    for k in 1..=stages {
        for a in 0..=procs {
            let mut total: u128 = 0;
            if a >= k {
                let mut perm: u128 = 1; // P(a, m), built incrementally
                for m in 1..=(a - (k - 1)) {
                    perm = perm.checked_mul((a - m + 1) as u128)?;
                    total = total.checked_add(perm.checked_mul(f[k - 1][a - m])?)?;
                }
            }
            f[k][a] = total;
        }
    }
    Some(f[stages][procs])
}

/// One task's subtree walk: owns the mutable prefix and the task-local
/// incumbent. Never shared across tasks — determinism comes from that.
struct Searcher<'a, 'o> {
    oracle: &'o mut MappingOracle<'a>,
    model: CommModel,
    n: usize,
    p: usize,
    /// The prefix under construction; stages past the current one are
    /// empty placeholders.
    assignment: Vec<Vec<usize>>,
    used: Vec<bool>,
    avail: usize,
    /// Task-local incumbent (no cross-task sharing: counters must be pure
    /// functions of the task id).
    best: Option<(Mapping, f64)>,
    /// Prune threshold: the incumbent's period, or the caller's
    /// `initial_bound`, or `+∞`.
    cutoff: f64,
    stats: ExactStats,
}

impl Searcher<'_, '_> {
    /// The tuple of stage `i` is complete: price the prefix, prune or
    /// descend (evaluate when `i` is the last stage).
    fn close_stage(&mut self, i: usize) -> Result<(), ExactError> {
        self.stats.nodes += 1;
        let bound =
            self.oracle.prefix_period_bound(&self.assignment[..=i], &self.used, self.model);
        // Strictly-greater only: an equal-period completion may still win
        // the canonical (lexicographic) tie-break. Infinite bound = no
        // feasible completion at all.
        if bound > self.cutoff || bound.is_infinite() {
            self.stats.pruned += 1;
            return Ok(());
        }
        if i + 1 == self.n {
            self.evaluate_leaf()
        } else {
            self.extend_stage(i + 1)
        }
    }

    /// Enumerates the ordered tuples of stage `i` in canonical order
    /// (prefixes before their extensions, processors in ascending id
    /// order), closing the stage at every nonempty length.
    fn extend_stage(&mut self, i: usize) -> Result<(), ExactError> {
        if !self.assignment[i].is_empty() {
            self.close_stage(i)?;
        }
        // Stages after `i` need one processor each; only extend while
        // that reserve survives.
        if self.avail > self.n - 1 - i {
            for u in 0..self.p {
                if !self.used[u] {
                    self.push(i, u);
                    self.extend_stage(i)?;
                    self.pop(i, u);
                }
            }
        }
        Ok(())
    }

    /// Completes stage 0 to exactly `m0` replicas (the task's fixed
    /// tuple length; the first element is fixed by the task id too).
    fn fill_stage0(&mut self, m0: usize) -> Result<(), ExactError> {
        if self.assignment[0].len() == m0 {
            return self.close_stage(0);
        }
        for u in 0..self.p {
            if !self.used[u] {
                self.push(0, u);
                self.fill_stage0(m0)?;
                self.pop(0, u);
            }
        }
        Ok(())
    }

    fn push(&mut self, i: usize, u: usize) {
        self.assignment[i].push(u);
        self.used[u] = true;
        self.avail -= 1;
    }

    fn pop(&mut self, i: usize, u: usize) {
        self.assignment[i].pop();
        self.used[u] = false;
        self.avail += 1;
    }

    /// Every stage has its tuple: evaluate exactly, **never** through the
    /// simulator fallback.
    fn evaluate_leaf(&mut self) -> Result<(), ExactError> {
        let mapping =
            Mapping::new(self.assignment.clone()).expect("search builds structurally valid mappings");
        match self.oracle.compute(&mapping, self.model, Method::Auto) {
            Ok(r) => {
                self.stats.evaluated += 1;
                let tie_break = r.period == self.cutoff
                    && self
                        .best
                        .as_ref()
                        .is_none_or(|(b, _)| mapping.assignment() < b.assignment());
                if r.period < self.cutoff || tie_break {
                    self.cutoff = r.period;
                    self.best = Some((mapping, r.period));
                }
                Ok(())
            }
            Err(PeriodError::Model(_)) => {
                self.stats.infeasible += 1;
                Ok(())
            }
            Err(PeriodError::Build(error)) => {
                Err(ExactError::CandidateTooLarge { mapping, error })
            }
            Err(e) => Err(ExactError::Analysis { mapping, message: e.to_string() }),
        }
    }
}

/// One subtree task's result (a pure function of the task id).
struct TaskOut {
    best: Option<(Mapping, f64)>,
    stats: ExactStats,
    err: Option<ExactError>,
}

/// Finds the throughput-optimal mapping by deterministic parallel
/// branch-and-bound (see the module docs for the bound hierarchy and the
/// determinism argument). Returns `best: None` when every mapping is
/// infeasible; errors when any candidate cannot be evaluated *exactly*.
pub fn solve(
    pipeline: &Pipeline,
    platform: &Platform,
    opts: &ExactOptions,
) -> Result<ExactResult, ExactError> {
    let n = pipeline.num_stages();
    let p = platform.num_procs();
    let space = search_space_size(n, p);
    if p < n {
        return Ok(ExactResult { best: None, stats: ExactStats::default(), space });
    }
    // Task (t): stage 0 gets a tuple of length `t / p + 1` starting with
    // processor `t % p` — numbered before execution, independent of the
    // schedule.
    let m0_max = p - (n - 1);
    let num_tasks = m0_max * p;
    let threads = opts.threads.max(1);
    let build = BuildOptions { labels: false, max_transitions: opts.max_transitions };

    let folded = repwf_par::par_map_init_reduce(
        threads,
        num_tasks,
        || PeriodEngine::with_options(build.clone()).warm_start(true),
        |engine, task| {
            // Fresh per-task oracle state over the worker's reused arenas:
            // allocations are cached, answers never are.
            engine.reset_warm_start();
            engine.reset_patch_state();
            let mut oracle =
                MappingOracle::with_engine(pipeline, platform, std::mem::take(engine));
            let mut searcher = Searcher {
                oracle: &mut oracle,
                model: opts.model,
                n,
                p,
                assignment: vec![Vec::new(); n],
                used: vec![false; p],
                avail: p,
                best: None,
                cutoff: opts.initial_bound.unwrap_or(f64::INFINITY),
                stats: ExactStats::default(),
            };
            searcher.push(0, task % p);
            let err = searcher.fill_stage0(task / p + 1).err();
            let out = TaskOut { best: searcher.best.take(), stats: searcher.stats, err };
            *engine = oracle.into_engine();
            out
        },
        TaskOut { best: None, stats: ExactStats::default(), err: None },
        // Index-ordered fold: best-period merge with the lexicographic
        // tie-break, first error (in task order) wins.
        |mut acc, _task, out| {
            acc.stats.absorb(&out.stats);
            if acc.err.is_none() {
                acc.err = out.err;
            }
            acc.best = better_incumbent(acc.best, out.best);
            acc
        },
    );
    if let Some(err) = folded.err {
        return Err(err);
    }
    let stats = ExactStats { tasks: num_tasks as u64, ..folded.stats };
    Ok(ExactResult { best: folded.best, stats, space })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quickstart() -> (Pipeline, Platform) {
        (
            Pipeline::new(vec![2.0, 9.0], vec![0.001]).unwrap(),
            Platform::uniform(4, 1.0, 1000.0),
        )
    }

    #[test]
    fn quickstart_optimum_is_three_replicas_of_the_heavy_stage() {
        let (pipe, plat) = quickstart();
        let res = solve(&pipe, &plat, &ExactOptions::default()).unwrap();
        let (mapping, period) = res.best.expect("feasible");
        assert_eq!(mapping.replicas(1), 3);
        assert!((period - 3.0).abs() < 1e-9, "got {period}");
        assert_eq!(res.space, Some(search_space_size(2, 4).unwrap()));
        assert!(res.stats.pruned > 0, "{:?}", res.stats);
        assert!(res.stats.evaluated as u128 <= res.space.unwrap());
    }

    #[test]
    fn search_space_size_small_cases_by_hand() {
        // 1 stage, 2 procs: [0], [1], [0,1], [1,0].
        assert_eq!(search_space_size(1, 2), Some(4));
        // 2 stages, 2 procs: ([0],[1]) and ([1],[0]).
        assert_eq!(search_space_size(2, 2), Some(2));
        assert_eq!(search_space_size(2, 5), Some(980));
        assert_eq!(search_space_size(3, 3), Some(6));
        assert_eq!(search_space_size(2, 1), Some(0));
        assert_eq!(search_space_size(0, 3), Some(1));
    }

    #[test]
    fn too_few_processors_is_infeasible_not_an_error() {
        let pipe = Pipeline::new(vec![1.0, 1.0, 1.0], vec![1.0, 1.0]).unwrap();
        let plat = Platform::uniform(2, 1.0, 1.0);
        let res = solve(&pipe, &plat, &ExactOptions::default()).unwrap();
        assert!(res.best.is_none());
        assert_eq!(res.space, Some(0));
    }

    #[test]
    fn initial_bound_prunes_without_losing_the_optimum() {
        let (pipe, plat) = quickstart();
        let free = solve(&pipe, &plat, &ExactOptions::default()).unwrap();
        let (free_best, free_period) = free.best.unwrap();
        let bounded = solve(
            &pipe,
            &plat,
            &ExactOptions { initial_bound: Some(free_period), ..ExactOptions::default() },
        )
        .unwrap();
        let (bounded_best, bounded_period) = bounded.best.unwrap();
        assert_eq!(bounded_period.to_bits(), free_period.to_bits());
        assert_eq!(bounded_best, free_best);
        assert!(
            bounded.stats.evaluated <= free.stats.evaluated,
            "bound must not increase work: {:?} vs {:?}",
            bounded.stats,
            free.stats
        );
    }
}
