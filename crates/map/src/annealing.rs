//! Simulated annealing over mapping space, plus latency-constrained search.
//!
//! Hill climbing (the `local_search` of the crate root) stalls in local
//! minima created by the round-robin effect (adding one replica can hurt
//! until a second one is added). Annealing escapes them by occasionally
//! accepting worse mappings with temperature-controlled probability. The
//! bicriteria variant optimizes throughput subject to a latency ceiling —
//! the classical tradeoff of the literature the paper builds on
//! (Subhlok & Vondran, SPAA'96).

use crate::{apply_move, oracle_eval, random_mapping, undo_move, Move, SearchOptions, SearchResult};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use repwf_core::engine::MappingOracle;
use repwf_core::latency::latency_report_view;
use repwf_core::model::{CommModel, InstanceView, Mapping, Pipeline, Platform};

/// Annealing parameters.
#[derive(Debug, Clone)]
pub struct AnnealOptions {
    /// Communication model.
    pub model: CommModel,
    /// Number of proposal steps.
    pub steps: usize,
    /// Initial temperature as a fraction of the starting period.
    pub t0_fraction: f64,
    /// Geometric cooling factor per step.
    pub cooling: f64,
    /// RNG seed.
    pub seed: u64,
    /// Optional latency ceiling: candidates whose *maximum path latency*
    /// exceeds it are rejected outright.
    pub max_latency: Option<f64>,
}

impl Default for AnnealOptions {
    fn default() -> Self {
        AnnealOptions {
            model: CommModel::Overlap,
            steps: 1500,
            t0_fraction: 0.3,
            cooling: 0.995,
            seed: 0,
            max_latency: None,
        }
    }
}

fn latency_ok(pipeline: &Pipeline, platform: &Platform, mapping: &Mapping, cap: Option<f64>) -> bool {
    let Some(cap) = cap else { return true };
    let Ok(view) = InstanceView::new(pipeline, platform, mapping) else {
        return false;
    };
    latency_report_view(view, 512).max <= cap
}

/// Proposes a random neighbour [`Move`] (add / remove / move / swap). The
/// RNG draw sequence is the historical one, so annealing runs are
/// bit-compatible with the clone-per-proposal implementation this
/// replaced.
fn propose<R: Rng>(mapping: &Mapping, num_procs: usize, rng: &mut R) -> Option<Move> {
    let n = mapping.num_stages();
    let mut used = vec![false; num_procs];
    for i in 0..n {
        for &u in mapping.procs(i) {
            used[u] = true;
        }
    }
    let unused: Vec<usize> = (0..num_procs).filter(|&u| !used[u]).collect();
    match rng.gen_range(0..4) {
        0 if !unused.is_empty() => {
            // add an unused processor to a random stage
            let u = unused[rng.gen_range(0..unused.len())];
            Some(Move::Add { stage: rng.gen_range(0..n), proc: u })
        }
        1 => {
            // remove a random replica (keep ≥ 1 per stage)
            let i = rng.gen_range(0..n);
            if mapping.replicas(i) > 1 {
                Some(Move::Remove { stage: i, slot: rng.gen_range(0..mapping.replicas(i)) })
            } else {
                None
            }
        }
        2 => {
            // move a replica between stages
            let i = rng.gen_range(0..n);
            let j = rng.gen_range(0..n);
            if i != j && mapping.replicas(i) > 1 {
                Some(Move::Shift { from: i, slot: rng.gen_range(0..mapping.replicas(i)), to: j })
            } else {
                None
            }
        }
        _ => {
            // swap replicas across two stages
            let i = rng.gen_range(0..n);
            let j = rng.gen_range(0..n);
            if i == j {
                return None;
            }
            let si = rng.gen_range(0..mapping.replicas(i));
            let sj = rng.gen_range(0..mapping.replicas(j));
            Some(Move::Swap { i, si, j, sj })
        }
    }
}

/// Runs simulated annealing from `start`.
///
/// Holds **one owned mapping**: each proposal is applied in place,
/// evaluated through a warm-started [`MappingOracle`] (swap proposals —
/// the bulk of the walk — re-solve on the engine's shape-cached patch
/// path: no TPN rebuild, no CSR build, no Tarjan run, and the oracle's
/// incremental `M_ct` re-examines only the stages the proposal touched),
/// and undone on rejection. Only a new incumbent is ever cloned.
pub fn anneal(
    pipeline: &Pipeline,
    platform: &Platform,
    start: Mapping,
    opts: &AnnealOptions,
) -> SearchResult {
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut evals = 0usize;
    // One warm-started oracle across all proposal evaluations: annealing
    // mostly proposes same-shape cost perturbations (swaps), the best case
    // for warm-started policy iteration.
    let mut oracle = MappingOracle::new(pipeline, platform).warm_start(true);
    let eval = |m: &Mapping, oracle: &mut MappingOracle<'_>, evals: &mut usize| -> Option<f64> {
        if !latency_ok(pipeline, platform, m, opts.max_latency) {
            return None;
        }
        *evals += 1;
        oracle_eval(oracle, m, opts.model)
    };
    let mut current = start;
    let mut current_p = eval(&current, &mut oracle, &mut evals).unwrap_or(f64::INFINITY);
    let mut best = current.clone();
    let mut best_p = current_p;
    let mut temp = current_p.max(1e-9) * opts.t0_fraction;

    for _ in 0..opts.steps {
        temp *= opts.cooling;
        let Some(mv) = propose(&current, platform.num_procs(), &mut rng) else {
            continue;
        };
        let applied = apply_move(&mut current, mv);
        let Some(p) = eval(&current, &mut oracle, &mut evals) else {
            undo_move(&mut current, applied);
            continue;
        };
        let delta = p - current_p;
        if delta <= 0.0 || rng.gen::<f64>() < (-delta / temp.max(1e-12)).exp() {
            current_p = p;
            if p < best_p {
                best_p = p;
                best = current.clone();
            }
        } else {
            undo_move(&mut current, applied);
        }
    }
    SearchResult { mapping: best, period: best_p, evaluations: evals }
}

/// Annealing with random initialization (convenience).
pub fn anneal_from_random(
    pipeline: &Pipeline,
    platform: &Platform,
    opts: &AnnealOptions,
) -> SearchResult {
    let mut rng = StdRng::seed_from_u64(opts.seed.wrapping_add(0x5EED));
    let start = random_mapping(pipeline, platform, 0.3, &mut rng);
    anneal(pipeline, platform, start, opts)
}

/// Throughput-optimal mapping subject to a latency ceiling: combines the
/// greedy seed, hill climbing and annealing, keeping only candidates whose
/// maximum path latency is within `max_latency`.
pub fn optimize_bicriteria(
    pipeline: &Pipeline,
    platform: &Platform,
    max_latency: f64,
    base: &SearchOptions,
) -> Option<SearchResult> {
    // Seed: the one-to-one mapping over the fastest processors minimizes
    // replication (replication never helps latency).
    let mut by_speed: Vec<usize> = (0..platform.num_procs()).collect();
    by_speed.sort_by(|&a, &b| platform.speed(b).partial_cmp(&platform.speed(a)).expect("finite"));
    let seed = Mapping::one_to_one(by_speed[..pipeline.num_stages()].to_vec()).ok()?;
    if !latency_ok(pipeline, platform, &seed, Some(max_latency)) {
        return None; // even the fastest chain misses the latency target
    }
    let opts = AnnealOptions {
        model: base.model,
        steps: 150 * base.max_passes.max(1),
        seed: base.seed,
        max_latency: Some(max_latency),
        ..Default::default()
    };
    let mut best = anneal(pipeline, platform, seed.clone(), &opts);
    for k in 0..base.restarts {
        let opts = AnnealOptions { seed: base.seed + 1 + k as u64, ..opts.clone() };
        let res = anneal(pipeline, platform, seed.clone(), &opts);
        if res.period < best.period {
            let evaluations = best.evaluations + res.evaluations;
            best = SearchResult { evaluations, ..res };
        } else {
            best.evaluations += res.evaluations;
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{greedy, local_search};
    use repwf_core::latency::latency_report;
    use repwf_core::model::Instance;

    fn setup() -> (Pipeline, Platform) {
        let pipeline = Pipeline::new(vec![8.0, 24.0, 8.0], vec![0.01, 0.01]).unwrap();
        let mut platform = Platform::uniform(9, 1.0, 100.0);
        for u in 0..9 {
            platform.set_speed(u, 1.0 + 0.1 * u as f64);
        }
        (pipeline, platform)
    }

    #[test]
    fn anneal_matches_or_beats_hill_climb() {
        let (pipe, plat) = setup();
        let hc = local_search(&pipe, &plat, greedy(&pipe, &plat), &SearchOptions::default());
        let an = anneal(
            &pipe,
            &plat,
            greedy(&pipe, &plat),
            &AnnealOptions { steps: 2500, seed: 3, ..Default::default() },
        );
        // Annealing is stochastic; require it to come within 10% of hill
        // climbing (it usually matches or beats it).
        assert!(an.period <= hc.period * 1.10, "anneal {} vs hc {}", an.period, hc.period);
    }

    #[test]
    fn propose_always_valid() {
        let (pipe, plat) = setup();
        let mut rng = StdRng::seed_from_u64(1);
        let mut m = greedy(&pipe, &plat);
        for _ in 0..500 {
            if let Some(mv) = propose(&m, plat.num_procs(), &mut rng) {
                apply_move(&mut m, mv);
                assert_eq!(m.num_stages(), pipe.num_stages());
                assert!(m.replica_counts().iter().all(|&c| c >= 1));
                // The mutated mapping still satisfies every structural
                // invariant `Mapping::new` enforces.
                assert!(Mapping::new(m.assignment().to_vec()).is_ok());
            }
        }
    }

    #[test]
    fn apply_undo_round_trips() {
        let (pipe, plat) = setup();
        let mut rng = StdRng::seed_from_u64(8);
        let mut m = greedy(&pipe, &plat);
        for _ in 0..500 {
            let reference = m.clone();
            if let Some(mv) = propose(&m, plat.num_procs(), &mut rng) {
                let applied = apply_move(&mut m, mv);
                undo_move(&mut m, applied);
                assert_eq!(m, reference, "undo must restore the exact mapping for {mv:?}");
            }
        }
    }

    #[test]
    fn latency_ceiling_respected() {
        let (pipe, plat) = setup();
        // Generous ceiling: latency of the fastest chain plus slack.
        let seed = Mapping::one_to_one(vec![8, 7, 6]).unwrap();
        let inst = Instance::new(pipe.clone(), plat.clone(), seed).unwrap();
        let base_lat = latency_report(&inst, 16).max;
        let cap = base_lat * 1.2;
        let res = optimize_bicriteria(&pipe, &plat, cap, &SearchOptions::default())
            .expect("feasible ceiling");
        let final_inst =
            Instance::new(pipe.clone(), plat.clone(), res.mapping.clone()).unwrap();
        assert!(latency_report(&final_inst, 512).max <= cap + 1e-9);
    }

    #[test]
    fn infeasible_ceiling_rejected() {
        let (pipe, plat) = setup();
        assert!(optimize_bicriteria(&pipe, &plat, 1e-3, &SearchOptions::default()).is_none());
    }

    #[test]
    fn tight_ceiling_trades_throughput() {
        let (pipe, plat) = setup();
        let unconstrained = crate::optimize(&pipe, &plat, &SearchOptions::default());
        let seed = Mapping::one_to_one(vec![8, 7, 6]).unwrap();
        let inst = Instance::new(pipe.clone(), plat.clone(), seed).unwrap();
        let tight = latency_report(&inst, 16).max * 1.05;
        let constrained =
            optimize_bicriteria(&pipe, &plat, tight, &SearchOptions::default()).unwrap();
        // A (near-)minimal latency ceiling can only give equal or worse
        // throughput than the unconstrained optimum.
        assert!(constrained.period >= unconstrained.period - 1e-9);
    }
}
