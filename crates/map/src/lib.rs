//! **repwf-map** — mapping heuristics for throughput maximization.
//!
//! Finding the mapping that maximizes throughput is NP-hard even without
//! replication (Benoit & Robert, JPDC 2008 — reference \[3\] of the paper);
//! the paper computes the throughput of a *given* mapping. This crate closes
//! the loop: it searches mapping space using `repwf-core`'s period oracle as
//! the objective, providing
//!
//! * [`greedy`] — a work-proportional greedy constructor,
//! * [`local_search`] — hill climbing over add/remove/move/swap moves,
//! * [`optimize`] — multi-start search combining both,
//! * [`annealing`] — simulated annealing over the same move set, for
//!   instances where hill climbing stalls in local optima,
//! * [`exact`] — deterministic parallel branch-and-bound for small
//!   instances: a certified optimum, bit-identical at any worker count
//!   (with [`enumerate`], the brute-force oracle its tests diff against).
//!
//! The oracle is [`evaluate`] / [`evaluate_with`]: it validates a
//! candidate, asks a `repwf_core::engine::PeriodEngine` for the period,
//! and transparently falls back to the `repwf-sim` discrete-event
//! simulator when the strict-model TPN exceeds the size cap — so the
//! search never dead-ends on large `lcm` replication patterns. The search
//! loops ([`local_search`], [`annealing::anneal`]) hold one
//! **warm-started** engine for their whole run: neighbor mappings of the
//! same shape re-solve on the shape-cached patch path (re-time + cost
//! re-weight + warm Howard — no TPN rebuild, no CSR build, no Tarjan
//! run), the oracle's incremental `M_ct` re-examines only the stages a
//! [`Move`] touched ([`Move::touched_stages`] and their neighbors), and
//! every TPN / solver buffer is reused across the thousands of oracle
//! calls.
//!
//! A subtlety worth noting (and property-tested): because replicas serve
//! data sets in **round-robin**, adding a slow processor to a stage can
//! *decrease* throughput — the slow replica handles the same share as the
//! fast ones. The local search therefore also considers removing replicas.
//!
//! # Quickstart
//!
//! ```
//! use repwf_core::model::{CommModel, Pipeline, Platform};
//! use repwf_map::{optimize, SearchOptions};
//!
//! // A skewed two-stage pipeline on four unit-speed processors: the
//! // optimum replicates the heavy stage three-fold.
//! let pipeline = Pipeline::new(vec![2.0, 9.0], vec![0.001]).unwrap();
//! let platform = Platform::uniform(4, 1.0, 1000.0);
//! let result = optimize(&pipeline, &platform, &SearchOptions::default());
//! assert_eq!(result.mapping.replicas(1), 3);
//! assert!((result.period - 3.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod annealing;
pub mod enumerate;
pub mod exact;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use repwf_core::engine::{MappingOracle, PeriodEngine};
use repwf_core::model::{CommModel, Instance, Mapping, Pipeline, Platform, ProcId, StageId};
use repwf_core::period::{Method, PeriodError};

/// Options for the mapping search.
#[derive(Debug, Clone)]
pub struct SearchOptions {
    /// Communication model to optimize for.
    pub model: CommModel,
    /// Number of random restarts in [`optimize`].
    pub restarts: usize,
    /// Maximum local-search passes per restart.
    pub max_passes: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SearchOptions {
    fn default() -> Self {
        SearchOptions { model: CommModel::Overlap, restarts: 4, max_passes: 40, seed: 0 }
    }
}

/// A search outcome.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// Best mapping found.
    pub mapping: Mapping,
    /// Its per-data-set period.
    pub period: f64,
    /// Number of oracle evaluations spent.
    pub evaluations: usize,
}

/// Evaluates a candidate mapping through a [`MappingOracle`] session,
/// adding the simulator fallback for TPNs above the size cap; `None` when
/// the mapping is invalid or the oracle fails for another reason.
///
/// This is the search-loop oracle: the only clones on any path are in the
/// rare simulator fallback (which needs an owned [`Instance`]).
pub(crate) fn oracle_eval(
    oracle: &mut MappingOracle<'_>,
    mapping: &Mapping,
    model: CommModel,
) -> Option<f64> {
    match oracle.compute(mapping, model, Method::Auto) {
        Ok(r) => Some(r.period),
        Err(PeriodError::Build(_)) => {
            // TPN too large: fall back to the simulator estimate.
            let inst = Instance::new(
                oracle.pipeline().clone(),
                oracle.platform().clone(),
                mapping.clone(),
            )
            .ok()?;
            let sim = repwf_sim::simulate(
                &inst,
                model,
                &repwf_sim::SimOptions { data_sets: 4000, record_ops: false },
            );
            Some(sim.exact_period(1e-9).unwrap_or_else(|| sim.period_estimate()))
        }
        Err(_) => None,
    }
}

/// Evaluates a candidate mapping; `None` when the mapping is invalid or the
/// oracle fails (e.g. TPN too large for the strict model).
///
/// One-shot convenience over [`evaluate_with`]: allocates a fresh engine
/// per call. The search loops keep a warm [`MappingOracle`] instead.
pub fn evaluate(
    pipeline: &Pipeline,
    platform: &Platform,
    mapping: &Mapping,
    model: CommModel,
) -> Option<f64> {
    evaluate_with(pipeline, platform, mapping, model, &mut PeriodEngine::new())
}

/// [`evaluate`] on a caller-owned [`PeriodEngine`]: repeated candidate
/// evaluations reuse the engine's TPN arena and Howard workspace (and its
/// warm-start policy and patch state, when enabled). Thin wrapper over a
/// [`MappingOracle`] borrowing the engine for the call.
pub fn evaluate_with(
    pipeline: &Pipeline,
    platform: &Platform,
    mapping: &Mapping,
    model: CommModel,
    engine: &mut PeriodEngine,
) -> Option<f64> {
    let mut oracle = MappingOracle::with_engine(pipeline, platform, std::mem::take(engine));
    let out = oracle_eval(&mut oracle, mapping, model);
    *engine = oracle.into_engine();
    out
}

/// One in-place neighbor move over a [`Mapping`] — the search loops apply
/// a move, evaluate the mutated mapping through the oracle, and undo it,
/// so exploring a neighborhood never clones the assignment.
///
/// `Swap` preserves every per-stage replica count, so the period engine
/// evaluates it on the incremental patch path; the other three change a
/// count and trigger a TPN rebuild.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Move {
    /// Map the (unused) processor `proc` onto `stage` (appended last in
    /// round-robin order).
    Add {
        /// Target stage.
        stage: StageId,
        /// Processor to map; must not appear in the mapping.
        proc: ProcId,
    },
    /// Unmap the replica at `slot` of `stage` (which must keep ≥ 1).
    Remove {
        /// Stage losing a replica.
        stage: StageId,
        /// Round-robin slot to remove.
        slot: usize,
    },
    /// Move the replica at `slot` of stage `from` to the end of stage `to`.
    Shift {
        /// Stage losing the replica (must keep ≥ 1).
        from: StageId,
        /// Round-robin slot to move.
        slot: usize,
        /// Stage receiving the replica.
        to: StageId,
    },
    /// Swap slot `si` of stage `i` with slot `sj` of stage `j`.
    Swap {
        /// First stage.
        i: StageId,
        /// Slot in the first stage.
        si: usize,
        /// Second stage.
        j: StageId,
        /// Slot in the second stage.
        sj: usize,
    },
}

impl Move {
    /// The stages whose processor lists change when this move is applied
    /// (one for `Add`/`Remove`, two otherwise). These are the stages the
    /// oracle's incremental `M_ct` detects as changed; it re-examines them
    /// plus their immediate neighbors, whose in/out-port times depend on
    /// the round-robin partners here — so an evaluation after a move
    /// recomputes at most six stages' cycle-times, not all of them.
    pub fn touched_stages(self) -> (StageId, Option<StageId>) {
        match self {
            Move::Add { stage, .. } | Move::Remove { stage, .. } => (stage, None),
            Move::Shift { from, to, .. } => (from, Some(to)),
            Move::Swap { i, j, .. } => (i, Some(j)),
        }
    }
}

/// The record needed to exactly invert an applied [`Move`]
/// (round-robin order is significant, so undo restores exact slots).
#[derive(Debug, Clone, Copy)]
pub struct AppliedMove {
    mv: Move,
    /// The processor displaced by `Remove`/`Shift` (unused otherwise).
    proc: ProcId,
}

/// Applies `mv` to `mapping` in place. Preconditions are those of the
/// underlying [`Mapping`] mutators (`Add` needs an unused processor,
/// `Remove`/`Shift` a stage with ≥ 2 replicas) — the move generators
/// below only produce satisfying moves.
pub fn apply_move(mapping: &mut Mapping, mv: Move) -> AppliedMove {
    let proc = match mv {
        Move::Add { stage, proc } => {
            mapping.push_replica(stage, proc);
            proc
        }
        Move::Remove { stage, slot } => mapping.remove_replica(stage, slot),
        Move::Shift { from, slot, to } => {
            let u = mapping.remove_replica(from, slot);
            mapping.push_replica(to, u);
            u
        }
        Move::Swap { i, si, j, sj } => {
            mapping.swap_replicas(i, si, j, sj);
            0
        }
    };
    AppliedMove { mv, proc }
}

/// Exactly inverts [`apply_move`].
pub fn undo_move(mapping: &mut Mapping, applied: AppliedMove) {
    match applied.mv {
        Move::Add { stage, .. } => {
            let last = mapping.replicas(stage) - 1;
            mapping.remove_replica(stage, last);
        }
        Move::Remove { stage, slot } => mapping.insert_replica(stage, slot, applied.proc),
        Move::Shift { from, slot, to } => {
            let last = mapping.replicas(to) - 1;
            let u = mapping.remove_replica(to, last);
            debug_assert_eq!(u, applied.proc);
            mapping.insert_replica(from, slot, u);
        }
        Move::Swap { i, si, j, sj } => mapping.swap_replicas(i, si, j, sj),
    }
}

/// Greedy constructor: processors (fastest first) are handed one by one to
/// the stage with the worst current computation bottleneck
/// `w_i / Σ_{u ∈ stage} Π_u` (a round-robin-oblivious proxy that is cheap
/// and surprisingly strong as a seed for local search).
pub fn greedy(pipeline: &Pipeline, platform: &Platform) -> Mapping {
    let n = pipeline.num_stages();
    let mut by_speed: Vec<usize> = (0..platform.num_procs()).collect();
    by_speed.sort_by(|&a, &b| platform.speed(b).partial_cmp(&platform.speed(a)).expect("finite"));
    let mut assignment: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut speed_sum = vec![0.0f64; n];
    // First give every stage its single fastest processor (feasibility).
    let mut it = by_speed.into_iter();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| pipeline.work(b).partial_cmp(&pipeline.work(a)).expect("finite"));
    for &i in &order {
        let u = it.next().expect("p >= n checked by caller");
        assignment[i].push(u);
        speed_sum[i] += platform.speed(u);
    }
    // Then hand out the rest to the current bottleneck stage.
    for u in it {
        let i = (0..n)
            .max_by(|&a, &b| {
                (pipeline.work(a) / speed_sum[a])
                    .partial_cmp(&(pipeline.work(b) / speed_sum[b]))
                    .expect("finite")
            })
            .expect("n >= 1");
        assignment[i].push(u);
        speed_sum[i] += platform.speed(u);
    }
    Mapping::new(assignment).expect("greedy builds valid mappings")
}

/// A uniformly random feasible mapping (each stage ≥ 1 processor; remaining
/// processors assigned to random stages or left unused with probability
/// `p_unused`).
pub fn random_mapping<R: Rng>(
    pipeline: &Pipeline,
    platform: &Platform,
    p_unused: f64,
    rng: &mut R,
) -> Mapping {
    let n = pipeline.num_stages();
    let p = platform.num_procs();
    let mut procs: Vec<usize> = (0..p).collect();
    for i in (1..p).rev() {
        let j = rng.gen_range(0..=i);
        procs.swap(i, j);
    }
    let mut assignment: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (k, &u) in procs.iter().enumerate() {
        if k < n {
            assignment[k].push(u);
        } else if rng.gen::<f64>() >= p_unused {
            assignment[rng.gen_range(0..n)].push(u);
        }
    }
    Mapping::new(assignment).expect("random mapping is valid")
}

/// Enumerates the neighborhood of `mapping` in the canonical order of the
/// hill climber: add-unused, remove, shift, swap. `counts` are the
/// per-stage replica counts of `mapping` (the pass-start snapshot).
fn neighborhood(counts: &[usize], used: &[bool], moves: &mut Vec<Move>) {
    let n = counts.len();
    let p = used.len();
    moves.clear();
    // add an unused processor to any stage
    for u in (0..p).filter(|&u| !used[u]) {
        for i in 0..n {
            moves.push(Move::Add { stage: i, proc: u });
        }
    }
    // remove a replica (keep ≥ 1)
    for (i, &c) in counts.iter().enumerate() {
        if c > 1 {
            for k in 0..c {
                moves.push(Move::Remove { stage: i, slot: k });
            }
        }
    }
    // move a replica to another stage
    for (i, &c) in counts.iter().enumerate() {
        if c > 1 {
            for k in 0..c {
                for j in 0..n {
                    if j != i {
                        moves.push(Move::Shift { from: i, slot: k, to: j });
                    }
                }
            }
        }
    }
    // swap two replicas across stages
    for i in 0..n {
        for j in (i + 1)..n {
            for k in 0..counts[i] {
                for l in 0..counts[j] {
                    moves.push(Move::Swap { i, si: k, j, sj: l });
                }
            }
        }
    }
}

/// Hill climbing from `start`: tries add-unused / remove / move / swap moves
/// until a full pass yields no improvement (or `max_passes` is hit).
///
/// The climb holds **one owned mapping** and explores each neighborhood by
/// applying a [`Move`], evaluating through a warm-started
/// [`MappingOracle`], and undoing it — no per-candidate assignment clone,
/// no per-candidate `Instance`, and swap candidates re-solve on the
/// engine's incremental patch path.
pub fn local_search(
    pipeline: &Pipeline,
    platform: &Platform,
    start: Mapping,
    opts: &SearchOptions,
) -> SearchResult {
    let p = platform.num_procs();
    // One warm-started oracle for the whole climb: same-shape neighbor
    // mappings re-solve from the previous Howard policy.
    let mut oracle = MappingOracle::new(pipeline, platform).warm_start(true);
    let mut current = start;
    let mut evals = 0usize;
    let mut best_period = match oracle_eval(&mut oracle, &current, opts.model) {
        Some(v) => {
            evals += 1;
            v
        }
        None => f64::INFINITY,
    };

    let mut moves: Vec<Move> = Vec::new();
    let mut used = vec![false; p];
    for _ in 0..opts.max_passes {
        let mut improved = false;
        // Pass-start snapshot: the whole neighborhood is generated from it,
        // even though `current` keeps improving the acceptance threshold.
        let counts = current.replica_counts();
        used.fill(false);
        for procs in current.assignment() {
            for &u in procs {
                used[u] = true;
            }
        }
        neighborhood(&counts, &used, &mut moves);

        let mut best_move: Option<Move> = None;
        for &mv in &moves {
            let applied = apply_move(&mut current, mv);
            let period = oracle_eval(&mut oracle, &current, opts.model);
            undo_move(&mut current, applied);
            let Some(period) = period else { continue };
            evals += 1;
            if period < best_period - 1e-12 {
                best_period = period;
                best_move = Some(mv);
                improved = true;
            }
        }
        // Commit the last improving candidate (the historical semantics of
        // the pass: later improvements overwrite earlier ones).
        if let Some(mv) = best_move {
            apply_move(&mut current, mv);
        }
        if !improved {
            break;
        }
    }
    SearchResult { mapping: current, period: best_period, evaluations: evals }
}

/// Multi-start optimization: greedy seed plus `restarts` random seeds, each
/// refined by [`local_search`]; returns the best result.
pub fn optimize(pipeline: &Pipeline, platform: &Platform, opts: &SearchOptions) -> SearchResult {
    assert!(
        platform.num_procs() >= pipeline.num_stages(),
        "need at least one processor per stage"
    );
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut best = local_search(pipeline, platform, greedy(pipeline, platform), opts);
    for _ in 0..opts.restarts {
        let start = random_mapping(pipeline, platform, 0.3, &mut rng);
        let res = local_search(pipeline, platform, start, opts);
        if res.period < best.period {
            let evals = best.evaluations + res.evaluations;
            best = SearchResult { evaluations: evals, ..res };
        } else {
            best.evaluations += res.evaluations;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(works: Vec<f64>, speeds: Vec<f64>) -> (Pipeline, Platform) {
        let n = works.len();
        let pipeline = Pipeline::new(works, vec![0.001; n - 1]).unwrap();
        let p = speeds.len();
        let mut platform = Platform::uniform(p, 1.0, 1000.0);
        for (u, s) in speeds.into_iter().enumerate() {
            platform.set_speed(u, s);
        }
        (pipeline, platform)
    }

    #[test]
    fn greedy_replicates_heavy_stage() {
        let (pipe, plat) = setup(vec![1.0, 100.0], vec![1.0; 6]);
        let m = greedy(&pipe, &plat);
        assert!(m.replicas(1) > m.replicas(0), "{:?}", m.replica_counts());
    }

    #[test]
    fn greedy_assigns_fastest_to_heaviest() {
        let (pipe, plat) = setup(vec![10.0, 1.0], vec![1.0, 5.0]);
        let m = greedy(&pipe, &plat);
        assert_eq!(m.procs(0), &[1], "heaviest stage gets the fast processor");
    }

    #[test]
    fn local_search_improves_or_equals() {
        let (pipe, plat) = setup(vec![4.0, 9.0, 2.0], vec![1.0, 1.0, 2.0, 0.5, 1.5]);
        let start = Mapping::new(vec![vec![0], vec![1], vec![2]]).unwrap();
        let base = evaluate(&pipe, &plat, &start, CommModel::Overlap).unwrap();
        let res = local_search(&pipe, &plat, start, &SearchOptions::default());
        assert!(res.period <= base + 1e-12);
        assert!(res.evaluations > 0);
    }

    #[test]
    fn round_robin_slow_replica_can_hurt() {
        // One stage, fast proc (speed 10) + very slow proc (speed 0.1):
        // alone: period 1; with the slow replica round-robin: the slow one
        // needs 100 per data set it serves → period max(1, 100)/2 = 50.
        let pipeline = Pipeline::new(vec![10.0], vec![]).unwrap();
        let mut platform = Platform::uniform(2, 10.0, 1.0);
        platform.set_speed(1, 0.1);
        let solo = Mapping::new(vec![vec![0]]).unwrap();
        let both = Mapping::new(vec![vec![0, 1]]).unwrap();
        let p_solo = evaluate(&pipeline, &platform, &solo, CommModel::Overlap).unwrap();
        let p_both = evaluate(&pipeline, &platform, &both, CommModel::Overlap).unwrap();
        assert!(p_both > p_solo, "adding the slow replica must hurt: {p_both} vs {p_solo}");
        // And the local search discovers that leaving P1 unused is better.
        let res = local_search(&pipeline, &platform, both, &SearchOptions::default());
        assert!((res.period - p_solo).abs() < 1e-9, "search should drop the slow replica");
    }

    #[test]
    fn warm_engine_oracle_matches_fresh_oracle_bitwise() {
        // Strict model so the oracle really goes through the TPN + Howard
        // path: a warm engine fed a stream of candidate mappings must agree
        // bit-for-bit with fresh cold evaluations.
        let (pipe, plat) = setup(vec![4.0, 9.0], vec![1.0, 1.0, 2.0, 0.5, 1.5]);
        let mut engine = PeriodEngine::new().warm_start(true);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..12 {
            let m = random_mapping(&pipe, &plat, 0.3, &mut rng);
            let warm = evaluate_with(&pipe, &plat, &m, CommModel::Strict, &mut engine);
            let cold = evaluate(&pipe, &plat, &m, CommModel::Strict);
            match (warm, cold) {
                (Some(a), Some(b)) => assert_eq!(a.to_bits(), b.to_bits()),
                (a, b) => assert_eq!(a, b),
            }
        }
    }

    #[test]
    fn oracle_mct_recomputes_only_stages_touched_by_a_move() {
        // A deep pipeline where swaps stay between stages 0 and 1: the
        // oracle's incremental M_ct must re-examine only the touched
        // stages and their neighbors (≤ 3 here), never all 8.
        let n = 8;
        let pipeline = Pipeline::new(vec![4.0; n], vec![0.5; n - 1]).unwrap();
        let mut platform = Platform::uniform(2 * n, 1.0, 10.0);
        for u in 0..2 * n {
            platform.set_speed(u, 1.0 + 0.05 * u as f64);
        }
        let mut mapping =
            Mapping::new((0..n).map(|i| vec![2 * i, 2 * i + 1]).collect()).unwrap();
        let mut oracle = MappingOracle::new(&pipeline, &platform).warm_start(true);
        oracle.compute(&mapping, CommModel::Strict, Method::FullTpn).unwrap();
        let after_first = oracle.mct_cache().stage_recomputes();
        assert_eq!(after_first, n as u64, "first evaluation recomputes every stage");
        let steps = 12u64;
        for k in 0..steps {
            let mv = Move::Swap { i: 0, si: (k % 2) as usize, j: 1, sj: ((k / 2) % 2) as usize };
            let (a, b) = mv.touched_stages();
            assert_eq!((a, b), (0, Some(1)));
            apply_move(&mut mapping, mv);
            oracle.compute(&mapping, CommModel::Strict, Method::FullTpn).unwrap();
        }
        // Touched stages {0, 1} dirty their neighborhood {0, 1, 2}: three
        // per-stage recomputations per evaluation, exactly.
        assert_eq!(
            oracle.mct_cache().stage_recomputes(),
            after_first + 3 * steps,
            "a swap between stages 0 and 1 must re-examine stages 0..=2 only"
        );
        // And the swaps all re-solved on the structurally-free patch path.
        let engine = oracle.into_engine();
        assert_eq!(engine.patched_solves(), steps);
        assert_eq!((engine.csr_builds(), engine.tarjan_runs()), (1, 1));
    }

    #[test]
    fn optimize_beats_or_matches_naive() {
        let (pipe, plat) = setup(vec![6.0, 6.0], vec![1.0, 1.0, 1.0, 1.0]);
        let res = optimize(&pipe, &plat, &SearchOptions::default());
        // Optimal: 2 replicas each → period 3 (comms negligible).
        assert!(res.period <= 3.0 + 1e-9, "got {}", res.period);
    }

    #[test]
    fn random_mapping_valid_under_many_seeds() {
        let (pipe, plat) = setup(vec![1.0, 2.0, 3.0], vec![1.0; 8]);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..100 {
            let m = random_mapping(&pipe, &plat, 0.4, &mut rng);
            assert_eq!(m.num_stages(), 3);
            assert!(m.replica_counts().iter().all(|&c| c >= 1));
        }
    }
}
