//! Exhaustive enumeration of the replica-assignment space — the **test
//! oracle** for [`crate::exact`].
//!
//! This module exists so the branch-and-bound solver has something
//! independent to be differentially tested against: it walks the same
//! canonically-ordered space (per-stage ordered tuples, prefixes before
//! extensions, processors in ascending id order) but evaluates **every**
//! leaf with a cold oracle — no bounds, no pruning, no warm starts, no
//! parallelism. It is exponentially slow by design; use it only on tiny
//! instances (the property suite stays at `n ≤ 4`, `p ≤ 5`) and never
//! from production paths — [`crate::exact::solve`] returns the same
//! optimum with pruning.

use crate::exact::ExactError;
use repwf_core::engine::MappingOracle;
use repwf_core::model::{CommModel, Mapping, Pipeline, Platform};
use repwf_core::period::{Method, PeriodError};

/// The outcome of exhaustive enumeration.
#[derive(Debug, Clone)]
pub struct EnumResult {
    /// The optimal mapping and period under the same canonical tie-break
    /// as [`crate::exact::solve`] (lexicographically smallest assignment
    /// among period-optimal ones), or `None` if every leaf is infeasible.
    pub best: Option<(Mapping, f64)>,
    /// Leaves visited (equals [`crate::exact::search_space_size`]).
    pub leaves: u64,
    /// Leaves whose period was computed (feasible ones).
    pub evaluated: u64,
    /// Leaves rejected as infeasible.
    pub infeasible: u64,
}

/// Merges two incumbents: smaller period wins; on an exact period tie the
/// lexicographically smaller assignment wins. Associative and
/// commutative (periods are compared exactly, assignments totally), so
/// any fold order yields the same answer — `exact` relies on this for
/// its deterministic task merge.
pub(crate) fn better_incumbent(
    a: Option<(Mapping, f64)>,
    b: Option<(Mapping, f64)>,
) -> Option<(Mapping, f64)> {
    match (a, b) {
        (None, x) | (x, None) => x,
        (Some(x), Some(y)) => {
            if y.1 < x.1 || (y.1 == x.1 && y.0.assignment() < x.0.assignment()) {
                Some(y)
            } else {
                Some(x)
            }
        }
    }
}

struct Walker<'a> {
    oracle: MappingOracle<'a>,
    model: CommModel,
    n: usize,
    p: usize,
    assignment: Vec<Vec<usize>>,
    used: Vec<bool>,
    avail: usize,
    result: EnumResult,
}

impl Walker<'_> {
    fn stage(&mut self, i: usize) -> Result<(), ExactError> {
        if !self.assignment[i].is_empty() {
            if i + 1 == self.n {
                self.leaf()?;
            } else {
                self.stage(i + 1)?;
            }
        }
        if self.avail > self.n - 1 - i {
            for u in 0..self.p {
                if !self.used[u] {
                    self.assignment[i].push(u);
                    self.used[u] = true;
                    self.avail -= 1;
                    self.stage(i)?;
                    self.avail += 1;
                    self.used[u] = false;
                    self.assignment[i].pop();
                }
            }
        }
        Ok(())
    }

    fn leaf(&mut self) -> Result<(), ExactError> {
        self.result.leaves += 1;
        let mapping = Mapping::new(self.assignment.clone())
            .expect("enumeration builds structurally valid mappings");
        match self.oracle.compute(&mapping, self.model, Method::Auto) {
            Ok(r) => {
                self.result.evaluated += 1;
                self.result.best =
                    better_incumbent(self.result.best.take(), Some((mapping, r.period)));
                Ok(())
            }
            Err(PeriodError::Model(_)) => {
                self.result.infeasible += 1;
                Ok(())
            }
            Err(PeriodError::Build(error)) => {
                Err(ExactError::CandidateTooLarge { mapping, error })
            }
            Err(e) => Err(ExactError::Analysis { mapping, message: e.to_string() }),
        }
    }
}

/// Computes the true optimum by brute force (see the module docs for why
/// this exists and when not to use it). Shares [`crate::exact::solve`]'s
/// exactness discipline: a leaf that would need the simulator fallback
/// aborts with [`ExactError::CandidateTooLarge`].
pub fn optimum(
    pipeline: &Pipeline,
    platform: &Platform,
    model: CommModel,
) -> Result<EnumResult, ExactError> {
    let n = pipeline.num_stages();
    let p = platform.num_procs();
    let mut walker = Walker {
        oracle: MappingOracle::new(pipeline, platform),
        model,
        n,
        p,
        assignment: vec![Vec::new(); n],
        used: vec![false; p],
        avail: p,
        result: EnumResult { best: None, leaves: 0, evaluated: 0, infeasible: 0 },
    };
    if p >= n {
        walker.stage(0)?;
    }
    Ok(walker.result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::search_space_size;

    #[test]
    fn leaf_count_matches_the_closed_form() {
        let pipe = Pipeline::new(vec![3.0, 5.0], vec![0.5]).unwrap();
        let plat = Platform::uniform(4, 1.0, 10.0);
        let res = optimum(&pipe, &plat, CommModel::Overlap).unwrap();
        assert_eq!(res.leaves as u128, search_space_size(2, 4).unwrap());
        assert_eq!(res.leaves, res.evaluated + res.infeasible);
    }

    #[test]
    fn tie_break_picks_the_lexicographically_smaller_assignment() {
        let a = Mapping::new(vec![vec![0], vec![1]]).unwrap();
        let b = Mapping::new(vec![vec![1], vec![0]]).unwrap();
        let merged = better_incumbent(Some((b.clone(), 2.0)), Some((a.clone(), 2.0)));
        assert_eq!(merged.unwrap().0, a);
        let merged = better_incumbent(Some((a.clone(), 2.0)), Some((b, 3.0)));
        assert_eq!(merged.unwrap().0, a);
    }
}
