//! Regression for the raised default campaign cap: a strict-model
//! instance family whose TPN lands just **over** the historical
//! `400_000`-transition cap used to fall back to the discrete-event
//! simulator; with [`DEFAULT_CAMPAIGN_CAP`] and the per-SCC parallel
//! solver it resolves exactly, and the exact period is bit-for-bit the
//! one a cap-lifted unbatched solve reports.

use repwf_core::model::CommModel;
use repwf_core::paths::num_paths;
use repwf_gen::campaign::{run_one, Resolution, DEFAULT_CAMPAIGN_CAP};
use repwf_gen::sampler::sample_replica_counts;
use repwf_gen::{GenConfig, Range};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The historical default TPN size cap of campaign runs.
const OLD_CAP: usize = 400_000;

/// Two stages over 733 processors: 733 is prime, so the replica split
/// `(r, 733 − r)` is always coprime and `m = lcm = r(733 − r)` — balanced
/// draws put the strict TPN (3m transitions) just over the old cap.
fn cfg() -> GenConfig {
    GenConfig {
        stages: 2,
        procs: 733,
        comp: Range::new(5.0, 15.0),
        comm: Range::new(5.0, 15.0),
    }
}

/// Strict-model transitions of seed's draw, computed statically from the
/// replica RNG prefix (no instance materialized).
fn transitions(cfg: &GenConfig, seed: u64) -> u128 {
    let replicas = sample_replica_counts(cfg, &mut StdRng::seed_from_u64(seed));
    let cols = (2 * cfg.stages - 1) as u128;
    num_paths(&replicas).unwrap() * cols
}

#[test]
fn raised_default_cap_flips_former_simulator_fallbacks_to_exact() {
    let cfg = cfg();
    // First seed whose TPN lands in (OLD_CAP, DEFAULT_CAMPAIGN_CAP]: the
    // binomial replica split concentrates near 366/367, so one is close.
    let seed = (0..500u64)
        .find(|&s| {
            let t = transitions(&cfg, s);
            t > OLD_CAP as u128 && t <= DEFAULT_CAMPAIGN_CAP as u128
        })
        .expect("some balanced draw lands just over the old cap");

    // Under the old cap this exact seed was a simulator-era experiment.
    let old = run_one(&cfg, CommModel::Strict, seed, OLD_CAP);
    assert_eq!(old.resolution, Resolution::Simulated, "seed {seed}");

    // Under the new default it resolves exactly (the TPN exceeds the
    // parallel-solve vertex threshold, so this runs the per-SCC path).
    let new = run_one(&cfg, CommModel::Strict, seed, DEFAULT_CAMPAIGN_CAP);
    assert_eq!(new.resolution, Resolution::Exact, "seed {seed}");
    assert_eq!(new.num_paths, old.num_paths, "same draw, same path count");
    assert!(
        new.period >= new.mct - 1e-9 * new.mct,
        "exact period respects the critical-resource bound"
    );

    // ... and the exact period is bit-for-bit a cap-lifted solve.
    let lifted = run_one(&cfg, CommModel::Strict, seed, 4_000_000);
    assert_eq!(lifted.resolution, Resolution::Exact);
    assert_eq!(new.period.to_bits(), lifted.period.to_bits(), "seed {seed}");
    assert_eq!(new.mct.to_bits(), lifted.mct.to_bits(), "seed {seed}");
}
