//! Batched-campaign determinism properties (the PR's acceptance criteria):
//!
//! * for random `(count, threads, model, seed_base)`, the shape-batched
//!   campaign is **byte-identical** (every outcome field, floats compared
//!   by bit pattern) to the per-instance campaign — mixed-shape draws
//!   exercise the grouped scheduling, and the single-thread unbatched run
//!   is the reference so no schedule can hide in the comparison;
//! * with a tiny TPN size cap, simulator-era draws route through the
//!   per-instance fallback and the byte identity still holds — the
//!   batched runner must split every campaign into batchable and solo
//!   work without perturbing either side.

use proptest::prelude::*;
use repwf_core::model::CommModel;
use repwf_gen::campaign::{run_campaign, run_campaign_batched, CampaignResult};
use repwf_gen::{GenConfig, Range};

/// Mixed-shape configuration: 3 stages over 9 processors draw many
/// distinct replica-count vectors, so campaigns route into several batch
/// groups (plus singletons).
fn mixed_cfg() -> GenConfig {
    GenConfig {
        stages: 3,
        procs: 9,
        comp: Range::new(5.0, 15.0),
        comm: Range::new(5.0, 15.0),
    }
}

/// Asserts full bitwise equality of two campaign results, field by field
/// (`PartialEq` on f64 would accept `-0.0 == 0.0`; the bit compare below
/// would not — and names the diverging seed when it fires).
fn assert_bitwise_eq(batched: &CampaignResult, reference: &CampaignResult, tag: &str) {
    assert_eq!(batched.outcomes.len(), reference.outcomes.len(), "{tag}");
    for (b, r) in batched.outcomes.iter().zip(&reference.outcomes) {
        assert_eq!(b.seed, r.seed, "{tag}");
        assert_eq!(b.resolution, r.resolution, "{tag} seed {}", r.seed);
        assert_eq!(b.num_paths, r.num_paths, "{tag} seed {}", r.seed);
        assert_eq!(b.mct.to_bits(), r.mct.to_bits(), "{tag} seed {} mct", r.seed);
        assert_eq!(b.period.to_bits(), r.period.to_bits(), "{tag} seed {} period", r.seed);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn batched_campaign_is_bitwise_the_unbatched_one(
        count in 0usize..22,
        threads in 1usize..5,
        seed_base in 1u64..5000,
    ) {
        let cfg = mixed_cfg();
        for model in [CommModel::Strict, CommModel::Overlap] {
            let reference = run_campaign(&cfg, model, count, seed_base, 1, 200_000);
            let batched =
                run_campaign_batched(&cfg, model, count, seed_base, threads, 200_000);
            assert_bitwise_eq(
                &batched,
                &reference,
                &format!("{model} count={count} threads={threads} seeds={seed_base}"),
            );
        }
    }

    #[test]
    fn batched_campaign_matches_with_simulator_era_instances(
        count in 1usize..16,
        threads in 1usize..4,
        seed_base in 1u64..3000,
    ) {
        // Cap of 60 transitions: 3-stage draws build 5 columns, so shapes
        // with lcm > 12 overflow the cap and take the simulator fallback —
        // mixed batch/solo campaigns at nearly every draw.
        let cfg = mixed_cfg();
        let reference = run_campaign(&cfg, CommModel::Strict, count, seed_base, 1, 60);
        let batched =
            run_campaign_batched(&cfg, CommModel::Strict, count, seed_base, threads, 60);
        assert_bitwise_eq(
            &batched,
            &reference,
            &format!("count={count} threads={threads} seeds={seed_base}"),
        );
    }
}
