//! The twelve experiment families of the paper's Table 2.
//!
//! Each row fixes (sizes, computation range, communication range, model)
//! and reports how many of the experiments have **no** critical resource.
//! Rows pairing two platform sizes ("(10, 20) and (10, 30)") split their
//! experiment count evenly between the two sizes, matching the paper's
//! grand total of 5152 experiments.

use crate::campaign::{run_campaign_with, CampaignResult, ProgressFn, GAP_REL_TOL};
use crate::sampler::{GenConfig, Range};
use repwf_core::model::CommModel;
use std::fmt::Write as _;

/// One row of Table 2.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Communication model.
    pub model: CommModel,
    /// `(stages, procs)` pairs the row aggregates.
    pub sizes: Vec<(usize, usize)>,
    /// Computation-time range.
    pub comp: Range,
    /// Communication-time range.
    pub comm: Range,
    /// Total experiment count of the row in the paper.
    pub paper_count: usize,
    /// The paper's reported `#no-critical / total` numerator.
    pub paper_no_critical: usize,
    /// The paper's reported maximum gap (`None` when no case was found).
    pub paper_max_gap_pct: Option<f64>,
}

/// The twelve rows of Table 2 (six per model), in paper order.
pub fn table2_rows() -> Vec<Table2Row> {
    let mut rows = Vec::new();
    for (model, data) in [
        (
            CommModel::Overlap,
            [(0usize, None), (0, None), (0, None), (0, None), (0, None), (0, None)],
        ),
        (
            CommModel::Strict,
            [
                (14usize, Some(9.0)),
                (0, None),
                (5, Some(7.0)),
                (0, None),
                (10, Some(3.0)),
                (0, None),
            ],
        ),
    ] {
        type RowSpec = (Vec<(usize, usize)>, Range, Range, usize);
        let specs: [RowSpec; 6] = [
            (vec![(10, 20), (10, 30)], Range::new(5.0, 15.0), Range::new(5.0, 15.0), 220),
            (vec![(10, 20), (10, 30)], Range::new(10.0, 1000.0), Range::new(10.0, 1000.0), 220),
            (vec![(20, 30)], Range::new(5.0, 15.0), Range::new(5.0, 15.0), 68),
            (vec![(20, 30)], Range::new(10.0, 1000.0), Range::new(10.0, 1000.0), 68),
            (vec![(2, 7), (3, 7)], Range::constant(1.0), Range::new(5.0, 10.0), 1000),
            (vec![(2, 7), (3, 7)], Range::constant(1.0), Range::new(10.0, 50.0), 1000),
        ];
        for (k, (sizes, comp, comm, count)) in specs.into_iter().enumerate() {
            rows.push(Table2Row {
                model,
                sizes,
                comp,
                comm,
                paper_count: count,
                paper_no_critical: data[k].0,
                paper_max_gap_pct: data[k].1,
            });
        }
    }
    rows
}

/// Result of re-running one row.
#[derive(Debug, Clone)]
pub struct RowResult {
    /// The row specification.
    pub row: Table2Row,
    /// Experiments actually run.
    pub total: usize,
    /// Experiments without a critical resource.
    pub no_critical: usize,
    /// Maximum relative gap in percent.
    pub max_gap_pct: f64,
    /// Experiments resolved by the simulator fallback.
    pub simulated: usize,
}

/// Runs one row at a `scale` fraction of the paper's count (≥ 1 experiment
/// per size), distributing seeds deterministically.
pub fn run_row(row: &Table2Row, scale: f64, seed_base: u64, threads: usize, cap: usize) -> RowResult {
    run_row_with(row, scale, seed_base, threads, cap, None)
}

/// [`run_row`] with a streaming progress callback (one [`Progress`]
/// snapshot per finished experiment, per size sub-campaign).
///
/// [`Progress`]: crate::campaign::Progress
pub fn run_row_with(
    row: &Table2Row,
    scale: f64,
    seed_base: u64,
    threads: usize,
    cap: usize,
    progress: Option<ProgressFn<'_>>,
) -> RowResult {
    let mut outcomes: Option<CampaignResult> = None;
    let mut total = 0usize;
    let per_size = ((row.paper_count as f64 * scale / row.sizes.len() as f64).round() as usize).max(1);
    for (k, &(stages, procs)) in row.sizes.iter().enumerate() {
        let cfg = GenConfig { stages, procs, comp: row.comp, comm: row.comm };
        let res = run_campaign_with(
            &cfg,
            row.model,
            per_size,
            seed_base + 1_000_000 * k as u64,
            threads,
            cap,
            progress,
        );
        total += res.outcomes.len();
        outcomes = Some(match outcomes {
            None => res,
            Some(mut acc) => {
                acc.outcomes.extend(res.outcomes);
                acc
            }
        });
    }
    let res = outcomes.expect("at least one size per row");
    RowResult {
        row: row.clone(),
        total,
        no_critical: res.count_no_critical(GAP_REL_TOL),
        max_gap_pct: res.max_gap() * 100.0,
        simulated: res.count_simulated(),
    }
}

/// Formats row results as an aligned console table mirroring Table 2.
pub fn format_results(results: &[RowResult]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<8} {:<22} {:<12} {:<12} {:>14} {:>10} {:>10}",
        "model", "sizes", "comp", "comm", "no-crit/total", "max gap%", "paper"
    );
    for r in results {
        let sizes = r
            .row
            .sizes
            .iter()
            .map(|&(s, p)| format!("({s},{p})"))
            .collect::<Vec<_>>()
            .join("+");
        let model = match r.row.model {
            CommModel::Overlap => "overlap",
            CommModel::Strict => "strict",
        };
        let paper = format!("{}/{}", r.row.paper_no_critical, r.row.paper_count);
        let _ = writeln!(
            out,
            "{:<8} {:<22} {:<12} {:<12} {:>14} {:>10.2} {:>10}",
            model,
            sizes,
            format!("{}..{}", r.row.comp.lo, r.row.comp.hi),
            format!("{}..{}", r.row.comm.lo, r.row.comm.hi),
            format!("{}/{}", r.no_critical, r.total),
            r.max_gap_pct,
            paper
        );
    }
    out
}

/// Formats row results as CSV.
pub fn to_csv(results: &[RowResult]) -> String {
    let mut out = String::from(
        "model,sizes,comp_lo,comp_hi,comm_lo,comm_hi,total,no_critical,max_gap_pct,simulated,paper_no_critical,paper_total\n",
    );
    for r in results {
        let sizes = r
            .row
            .sizes
            .iter()
            .map(|&(s, p)| format!("{s}x{p}"))
            .collect::<Vec<_>>()
            .join("+");
        let model = match r.row.model {
            CommModel::Overlap => "overlap",
            CommModel::Strict => "strict",
        };
        let _ = writeln!(
            out,
            "{model},{sizes},{},{},{},{},{},{},{:.4},{},{},{}",
            r.row.comp.lo,
            r.row.comp.hi,
            r.row.comm.lo,
            r.row.comm.hi,
            r.total,
            r.no_critical,
            r.max_gap_pct,
            r.simulated,
            r.row.paper_no_critical,
            r.row.paper_count
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_rows_totalling_5152() {
        let rows = table2_rows();
        assert_eq!(rows.len(), 12);
        let total: usize = rows.iter().map(|r| r.paper_count).sum();
        assert_eq!(total, 5152);
        // No overlap-model case without critical resource was found in the
        // paper, all reported cases are strict.
        assert!(rows
            .iter()
            .filter(|r| r.model == CommModel::Overlap)
            .all(|r| r.paper_no_critical == 0));
        let strict_cases: usize = rows
            .iter()
            .filter(|r| r.model == CommModel::Strict)
            .map(|r| r.paper_no_critical)
            .sum();
        assert_eq!(strict_cases, 14 + 5 + 10);
    }

    #[test]
    fn tiny_row_run_smoke() {
        let rows = table2_rows();
        // Smallest strict row at 1% scale: a handful of (2,7)/(3,7) runs.
        let r = run_row(&rows[10], 0.004, 42, 2, 100_000);
        assert!(r.total >= 2);
        assert!(r.no_critical <= r.total);
        let txt = format_results(std::slice::from_ref(&r));
        assert!(txt.contains("strict"));
        let csv = to_csv(&[r]);
        assert!(csv.lines().count() == 2);
    }
}
