//! **repwf-gen** — random instance generation and the paper's experiment
//! campaign (§5, Table 2).
//!
//! The paper's experimental section draws thousands of random (pipeline,
//! platform, mapping) triples and asks one question per draw: *does some
//! resource's cycle-time dictate the period* (`P̂ = M_ct`), or does the
//! round-robin interference of replicated stages push the period strictly
//! above every resource's load (`P̂ > M_ct`)? This crate reproduces that
//! pipeline end to end:
//!
//! * [`sampler`] — draws random instances with computation/communication
//!   times uniform in configured ranges, exactly like the paper's setup
//!   ("all relevant parameters … randomly chosen uniformly within the
//!   ranges indicated in Table 2"). The `w/Π` model cannot produce
//!   independently-uniform per-pair times, so a shape-preserving
//!   speed/size decomposition is used (see [`sampler::Range`]).
//! * [`campaign`] — the parallel experiment engine. Experiments run on the
//!   [`repwf_par`] **work-stealing** executor; each experiment is seeded
//!   from its own index, so campaign results are **bit-identical at every
//!   thread count**. Progress callbacks stream running aggregates
//!   ([`campaign::Progress`]) as experiments finish, and strict-model
//!   instances whose TPN exceeds the size cap transparently fall back to
//!   the discrete-event simulator ([`campaign::Resolution::Simulated`]).
//!   [`campaign::run_campaign_streamed`] additionally hands every outcome
//!   to a sink **in seed order** while running multi-threaded, and the
//!   associative [`campaign::CampaignAccum`] makes the aggregates
//!   mergeable **exactly** — the two hooks the `repwf-dist` crate builds
//!   its sharded (multi-process / multi-host) campaigns on.
//! * [`table2`] — the twelve experiment families of Table 2 with the
//!   paper's counts (5152 experiments total), runnable at any scale, with
//!   console/CSV reporters.
//! * [`stats`] — quantiles, ASCII histograms and per-experiment CSV dumps
//!   for campaign post-processing.
//!
//! # Quickstart
//!
//! ```
//! use repwf_core::model::CommModel;
//! use repwf_gen::{run_campaign, GenConfig, Range};
//!
//! // 40 experiments from the paper's hardest family: 2 stages over 7
//! // processors, unit computations, communications uniform in [5, 10].
//! let cfg = GenConfig {
//!     stages: 2,
//!     procs: 7,
//!     comp: Range::constant(1.0),
//!     comm: Range::new(5.0, 10.0),
//! };
//! let res = run_campaign(&cfg, CommModel::Strict, 40, 1, 4, 200_000);
//! assert_eq!(res.outcomes.len(), 40);
//! // Some draws exhibit the paper's headline regime: no critical resource.
//! let surprising = res.count_no_critical(1e-7);
//! assert!(surprising <= 40);
//! ```
//!
//! The `repwf` CLI (`crates/cli`) exposes this engine as
//! `repwf campaign` / `repwf table2`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod agg;
pub mod campaign;
pub mod sampler;
pub mod stats;
pub mod table2;

pub use campaign::{
    engine_for_cap, run_campaign, run_campaign_streamed, run_campaign_with,
    run_campaign_workflow, run_campaign_workflow_batched, run_campaign_workflow_streamed,
    run_one_workflow_with, CampaignAccum, CampaignResult, ExperimentOutcome, Progress,
};
pub use sampler::{sample_instance, sample_workflow_instance, GenConfig, Range, Topology};
pub use table2::{table2_rows, Table2Row};
