//! **repwf-gen** — random instance generation and the paper's experiment
//! campaign (§5, Table 2).
//!
//! * [`sampler`] — draws random (pipeline, platform, mapping) instances with
//!   computation/communication times uniform in configured ranges, exactly
//!   like the paper's setup ("all relevant parameters … randomly chosen
//!   uniformly within the ranges indicated in Table 2").
//! * [`campaign`] — runs batches of experiments in parallel (crossbeam
//!   scoped threads), comparing the actual period against the critical
//!   resource cycle-time `M_ct` for both communication models.
//! * [`table2`] — the twelve experiment families of Table 2, with the
//!   paper's counts, and a CSV/console reporter.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod sampler;
pub mod stats;
pub mod table2;

pub use campaign::{run_campaign, CampaignResult, ExperimentOutcome};
pub use sampler::{sample_instance, GenConfig, Range};
pub use table2::{table2_rows, Table2Row};
