//! Outcome statistics: quantiles, histograms and per-experiment dumps for
//! campaign results.

use crate::campaign::CampaignResult;
use std::fmt::Write as _;

/// Basic order statistics of a sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Quantiles {
    /// Smallest value.
    pub min: f64,
    /// 25th percentile.
    pub q25: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub q75: f64,
    /// Largest value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

/// Computes quantiles of a non-empty sample (linear interpolation).
pub fn quantiles(sample: &[f64]) -> Quantiles {
    assert!(!sample.is_empty(), "empty sample");
    let mut s = sample.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
    let at = |q: f64| -> f64 {
        let pos = q * (s.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        s[lo] * (1.0 - frac) + s[hi] * frac
    };
    Quantiles {
        min: s[0],
        q25: at(0.25),
        median: at(0.5),
        q75: at(0.75),
        max: s[s.len() - 1],
        mean: s.iter().sum::<f64>() / s.len() as f64,
    }
}

/// An ASCII histogram of a sample over `bins` equal-width bins.
pub fn histogram(sample: &[f64], bins: usize, width: usize) -> String {
    assert!(bins >= 1 && !sample.is_empty());
    let min = sample.iter().copied().fold(f64::INFINITY, f64::min);
    let max = sample.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (max - min).max(1e-12);
    let mut counts = vec![0usize; bins];
    for &v in sample {
        let k = (((v - min) / span) * bins as f64) as usize;
        counts[k.min(bins - 1)] += 1;
    }
    let peak = counts.iter().copied().max().unwrap_or(1).max(1);
    let mut out = String::new();
    for (k, &c) in counts.iter().enumerate() {
        let lo = min + span * k as f64 / bins as f64;
        let hi = min + span * (k + 1) as f64 / bins as f64;
        let bar = "#".repeat(c * width / peak);
        let _ = writeln!(out, "[{lo:>10.3}, {hi:>10.3}) {c:>6} {bar}");
    }
    out
}

/// Per-experiment CSV dump of a campaign (seed, m, M_ct, period, gap).
pub fn outcomes_csv(res: &CampaignResult) -> String {
    let mut out = String::from("seed,num_paths,mct,period,gap,resolution\n");
    for o in &res.outcomes {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{:?}",
            o.seed,
            o.num_paths,
            o.mct,
            o.period,
            o.gap(),
            o.resolution
        );
    }
    out
}

/// Gap distribution of a campaign (only experiments with a strictly
/// positive **finite** gap), or `None` when nothing survives — either
/// every experiment had a critical resource, or the only positive gaps
/// were non-finite (degenerate draws: an infinite simulator-fallback
/// period yields gap ∞, which would otherwise reach [`quantiles`]' sort
/// and poison — or, combined with NaN, panic — the order statistics).
pub fn gap_quantiles(res: &CampaignResult, rel_tol: f64) -> Option<Quantiles> {
    let gaps: Vec<f64> = res
        .outcomes
        .iter()
        .filter(|o| o.no_critical_resource(rel_tol))
        .map(|o| o.gap())
        .filter(|&g| crate::agg::countable_gap(g))
        .collect();
    if gaps.is_empty() {
        None
    } else {
        Some(quantiles(&gaps))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::run_campaign;
    use crate::sampler::{GenConfig, Range};
    use repwf_core::model::CommModel;

    #[test]
    fn quantiles_of_known_sample() {
        let q = quantiles(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(q.min, 1.0);
        assert_eq!(q.median, 3.0);
        assert_eq!(q.max, 5.0);
        assert_eq!(q.mean, 3.0);
        assert_eq!(q.q25, 2.0);
        assert_eq!(q.q75, 4.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let q = quantiles(&[0.0, 10.0]);
        assert_eq!(q.median, 5.0);
        assert_eq!(q.q25, 2.5);
    }

    #[test]
    fn histogram_shape() {
        let sample = [1.0, 1.1, 1.2, 9.0];
        let h = histogram(&sample, 2, 20);
        let lines: Vec<&str> = h.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("     3"));
        assert!(lines[1].contains("     1"));
    }

    #[test]
    fn histogram_constant_sample() {
        let h = histogram(&[2.0, 2.0, 2.0], 3, 10);
        assert_eq!(h.lines().count(), 3);
    }

    #[test]
    fn gap_quantiles_filter_non_finite_gaps() {
        use crate::campaign::{ExperimentOutcome, Resolution};
        let outcome = |mct: f64, period: f64| ExperimentOutcome {
            seed: 0,
            mct,
            period,
            resolution: Resolution::Simulated,
            num_paths: 2,
        };
        // Only non-finite positive gaps: nothing survives the filter.
        let degenerate = CampaignResult {
            outcomes: vec![outcome(10.0, f64::INFINITY), outcome(10.0, 10.0)],
        };
        assert_eq!(gap_quantiles(&degenerate, 1e-7), None);
        // Mixed: the order statistics come from the finite gaps alone.
        let mixed = CampaignResult {
            outcomes: vec![
                outcome(10.0, f64::INFINITY),
                outcome(10.0, 11.0),
                outcome(10.0, 12.0),
            ],
        };
        let q = gap_quantiles(&mixed, 1e-7).expect("finite gaps survive");
        assert!((q.min - 0.1).abs() < 1e-12);
        assert!((q.max - 0.2).abs() < 1e-12);
        assert!(q.mean.is_finite());
    }

    #[test]
    fn campaign_csv_and_gaps() {
        let cfg = GenConfig {
            stages: 2,
            procs: 7,
            comp: Range::constant(1.0),
            comm: Range::new(5.0, 10.0),
        };
        let res = run_campaign(&cfg, CommModel::Strict, 40, 1, 4, 200_000);
        let csv = outcomes_csv(&res);
        assert_eq!(csv.lines().count(), 41);
        assert!(csv.starts_with("seed,"));
        if let Some(q) = gap_quantiles(&res, 1e-7) {
            assert!(q.min > 0.0);
            assert!(q.max >= q.median && q.median >= q.min);
        }
    }
}
