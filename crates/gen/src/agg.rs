//! Shared gap-aggregation helpers (crate-internal).
//!
//! Every aggregate over relative gaps in this crate has the same two
//! hazards, fixed once here instead of re-derived per call site:
//!
//! * **Bit-pattern folding** — the streaming maximum is a `fetch_max` on
//!   raw f64 bits, which is a numeric max only for non-negative finite
//!   doubles; a negative sign bit or a NaN/∞ pattern out-ranks every real
//!   gap ([`fold_max_gap`]).
//! * **Non-finite poisoning** — a degenerate draw (infinite
//!   simulator-fallback period) yields gap ∞, which must be excluded from
//!   maxima and order statistics (it would otherwise dominate the
//!   maximum, and NaN would panic the quantile sort).
//!
//! Users: the campaign's lock-free streaming aggregates, the associative
//! [`crate::campaign::CampaignAccum`] (and through it the shard merger of
//! `repwf-dist`), [`crate::campaign::CampaignResult::max_gap`] and
//! [`crate::stats::gap_quantiles`].

use std::sync::atomic::{AtomicU64, Ordering};

/// True iff `gap` may enter a gap aggregate: strictly positive and
/// finite. Zero gaps carry no information (the maximum starts at 0.0) and
/// non-finite gaps come only from degenerate draws.
pub(crate) fn countable_gap(gap: f64) -> bool {
    gap.is_finite() && gap > 0.0
}

/// Folds one gap into the bitwise streaming maximum.
///
/// For **non-negative finite** IEEE-754 doubles the bit pattern is
/// monotone in the value, so `fetch_max` on the bits is a numeric max —
/// but only on that domain: a negative value's sign bit out-ranks every
/// positive pattern, and NaN/∞ patterns sit above every real gap. The
/// guard rejects those outright instead of trusting a `debug_assert`
/// (release builds used to fold the raw bits unconditionally and could
/// silently report a bogus maximum). [`ExperimentOutcome::gap`] already
/// clamps at 0.0; this keeps the aggregate safe even for degenerate
/// outcomes such as an infinite simulator-fallback period.
///
/// [`ExperimentOutcome::gap`]: crate::campaign::ExperimentOutcome::gap
pub(crate) fn fold_max_gap(max_gap_bits: &AtomicU64, gap: f64) {
    if countable_gap(gap) {
        max_gap_bits.fetch_max(gap.to_bits(), Ordering::SeqCst);
    }
}

/// Sequential counterpart of [`fold_max_gap`]: folds a gap into a plain
/// bit-pattern maximum (same domain guard, no atomics). Associative and
/// commutative, which is what makes the campaign accumulator mergeable.
pub(crate) fn fold_max_gap_bits(max_gap_bits: u64, gap: f64) -> u64 {
    if countable_gap(gap) {
        max_gap_bits.max(gap.to_bits())
    } else {
        max_gap_bits
    }
}

/// Maximum of an iterator of gaps, skipping non-finite entries; 0.0 when
/// nothing survives.
pub(crate) fn max_finite_gap(gaps: impl Iterator<Item = f64>) -> f64 {
    gaps.filter(|g| g.is_finite()).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn countable_rejects_non_finite_and_non_positive() {
        assert!(countable_gap(0.25));
        for g in [0.0, -0.0, -1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(!countable_gap(g), "{g}");
        }
    }

    #[test]
    fn bit_fold_matches_numeric_max_on_countable_gaps() {
        let mut bits = 0u64;
        for g in [0.1, -3.0, f64::INFINITY, 0.4, f64::NAN, 0.2] {
            bits = fold_max_gap_bits(bits, g);
        }
        assert_eq!(f64::from_bits(bits), 0.4);
    }

    #[test]
    fn max_finite_gap_skips_infinities() {
        assert_eq!(max_finite_gap([f64::INFINITY, 0.5, f64::NAN, 0.75].into_iter()), 0.75);
        assert_eq!(max_finite_gap(std::iter::empty()), 0.0);
    }
}
