//! Random instance generation with times uniform in configured ranges.
//!
//! The paper draws processor speeds and link bandwidths so that computation
//! and communication times fall uniformly within the Table 2 ranges. The
//! `w/Π` model cannot produce independently-uniform per-pair times, so we
//! use the shape-preserving scheme documented in DESIGN.md §4: with
//! heterogeneity factor `s = min(2, hi/lo)`, draw speeds `Π_u ~ U(1, s)` and
//! works `w_k ~ U(lo·s, hi)`; every resulting time `w_k/Π_u` then lies in
//! `[lo, hi]` (same construction for bandwidths and file sizes).

use rand::Rng;
use repwf_core::model::{Instance, Mapping, Pipeline, Platform};

/// An inclusive time range `[lo, hi]` (use `lo == hi` for constant times,
/// e.g. the paper's "computation times = 1" rows).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Range {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

impl Range {
    /// A constant range.
    pub const fn constant(v: f64) -> Self {
        Range { lo: v, hi: v }
    }

    /// A proper range.
    pub const fn new(lo: f64, hi: f64) -> Self {
        Range { lo, hi }
    }

    fn heterogeneity(&self) -> f64 {
        (self.hi / self.lo).min(2.0)
    }

    fn sample_speed<R: Rng>(&self, rng: &mut R) -> f64 {
        let s = self.heterogeneity();
        if s <= 1.0 {
            1.0
        } else {
            rng.gen_range(1.0..=s)
        }
    }

    fn sample_size<R: Rng>(&self, rng: &mut R) -> f64 {
        let s = self.heterogeneity();
        let lo = self.lo * s;
        if lo >= self.hi {
            self.hi
        } else {
            rng.gen_range(lo..=self.hi)
        }
    }
}

/// Configuration of the generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenConfig {
    /// Number of pipeline stages `n`.
    pub stages: usize,
    /// Number of processors `p` (all of them get mapped: the paper draws
    /// the per-stage replica counts randomly, using the whole platform).
    pub procs: usize,
    /// Computation-time range.
    pub comp: Range,
    /// Communication-time range.
    pub comm: Range,
}

/// A precedence topology shared by every draw of a campaign: the stage
/// count plus the series-parallel edge set. The generator draws a fresh
/// instance *on* this fixed graph — replica counts, sizes, speeds and
/// bandwidths vary per seed, the precedence structure does not (so the
/// static shape-routing of the batched runner keeps working: the TPN shape
/// of a draw is still a pure function of its replica-count RNG prefix).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    /// Number of stages `n`.
    pub stages: usize,
    /// Precedence edges `(src, dst)`; must form a two-terminal
    /// series-parallel DAG (validated by `Pipeline::from_edges` on the
    /// first draw).
    pub edges: Vec<(usize, usize)>,
}

impl Topology {
    /// The linear chain `S_0 → S_1 → … → S_{n-1}` — the classic pipeline.
    pub fn chain(n: usize) -> Topology {
        Topology { stages: n, edges: (0..n.saturating_sub(1)).map(|k| (k, k + 1)).collect() }
    }

    /// A fork/join: a split stage, `branches` parallel stages, a merge
    /// stage (`branches + 2` stages total).
    pub fn fork_join(branches: usize) -> Topology {
        assert!(branches >= 1, "need at least one branch");
        let sink = branches + 1;
        let mut edges = Vec::with_capacity(2 * branches);
        for b in 1..=branches {
            edges.push((0, b));
            edges.push((b, sink));
        }
        Topology { stages: branches + 2, edges }
    }

    /// Number of precedence edges (= files drawn per instance).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// True iff this is the chain topology on its stage count.
    pub fn is_chain(&self) -> bool {
        *self == Topology::chain(self.stages)
    }
}

/// Draws a random instance: random replica counts (every stage ≥ 1
/// processor, all `p` processors used), heterogeneous speeds/bandwidths and
/// stage/file sizes per the range scheme above.
pub fn sample_instance<R: Rng>(cfg: &GenConfig, rng: &mut R) -> Instance {
    let (pipeline, platform, mapping) = sample_parts(cfg, rng);
    Instance::new(pipeline, platform, mapping).expect("generator produces valid instances")
}

/// [`sample_instance`] as loose parts: the campaign engine evaluates the
/// draw through the borrowed-view oracle path
/// (`PeriodEngine::compute_mapping`), which needs no owned [`Instance`] at
/// all; the parts are only assembled (by move, not clone) when the
/// simulator fallback requires ownership.
pub fn sample_parts<R: Rng>(cfg: &GenConfig, rng: &mut R) -> (Pipeline, Platform, Mapping) {
    sample_workflow_parts(cfg, &Topology::chain(cfg.stages), rng)
}

/// [`sample_instance`] on an arbitrary series-parallel topology.
pub fn sample_workflow_instance<R: Rng>(
    cfg: &GenConfig,
    topo: &Topology,
    rng: &mut R,
) -> Instance {
    let (pipeline, platform, mapping) = sample_workflow_parts(cfg, topo, rng);
    Instance::new(pipeline, platform, mapping).expect("generator produces valid instances")
}

/// [`sample_parts`] generalized to any series-parallel [`Topology`]:
/// edge sizes are drawn in `topo.edges` order, one per edge, where the
/// chain drew one per stage boundary. On [`Topology::chain`] the RNG
/// stream and the resulting parts are exactly those of [`sample_parts`] —
/// the chain *is* this function.
pub fn sample_workflow_parts<R: Rng>(
    cfg: &GenConfig,
    topo: &Topology,
    rng: &mut R,
) -> (Pipeline, Platform, Mapping) {
    assert_eq!(cfg.stages, topo.stages, "topology stage count must match the GenConfig");
    let replicas = sample_replica_counts(cfg, rng);
    // Shuffle processor identities so stage/processor correlation is random.
    let mut procs: Vec<usize> = (0..cfg.procs).collect();
    for i in (1..procs.len()).rev() {
        let j = rng.gen_range(0..=i);
        procs.swap(i, j);
    }
    let mut assignment = Vec::with_capacity(cfg.stages);
    let mut next = 0;
    for &m in &replicas {
        assignment.push(procs[next..next + m].to_vec());
        next += m;
    }

    let works: Vec<f64> = (0..cfg.stages).map(|_| cfg.comp.sample_size(rng)).collect();
    let edges: Vec<(usize, usize, f64)> = topo
        .edges
        .iter()
        .map(|&(src, dst)| (src, dst, cfg.comm.sample_size(rng)))
        .collect();
    let pipeline = Pipeline::from_edges(works, edges).expect("generator topologies are valid");

    let mut platform = Platform::uniform(cfg.procs, 1.0, 1.0);
    for u in 0..cfg.procs {
        platform.set_speed(u, cfg.comp.sample_speed(rng));
    }
    for u in 0..cfg.procs {
        for v in 0..cfg.procs {
            platform.set_bandwidth(u, v, cfg.comm.sample_speed(rng));
        }
    }

    let mapping = Mapping::new(assignment).expect("generator produces valid mappings");
    (pipeline, platform, mapping)
}

/// The per-stage replica counts of a draw — the **prefix** of the RNG
/// stream [`sample_parts`] consumes: every stage starts at one processor
/// and the remaining `p − n` are sprinkled uniformly.
///
/// Because it is the prefix, the canonical TPN *shape* of seed `k`
/// (communication model aside, the place structure is a pure function of
/// these counts) can be recovered by replaying just these draws on a fresh
/// `StdRng::seed_from_u64(seed)` — no pipeline, platform or mapping
/// materialized. This is the static shape-routing primitive of the
/// batched campaign runner and of the `distinct_shapes` report statistics.
pub fn sample_replica_counts<R: Rng>(cfg: &GenConfig, rng: &mut R) -> Vec<usize> {
    assert!(cfg.stages >= 1 && cfg.procs >= cfg.stages, "need at least one proc per stage");
    let mut replicas = vec![1usize; cfg.stages];
    for _ in 0..cfg.procs - cfg.stages {
        let k = rng.gen_range(0..cfg.stages);
        replicas[k] += 1;
    }
    replicas
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg() -> GenConfig {
        GenConfig {
            stages: 4,
            procs: 11,
            comp: Range::new(5.0, 15.0),
            comm: Range::new(5.0, 15.0),
        }
    }

    #[test]
    fn uses_every_processor_once() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let inst = sample_instance(&cfg(), &mut rng);
            let total: usize = inst.mapping.replica_counts().iter().sum();
            assert_eq!(total, 11);
            let mut seen = [false; 11];
            for i in 0..inst.num_stages() {
                for &u in inst.mapping.procs(i) {
                    assert!(!seen[u]);
                    seen[u] = true;
                }
            }
        }
    }

    #[test]
    fn times_within_ranges() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let inst = sample_instance(&cfg(), &mut rng);
            for i in 0..inst.num_stages() {
                for &u in inst.mapping.procs(i) {
                    let t = inst.comp_time(i, u);
                    assert!((5.0 - 1e-9..=15.0 + 1e-9).contains(&t), "comp time {t}");
                }
            }
            for i in 0..inst.num_stages() - 1 {
                for &u in inst.mapping.procs(i) {
                    for &v in inst.mapping.procs(i + 1) {
                        let t = inst.comm_time(i, u, v);
                        assert!((5.0 - 1e-9..=15.0 + 1e-9).contains(&t), "comm time {t}");
                    }
                }
            }
        }
    }

    #[test]
    fn constant_comp_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = GenConfig {
            stages: 2,
            procs: 7,
            comp: Range::constant(1.0),
            comm: Range::new(5.0, 10.0),
        };
        let inst = sample_instance(&cfg, &mut rng);
        for i in 0..2 {
            for &u in inst.mapping.procs(i) {
                assert!((inst.comp_time(i, u) - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn replica_prefix_matches_full_draw() {
        // The shape-routing contract: replaying only the prefix on a fresh
        // seeded RNG reproduces exactly the replica counts of the full
        // draw with that seed.
        for seed in 0..20 {
            let counts = sample_replica_counts(&cfg(), &mut StdRng::seed_from_u64(seed));
            let (_, _, mapping) = sample_parts(&cfg(), &mut StdRng::seed_from_u64(seed));
            assert_eq!(counts, mapping.replica_counts(), "seed {seed}");
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = sample_instance(&cfg(), &mut StdRng::seed_from_u64(42));
        let b = sample_instance(&cfg(), &mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
    }

    #[test]
    fn every_stage_has_a_processor() {
        let mut rng = StdRng::seed_from_u64(9);
        let cfg = GenConfig {
            stages: 10,
            procs: 10, // tight: exactly one each
            comp: Range::new(5.0, 15.0),
            comm: Range::new(5.0, 15.0),
        };
        let inst = sample_instance(&cfg, &mut rng);
        assert!(inst.mapping.is_one_to_one());
    }
}
