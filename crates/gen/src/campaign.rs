//! The parallel experiment campaign engine: period vs. `M_ct` on random
//! instances.
//!
//! Each experiment draws an instance, computes the critical-resource bound
//! `M_ct` and the actual period, and records whether a critical resource
//! exists (`P̂ = M_ct`) or not (`P̂ > M_ct`, the paper's surprising regime).
//!
//! # Engine
//!
//! Experiments run on the [`repwf_par`] **work-stealing** executor (this
//! replaced the original static crossbeam thread loop, whose fixed
//! partition stalled whole workers on simulator-fallback experiments).
//! Each worker thread owns one [`repwf_core::engine::PeriodEngine`]
//! (created by [`repwf_par::par_map_init`]), so the TPN build arena and
//! the Howard workspace are allocated `threads` times per campaign instead
//! of once per experiment. Draws are evaluated **by reference** through
//! [`PeriodEngine::compute_mapping`] (no owned `Instance` unless the
//! simulator fallback needs one), and when consecutive draws on a worker
//! happen to share their replica-count shape the engine re-times the TPN
//! in place instead of rebuilding it — the patched state is bit-for-bit a
//! rebuild, so this never leaks the schedule into the numbers. Three
//! properties are guaranteed:
//!
//! * **Determinism at any thread count** — experiment `k` derives *all* of
//!   its randomness from `StdRng::seed_from_u64(seed_base + k)`, results
//!   are returned in seed order, and the per-worker engines run **cold**
//!   (warm starts stay off: with them, the reported witness could depend
//!   on which experiment a worker ran previously, i.e. on the stealing
//!   schedule). A campaign's [`CampaignResult`] is therefore bit-identical
//!   for `threads = 1` and `threads = N` (tested below and in the `repwf`
//!   CLI).
//! * **Lock-free streaming aggregation** — running counts (`done`,
//!   `no_critical`, `simulated`, `max_gap`) are plain atomics folded in as
//!   experiments complete; the hot path never takes a lock and a progress
//!   consumer never scans the outcome vector. (A `Mutex<Progress>` used to
//!   serialize every worker here; profiles of short-experiment campaigns
//!   showed it right behind the period solve itself.)
//! * **Progress callbacks** — [`run_campaign_with`] reports a
//!   [`Progress`] snapshot after every finished experiment (from worker
//!   threads: callbacks must be `Sync`). Counters in a snapshot are each
//!   exact and monotone, but mid-campaign a snapshot may combine them at
//!   slightly different instants; the final snapshot (`done == total`) is
//!   exact in every field.

use crate::agg;
use crate::sampler::{sample_replica_counts, sample_workflow_parts, GenConfig, Topology};
use rand::rngs::StdRng;
use rand::SeedableRng;
use repwf_core::batch::ShapeBatchSolver;
use repwf_core::cycle_time::max_cycle_time_view;
use repwf_core::engine::PeriodEngine;
use repwf_core::model::{CommModel, Instance, InstanceView};
use repwf_core::paths::{mapping_num_paths, num_paths};
use repwf_core::period::{Method, PeriodError};
use repwf_core::tpn_build::{BuildError, BuildOptions};
use repwf_sim::{simulate, SimOptions};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// How one experiment was resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resolution {
    /// Exact analysis (polynomial algorithm or full TPN).
    Exact,
    /// The TPN exceeded the size cap; the period was estimated with the
    /// discrete-event simulator.
    Simulated,
}

/// Outcome of one experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentOutcome {
    /// Seed used to draw the instance (reproducible).
    pub seed: u64,
    /// Critical-resource bound.
    pub mct: f64,
    /// Actual per-data-set period.
    pub period: f64,
    /// Resolution method.
    pub resolution: Resolution,
    /// Number of TPN rows `m` of the instance.
    pub num_paths: u128,
}

impl ExperimentOutcome {
    /// Relative gap `(P̂ − M_ct)/M_ct` (0 when a critical resource exists).
    ///
    /// Clamped at 0.0: float noise when the period sits exactly on `M_ct`
    /// — or a simulator-fallback estimate landing just *below* it — must
    /// never produce a negative gap (whose sign bit would out-rank every
    /// positive pattern in the bitwise streaming maximum), and a NaN from
    /// a degenerate draw clamps to 0.0 too. An infinite period passes
    /// through (visible in the CSV dump); the aggregates reject
    /// non-finite gaps separately.
    pub fn gap(&self) -> f64 {
        let g = (self.period - self.mct) / self.mct;
        if g > 0.0 {
            g
        } else {
            0.0
        }
    }

    /// True iff no resource is critical: the period strictly exceeds `M_ct`.
    pub fn no_critical_resource(&self, rel_tol: f64) -> bool {
        self.gap() > rel_tol
    }
}

/// Aggregated campaign result.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignResult {
    /// All outcomes (one per experiment), in seed order.
    pub outcomes: Vec<ExperimentOutcome>,
}

impl CampaignResult {
    /// Number of experiments without a critical resource.
    pub fn count_no_critical(&self, rel_tol: f64) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.no_critical_resource(rel_tol))
            .count()
    }

    /// Maximum relative gap over all experiments. Non-finite gaps (an
    /// infinite period from a degenerate draw) are skipped, matching the
    /// streaming aggregate of [`run_campaign_with`].
    pub fn max_gap(&self) -> f64 {
        agg::max_finite_gap(self.outcomes.iter().map(ExperimentOutcome::gap))
    }

    /// Number of experiments resolved by simulation fallback.
    pub fn count_simulated(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.resolution == Resolution::Simulated)
            .count()
    }

    /// The associative aggregates of this result (at [`GAP_REL_TOL`]).
    pub fn accum(&self) -> CampaignAccum {
        let mut accum = CampaignAccum::new();
        for outcome in &self.outcomes {
            accum.push(outcome);
        }
        accum
    }
}

/// **Associative** campaign aggregates: what a shard can compute locally
/// and a merger can recombine without touching the outcomes again.
///
/// Every field folds through an operation that is associative and
/// commutative *bitwise* — integer sums and the guarded bit-pattern
/// maximum of [`max_gap`](CampaignAccum::max_gap) — so
/// `merge(accum(s_1), …, accum(s_N))` equals `accum(s_1 ∥ … ∥ s_N)`
/// **exactly**, for any grouping of the shards. This is the foundation of
/// the `repwf-dist` exact merger: aggregates of a sharded campaign are
/// bit-identical to the unsharded run at any `num_shards × threads`
/// combination. Order statistics (gap quantiles) deliberately do *not*
/// live here: they are not associative and are computed only after the
/// full merge, from the concatenated outcomes
/// ([`crate::stats::gap_quantiles`]).
///
/// The no-critical count is fixed at [`GAP_REL_TOL`] — the tolerance the
/// streaming aggregates and the CLI report use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignAccum {
    /// Experiments folded in.
    pub done: usize,
    /// Experiments without a critical resource (at [`GAP_REL_TOL`]).
    pub no_critical: usize,
    /// Experiments resolved by the simulator fallback.
    pub simulated: usize,
    /// Bit pattern of the maximum finite positive gap (see
    /// [`CampaignAccum::max_gap`]).
    max_gap_bits: u64,
}

impl CampaignAccum {
    /// The empty accumulator (the identity of [`merge`](Self::merge)).
    pub fn new() -> CampaignAccum {
        CampaignAccum { done: 0, no_critical: 0, simulated: 0, max_gap_bits: 0f64.to_bits() }
    }

    /// Folds one outcome in.
    pub fn push(&mut self, outcome: &ExperimentOutcome) {
        self.done += 1;
        self.no_critical += usize::from(outcome.no_critical_resource(GAP_REL_TOL));
        self.simulated += usize::from(outcome.resolution == Resolution::Simulated);
        self.max_gap_bits = agg::fold_max_gap_bits(self.max_gap_bits, outcome.gap());
    }

    /// Folds another accumulator in (associative, commutative, exact).
    pub fn merge(&mut self, other: &CampaignAccum) {
        self.done += other.done;
        self.no_critical += other.no_critical;
        self.simulated += other.simulated;
        self.max_gap_bits = self.max_gap_bits.max(other.max_gap_bits);
    }

    /// Maximum finite positive gap folded in so far (0.0 when none);
    /// equals [`CampaignResult::max_gap`] over the same outcomes.
    pub fn max_gap(&self) -> f64 {
        f64::from_bits(self.max_gap_bits)
    }

    /// Snapshots this accumulator as a [`Progress`] against a campaign
    /// of `total` experiments — the same shape the streaming callbacks
    /// receive, so checkpoint-derived state (a resumed shard, a merged
    /// partial campaign) reports through one code path.
    pub fn progress(&self, total: usize) -> Progress {
        Progress {
            done: self.done,
            total,
            no_critical: self.no_critical,
            simulated: self.simulated,
            max_gap: self.max_gap(),
        }
    }
}

impl Default for CampaignAccum {
    fn default() -> Self {
        CampaignAccum::new()
    }
}

/// Relative-gap tolerance below which an experiment counts as having a
/// critical resource (shared by the streaming aggregates and Table 2).
pub const GAP_REL_TOL: f64 = 1e-7;

/// Default TPN size cap (max transitions) of campaign runs. Raised from
/// the historical `400_000` once the per-SCC parallel solver and the
/// shape-batched path made strict TPNs of this size solve exactly in
/// reasonable time — instance families that used to fall back to the
/// discrete-event simulator now report [`Resolution::Exact`].
pub const DEFAULT_CAMPAIGN_CAP: usize = 2_000_000;

/// Streaming snapshot passed to progress callbacks after every experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Progress {
    /// Experiments finished so far.
    pub done: usize,
    /// Campaign size.
    pub total: usize,
    /// Finished experiments without a critical resource (at [`GAP_REL_TOL`]).
    pub no_critical: usize,
    /// Finished experiments resolved by the simulator fallback.
    pub simulated: usize,
    /// Maximum relative gap seen so far.
    pub max_gap: f64,
}

impl Progress {
    /// Fraction complete in `[0, 1]`; an empty campaign counts as done.
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.done as f64 / self.total as f64
        }
    }

    /// One-line human summary, shared by the supervisor, `repwf dist
    /// status` and partial merges: experiments done (with the percentage
    /// when short of the campaign), the no-critical tally, the simulated
    /// tally (only when any experiment actually fell back to the
    /// simulator), and the running max gap.
    ///
    /// ```
    /// use repwf_gen::campaign::Progress;
    /// let p = Progress { done: 3, total: 4, no_critical: 1, simulated: 0, max_gap: 0.25 };
    /// assert_eq!(p.summary(), "3/4 experiments (75.0%), 1 no-critical, max gap 25.000%");
    /// let s = Progress { simulated: 2, ..p };
    /// assert_eq!(
    ///     s.summary(),
    ///     "3/4 experiments (75.0%), 1 no-critical, 2 simulated, max gap 25.000%",
    /// );
    /// ```
    pub fn summary(&self) -> String {
        let coverage = if self.done == self.total {
            format!("{}/{} experiments", self.done, self.total)
        } else {
            format!(
                "{}/{} experiments ({})",
                self.done,
                self.total,
                format_pct(self.done, self.total)
            )
        };
        let simulated = if self.simulated > 0 {
            format!(", {} simulated", self.simulated)
        } else {
            String::new()
        };
        format!(
            "{coverage}, {} no-critical{simulated}, max gap {:.3}%",
            self.no_critical,
            self.max_gap * 100.0
        )
    }
}

/// `done/total` as a percentage with one decimal (`"75.0%"`). An empty
/// total counts as complete (`"100.0%"`), matching [`Progress::fraction`]'s
/// empty-campaign convention. The one formatting rule shared by
/// [`Progress::summary`] and `repwf dist status`.
pub fn format_pct(done: usize, total: usize) -> String {
    let fraction = if total == 0 { 1.0 } else { done as f64 / total as f64 };
    format!("{:.1}%", fraction * 100.0)
}

/// Progress callback type: invoked from worker threads.
pub type ProgressFn<'a> = &'a (dyn Fn(Progress) + Sync);

/// Outcome sink for [`run_campaign_streamed`]: invoked from worker
/// threads, **in seed order**.
pub type OutcomeSink<'a> = &'a (dyn Fn(&ExperimentOutcome) + Sync);

/// Runs one experiment (public for reuse by benches/tests).
///
/// One-shot convenience over [`run_one_with`]: allocates a fresh
/// [`PeriodEngine`] sized by `cap`.
pub fn run_one(cfg: &GenConfig, model: CommModel, seed: u64, cap: usize) -> ExperimentOutcome {
    run_one_with(cfg, model, seed, &mut engine_for_cap(cap))
}

/// A cold-start engine with the campaign build options (no labels, TPN
/// size cap `cap`).
pub fn engine_for_cap(cap: usize) -> PeriodEngine {
    PeriodEngine::with_options(BuildOptions {
        labels: false,
        max_transitions: cap,
    })
}

/// Runs one experiment on a caller-owned engine (the size cap comes from
/// the engine's build options). The outcome is a pure function of
/// `(cfg, model, seed, engine options)` — the engine only contributes
/// reusable buffers, never state that leaks into the numbers.
pub fn run_one_with(
    cfg: &GenConfig,
    model: CommModel,
    seed: u64,
    engine: &mut PeriodEngine,
) -> ExperimentOutcome {
    run_one_workflow_with(cfg, &Topology::chain(cfg.stages), model, seed, engine)
}

/// [`run_one_with`] on an arbitrary series-parallel [`Topology`]. On
/// [`Topology::chain`] this *is* [`run_one_with`] (same RNG stream, same
/// bytes).
pub fn run_one_workflow_with(
    cfg: &GenConfig,
    topo: &Topology,
    model: CommModel,
    seed: u64,
    engine: &mut PeriodEngine,
) -> ExperimentOutcome {
    let mut rng = StdRng::seed_from_u64(seed);
    // The draw is evaluated through the borrowed-view oracle path: no
    // owned `Instance` is assembled unless the simulator fallback needs
    // one (and then by move, not clone). Consecutive same-shape draws on a
    // worker take the engine's incremental patch path — bit-transparent,
    // so outcomes stay a pure function of the seed regardless of the
    // work-stealing schedule.
    let (pipeline, platform, mapping) = sample_workflow_parts(cfg, topo, &mut rng);
    let method = match model {
        CommModel::Overlap => Method::Polynomial,
        CommModel::Strict => Method::FullTpn,
    };
    match engine.compute_mapping(&pipeline, &platform, &mapping, model, method) {
        Ok(report) => ExperimentOutcome {
            seed,
            mct: report.mct,
            period: report.period,
            resolution: Resolution::Exact,
            num_paths: report.num_paths,
        },
        Err(PeriodError::Build(BuildError::TooLarge { m, .. })) => {
            // Simulator fallback: long enough to pass the transient.
            let inst = Instance::new(pipeline, platform, mapping)
                .expect("generator produces valid instances");
            let (mct, _) = repwf_core::cycle_time::max_cycle_time(&inst, model);
            let data_sets = 20_000u64;
            let sim = simulate(
                &inst,
                model,
                &SimOptions {
                    data_sets,
                    record_ops: false,
                },
            );
            ExperimentOutcome {
                seed,
                mct,
                period: sim
                    .exact_period(1e-9)
                    .unwrap_or_else(|| sim.period_estimate()),
                resolution: Resolution::Simulated,
                num_paths: m,
            }
        }
        Err(e) => panic!("experiment {seed} failed: {e}"),
    }
}

/// Runs `count` experiments for a configuration over `threads` work-stealing
/// workers (seeds `seed_base..seed_base+count`).
pub fn run_campaign(
    cfg: &GenConfig,
    model: CommModel,
    count: usize,
    seed_base: u64,
    threads: usize,
    cap: usize,
) -> CampaignResult {
    run_campaign_with(cfg, model, count, seed_base, threads, cap, None)
}

/// [`run_campaign`] with an optional streaming progress callback.
pub fn run_campaign_with(
    cfg: &GenConfig,
    model: CommModel,
    count: usize,
    seed_base: u64,
    threads: usize,
    cap: usize,
    progress: Option<ProgressFn<'_>>,
) -> CampaignResult {
    run_campaign_workflow_with(cfg, &Topology::chain(cfg.stages), model, count, seed_base, threads, cap, progress)
}

/// [`run_campaign`] on an arbitrary series-parallel [`Topology`]: every
/// experiment draws its instance on the same precedence graph. All
/// determinism guarantees carry over — outcomes are a pure function of
/// `(cfg, topo, model, seed)` and bit-identical at any thread count. On
/// [`Topology::chain`] the result is byte-identical to [`run_campaign`].
pub fn run_campaign_workflow(
    cfg: &GenConfig,
    topo: &Topology,
    model: CommModel,
    count: usize,
    seed_base: u64,
    threads: usize,
    cap: usize,
) -> CampaignResult {
    run_campaign_workflow_with(cfg, topo, model, count, seed_base, threads, cap, None)
}

/// [`run_campaign_workflow`] with an optional streaming progress callback.
#[allow(clippy::too_many_arguments)]
pub fn run_campaign_workflow_with(
    cfg: &GenConfig,
    topo: &Topology,
    model: CommModel,
    count: usize,
    seed_base: u64,
    threads: usize,
    cap: usize,
    progress: Option<ProgressFn<'_>>,
) -> CampaignResult {
    // Lock-free streaming aggregates. `max_gap` is a non-negative f64; for
    // non-negative IEEE-754 doubles the bit pattern is monotone in the
    // value, so a `fetch_max` on the bits is a numeric max.
    let done = AtomicUsize::new(0);
    let no_critical = AtomicUsize::new(0);
    let simulated = AtomicUsize::new(0);
    let max_gap_bits = AtomicU64::new(0f64.to_bits());
    let outcomes = repwf_par::par_map_init(
        threads,
        count,
        || engine_for_cap(cap),
        |engine, k| {
            let _span = repwf_obs::span!(Experiment);
            let outcome = run_one_workflow_with(cfg, topo, model, seed_base + k as u64, engine);
            if let Some(callback) = progress {
                // Update every statistic *before* bumping `done`: the
                // worker that observes `done == total` then reads totals
                // that include every experiment.
                no_critical.fetch_add(
                    usize::from(outcome.no_critical_resource(GAP_REL_TOL)),
                    Ordering::SeqCst,
                );
                simulated.fetch_add(
                    usize::from(outcome.resolution == Resolution::Simulated),
                    Ordering::SeqCst,
                );
                agg::fold_max_gap(&max_gap_bits, outcome.gap());
                let d = done.fetch_add(1, Ordering::SeqCst) + 1;
                callback(Progress {
                    done: d,
                    total: count,
                    no_critical: no_critical.load(Ordering::SeqCst),
                    simulated: simulated.load(Ordering::SeqCst),
                    max_gap: f64::from_bits(max_gap_bits.load(Ordering::SeqCst)),
                });
            }
            outcome
        },
    );
    CampaignResult { outcomes }
}

/// [`run_campaign`] streaming every outcome to `sink` **in seed order**
/// as the contiguous prefix of experiments completes (via
/// [`repwf_par::par_map_init_ordered`]).
///
/// This is the entry point of the `repwf-dist` shard runners: the sink
/// appends NDJSON records to the shard file, and because outcomes arrive
/// strictly in seed order a killed process always leaves a valid,
/// resumable prefix — at any thread count, with the same bytes. The sink
/// runs under the executor's reorder lock; keep it to an append, not a
/// solve. Outcomes are exactly those of [`run_campaign`] with the same
/// arguments, bit for bit.
pub fn run_campaign_streamed(
    cfg: &GenConfig,
    model: CommModel,
    count: usize,
    seed_base: u64,
    threads: usize,
    cap: usize,
    sink: OutcomeSink<'_>,
) -> CampaignResult {
    run_campaign_workflow_streamed(
        cfg,
        &Topology::chain(cfg.stages),
        model,
        count,
        seed_base,
        threads,
        cap,
        sink,
    )
}

/// [`run_campaign_streamed`] on an arbitrary series-parallel
/// [`Topology`] — the shard-runner entry point for workflow campaigns,
/// with the same seed-order streaming contract.
#[allow(clippy::too_many_arguments)]
pub fn run_campaign_workflow_streamed(
    cfg: &GenConfig,
    topo: &Topology,
    model: CommModel,
    count: usize,
    seed_base: u64,
    threads: usize,
    cap: usize,
    sink: OutcomeSink<'_>,
) -> CampaignResult {
    let outcomes = repwf_par::par_map_init_ordered(
        threads,
        count,
        || engine_for_cap(cap),
        |engine, k| run_one_workflow_with(cfg, topo, model, seed_base + k as u64, engine),
        |_, outcome| sink(outcome),
    );
    CampaignResult { outcomes }
}

/// Campaign shape statistics, computed **statically from the spec** by
/// replaying only the replica-count RNG prefix of every seed (no instance
/// materialized, no experiment run): the number of distinct TPN shapes
/// the campaign draws, and the batch hit rate
/// `(count − distinct_shapes)/count` — the fraction of experiments that
/// ride a shape some earlier seed already paid the structural phase for.
///
/// Because the statistics depend only on `(cfg, count, seed_base)`, a
/// sharded campaign's merge report and the unsharded run report the same
/// values, whichever runner actually executed the experiments.
pub fn shape_stats(cfg: &GenConfig, count: usize, seed_base: u64) -> (usize, f64) {
    if count == 0 {
        return (0, 0.0);
    }
    let mut shapes = std::collections::HashSet::new();
    for k in 0..count {
        let mut rng = StdRng::seed_from_u64(seed_base + k as u64);
        shapes.insert(sample_replica_counts(cfg, &mut rng));
    }
    let distinct = shapes.len();
    (distinct, (count - distinct) as f64 / count as f64)
}

/// Structural-solve totals of the canonical batched campaign schedule
/// (see [`structural_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StructuralStats {
    /// Oracle solves that took the engine's shape-preserving patch path.
    /// The shape-batched scheduler replaces per-instance patching with
    /// shared-structure batch passes, so this is zero for every campaign
    /// it routes (and the overlap model never builds a TPN at all) — the
    /// field pins that the batched schedule pays **no** per-instance
    /// incremental solves, mirroring `PeriodEngine::patched_solves`.
    pub patched_solves: u64,
    /// CSR adjacency builds: one structural phase per batch chunk.
    pub csr_builds: u64,
    /// Tarjan condensations: one per batch chunk (always equal to
    /// `csr_builds` on this schedule; reported separately to mirror the
    /// engine counters).
    pub tarjan_runs: u64,
}

/// Replays the batched campaign's static routing (the same replica-RNG
/// prefix replay as [`run_campaign_workflow_batched_with`]) and returns
/// the structural work of that schedule **without cross-chunk cache
/// reuse**: each batch chunk pays one TPN/CSR/Tarjan structural phase;
/// over-cap seeds run the simulator fallback, which builds none of it.
///
/// Like [`shape_stats`], this depends only on
/// `(cfg, topo, model, count, seed_base, cap)` — never on the outcomes or
/// the thread schedule — so a sharded campaign's merge report and the
/// unsharded run report identical values and merged bytes stay identical
/// to unsharded bytes.
pub fn structural_stats_workflow(
    cfg: &GenConfig,
    topo: &Topology,
    model: CommModel,
    count: usize,
    seed_base: u64,
    cap: usize,
) -> StructuralStats {
    if model == CommModel::Overlap || count == 0 {
        return StructuralStats::default();
    }
    let cols = (topo.stages + topo.num_edges()) as u128;
    let mut group_of: HashMap<Vec<usize>, usize> = HashMap::new();
    let mut groups: Vec<(u128, u64)> = Vec::new();
    for k in 0..count {
        let mut rng = StdRng::seed_from_u64(seed_base + k as u64);
        let replicas = sample_replica_counts(cfg, &mut rng);
        let transitions = num_paths(&replicas).and_then(|m| m.checked_mul(cols));
        if let Some(t) = transitions {
            if t <= cap as u128 {
                let g = *group_of.entry(replicas).or_insert_with(|| {
                    groups.push((t, 0));
                    groups.len() - 1
                });
                groups[g].1 += 1;
            }
        }
    }
    let mut chunks = 0u64;
    for (transitions, members) in groups {
        let chunk = (BATCH_TRANSITION_BUDGET / transitions.max(1)).clamp(1, MAX_BATCH as u128);
        chunks += members.div_ceil(chunk as u64);
    }
    StructuralStats { patched_solves: 0, csr_builds: chunks, tarjan_runs: chunks }
}

/// [`structural_stats_workflow`] on the linear chain topology — the shape
/// every `CampaignSpec`-driven campaign (CLI, shards, supervisor) runs.
pub fn structural_stats(
    cfg: &GenConfig,
    model: CommModel,
    count: usize,
    seed_base: u64,
    cap: usize,
) -> StructuralStats {
    structural_stats_workflow(cfg, &Topology::chain(cfg.stages), model, count, seed_base, cap)
}

/// Upper bound on transitions staged per batched chunk: chunks shrink for
/// big shapes so the per-worker cost planes and Howard columns stay
/// bounded (a pure function of the shape dimensions — deterministic).
const BATCH_TRANSITION_BUDGET: u128 = 1_000_000;
/// Instances per batched Howard pass for small shapes.
const MAX_BATCH: usize = 16;

/// One unit of batched campaign work.
enum BatchTask {
    /// Same-shape, in-cap seeds solved in one batched Howard pass.
    Batch(Vec<u32>),
    /// A seed the batched path cannot take (TPN over the size cap —
    /// simulator fallback — or path-count overflow): runs through
    /// [`run_one_with`], exactly like the unbatched campaign.
    Solo(u32),
}

/// [`run_campaign`] through the shape-batched solver. Outcomes are **byte
/// identical** to [`run_campaign`] with the same arguments at any thread
/// count (property-tested in `tests/batch_props.rs`); only the work
/// schedule differs:
///
/// * experiments are **routed by shape** — the canonical shape signature
///   (communication model + per-stage replica counts) of each seed is
///   recovered statically by replaying the replica RNG prefix
///   ([`crate::sampler::sample_replica_counts`]), so same-shape
///   experiments land in shared chunks without sampling an instance;
/// * each chunk amortizes **one** TPN build, **one** ratio-graph/CSR
///   build and **one** Tarjan condensation across its instances, and the
///   batched Howard kernel streams every instance's cost plane per pass
///   over the shared structure ([`repwf_core::batch::ShapeBatchSolver`]);
/// * over-cap and degenerate seeds fall back to the per-instance path
///   ([`run_one_with`]), unchanged.
///
/// The overlap model solves through the polynomial algorithm (no TPN to
/// batch), so it delegates to the unbatched runner wholesale.
pub fn run_campaign_batched(
    cfg: &GenConfig,
    model: CommModel,
    count: usize,
    seed_base: u64,
    threads: usize,
    cap: usize,
) -> CampaignResult {
    run_campaign_batched_with(cfg, model, count, seed_base, threads, cap, None)
}

/// [`run_campaign_batched`] with an optional streaming progress callback
/// (one [`Progress`] snapshot per finished experiment, like
/// [`run_campaign_with`] — batched chunks report each member as the chunk
/// completes).
pub fn run_campaign_batched_with(
    cfg: &GenConfig,
    model: CommModel,
    count: usize,
    seed_base: u64,
    threads: usize,
    cap: usize,
    progress: Option<ProgressFn<'_>>,
) -> CampaignResult {
    run_campaign_workflow_batched_with(
        cfg,
        &Topology::chain(cfg.stages),
        model,
        count,
        seed_base,
        threads,
        cap,
        progress,
    )
}

/// [`run_campaign_batched`] on an arbitrary series-parallel [`Topology`].
/// Static shape routing is unchanged: the topology is fixed across the
/// campaign, so the TPN shape of a seed is still recovered from its
/// replica-count RNG prefix alone (the grid simply has `n + E` columns
/// instead of the chain's `2n − 1`).
pub fn run_campaign_workflow_batched(
    cfg: &GenConfig,
    topo: &Topology,
    model: CommModel,
    count: usize,
    seed_base: u64,
    threads: usize,
    cap: usize,
) -> CampaignResult {
    run_campaign_workflow_batched_with(cfg, topo, model, count, seed_base, threads, cap, None)
}

/// [`run_campaign_workflow_batched`] with an optional streaming progress
/// callback.
#[allow(clippy::too_many_arguments)]
pub fn run_campaign_workflow_batched_with(
    cfg: &GenConfig,
    topo: &Topology,
    model: CommModel,
    count: usize,
    seed_base: u64,
    threads: usize,
    cap: usize,
    progress: Option<ProgressFn<'_>>,
) -> CampaignResult {
    if model == CommModel::Overlap || count == 0 {
        return run_campaign_workflow_with(cfg, topo, model, count, seed_base, threads, cap, progress);
    }

    // --- static shape routing: replay only the replica RNG prefix ---
    let cols = (topo.stages + topo.num_edges()) as u128;
    let mut tasks: Vec<BatchTask> = Vec::new();
    let mut group_of: HashMap<Vec<usize>, usize> = HashMap::new();
    // (transitions, members) per shape, in first-occurrence order.
    let mut groups: Vec<(u128, Vec<u32>)> = Vec::new();
    for k in 0..count {
        let mut rng = StdRng::seed_from_u64(seed_base + k as u64);
        let replicas = sample_replica_counts(cfg, &mut rng);
        let transitions = num_paths(&replicas).and_then(|m| m.checked_mul(cols));
        match transitions {
            Some(t) if t <= cap as u128 => {
                let g = *group_of.entry(replicas).or_insert_with(|| {
                    groups.push((t, Vec::new()));
                    groups.len() - 1
                });
                groups[g].1.push(k as u32);
            }
            _ => tasks.push(BatchTask::Solo(k as u32)),
        }
    }
    repwf_obs::counter_add(repwf_obs::CounterId::ShapeGroups, groups.len() as u64);
    repwf_obs::counter_add(repwf_obs::CounterId::SoloExperiments, tasks.len() as u64);
    let mut batch_chunks = 0u64;
    let mut batched_experiments = 0u64;
    for (transitions, members) in groups {
        let chunk = (BATCH_TRANSITION_BUDGET / transitions.max(1)).clamp(1, MAX_BATCH as u128);
        for c in members.chunks(chunk as usize) {
            batch_chunks += 1;
            batched_experiments += c.len() as u64;
            tasks.push(BatchTask::Batch(c.to_vec()));
        }
    }
    repwf_obs::counter_add(repwf_obs::CounterId::BatchChunks, batch_chunks);
    repwf_obs::counter_add(repwf_obs::CounterId::BatchedExperiments, batched_experiments);

    // Streaming aggregates, exactly as in `run_campaign_with`.
    let done = AtomicUsize::new(0);
    let no_critical = AtomicUsize::new(0);
    let simulated = AtomicUsize::new(0);
    let max_gap_bits = AtomicU64::new(0f64.to_bits());
    let record = |outcome: &ExperimentOutcome| {
        if let Some(callback) = progress {
            no_critical.fetch_add(
                usize::from(outcome.no_critical_resource(GAP_REL_TOL)),
                Ordering::SeqCst,
            );
            simulated.fetch_add(
                usize::from(outcome.resolution == Resolution::Simulated),
                Ordering::SeqCst,
            );
            agg::fold_max_gap(&max_gap_bits, outcome.gap());
            let d = done.fetch_add(1, Ordering::SeqCst) + 1;
            callback(Progress {
                done: d,
                total: count,
                no_critical: no_critical.load(Ordering::SeqCst),
                simulated: simulated.load(Ordering::SeqCst),
                max_gap: f64::from_bits(max_gap_bits.load(Ordering::SeqCst)),
            });
        }
    };

    let results = repwf_par::par_map_init(
        threads,
        tasks.len(),
        || (engine_for_cap(cap), ShapeBatchSolver::new(cap)),
        |(engine, solver), t| match &tasks[t] {
            BatchTask::Solo(k) => {
                let _span = repwf_obs::span!(Experiment);
                let outcome =
                    run_one_workflow_with(cfg, topo, model, seed_base + u64::from(*k), engine);
                record(&outcome);
                vec![(*k, outcome)]
            }
            BatchTask::Batch(ks) => {
                let _span = repwf_obs::span!(Experiment);
                // (seed index, M_ct, path count) per staged instance.
                let mut metas: Vec<(u32, f64, u128)> = Vec::with_capacity(ks.len());
                for (q, &k) in ks.iter().enumerate() {
                    let seed = seed_base + u64::from(k);
                    let mut rng = StdRng::seed_from_u64(seed);
                    let (pipeline, platform, mapping) = sample_workflow_parts(cfg, topo, &mut rng);
                    let view = InstanceView::new(&pipeline, &platform, &mapping)
                        .expect("generator produces valid instances");
                    if q == 0 {
                        solver
                            .begin(view, model, ks.len())
                            .expect("routed shapes fit the size cap");
                    }
                    let (mct, _) = max_cycle_time_view(view, model);
                    let m = mapping_num_paths(&mapping)
                        .expect("routed shapes have a path count");
                    solver.stage(q, view);
                    metas.push((k, mct, m));
                }
                let solved = solver.solve();
                metas
                    .into_iter()
                    .zip(solved)
                    .map(|((k, mct, m), res)| {
                        let seed = seed_base + u64::from(k);
                        let sol = res
                            .unwrap_or_else(|e| panic!("experiment {seed} failed: {e}"))
                            .expect("mapping TPNs always contain circuits");
                        let outcome = ExperimentOutcome {
                            seed,
                            mct,
                            period: sol.period / m as f64,
                            resolution: Resolution::Exact,
                            num_paths: m,
                        };
                        record(&outcome);
                        (k, outcome)
                    })
                    .collect()
            }
        },
    );

    // Scatter the chunked results back to seed order.
    let mut outcomes: Vec<Option<ExperimentOutcome>> = vec![None; count];
    for chunk in results {
        for (k, outcome) in chunk {
            outcomes[k as usize] = Some(outcome);
        }
    }
    CampaignResult {
        outcomes: outcomes
            .into_iter()
            .map(|o| o.expect("every seed is scheduled exactly once"))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::Range;
    use std::sync::Mutex;

    fn small_cfg() -> GenConfig {
        GenConfig {
            stages: 2,
            procs: 7,
            comp: Range::constant(1.0),
            comm: Range::new(5.0, 10.0),
        }
    }

    #[test]
    fn outcomes_respect_lower_bound() {
        let res = run_campaign(&small_cfg(), CommModel::Overlap, 20, 100, 4, 200_000);
        assert_eq!(res.outcomes.len(), 20);
        for o in &res.outcomes {
            assert!(
                o.period >= o.mct - 1e-9 * o.mct,
                "seed {}: {} < {}",
                o.seed,
                o.period,
                o.mct
            );
        }
    }

    #[test]
    fn reused_engine_matches_fresh_engines() {
        // The per-worker engine only contributes buffers: running many
        // seeds through one engine must reproduce fresh-engine runs bit
        // for bit.
        let cfg = small_cfg();
        let mut engine = engine_for_cap(200_000);
        for seed in 300..316 {
            let reused = run_one_with(&cfg, CommModel::Strict, seed, &mut engine);
            let fresh = run_one(&cfg, CommModel::Strict, seed, 200_000);
            assert_eq!(reused, fresh, "seed {seed}");
        }
    }

    #[test]
    fn deterministic_given_seeds() {
        let a = run_campaign(&small_cfg(), CommModel::Strict, 8, 7, 4, 200_000);
        let b = run_campaign(&small_cfg(), CommModel::Strict, 8, 7, 2, 200_000);
        for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
            assert_eq!(x.seed, y.seed);
            assert!((x.period - y.period).abs() < 1e-12);
        }
    }

    #[test]
    fn bit_identical_across_thread_counts() {
        // Stronger than the tolerance check above: the whole result must be
        // byte-for-byte equal for every thread count (the work-stealing
        // schedule must never leak into the numbers).
        let reference = run_campaign(&small_cfg(), CommModel::Strict, 24, 900, 1, 200_000);
        for threads in [2, 3, 4, 16] {
            let other = run_campaign(&small_cfg(), CommModel::Strict, 24, 900, threads, 200_000);
            assert_eq!(reference, other, "threads={threads}");
        }
    }

    fn outcome(mct: f64, period: f64) -> ExperimentOutcome {
        ExperimentOutcome { seed: 0, mct, period, resolution: Resolution::Simulated, num_paths: 4 }
    }

    #[test]
    fn period_below_mct_clamps_gap_through_the_aggregates() {
        // Regression: a simulator-fallback period just below M_ct (or
        // float noise at period ≈ M_ct) must aggregate as gap 0, not as a
        // negative bit pattern that out-ranks every real maximum.
        let below = outcome(1295.0 / 6.0, 1295.0 / 6.0 - 1e-9);
        assert_eq!(below.gap(), 0.0);
        assert!(!below.no_critical_resource(GAP_REL_TOL));
        let res = CampaignResult { outcomes: vec![below, outcome(100.0, 100.5)] };
        assert_eq!(res.count_no_critical(GAP_REL_TOL), 1);
        assert!((res.max_gap() - 0.005).abs() < 1e-12);

        // Degenerate draws must not poison the aggregates either.
        assert_eq!(outcome(100.0, f64::NAN).gap(), 0.0);
        let degenerate = CampaignResult {
            outcomes: vec![outcome(100.0, f64::INFINITY), outcome(100.0, 99.0)],
        };
        assert_eq!(degenerate.max_gap(), 0.0, "non-finite gaps are skipped");
    }

    #[test]
    fn streaming_maximum_rejects_degenerate_gaps() {
        let bits = AtomicU64::new(0f64.to_bits());
        for g in [-0.5, f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.0] {
            agg::fold_max_gap(&bits, g);
        }
        assert_eq!(f64::from_bits(bits.load(Ordering::SeqCst)), 0.0);
        agg::fold_max_gap(&bits, 0.25);
        for g in [-1.0, f64::NAN, 0.1] {
            agg::fold_max_gap(&bits, g);
        }
        assert_eq!(f64::from_bits(bits.load(Ordering::SeqCst)), 0.25);
    }

    #[test]
    fn accum_matches_result_aggregates_and_merges_associatively() {
        let res = run_campaign(&small_cfg(), CommModel::Strict, 30, 40, 4, 200_000);
        let whole = res.accum();
        assert_eq!(whole.done, res.outcomes.len());
        assert_eq!(whole.no_critical, res.count_no_critical(GAP_REL_TOL));
        assert_eq!(whole.simulated, res.count_simulated());
        assert_eq!(whole.max_gap().to_bits(), res.max_gap().to_bits());

        // Any split of the outcome sequence, merged in any grouping, must
        // reproduce the whole-campaign accumulator exactly.
        for split in [1, 7, 15, 29] {
            for second_split in [split + 1, res.outcomes.len()] {
                let mut left = CampaignAccum::new();
                res.outcomes[..split].iter().for_each(|o| left.push(o));
                let mut mid = CampaignAccum::new();
                res.outcomes[split..second_split].iter().for_each(|o| mid.push(o));
                let mut right = CampaignAccum::new();
                res.outcomes[second_split..].iter().for_each(|o| right.push(o));

                let mut left_first = left;
                left_first.merge(&mid);
                left_first.merge(&right);
                let mut right_first = mid;
                right_first.merge(&right);
                let mut outer = left;
                outer.merge(&right_first);
                assert_eq!(left_first, whole, "split {split}/{second_split}");
                assert_eq!(outer, whole, "split {split}/{second_split}");
            }
        }

        // Degenerate outcomes stay excluded from the merged maximum.
        let mut degenerate = CampaignAccum::new();
        degenerate.push(&outcome(100.0, f64::INFINITY));
        assert_eq!(degenerate.max_gap(), 0.0);
        let mut merged = whole;
        merged.merge(&degenerate);
        assert_eq!(merged.max_gap().to_bits(), whole.max_gap().to_bits());
    }

    #[test]
    fn streamed_outcomes_arrive_in_seed_order_and_match_run_campaign() {
        let reference = run_campaign(&small_cfg(), CommModel::Strict, 18, 70, 1, 200_000);
        for threads in [1, 3, 8] {
            let seen: Mutex<Vec<ExperimentOutcome>> = Mutex::new(Vec::new());
            let res = run_campaign_streamed(
                &small_cfg(),
                CommModel::Strict,
                18,
                70,
                threads,
                200_000,
                &|o| seen.lock().unwrap().push(o.clone()),
            );
            assert_eq!(res, reference, "threads={threads}");
            let seen = seen.into_inner().unwrap();
            assert_eq!(seen, reference.outcomes, "sink must stream in seed order");
        }
    }

    #[test]
    fn gap_is_nonnegative_and_consistent() {
        let res = run_campaign(&small_cfg(), CommModel::Strict, 10, 55, 4, 200_000);
        let n = res.count_no_critical(1e-7);
        assert!(n <= res.outcomes.len());
        if n > 0 {
            assert!(res.max_gap() > 0.0);
        }
    }

    #[test]
    fn simulation_fallback_engages_on_tiny_cap() {
        let cfg = GenConfig {
            stages: 3,
            procs: 9,
            comp: Range::new(5.0, 15.0),
            comm: Range::new(5.0, 15.0),
        };
        // Cap of 1 transition forces the simulator for any replicated draw.
        let res = run_campaign(&cfg, CommModel::Strict, 6, 3, 2, 1);
        assert!(res.count_simulated() > 0);
        for o in &res.outcomes {
            assert!(o.period >= o.mct - 1e-6 * o.mct);
        }
    }

    #[test]
    fn progress_streams_to_completion() {
        let seen: Mutex<Vec<Progress>> = Mutex::new(Vec::new());
        let res = run_campaign_with(
            &small_cfg(),
            CommModel::Overlap,
            12,
            500,
            3,
            200_000,
            Some(&|p| seen.lock().unwrap().push(p)),
        );
        let seen = seen.into_inner().unwrap();
        assert_eq!(seen.len(), 12, "one snapshot per experiment");
        let last = seen.iter().max_by_key(|p| p.done).unwrap();
        assert_eq!(last.done, 12);
        assert_eq!(last.total, 12);
        assert_eq!(last.no_critical, res.count_no_critical(GAP_REL_TOL));
        assert_eq!(last.simulated, res.count_simulated());
        assert!((last.max_gap - res.max_gap()).abs() < 1e-15);
    }

    #[test]
    fn accum_progress_matches_streaming_snapshots() {
        // A checkpoint-derived snapshot (accumulator over a prefix of the
        // outcomes) must equal the Progress the streaming callback would
        // have reported at the same point — one reporting path for live
        // runs and resumed/partial ones.
        let res = run_campaign(&small_cfg(), CommModel::Strict, 20, 310, 4, 200_000);
        let mut accum = CampaignAccum::new();
        for (k, o) in res.outcomes.iter().enumerate() {
            accum.push(o);
            let p = accum.progress(res.outcomes.len());
            assert_eq!(p.done, k + 1);
            assert_eq!(p.total, 20);
            assert_eq!(p.no_critical, accum.no_critical);
            assert_eq!(p.simulated, accum.simulated);
            assert_eq!(p.max_gap.to_bits(), accum.max_gap().to_bits());
        }
        assert_eq!(accum.progress(20), res.accum().progress(20));
    }

    #[test]
    fn batched_campaign_is_byte_identical_across_thread_counts() {
        // The tentpole contract: shape-batched scheduling must never leak
        // into the numbers — same bytes as the unbatched campaign, at any
        // thread count, for both models.
        for model in [CommModel::Strict, CommModel::Overlap] {
            let reference = run_campaign(&small_cfg(), model, 24, 900, 1, 200_000);
            for threads in [1, 2, 4] {
                let batched = run_campaign_batched(&small_cfg(), model, 24, 900, threads, 200_000);
                assert_eq!(
                    batched.outcomes.len(),
                    reference.outcomes.len(),
                    "{model} threads={threads}"
                );
                for (b, r) in batched.outcomes.iter().zip(&reference.outcomes) {
                    assert_eq!(b.seed, r.seed, "{model} threads={threads}");
                    assert_eq!(b.resolution, r.resolution, "{model} seed {}", r.seed);
                    assert_eq!(b.num_paths, r.num_paths, "{model} seed {}", r.seed);
                    assert_eq!(
                        b.mct.to_bits(),
                        r.mct.to_bits(),
                        "{model} seed {} mct",
                        r.seed
                    );
                    assert_eq!(
                        b.period.to_bits(),
                        r.period.to_bits(),
                        "{model} seed {} period",
                        r.seed
                    );
                }
            }
        }
    }

    #[test]
    fn batched_campaign_routes_simulator_era_seeds_through_the_solo_path() {
        // A tiny cap forces some draws over the size limit: the batched
        // runner must hand exactly those to the per-instance path
        // (simulator fallback) and still reproduce the unbatched bytes.
        let cfg = GenConfig {
            stages: 3,
            procs: 9,
            comp: Range::new(5.0, 15.0),
            comm: Range::new(5.0, 15.0),
        };
        // Cap of 60 transitions: draws with lcm ≤ 12 batch, the rest solo.
        let reference = run_campaign(&cfg, CommModel::Strict, 12, 3, 1, 60);
        assert!(reference.count_simulated() > 0, "cap must force some fallbacks");
        assert!(
            reference.count_simulated() < 12,
            "cap must leave some exact experiments"
        );
        for threads in [1, 3] {
            let batched = run_campaign_batched(&cfg, CommModel::Strict, 12, 3, threads, 60);
            assert_eq!(batched, reference, "threads={threads}");
        }
    }

    #[test]
    fn batched_progress_streams_one_snapshot_per_experiment() {
        let seen: Mutex<Vec<Progress>> = Mutex::new(Vec::new());
        let res = run_campaign_batched_with(
            &small_cfg(),
            CommModel::Strict,
            12,
            500,
            3,
            200_000,
            Some(&|p| seen.lock().unwrap().push(p)),
        );
        let seen = seen.into_inner().unwrap();
        assert_eq!(seen.len(), 12, "one snapshot per experiment");
        let last = seen.iter().max_by_key(|p| p.done).unwrap();
        assert_eq!(last.done, 12);
        assert_eq!(last.total, 12);
        assert_eq!(last.no_critical, res.count_no_critical(GAP_REL_TOL));
        assert_eq!(last.simulated, res.count_simulated());
        assert!((last.max_gap - res.max_gap()).abs() < 1e-15);
    }

    #[test]
    fn workflow_campaign_deterministic_and_batched_matches_unbatched() {
        // Fork/join campaign: batched and unbatched runners must agree
        // byte-for-byte at any thread count, and every outcome respects
        // the M_ct lower bound.
        let cfg = GenConfig {
            stages: 4,
            procs: 9,
            comp: Range::new(5.0, 15.0),
            comm: Range::new(5.0, 15.0),
        };
        let topo = Topology::fork_join(2);
        assert_eq!(topo.stages, 4);
        let reference =
            run_campaign_workflow(&cfg, &topo, CommModel::Strict, 16, 40, 1, 200_000);
        for o in &reference.outcomes {
            assert!(o.period >= o.mct - 1e-9 * o.mct, "seed {}", o.seed);
        }
        for threads in [2, 4] {
            let other = run_campaign_workflow(&cfg, &topo, CommModel::Strict, 16, 40, threads, 200_000);
            assert_eq!(other, reference, "threads={threads}");
        }
        for threads in [1, 3] {
            let batched = run_campaign_workflow_batched(
                &cfg, &topo, CommModel::Strict, 16, 40, threads, 200_000,
            );
            assert_eq!(batched, reference, "batched threads={threads}");
        }
    }

    #[test]
    fn chain_topology_campaign_is_byte_identical_to_legacy() {
        // The non-negotiable invariant at the campaign level: running the
        // chain topology through the workflow entry points reproduces the
        // legacy chain campaign exactly.
        let cfg = small_cfg();
        let topo = Topology::chain(cfg.stages);
        assert!(topo.is_chain());
        for model in [CommModel::Strict, CommModel::Overlap] {
            let legacy = run_campaign(&cfg, model, 12, 77, 2, 200_000);
            let wf = run_campaign_workflow(&cfg, &topo, model, 12, 77, 2, 200_000);
            assert_eq!(legacy, wf, "{model}");
        }
    }

    #[test]
    fn shape_stats_count_distinct_replica_draws() {
        let (distinct, hit_rate) = shape_stats(&small_cfg(), 24, 900);
        assert!((1..=24).contains(&distinct));
        // 2 stages / 7 procs: only 6 possible shapes, so 24 draws repeat.
        assert!(distinct <= 6);
        assert!((hit_rate - (24 - distinct) as f64 / 24.0).abs() < 1e-15);
        assert_eq!(shape_stats(&small_cfg(), 0, 900), (0, 0.0));
        // Purely spec-derived: identical on every call.
        assert_eq!(shape_stats(&small_cfg(), 24, 900), (distinct, hit_rate));
    }

    #[test]
    fn progress_fraction_and_summary_cover_partial_and_degenerate_cases() {
        let partial = Progress { done: 3, total: 4, no_critical: 1, simulated: 2, max_gap: 0.015 };
        assert!((partial.fraction() - 0.75).abs() < 1e-15);
        assert_eq!(
            partial.summary(),
            "3/4 experiments (75.0%), 1 no-critical, 2 simulated, max gap 1.500%"
        );

        let complete = Progress { done: 4, total: 4, no_critical: 0, simulated: 0, max_gap: 0.0 };
        assert!((complete.fraction() - 1.0).abs() < 1e-15);
        // No simulator fallback: the summary does not mention it at all.
        assert_eq!(complete.summary(), "4/4 experiments, 0 no-critical, max gap 0.000%");

        let empty = Progress { done: 0, total: 0, no_critical: 0, simulated: 0, max_gap: 0.0 };
        assert_eq!(empty.fraction(), 1.0, "an empty campaign counts as done");
    }

    #[test]
    fn format_pct_covers_zero_records_and_degraded_edges() {
        // 0 records of a non-empty campaign (every unit failed / nothing
        // checkpointed yet): 0.0%, never NaN.
        assert_eq!(format_pct(0, 8), "0.0%");
        // Empty campaign counts as done, matching `Progress::fraction`.
        assert_eq!(format_pct(0, 0), "100.0%");
        assert_eq!(format_pct(3, 4), "75.0%");
        assert_eq!(format_pct(4, 4), "100.0%");
        // `Progress::summary` routes through the same helper.
        let p = Progress { done: 0, total: 8, no_critical: 0, simulated: 0, max_gap: 0.0 };
        assert_eq!(p.summary(), "0/8 experiments (0.0%), 0 no-critical, max gap 0.000%");
    }

    #[test]
    fn structural_stats_replay_the_batched_routing() {
        let cfg = small_cfg();
        // Overlap: polynomial path, no structural work at all.
        assert_eq!(
            structural_stats(&cfg, CommModel::Overlap, 24, 900, 200_000),
            StructuralStats::default()
        );
        assert_eq!(
            structural_stats(&cfg, CommModel::Strict, 0, 900, 200_000),
            StructuralStats::default()
        );

        let stats = structural_stats(&cfg, CommModel::Strict, 24, 900, 200_000);
        let (distinct, _) = shape_stats(&cfg, 24, 900);
        // One structural phase per chunk: at least one chunk per in-cap
        // shape, at most one per experiment; Tarjan rides every CSR build.
        assert_eq!(stats.tarjan_runs, stats.csr_builds);
        assert!(stats.csr_builds >= distinct as u64);
        assert!(stats.csr_builds <= 24);
        assert_eq!(stats.patched_solves, 0, "batched schedule never patches");
        // Purely spec-derived: identical on every call.
        assert_eq!(structural_stats(&cfg, CommModel::Strict, 24, 900, 200_000), stats);

        // A cap below every shape routes everything solo (simulator): no
        // structural work is derived.
        let all_solo = structural_stats(&cfg, CommModel::Strict, 24, 900, 1);
        assert_eq!(all_solo, StructuralStats::default());
    }
}
