//! Parallel experiment campaigns: period vs. `M_ct` on random instances.
//!
//! Each experiment draws an instance, computes the critical-resource bound
//! `M_ct` and the actual period, and records whether a critical resource
//! exists (`P̂ = M_ct`) or not (`P̂ > M_ct`, the paper's surprising regime).
//! Work is distributed over threads with crossbeam's scoped spawns; results
//! are merged under a `parking_lot` mutex.

use crate::sampler::{sample_instance, GenConfig};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use repwf_core::model::CommModel;
use repwf_core::period::{compute_period_with, Method, PeriodError};
use repwf_core::tpn_build::{BuildError, BuildOptions};
use repwf_sim::{simulate, SimOptions};
use std::sync::atomic::{AtomicU64, Ordering};

/// How one experiment was resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resolution {
    /// Exact analysis (polynomial algorithm or full TPN).
    Exact,
    /// The TPN exceeded the size cap; the period was estimated with the
    /// discrete-event simulator.
    Simulated,
}

/// Outcome of one experiment.
#[derive(Debug, Clone)]
pub struct ExperimentOutcome {
    /// Seed used to draw the instance (reproducible).
    pub seed: u64,
    /// Critical-resource bound.
    pub mct: f64,
    /// Actual per-data-set period.
    pub period: f64,
    /// Resolution method.
    pub resolution: Resolution,
    /// Number of TPN rows `m` of the instance.
    pub num_paths: u128,
}

impl ExperimentOutcome {
    /// Relative gap `(P̂ − M_ct)/M_ct` (0 when a critical resource exists).
    pub fn gap(&self) -> f64 {
        ((self.period - self.mct) / self.mct).max(0.0)
    }

    /// True iff no resource is critical: the period strictly exceeds `M_ct`.
    pub fn no_critical_resource(&self, rel_tol: f64) -> bool {
        self.gap() > rel_tol
    }
}

/// Aggregated campaign result.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// All outcomes (one per experiment), in seed order.
    pub outcomes: Vec<ExperimentOutcome>,
}

impl CampaignResult {
    /// Number of experiments without a critical resource.
    pub fn count_no_critical(&self, rel_tol: f64) -> usize {
        self.outcomes.iter().filter(|o| o.no_critical_resource(rel_tol)).count()
    }

    /// Maximum relative gap over all experiments.
    pub fn max_gap(&self) -> f64 {
        self.outcomes.iter().map(ExperimentOutcome::gap).fold(0.0, f64::max)
    }

    /// Number of experiments resolved by simulation fallback.
    pub fn count_simulated(&self) -> usize {
        self.outcomes.iter().filter(|o| o.resolution == Resolution::Simulated).count()
    }
}

/// Runs one experiment (public for reuse by benches/tests).
pub fn run_one(cfg: &GenConfig, model: CommModel, seed: u64, cap: usize) -> ExperimentOutcome {
    let mut rng = StdRng::seed_from_u64(seed);
    let inst = sample_instance(cfg, &mut rng);
    let opts = BuildOptions { labels: false, max_transitions: cap };
    let method = match model {
        CommModel::Overlap => Method::Polynomial,
        CommModel::Strict => Method::FullTpn,
    };
    match compute_period_with(&inst, model, method, &opts) {
        Ok(report) => ExperimentOutcome {
            seed,
            mct: report.mct,
            period: report.period,
            resolution: Resolution::Exact,
            num_paths: report.num_paths,
        },
        Err(PeriodError::Build(BuildError::TooLarge { m, .. })) => {
            // Simulator fallback: long enough to pass the transient.
            let (mct, _) = repwf_core::cycle_time::max_cycle_time(&inst, model);
            let data_sets = 20_000u64;
            let sim = simulate(&inst, model, &SimOptions { data_sets, record_ops: false });
            ExperimentOutcome {
                seed,
                mct,
                period: sim.exact_period(1e-9).unwrap_or_else(|| sim.period_estimate()),
                resolution: Resolution::Simulated,
                num_paths: m,
            }
        }
        Err(e) => panic!("experiment {seed} failed: {e}"),
    }
}

/// Runs `count` experiments for a configuration in parallel over `threads`
/// workers (seeds `seed_base..seed_base+count`).
pub fn run_campaign(
    cfg: &GenConfig,
    model: CommModel,
    count: usize,
    seed_base: u64,
    threads: usize,
    cap: usize,
) -> CampaignResult {
    let next = AtomicU64::new(0);
    let results: Mutex<Vec<Option<ExperimentOutcome>>> = Mutex::new(vec![None; count]);
    crossbeam::scope(|scope| {
        for _ in 0..threads.max(1) {
            scope.spawn(|_| loop {
                let k = next.fetch_add(1, Ordering::Relaxed);
                if k >= count as u64 {
                    break;
                }
                let outcome = run_one(cfg, model, seed_base + k, cap);
                results.lock()[k as usize] = Some(outcome);
            });
        }
    })
    .expect("campaign worker panicked");
    let outcomes = results
        .into_inner()
        .into_iter()
        .map(|o| o.expect("all experiments completed"))
        .collect();
    CampaignResult { outcomes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::Range;

    fn small_cfg() -> GenConfig {
        GenConfig { stages: 2, procs: 7, comp: Range::constant(1.0), comm: Range::new(5.0, 10.0) }
    }

    #[test]
    fn outcomes_respect_lower_bound() {
        let res = run_campaign(&small_cfg(), CommModel::Overlap, 20, 100, 4, 200_000);
        assert_eq!(res.outcomes.len(), 20);
        for o in &res.outcomes {
            assert!(o.period >= o.mct - 1e-9 * o.mct, "seed {}: {} < {}", o.seed, o.period, o.mct);
        }
    }

    #[test]
    fn deterministic_given_seeds() {
        let a = run_campaign(&small_cfg(), CommModel::Strict, 8, 7, 4, 200_000);
        let b = run_campaign(&small_cfg(), CommModel::Strict, 8, 7, 2, 200_000);
        for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
            assert_eq!(x.seed, y.seed);
            assert!((x.period - y.period).abs() < 1e-12);
        }
    }

    #[test]
    fn gap_is_nonnegative_and_consistent() {
        let res = run_campaign(&small_cfg(), CommModel::Strict, 10, 55, 4, 200_000);
        let n = res.count_no_critical(1e-7);
        assert!(n <= res.outcomes.len());
        if n > 0 {
            assert!(res.max_gap() > 0.0);
        }
    }

    #[test]
    fn simulation_fallback_engages_on_tiny_cap() {
        let cfg = GenConfig {
            stages: 3,
            procs: 9,
            comp: Range::new(5.0, 15.0),
            comm: Range::new(5.0, 15.0),
        };
        // Cap of 1 transition forces the simulator for any replicated draw.
        let res = run_campaign(&cfg, CommModel::Strict, 6, 3, 2, 1);
        assert!(res.count_simulated() > 0);
        for o in &res.outcomes {
            assert!(o.period >= o.mct - 1e-6 * o.mct);
        }
    }
}
