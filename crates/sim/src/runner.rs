//! The data-set-level earliest-start simulator.

use repwf_core::model::{CommModel, Instance};

/// Which physical (sub-)resource an operation occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Resource {
    /// A processor's input port (overlap model only).
    InPort(usize),
    /// A processor's compute unit (overlap), or the whole processor (strict).
    Cpu(usize),
    /// A processor's output port (overlap model only).
    OutPort(usize),
}

impl Resource {
    /// The processor the resource belongs to.
    pub fn proc(&self) -> usize {
        match *self {
            Resource::InPort(u) | Resource::Cpu(u) | Resource::OutPort(u) => u,
        }
    }
}

/// Kind of simulated operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Computation of a stage.
    Compute {
        /// the stage
        stage: usize,
    },
    /// Transfer of file `F_file` between two processors.
    Transfer {
        /// index of the transferred file (= workflow edge id)
        file: usize,
        /// sending processor
        from: usize,
        /// receiving processor
        to: usize,
    },
}

/// One scheduled operation (recorded only when
/// [`SimOptions::record_ops`] is set).
#[derive(Debug, Clone, PartialEq)]
pub struct Op {
    /// The data set the operation belongs to.
    pub data_set: u64,
    /// What the operation is.
    pub kind: OpKind,
    /// Start time.
    pub start: f64,
    /// End time.
    pub end: f64,
}

/// Simulation options.
#[derive(Debug, Clone)]
pub struct SimOptions {
    /// Number of data sets to push through the system.
    pub data_sets: u64,
    /// Record the full operation log (for Gantt charts). Memory is
    /// `O(data_sets · stages)` when set.
    pub record_ops: bool,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions { data_sets: 2000, record_ops: false }
    }
}

/// Simulation outcome.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Completion time of every data set (completions of different replicas
    /// may land out of order).
    pub completion: Vec<f64>,
    /// Operation log (empty unless requested).
    pub ops: Vec<Op>,
    /// Number of distinct paths `m` used for exact-periodicity windows
    /// (clamped to 1 when `lcm` dwarfs the simulated horizon).
    pub window: u64,
    /// Replication factor of the last stage (completion classes).
    pub m_last: usize,
}

impl SimResult {
    /// Steady-state **sustainable** per-data-set period.
    ///
    /// With unbounded buffers the simulated system free-runs: when the
    /// round-robin structure decouples into independent chains (e.g.
    /// `gcd(m_i, m_{i+1}) > 1` components), fast chains run ahead of slow
    /// ones and the raw completion rate overestimates what a clocked input
    /// stream can sustain. The paper's period is the *sustainable* one —
    /// the rate of the slowest chain — so the estimator measures the
    /// asymptotic completion slope of each last-stage replica (data sets
    /// `d ≡ r (mod m_last)` all complete on replica `r`) and reports the
    /// worst, expressed per data set.
    pub fn period_estimate(&self) -> f64 {
        sustainable_period(&self.completion, self.m_last)
    }

    /// Checks exact periodicity with the natural cyclicity (`window` data
    /// sets): `C(d + w) − C(d)` constant over the tail. Returns the exact
    /// per-data-set period if the regime is reached.
    pub fn exact_period(&self, rel_tol: f64) -> Option<f64> {
        let w = self.window.max(1) as usize;
        let d = self.completion.len();
        if d < 3 * w + 2 {
            return None;
        }
        let mut value: Option<f64> = None;
        for k in (d - 2 * w - 1)..(d - w) {
            let inc = (self.completion[k + w] - self.completion[k]) / w as f64;
            match value {
                None => value = Some(inc),
                Some(v) if (v - inc).abs() <= rel_tol * v.abs().max(1.0) => {}
                _ => return None,
            }
        }
        value
    }
}

/// [`SimResult::period_estimate`] over a raw completion-time slice: the
/// worst asymptotic completion slope over the `m_last` last-stage replica
/// classes. Shared with the stochastic engine, whose per-worker scratch
/// path estimates the period without materializing a [`SimResult`].
pub fn sustainable_period(completion: &[f64], m_last: usize) -> f64 {
    let d = completion.len();
    let l = m_last.max(1);
    assert!(d >= 4 * l, "need at least 4 data sets per last-stage replica");
    let mut worst = 0.0f64;
    for r in 0..l {
        let hi = r + ((d - 1 - r) / l) * l;
        let steps = (hi - r) / l;
        // Slope over the last two thirds of the class, in class steps.
        let lo = r + (steps / 3) * l;
        let slope = (completion[hi] - completion[lo]) / (hi - lo) as f64;
        worst = worst.max(slope);
    }
    worst
}

/// Runs the simulation.
///
/// Stages are visited in topological (stage-id) order per data set; a stage
/// is ready once every in-edge transfer has landed. Under the overlap model
/// each edge owns its own send/receive port pair per replica — the one-port
/// discipline of the TPN, where a stage's distinct out-edges occupy distinct
/// port columns. On a linear chain this is the classic per-processor
/// three-clock recurrence, bit for bit.
pub fn simulate(inst: &Instance, model: CommModel, opts: &SimOptions) -> SimResult {
    let n = inst.num_stages();
    let p = inst.platform.num_procs();
    let wf = &inst.pipeline;
    let num_edges = wf.num_edges();
    let d_total = opts.data_sets;

    // Per-resource "free from" clocks: whole processors, plus (overlap
    // only) one send and one receive port per edge per replica.
    let mut cpu = vec![0.0f64; p];
    let mut outp: Vec<Vec<f64>> = (0..num_edges)
        .map(|e| vec![0.0f64; inst.mapping.replicas(wf.edge(e).0)])
        .collect();
    let mut inp: Vec<Vec<f64>> = (0..num_edges)
        .map(|e| vec![0.0f64; inst.mapping.replicas(wf.edge(e).1)])
        .collect();

    // Per-edge transfer-end times of the data set in flight. Every edge's
    // source precedes its destination, so a slot is always written before
    // it is read within one data set.
    let mut edge_end = vec![0.0f64; num_edges];

    let mut completion = Vec::with_capacity(d_total as usize);
    let mut ops = Vec::new();

    for d in 0..d_total {
        let mut finish = 0.0f64;
        for i in 0..n {
            let u = inst.proc_for(i, d);
            // --- computation of stage i on u ---
            let mut ready = 0.0f64;
            for &e in wf.in_edges(i) {
                ready = ready.max(edge_end[e]);
            }
            let ct = inst.comp_time(i, u);
            let start = ready.max(cpu[u]);
            let end = start + ct;
            cpu[u] = end;
            if opts.record_ops {
                ops.push(Op { data_set: d, kind: OpKind::Compute { stage: i }, start, end });
            }
            finish = end;
            // --- transfers along the out-edges, in edge order ---
            for &e in wf.out_edges(i) {
                let dst = wf.edge(e).1;
                let v = inst.proc_for(dst, d);
                let alpha = (d % inst.mapping.replicas(i) as u64) as usize;
                let beta = (d % inst.mapping.replicas(dst) as u64) as usize;
                let tt = inst.comm_time(e, u, v);
                let start = match model {
                    CommModel::Overlap => end.max(outp[e][alpha]).max(inp[e][beta]),
                    // Strict: the transfer holds both whole processors, so
                    // same-row sends serialize through `cpu[u]`.
                    CommModel::Strict => end.max(cpu[u]).max(cpu[v]),
                };
                let tend = start + tt;
                match model {
                    CommModel::Overlap => {
                        outp[e][alpha] = tend;
                        inp[e][beta] = tend;
                    }
                    CommModel::Strict => {
                        cpu[u] = tend;
                        cpu[v] = tend;
                    }
                }
                if opts.record_ops {
                    ops.push(Op {
                        data_set: d,
                        kind: OpKind::Transfer { file: e, from: u, to: v },
                        start,
                        end: tend,
                    });
                }
                edge_end[e] = tend;
            }
        }
        completion.push(finish);
    }

    let window = repwf_core::paths::instance_num_paths(inst)
        .map(|m| if m > d_total as u128 / 4 { 1 } else { m as u64 })
        .unwrap_or(1);
    let m_last = inst.mapping.replicas(n - 1);
    SimResult { completion, ops, window, m_last }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repwf_core::model::{Mapping, Pipeline, Platform};
    use repwf_core::period::{compute_period, Method};

    fn inst(replicas: &[usize], work: f64, file: f64) -> Instance {
        let n = replicas.len();
        let pipeline = Pipeline::new(vec![work; n], vec![file; n - 1]).unwrap();
        let p: usize = replicas.iter().sum();
        let platform = Platform::uniform(p, 1.0, 1.0);
        let mut next = 0;
        let assignment: Vec<Vec<usize>> = replicas
            .iter()
            .map(|&m| {
                let procs: Vec<usize> = (next..next + m).collect();
                next += m;
                procs
            })
            .collect();
        Instance::new(pipeline, platform, Mapping::new(assignment).unwrap()).unwrap()
    }

    #[test]
    fn single_stage_round_robin() {
        // 2 replicas, work 10: one completion every 5 in steady state.
        let i = inst(&[2], 10.0, 0.0);
        let r = simulate(&i, CommModel::Overlap, &SimOptions { data_sets: 100, record_ops: false });
        assert!((r.period_estimate() - 5.0).abs() < 1e-9);
        assert!((r.exact_period(1e-9).unwrap() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn matches_tpn_overlap() {
        let i = inst(&[2, 3], 5.0, 4.0);
        let analytic = compute_period(&i, CommModel::Overlap, Method::Polynomial).unwrap();
        let r = simulate(&i, CommModel::Overlap, &SimOptions { data_sets: 600, record_ops: false });
        let est = r.exact_period(1e-9).unwrap_or_else(|| r.period_estimate());
        assert!(
            (est - analytic.period).abs() < 1e-6,
            "sim {est} vs analytic {}",
            analytic.period
        );
    }

    #[test]
    fn matches_tpn_strict() {
        let i = inst(&[2, 3], 5.0, 4.0);
        let analytic = compute_period(&i, CommModel::Strict, Method::FullTpn).unwrap();
        let r = simulate(&i, CommModel::Strict, &SimOptions { data_sets: 600, record_ops: false });
        let est = r.exact_period(1e-9).unwrap_or_else(|| r.period_estimate());
        assert!(
            (est - analytic.period).abs() < 1e-6,
            "sim {est} vs analytic {}",
            analytic.period
        );
    }

    #[test]
    fn completions_monotone_per_replica() {
        // Completions of different replicas can legitimately land out of
        // order, but the data sets served by the SAME last-stage replica
        // (indices d, d + m_{n-1}, …) must complete in order.
        let i = inst(&[1, 2, 3], 3.0, 2.0);
        let m_last = 3;
        for model in [CommModel::Overlap, CommModel::Strict] {
            let r = simulate(&i, model, &SimOptions { data_sets: 200, record_ops: false });
            for d in 0..r.completion.len() - m_last {
                assert!(r.completion[d + m_last] >= r.completion[d] - 1e-12);
            }
        }
    }

    #[test]
    fn ops_recorded_and_disjoint_per_resource() {
        let i = inst(&[1, 2], 4.0, 3.0);
        let r = simulate(&i, CommModel::Overlap, &SimOptions { data_sets: 50, record_ops: true });
        assert_eq!(r.ops.len(), 50 * 3); // compute, transfer, compute per data set
        // CPU of proc 0 must never overlap itself.
        let mut cpu0: Vec<(f64, f64)> = r
            .ops
            .iter()
            .filter(|o| matches!(o.kind, OpKind::Compute { stage: 0 }))
            .map(|o| (o.start, o.end))
            .collect();
        cpu0.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for w in cpu0.windows(2) {
            assert!(w[1].0 >= w[0].1 - 1e-12, "CPU busy intervals overlap");
        }
    }

    #[test]
    fn strict_never_faster_than_overlap() {
        let i = inst(&[2, 2, 2], 6.0, 5.0);
        let ov = simulate(&i, CommModel::Overlap, &SimOptions { data_sets: 400, record_ops: false });
        let st = simulate(&i, CommModel::Strict, &SimOptions { data_sets: 400, record_ops: false });
        assert!(st.period_estimate() >= ov.period_estimate() - 1e-9);
    }

    #[test]
    fn diamond_matches_tpn_both_models() {
        // Fork/join: S0 → {S1, S2} → S3, middle stages replicated.
        let pipeline = Pipeline::from_edges(
            vec![4.0, 6.0, 5.0, 3.0],
            vec![(0, 1, 2.0), (0, 2, 3.0), (1, 3, 1.0), (2, 3, 2.0)],
        )
        .unwrap();
        let platform = Platform::uniform(6, 1.0, 1.0);
        let mapping = Mapping::new(vec![vec![0], vec![1, 2], vec![3, 4], vec![5]]).unwrap();
        let i = Instance::new(pipeline, platform, mapping).unwrap();
        for model in [CommModel::Overlap, CommModel::Strict] {
            let analytic = compute_period(&i, model, Method::FullTpn).unwrap();
            let r = simulate(&i, model, &SimOptions { data_sets: 600, record_ops: false });
            let est = r.exact_period(1e-9).unwrap_or_else(|| r.period_estimate());
            assert!(
                (est - analytic.period).abs() < 1e-6,
                "{model}: sim {est} vs analytic {}",
                analytic.period
            );
        }
    }

    #[test]
    fn period_at_least_mct() {
        let i = inst(&[3, 2], 7.0, 2.0);
        for model in [CommModel::Overlap, CommModel::Strict] {
            let (mct, _) = repwf_core::cycle_time::max_cycle_time(&i, model);
            let r = simulate(&i, model, &SimOptions { data_sets: 500, record_ops: false });
            assert!(r.period_estimate() >= mct - 1e-6);
        }
    }
}
