//! Gantt-chart extraction and rendering (paper Figures 7 and 12).
//!
//! The chart lays resources out as rows — `P0`, `P0 out`, `P1 in`, `P1`, …
//! exactly like the paper's figures — and operations as labelled bars.
//! Rendering targets are plain text (terminal) and standalone SVG.

use crate::runner::{Op, OpKind, Resource, SimResult};
use repwf_core::model::{CommModel, Instance};
use std::fmt::Write as _;

/// One bar of the chart.
#[derive(Debug, Clone, PartialEq)]
pub struct Bar {
    /// Row resource.
    pub resource: Resource,
    /// Data set the operation serves.
    pub data_set: u64,
    /// Start time.
    pub start: f64,
    /// End time.
    pub end: f64,
    /// Short label, e.g. `S1 (4)` or `F0 (7)`.
    pub label: String,
}

/// A Gantt chart: an ordered list of resource rows and their bars.
#[derive(Debug, Clone)]
pub struct Gantt {
    /// Rows in display order (paper order: per processor — in-port, CPU,
    /// out-port — only the rows that exist for the model).
    pub rows: Vec<Resource>,
    /// All bars.
    pub bars: Vec<Bar>,
    /// Time horizon (max end).
    pub horizon: f64,
}

/// Builds a Gantt chart from a recorded simulation, keeping operations whose
/// interval intersects `[t0, t1)`.
pub fn build(inst: &Instance, model: CommModel, sim: &SimResult, t0: f64, t1: f64) -> Gantt {
    assert!(!sim.ops.is_empty(), "simulate with record_ops = true to build a Gantt chart");
    let mut bars = Vec::new();
    let mut push = |resource: Resource, op: &Op, label: String| {
        if op.end > t0 && op.start < t1 {
            bars.push(Bar { resource, data_set: op.data_set, start: op.start, end: op.end, label });
        }
    };
    for op in &sim.ops {
        match op.kind {
            OpKind::Compute { stage } => {
                let u = proc_of_compute(inst, stage, op.data_set);
                push(Resource::Cpu(u), op, format!("S{stage}({})", op.data_set));
            }
            OpKind::Transfer { file, from, to } => match model {
                CommModel::Overlap => {
                    push(Resource::OutPort(from), op, format!("F{file}({})", op.data_set));
                    push(Resource::InPort(to), op, format!("F{file}({})", op.data_set));
                }
                CommModel::Strict => {
                    push(Resource::Cpu(from), op, format!("F{file}({})→", op.data_set));
                    push(Resource::Cpu(to), op, format!("→F{file}({})", op.data_set));
                }
            },
        }
    }

    // Display order: processors in stage order; per proc: in, cpu, out.
    // Port rows exist only where the stage actually receives or sends
    // (sources have no in-port, sinks no out-port). A stage with several
    // in- or out-edges shares one display row per processor side.
    let mut rows = Vec::new();
    for i in 0..inst.num_stages() {
        let wf = &inst.pipeline;
        for &u in inst.mapping.procs(i) {
            if model == CommModel::Overlap && !wf.in_edges(i).is_empty() {
                rows.push(Resource::InPort(u));
            }
            rows.push(Resource::Cpu(u));
            if model == CommModel::Overlap && !wf.out_edges(i).is_empty() {
                rows.push(Resource::OutPort(u));
            }
        }
    }
    let horizon = bars.iter().map(|b| b.end).fold(t0, f64::max).min(t1);
    Gantt { rows, bars, horizon }
}

fn proc_of_compute(inst: &Instance, stage: usize, data_set: u64) -> usize {
    inst.proc_for(stage, data_set)
}

fn row_name(r: Resource) -> String {
    match r {
        Resource::InPort(u) => format!("P{u} in"),
        Resource::Cpu(u) => format!("P{u}"),
        Resource::OutPort(u) => format!("P{u} out"),
    }
}

impl Gantt {
    /// Renders as fixed-width ASCII art, `width` characters of timeline.
    pub fn to_ascii(&self, width: usize) -> String {
        let t0 = self.bars.iter().map(|b| b.start).fold(f64::INFINITY, f64::min).max(0.0);
        let span = (self.horizon - t0).max(1e-9);
        let scale = width as f64 / span;
        let mut out = String::new();
        let name_w = self.rows.iter().map(|&r| row_name(r).len()).max().unwrap_or(4).max(4);
        let header = format!("{t0:.0} .. {:.0}", self.horizon);
        let _ = writeln!(out, "{:name_w$} |{header}|", "time");
        for &row in &self.rows {
            let mut line = vec![b' '; width];
            for b in self.bars.iter().filter(|b| b.resource == row) {
                let s = (((b.start - t0) * scale).floor() as usize).min(width.saturating_sub(1));
                let e = (((b.end - t0) * scale).ceil() as usize).clamp(s + 1, width);
                let glyph = match row {
                    Resource::Cpu(_) => b'#',
                    Resource::InPort(_) => b'<',
                    Resource::OutPort(_) => b'>',
                };
                for cell in &mut line[s..e] {
                    *cell = glyph;
                }
            }
            let _ = writeln!(out, "{:name_w$} |{}|", row_name(row), String::from_utf8(line).expect("ascii"));
        }
        out
    }

    /// Renders as a standalone SVG document.
    pub fn to_svg(&self) -> String {
        let t0 = self.bars.iter().map(|b| b.start).fold(f64::INFINITY, f64::min).max(0.0);
        let span = (self.horizon - t0).max(1e-9);
        let (w, row_h, left) = (1000.0, 22.0, 70.0);
        let h = row_h * self.rows.len() as f64 + 30.0;
        let scale = (w - left - 10.0) / span;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w}\" height=\"{h}\" font-family=\"monospace\" font-size=\"10\">"
        );
        for (k, &row) in self.rows.iter().enumerate() {
            let y = 20.0 + k as f64 * row_h;
            let _ = writeln!(s, "<text x=\"2\" y=\"{}\">{}</text>", y + row_h * 0.7, row_name(row));
            let _ = writeln!(
                s,
                "<line x1=\"{left}\" y1=\"{}\" x2=\"{}\" y2=\"{}\" stroke=\"#ccc\"/>",
                y + row_h,
                w - 5.0,
                y + row_h
            );
            for b in self.bars.iter().filter(|b| b.resource == row) {
                let x = left + (b.start - t0) * scale;
                let bw = ((b.end - b.start) * scale).max(1.0);
                let fill = match row {
                    Resource::Cpu(_) => "#7aa6da",
                    Resource::InPort(_) => "#b9ca4a",
                    Resource::OutPort(_) => "#e78c45",
                };
                let _ = writeln!(
                    s,
                    "<rect x=\"{x:.2}\" y=\"{:.2}\" width=\"{bw:.2}\" height=\"{:.2}\" fill=\"{fill}\" stroke=\"#333\" stroke-width=\"0.5\"><title>{} [{:.1}, {:.1}]</title></rect>",
                    y + 2.0,
                    row_h - 4.0,
                    b.label,
                    b.start,
                    b.end
                );
                if bw > 28.0 {
                    let _ = writeln!(
                        s,
                        "<text x=\"{:.2}\" y=\"{:.2}\" font-size=\"8\">{}</text>",
                        x + 2.0,
                        y + row_h * 0.65,
                        b.label
                    );
                }
            }
        }
        let _ = writeln!(s, "</svg>");
        s
    }

    /// Idle fraction of a resource over `[t0, horizon]`: 1 − busy/span.
    /// The paper's "no critical resource" situation means every resource has
    /// a strictly positive idle fraction in steady state.
    pub fn idle_fraction(&self, resource: Resource, t0: f64) -> f64 {
        let span = (self.horizon - t0).max(1e-12);
        let busy: f64 = self
            .bars
            .iter()
            .filter(|b| b.resource == resource)
            .map(|b| (b.end.min(self.horizon) - b.start.max(t0)).max(0.0))
            .sum();
        1.0 - (busy / span).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{simulate, SimOptions};
    use repwf_core::model::{Mapping, Pipeline, Platform};

    fn small() -> Instance {
        let pipeline = Pipeline::new(vec![4.0, 6.0], vec![2.0]).unwrap();
        let platform = Platform::uniform(3, 1.0, 1.0);
        let mapping = Mapping::new(vec![vec![0], vec![1, 2]]).unwrap();
        Instance::new(pipeline, platform, mapping).unwrap()
    }

    fn chart(model: CommModel) -> Gantt {
        let inst = small();
        let sim = simulate(&inst, model, &SimOptions { data_sets: 40, record_ops: true });
        build(&inst, model, &sim, 0.0, 200.0)
    }

    #[test]
    fn overlap_rows_include_ports() {
        let g = chart(CommModel::Overlap);
        assert!(g.rows.contains(&Resource::OutPort(0)));
        assert!(g.rows.contains(&Resource::InPort(1)));
        assert!(!g.rows.contains(&Resource::InPort(0)), "first stage receives nothing");
    }

    #[test]
    fn strict_rows_are_cpus_only() {
        let g = chart(CommModel::Strict);
        assert!(g.rows.iter().all(|r| matches!(r, Resource::Cpu(_))));
    }

    #[test]
    fn ascii_has_all_rows() {
        let g = chart(CommModel::Overlap);
        let art = g.to_ascii(100);
        assert!(art.contains("P0 out"));
        assert!(art.contains("P1 in"));
        assert!(art.lines().count() >= g.rows.len());
    }

    #[test]
    fn svg_is_well_formed_enough() {
        let g = chart(CommModel::Overlap);
        let svg = g.to_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(svg.matches("<rect").count() > 10);
    }

    #[test]
    fn cpu_bars_do_not_overlap() {
        let g = chart(CommModel::Strict);
        for &row in &g.rows {
            let mut bars: Vec<&Bar> = g.bars.iter().filter(|b| b.resource == row).collect();
            bars.sort_by(|a, b| a.start.partial_cmp(&b.start).unwrap());
            for w in bars.windows(2) {
                // Transfers appear on both procs; same-time shared bars are
                // identical intervals, which is fine — check non-crossing.
                assert!(w[1].start >= w[0].end - 1e-9 || (w[1].start == w[0].start));
            }
        }
    }

    #[test]
    fn idle_fraction_bounds() {
        let g = chart(CommModel::Overlap);
        for &r in &g.rows {
            let f = g.idle_fraction(r, 0.0);
            assert!((0.0..=1.0).contains(&f), "idle {f}");
        }
    }
}
