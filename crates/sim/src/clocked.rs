//! Clocked arrivals: the operational meaning of the period.
//!
//! The paper defines the period `P` as the interval at which "a new data
//! set enters the system" sustainably. This module simulates exactly that
//! regime: data set `d` is *released* at time `d·T` and no operation of it
//! may start earlier. Two facts make the definition operational, and both
//! are property-tested here:
//!
//! * if `T ≥ P̂` (at or above the computed period), every queue in the
//!   system stays **bounded** and sojourn times converge;
//! * if `T < P̂`, work backs up: the backlog (number of released but
//!   unfinished data sets) grows without bound and sojourn times diverge.
//!
//! The module also tracks per-link buffer occupancy (files produced but not
//! yet consumed), quantifying the memory the unbounded-buffer abstraction
//! of the TPN model actually requires at a given input rate.

use repwf_core::model::{CommModel, Instance};

/// Result of a clocked-arrival simulation.
#[derive(Debug, Clone)]
pub struct ClockedResult {
    /// Sojourn time (completion − release) of every data set.
    pub sojourn: Vec<f64>,
    /// Maximum backlog observed: released-but-unfinished data sets, sampled
    /// at release instants.
    pub max_backlog: u64,
    /// Per-edge maximum buffer occupancy: data sets whose source-stage
    /// output exists on the edge but whose destination-stage computation
    /// has not started. Indexed by workflow edge id (on a chain, edge `i`
    /// is the stage-`i`/`i+1` boundary).
    pub max_buffer: Vec<u64>,
}

impl ClockedResult {
    /// Mean sojourn over the last third of the run.
    pub fn tail_sojourn(&self) -> f64 {
        let d = self.sojourn.len();
        let tail = &self.sojourn[d - d / 3..];
        tail.iter().sum::<f64>() / tail.len() as f64
    }

    /// Maximum sojourn over the last third.
    pub fn tail_sojourn_max(&self) -> f64 {
        let d = self.sojourn.len();
        self.sojourn[d - d / 3..].iter().copied().fold(0.0, f64::max)
    }
}

/// Simulates `data_sets` arrivals with inter-arrival time `t` (data set `d`
/// released at `d·t`).
pub fn simulate_clocked(
    inst: &Instance,
    model: CommModel,
    t: f64,
    data_sets: u64,
) -> ClockedResult {
    let n = inst.num_stages();
    let p = inst.platform.num_procs();
    let wf = &inst.pipeline;
    let num_edges = wf.num_edges();
    let mut cpu = vec![0.0f64; p];
    // Per-edge send/receive port clocks (overlap model), one per replica —
    // the same one-port discipline as the free-running simulator.
    let mut outp: Vec<Vec<f64>> = (0..num_edges)
        .map(|e| vec![0.0f64; inst.mapping.replicas(wf.edge(e).0)])
        .collect();
    let mut inp: Vec<Vec<f64>> = (0..num_edges)
        .map(|e| vec![0.0f64; inst.mapping.replicas(wf.edge(e).1)])
        .collect();
    let mut edge_end = vec![0.0f64; num_edges];
    let mut completion: Vec<f64> = Vec::with_capacity(data_sets as usize);
    let mut sojourn = Vec::with_capacity(data_sets as usize);
    // start time of the consuming compute per data set, for buffer tracking:
    // we keep, per edge, the times the file became ready and the times it
    // was consumed, and count occupancy by merging (two-pointer).
    let mut produced: Vec<Vec<f64>> = vec![Vec::new(); num_edges];
    let mut consumed: Vec<Vec<f64>> = vec![Vec::new(); num_edges];

    for d in 0..data_sets {
        let release = d as f64 * t;
        let mut finish = release;
        for i in 0..n {
            let u = inst.proc_for(i, d);
            let mut ready = release;
            for &e in wf.in_edges(i) {
                ready = ready.max(edge_end[e]);
            }
            let ct = inst.comp_time(i, u);
            let start = ready.max(cpu[u]);
            for &e in wf.in_edges(i) {
                consumed[e].push(start);
            }
            let end = start + ct;
            cpu[u] = end;
            finish = end;
            for &e in wf.out_edges(i) {
                let dst = wf.edge(e).1;
                let v = inst.proc_for(dst, d);
                let alpha = (d % inst.mapping.replicas(i) as u64) as usize;
                let beta = (d % inst.mapping.replicas(dst) as u64) as usize;
                let tt = inst.comm_time(e, u, v);
                let start = match model {
                    CommModel::Overlap => end.max(outp[e][alpha]).max(inp[e][beta]),
                    CommModel::Strict => end.max(cpu[u]).max(cpu[v]),
                };
                let tend = start + tt;
                match model {
                    CommModel::Overlap => {
                        outp[e][alpha] = tend;
                        inp[e][beta] = tend;
                    }
                    CommModel::Strict => {
                        cpu[u] = tend;
                        cpu[v] = tend;
                    }
                }
                produced[e].push(tend);
                edge_end[e] = tend;
            }
        }
        completion.push(finish);
        sojourn.push(finish - release);
    }

    // Backlog at release instants: released d+1 data sets; completed =
    // completions ≤ release time. Completions are near-sorted; count via
    // sorted copy.
    let mut sorted = completion.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    let mut max_backlog = 0u64;
    let mut done = 0usize;
    for d in 0..data_sets {
        let now = d as f64 * t;
        while done < sorted.len() && sorted[done] <= now {
            done += 1;
        }
        max_backlog = max_backlog.max(d + 1 - done as u64);
    }

    // Buffer occupancy per boundary: files produced before time x minus
    // files consumed before x, maximized over event times.
    let mut max_buffer = Vec::with_capacity(n.saturating_sub(1));
    for (prod, cons) in produced.iter_mut().zip(consumed.iter_mut()) {
        prod.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        cons.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let mut ci = 0usize;
        let mut occ: i64 = 0;
        let mut best: i64 = 0;
        for &tp in prod.iter() {
            while ci < cons.len() && cons[ci] <= tp {
                occ -= 1;
                ci += 1;
            }
            occ += 1;
            best = best.max(occ);
        }
        max_buffer.push(best.max(0) as u64);
    }

    ClockedResult { sojourn, max_backlog, max_buffer }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repwf_core::model::{Mapping, Pipeline, Platform};
    use repwf_core::period::{compute_period, Method};

    fn inst() -> Instance {
        let pipeline = Pipeline::new(vec![6.0, 18.0], vec![3.0]).unwrap();
        let platform = Platform::uniform(4, 1.0, 1.0);
        let mapping = Mapping::new(vec![vec![0], vec![1, 2, 3]]).unwrap();
        Instance::new(pipeline, platform, mapping).unwrap()
    }

    #[test]
    fn at_period_backlog_bounded() {
        let i = inst();
        for model in [CommModel::Overlap, CommModel::Strict] {
            let p = compute_period(&i, model, Method::Auto).unwrap().period;
            let short = simulate_clocked(&i, model, p * 1.0001, 500);
            let long = simulate_clocked(&i, model, p * 1.0001, 4000);
            assert!(
                long.max_backlog <= short.max_backlog + 2,
                "{model}: backlog grows ({} -> {})",
                short.max_backlog,
                long.max_backlog
            );
            assert!(
                long.tail_sojourn_max() <= short.tail_sojourn_max() * 1.5 + 1.0,
                "{model}: sojourn diverges"
            );
        }
    }

    #[test]
    fn below_period_backlog_diverges() {
        let i = inst();
        for model in [CommModel::Overlap, CommModel::Strict] {
            let p = compute_period(&i, model, Method::Auto).unwrap().period;
            let short = simulate_clocked(&i, model, p * 0.9, 500);
            let long = simulate_clocked(&i, model, p * 0.9, 4000);
            assert!(
                long.max_backlog as f64 > short.max_backlog as f64 * 3.0,
                "{model}: backlog should diverge ({} -> {})",
                short.max_backlog,
                long.max_backlog
            );
        }
    }

    #[test]
    fn sojourn_at_least_unloaded_latency() {
        let i = inst();
        let lat = repwf_core::latency::latency_report(&i, 100);
        let p = compute_period(&i, CommModel::Overlap, Method::Auto).unwrap().period;
        let res = simulate_clocked(&i, CommModel::Overlap, p * 1.01, 600);
        for (d, &s) in res.sojourn.iter().enumerate() {
            assert!(s >= lat.min - 1e-9, "data set {d}: sojourn {s} below min latency");
        }
    }

    #[test]
    fn slow_arrivals_give_unloaded_latency() {
        // With huge inter-arrival times, no contention: sojourn = unloaded
        // path latency exactly.
        let i = inst();
        let res = simulate_clocked(&i, CommModel::Overlap, 1e6, 12);
        for d in 0..12u64 {
            let expected = repwf_core::latency::path_latency(&i, u128::from(d));
            assert!(
                (res.sojourn[d as usize] - expected).abs() < 1e-9,
                "data set {d}: {} vs {expected}",
                res.sojourn[d as usize]
            );
        }
        assert_eq!(res.max_backlog, 1);
    }

    #[test]
    fn buffer_occupancy_tracked() {
        let i = inst();
        let p = compute_period(&i, CommModel::Overlap, Method::Auto).unwrap().period;
        let res = simulate_clocked(&i, CommModel::Overlap, p, 2000);
        assert_eq!(res.max_buffer.len(), 1);
        // At the sustainable rate the boundary buffer is small and bounded.
        assert!(res.max_buffer[0] <= 8, "buffer {:?}", res.max_buffer);
    }
}
