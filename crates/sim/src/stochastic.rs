//! Stochastic platforms — the paper's stated future work.
//!
//! The paper closes with: *"This paper was focused on static platforms,
//! opening the way to future work on finding good schedules on dynamic
//! platforms, whose speeds and bandwidths are modeled by random
//! variables."* This module implements that extension for the evaluation
//! side: every operation's duration is multiplied by an independent random
//! factor, the earliest-start schedule is simulated, and the steady-state
//! period is estimated with confidence intervals over replications.
//!
//! Two classical facts become observable in the output:
//!
//! * with zero noise the estimate equals the deterministic period;
//! * by Jensen's inequality on the `max` recursions, mean-preserving noise
//!   can only *increase* the expected period (stochastic timed event graphs
//!   are slower than their fluid limits) — property-tested below.

use crate::runner::{SimOptions, SimResult};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use repwf_core::model::{CommModel, Instance};

/// A noise law for operation durations (multiplicative, mean 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Noise {
    /// No noise: durations are deterministic.
    None,
    /// Uniform on `[1−a, 1+a]`, `0 ≤ a < 1`.
    Uniform {
        /// half-width of the relative jitter
        amplitude: f64,
    },
    /// Two-point "degraded mode": with probability `p` the operation runs
    /// `slow`× slower, otherwise at a compensating faster rate so the mean
    /// stays 1 (models transient platform contention).
    Degraded {
        /// probability of the degraded mode
        p: f64,
        /// slowdown factor of the degraded mode (> 1)
        slow: f64,
    },
}

impl Noise {
    fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        match *self {
            Noise::None => 1.0,
            Noise::Uniform { amplitude } => {
                debug_assert!((0.0..1.0).contains(&amplitude));
                1.0 + amplitude * (2.0 * rng.gen::<f64>() - 1.0)
            }
            Noise::Degraded { p, slow } => {
                debug_assert!(slow > 1.0 && (0.0..1.0).contains(&p));
                if rng.gen::<f64>() < p {
                    slow
                } else {
                    // mean-preserving: p·slow + (1−p)·fast = 1
                    (1.0 - p * slow) / (1.0 - p)
                }
            }
        }
    }
}

/// Result of a stochastic evaluation.
#[derive(Debug, Clone)]
pub struct StochasticEstimate {
    /// Mean per-data-set period over the replications.
    pub mean: f64,
    /// Sample standard deviation over the replications.
    pub std_dev: f64,
    /// Per-replication estimates.
    pub samples: Vec<f64>,
}

impl StochasticEstimate {
    /// Half-width of a ~95% normal confidence interval for the mean.
    pub fn ci95(&self) -> f64 {
        1.96 * self.std_dev / (self.samples.len() as f64).sqrt()
    }
}

/// Reusable scratch of the stochastic replication engine: the per-resource
/// clocks and the completion-time trace. One per worker thread
/// (`repwf_par::par_map_init`): replications reuse the buffers instead of
/// re-allocating a `data_sets`-sized vector each.
#[derive(Debug, Clone, Default)]
pub struct ReplicationScratch {
    cpu: Vec<f64>,
    inp: Vec<Vec<f64>>,
    outp: Vec<Vec<f64>>,
    edge_end: Vec<f64>,
    completion: Vec<f64>,
}

impl ReplicationScratch {
    /// Creates an empty scratch (no allocation until the first run).
    pub fn new() -> Self {
        ReplicationScratch::default()
    }
}

/// Simulates the mapped workflow with noisy operation durations.
///
/// Identical recurrences to [`crate::runner::simulate`], except every
/// operation duration is multiplied by a fresh sample of `noise`.
pub fn simulate_noisy(
    inst: &Instance,
    model: CommModel,
    noise: Noise,
    opts: &SimOptions,
    seed: u64,
) -> SimResult {
    let n = inst.num_stages();
    let mut scratch = ReplicationScratch::new();
    noisy_completions(inst, model, noise, opts, seed, &mut scratch);
    let window = repwf_core::paths::instance_num_paths(inst)
        .map(|m| if m > opts.data_sets as u128 / 4 { 1 } else { m as u64 })
        .unwrap_or(1);
    SimResult {
        completion: scratch.completion,
        ops: Vec::new(),
        window,
        m_last: inst.mapping.replicas(n - 1),
    }
}

/// Runs one noisy replication into `scratch` (clocks reset, completion
/// trace overwritten in place).
fn noisy_completions(
    inst: &Instance,
    model: CommModel,
    noise: Noise,
    opts: &SimOptions,
    seed: u64,
    scratch: &mut ReplicationScratch,
) {
    let n = inst.num_stages();
    let p = inst.platform.num_procs();
    let wf = &inst.pipeline;
    let num_edges = wf.num_edges();
    let mut rng = StdRng::seed_from_u64(seed);
    scratch.cpu.clear();
    scratch.cpu.resize(p, 0.0);
    // Per-edge port clocks (one slot per replica); inner buffers are kept
    // allocated across replications.
    scratch.inp.resize_with(num_edges, Vec::new);
    scratch.outp.resize_with(num_edges, Vec::new);
    for (e, ports) in scratch.inp.iter_mut().enumerate() {
        ports.clear();
        ports.resize(inst.mapping.replicas(wf.edge(e).1), 0.0);
    }
    for (e, ports) in scratch.outp.iter_mut().enumerate() {
        ports.clear();
        ports.resize(inst.mapping.replicas(wf.edge(e).0), 0.0);
    }
    scratch.edge_end.clear();
    scratch.edge_end.resize(num_edges, 0.0);
    scratch.completion.clear();
    scratch.completion.reserve(opts.data_sets as usize);
    let ReplicationScratch { cpu, inp, outp, edge_end, completion } = scratch;

    for d in 0..opts.data_sets {
        let mut finish = 0.0f64;
        for i in 0..n {
            let u = inst.proc_for(i, d);
            let mut ready = 0.0f64;
            for &e in wf.in_edges(i) {
                ready = ready.max(edge_end[e]);
            }
            let ct = inst.comp_time(i, u) * noise.sample(&mut rng);
            let start = ready.max(cpu[u]);
            let end = start + ct;
            cpu[u] = end;
            finish = end;
            for &e in wf.out_edges(i) {
                let dst = wf.edge(e).1;
                let v = inst.proc_for(dst, d);
                let alpha = (d % inst.mapping.replicas(i) as u64) as usize;
                let beta = (d % inst.mapping.replicas(dst) as u64) as usize;
                let tt = inst.comm_time(e, u, v) * noise.sample(&mut rng);
                let start = match model {
                    CommModel::Overlap => end.max(outp[e][alpha]).max(inp[e][beta]),
                    CommModel::Strict => end.max(cpu[u]).max(cpu[v]),
                };
                let tend = start + tt;
                match model {
                    CommModel::Overlap => {
                        outp[e][alpha] = tend;
                        inp[e][beta] = tend;
                    }
                    CommModel::Strict => {
                        cpu[u] = tend;
                        cpu[v] = tend;
                    }
                }
                edge_end[e] = tend;
            }
        }
        completion.push(finish);
    }
}

/// Estimates the expected steady-state period under `noise` over
/// `replications` independent runs (sequentially; see
/// [`estimate_period_par`] for the multi-core variant).
pub fn estimate_period(
    inst: &Instance,
    model: CommModel,
    noise: Noise,
    data_sets: u64,
    replications: usize,
    seed: u64,
) -> StochasticEstimate {
    estimate_period_par(inst, model, noise, data_sets, replications, seed, 1)
}

/// [`estimate_period`] over `threads` work-stealing workers.
///
/// Replication `k` uses seed `seed + k` regardless of scheduling, so the
/// estimate is bit-identical at every thread count.
pub fn estimate_period_par(
    inst: &Instance,
    model: CommModel,
    noise: Noise,
    data_sets: u64,
    replications: usize,
    seed: u64,
    threads: usize,
) -> StochasticEstimate {
    let m_last = inst.mapping.replicas(inst.num_stages() - 1);
    let opts = SimOptions { data_sets, record_ops: false };
    let samples: Vec<f64> = repwf_par::par_map_init(
        threads,
        replications,
        ReplicationScratch::new,
        |scratch, k| {
            noisy_completions(inst, model, noise, &opts, seed + k as u64, scratch);
            crate::runner::sustainable_period(&scratch.completion, m_last)
        },
    );
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let var = if samples.len() > 1 {
        samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (samples.len() - 1) as f64
    } else {
        0.0
    };
    StochasticEstimate { mean, std_dev: var.sqrt(), samples }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repwf_core::model::{Mapping, Pipeline, Platform};
    use repwf_core::period::{compute_period, Method};

    fn inst() -> Instance {
        let pipeline = Pipeline::new(vec![6.0, 9.0], vec![3.0]).unwrap();
        let platform = Platform::uniform(4, 1.0, 1.0);
        let mapping = Mapping::new(vec![vec![0], vec![1, 2, 3]]).unwrap();
        Instance::new(pipeline, platform, mapping).unwrap()
    }

    #[test]
    fn zero_noise_matches_deterministic() {
        let i = inst();
        for model in [CommModel::Overlap, CommModel::Strict] {
            let exact = compute_period(&i, model, Method::FullTpn).unwrap().period;
            let est = estimate_period(&i, model, Noise::None, 4000, 2, 1);
            assert!(
                (est.mean - exact).abs() < 2e-3 * exact,
                "{model}: {} vs {exact}",
                est.mean
            );
            assert!(est.std_dev < 1e-9, "deterministic runs must agree exactly");
        }
    }

    #[test]
    fn mean_preserving_noise_slows_the_system() {
        // Jensen: E[max] ≥ max of means — noise can only hurt throughput.
        // The effect needs *coupled* resources (when a single bottleneck
        // dominates, its long-run rate is a plain i.i.d. average and the
        // expected period equals the deterministic one), so balance the
        // instance: comp0 = comp1 = out-port = 6 per data set.
        let pipeline = Pipeline::new(vec![6.0, 18.0], vec![6.0]).unwrap();
        let platform = Platform::uniform(4, 1.0, 1.0);
        let mapping = Mapping::new(vec![vec![0], vec![1, 2, 3]]).unwrap();
        let i = Instance::new(pipeline, platform, mapping).unwrap();
        let base = compute_period(&i, CommModel::Overlap, Method::Polynomial).unwrap().period;
        assert!((base - 6.0).abs() < 1e-9);
        for noise in [
            Noise::Uniform { amplitude: 0.5 },
            Noise::Degraded { p: 0.1, slow: 5.0 },
        ] {
            let est = estimate_period(&i, CommModel::Overlap, noise, 6000, 8, 7);
            assert!(
                est.mean > base + est.ci95(),
                "{noise:?}: stochastic mean {} not above deterministic {base} (ci {})",
                est.mean,
                est.ci95()
            );
        }
    }

    #[test]
    fn more_noise_more_slowdown() {
        let i = inst();
        let small = estimate_period(&i, CommModel::Strict, Noise::Uniform { amplitude: 0.1 }, 5000, 6, 3);
        let large = estimate_period(&i, CommModel::Strict, Noise::Uniform { amplitude: 0.8 }, 5000, 6, 3);
        assert!(large.mean > small.mean, "{} vs {}", large.mean, small.mean);
    }

    #[test]
    fn noise_samples_have_mean_one() {
        let mut rng = StdRng::seed_from_u64(5);
        for noise in [
            Noise::Uniform { amplitude: 0.7 },
            Noise::Degraded { p: 0.2, slow: 3.0 },
        ] {
            let n = 200_000;
            let mean: f64 = (0..n).map(|_| noise.sample(&mut rng)).sum::<f64>() / n as f64;
            assert!((mean - 1.0).abs() < 5e-3, "{noise:?}: mean {mean}");
        }
    }

    #[test]
    fn ci_shrinks_with_replications() {
        let i = inst();
        let few = estimate_period(&i, CommModel::Overlap, Noise::Uniform { amplitude: 0.4 }, 1500, 4, 9);
        let many = estimate_period(&i, CommModel::Overlap, Noise::Uniform { amplitude: 0.4 }, 1500, 16, 9);
        assert!(many.ci95() < few.ci95() + 1e-12);
    }
}
