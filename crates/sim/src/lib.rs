//! **repwf-sim** — discrete-event simulation of replicated-workflow
//! schedules.
//!
//! This simulator executes the mapped workflow *directly* — data set by data
//! set, resource by resource — without ever constructing the timed Petri
//! net. It therefore provides an independent check of the TPN analysis
//! (`repwf-core`), scales to instances whose TPN would be astronomically
//! large (`m = lcm(m_i)` never appears: memory is `O(resources)`), and
//! records the operation log from which the paper's Gantt charts (Figs. 7
//! and 12) are regenerated.
//!
//! # Semantics
//!
//! Earliest-start execution under the paper's rules:
//!
//! * replicated stages serve data sets in strict round-robin order;
//! * every resource performs its operations in data-set order (the TPN's
//!   round-robin circuits), so a resource is modelled by a single
//!   "free-from" clock;
//! * a file transfer occupies the sender's out-port **and** the receiver's
//!   in-port for its whole duration (overlap model), or both processors
//!   entirely (strict model).
//!
//! ```
//! use repwf_core::model::{CommModel, Instance, Mapping, Pipeline, Platform};
//! use repwf_sim::{simulate, SimOptions};
//!
//! let pipeline = Pipeline::new(vec![10.0, 20.0], vec![4.0]).unwrap();
//! let platform = Platform::uniform(3, 1.0, 1.0);
//! let mapping = Mapping::new(vec![vec![0], vec![1, 2]]).unwrap();
//! let inst = Instance::new(pipeline, platform, mapping).unwrap();
//! let res = simulate(&inst, CommModel::Overlap, &SimOptions::default());
//! assert!((res.period_estimate() - 10.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clocked;
pub mod gantt;
pub mod stochastic;
pub mod runner;

pub use runner::{simulate, Op, OpKind, Resource, SimOptions, SimResult};
