//! Discrete-event simulator throughput: data sets simulated per second, and
//! the cost of the TPN earliest-firing recurrence for comparison. The
//! simulator is the fallback for strict-model instances whose TPN is too
//! large, so its rate bounds the campaign's worst case.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use repwf_core::fixtures::{example_b, example_c};
use repwf_core::model::CommModel;
use repwf_sim::{simulate, SimOptions};

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.sample_size(20);
    let cases = [("example_b", example_b()), ("example_c", example_c())];
    for (name, inst) in &cases {
        for model in [CommModel::Overlap, CommModel::Strict] {
            let tag = match model {
                CommModel::Overlap => "overlap",
                CommModel::Strict => "strict",
            };
            let data_sets = 20_000u64;
            group.throughput(Throughput::Elements(data_sets));
            group.bench_with_input(
                BenchmarkId::new(format!("sim_{tag}"), name),
                inst,
                |b, inst| {
                    b.iter(|| {
                        simulate(inst, model, &SimOptions { data_sets, record_ops: false })
                            .period_estimate()
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_tpn_recurrence(c: &mut Criterion) {
    let mut group = c.benchmark_group("tpn_firing_recurrence");
    let inst = example_b();
    let built = repwf_core::tpn_build::build_tpn(
        &inst,
        CommModel::Overlap,
        &repwf_core::tpn_build::BuildOptions { labels: false, max_transitions: 100_000 },
    )
    .unwrap();
    let firings = 2000usize;
    group.throughput(Throughput::Elements(firings as u64 * built.net.num_transitions() as u64));
    group.bench_function("example_b_overlap", |b| {
        b.iter(|| tpn::sim::simulate(&built.net, firings))
    });
    group.finish();
}

criterion_group!(benches, bench_simulator, bench_tpn_recurrence);
criterion_main!(benches);
