//! Benchmarks the distributed-campaign round trip of `repwf-dist`: the
//! same campaign run unsharded in-process vs. as 3 seed-range shards
//! streamed to NDJSON files and recombined by the exact merger. The
//! `repwf bench` subcommand times the same pair as its
//! `campaign_shard_merge` kernel and gates the derived
//! `shard_merge_efficiency` index; this criterion target is for
//! interactive digging (e.g. how the NDJSON encode/parse and merge
//! validation scale with the campaign size).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use repwf_core::model::CommModel;
use repwf_dist::{merge_paths, run_shard, CampaignSpec};
use repwf_gen::campaign::run_campaign;
use repwf_gen::{GenConfig, Range};
use std::path::PathBuf;

fn spec(count: usize) -> CampaignSpec {
    CampaignSpec {
        cfg: GenConfig {
            stages: 2,
            procs: 7,
            comp: Range::constant(1.0),
            comm: Range::new(5.0, 10.0),
        },
        model: CommModel::Strict,
        count,
        seed_base: 2009,
        cap: 400_000,
    }
}

fn bench_shard_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign_shard_merge");
    let dir = std::env::temp_dir().join(format!("repwf-shard-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    for &count in &[96usize, 384] {
        let spec = spec(count);
        group.throughput(Throughput::Elements(count as u64));
        group.bench_with_input(
            BenchmarkId::new("unsharded", count),
            &spec,
            |b, spec| {
                b.iter(|| {
                    let res =
                        run_campaign(&spec.cfg, spec.model, spec.count, spec.seed_base, 2, spec.cap);
                    assert_eq!(res.outcomes.len(), spec.count);
                })
            },
        );
        let paths: Vec<PathBuf> =
            (0..3).map(|i| dir.join(format!("c{count}-s{i}.ndjson"))).collect();
        group.bench_with_input(
            BenchmarkId::new("sharded_3x_plus_merge", count),
            &spec,
            |b, spec| {
                b.iter(|| {
                    for path in &paths {
                        let _ = std::fs::remove_file(path);
                    }
                    for (i, path) in paths.iter().enumerate() {
                        run_shard(spec, i, 3, 2, path, None).expect("shard runs");
                    }
                    let merged = merge_paths(&paths).expect("shards merge");
                    assert_eq!(merged.result.outcomes.len(), spec.count);
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("merge_only", count),
            &spec,
            |b, spec| {
                for (i, path) in paths.iter().enumerate() {
                    let _ = std::fs::remove_file(path);
                    run_shard(spec, i, 3, 2, path, None).expect("shard runs");
                }
                b.iter(|| {
                    let merged = merge_paths(&paths).expect("shards merge");
                    assert_eq!(merged.result.outcomes.len(), spec.count);
                })
            },
        );
    }
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_shard_merge);
criterion_main!(benches);
