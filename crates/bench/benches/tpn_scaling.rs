//! TPN construction cost: the paper states the build is `O(m·n)`; this
//! bench measures construction (and the follow-up critical-cycle analysis)
//! as the row count `m` grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use repwf_core::model::{CommModel, Instance, Mapping, Pipeline, Platform};
use repwf_core::tpn_build::{build_tpn, BuildOptions};

fn instance(replicas: &[usize]) -> Instance {
    let n = replicas.len();
    let pipeline = Pipeline::new(vec![12.0; n], vec![6.0; n - 1]).unwrap();
    let p: usize = replicas.iter().sum();
    let platform = Platform::uniform(p, 1.0, 1.0);
    let mut next = 0;
    let assignment: Vec<Vec<usize>> = replicas
        .iter()
        .map(|&m| {
            let procs: Vec<usize> = (next..next + m).collect();
            next += m;
            procs
        })
        .collect();
    Instance::new(pipeline, platform, Mapping::new(assignment).unwrap()).unwrap()
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("tpn_build");
    group.sample_size(20);
    let opts = BuildOptions { labels: false, max_transitions: 4_000_000 };
    for (name, replicas, m) in [
        ("m=60", vec![3usize, 4, 5], 60u64),
        ("m=2310", vec![2, 3, 5, 7, 11], 2310),
        ("m=27720", vec![8, 9, 5, 7, 11], 27720),
    ] {
        let inst = instance(&replicas);
        let transitions = m * (2 * replicas.len() as u64 - 1);
        group.throughput(Throughput::Elements(transitions));
        for model in [CommModel::Overlap, CommModel::Strict] {
            let tag = match model {
                CommModel::Overlap => "overlap",
                CommModel::Strict => "strict",
            };
            group.bench_with_input(
                BenchmarkId::new(format!("build_{tag}"), name),
                &inst,
                |b, i| b.iter(|| build_tpn(i, model, &opts).unwrap()),
            );
        }
        let built = build_tpn(&inst, CommModel::Overlap, &opts).unwrap();
        group.bench_with_input(BenchmarkId::new("analyze_overlap", name), &built.net, |b, net| {
            b.iter(|| tpn::analysis::period(net).unwrap().unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
