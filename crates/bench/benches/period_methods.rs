//! The Theorem 1 performance claim: the polynomial algorithm computes the
//! overlap-model period in time independent of `m = lcm(m_i)`, while the
//! full-TPN analysis grows with `m`. Replication factors are chosen
//! pairwise-coprime so `m` explodes combinatorially.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use repwf_core::fixtures::example_c;
use repwf_core::model::{CommModel, Instance, Mapping, Pipeline, Platform};
use repwf_core::period::{compute_period, Method};

/// Chain with the given replica counts; heterogeneous-ish times.
fn instance(replicas: &[usize]) -> Instance {
    let n = replicas.len();
    let pipeline =
        Pipeline::new((0..n).map(|i| 10.0 + i as f64).collect(), vec![8.0; n - 1]).unwrap();
    let p: usize = replicas.iter().sum();
    let mut platform = Platform::uniform(p, 1.0, 1.0);
    for u in 0..p {
        platform.set_speed(u, 1.0 + (u % 5) as f64 * 0.2);
        for v in 0..p {
            platform.set_bandwidth(u, v, 1.0 + ((u * 7 + v * 3) % 8) as f64 * 0.15);
        }
    }
    let mut next = 0;
    let assignment: Vec<Vec<usize>> = replicas
        .iter()
        .map(|&m| {
            let procs: Vec<usize> = (next..next + m).collect();
            next += m;
            procs
        })
        .collect();
    Instance::new(pipeline, platform, Mapping::new(assignment).unwrap()).unwrap()
}

fn bench_methods(c: &mut Criterion) {
    let mut group = c.benchmark_group("period_methods");
    // m = lcm: 6, 60, 2310 — the polynomial method should stay flat.
    let cases: [(&str, Vec<usize>); 3] =
        [("m=6", vec![2, 3]), ("m=60", vec![3, 4, 5]), ("m=2310", vec![2, 3, 5, 7, 11])];
    for (name, replicas) in &cases {
        let inst = instance(replicas);
        let poly = compute_period(&inst, CommModel::Overlap, Method::Polynomial).unwrap();
        let full = compute_period(&inst, CommModel::Overlap, Method::FullTpn).unwrap();
        assert!((poly.period - full.period).abs() < 1e-9 * full.period);
        group.bench_with_input(BenchmarkId::new("polynomial", name), &inst, |b, i| {
            b.iter(|| compute_period(i, CommModel::Overlap, Method::Polynomial).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("full_tpn", name), &inst, |b, i| {
            b.iter(|| compute_period(i, CommModel::Overlap, Method::FullTpn).unwrap())
        });
    }
    // Example C (m = 10395): the paper's decomposition showcase.
    let c_inst = example_c();
    group.bench_function("polynomial/example_c(m=10395)", |b| {
        b.iter(|| compute_period(&c_inst, CommModel::Overlap, Method::Polynomial).unwrap())
    });
    group.sample_size(10).bench_function("full_tpn/example_c(m=10395)", |b| {
        b.iter(|| compute_period(&c_inst, CommModel::Overlap, Method::FullTpn).unwrap())
    });
    group.finish();
}

fn bench_strict(c: &mut Criterion) {
    let mut group = c.benchmark_group("strict_model");
    for (name, replicas) in
        [("m=6", vec![2usize, 3]), ("m=60", vec![3, 4, 5]), ("m=420", vec![3, 4, 5, 7])]
    {
        let inst = instance(&replicas);
        group.bench_with_input(BenchmarkId::new("full_tpn", name), &inst, |b, i| {
            b.iter(|| compute_period(i, CommModel::Strict, Method::FullTpn).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_methods, bench_strict);
criterion_main!(benches);
