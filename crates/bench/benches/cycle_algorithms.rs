//! Benchmarks the three maximum-cycle-ratio oracles (Howard, Lawler, Karp)
//! on random strongly-cyclic graphs of growing size. Howard is the
//! production algorithm; this bench documents why.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use maxplus::graph::RatioGraph;
use maxplus::howard::max_cycle_ratio;
use maxplus::karp::max_cycle_ratio_karp;
use maxplus::lawler::max_cycle_ratio_lawler;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random graph: a Hamiltonian tokenized ring (guaranteed liveness and
/// strong connectivity) plus `3n` random extra edges.
fn random_graph(n: usize, seed: u64) -> RatioGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = RatioGraph::with_capacity(n, 4 * n);
    for v in 0..n as u32 {
        g.add_edge(v, (v + 1) % n as u32, rng.gen_range(1.0..100.0), 1);
    }
    for _ in 0..3 * n {
        let a = rng.gen_range(0..n) as u32;
        let b = rng.gen_range(0..n) as u32;
        // Zero-token edges are only added "forward" (a < b), so they form a
        // DAG and no token-free (deadlocked) circuit can arise.
        let tokens = if a < b { rng.gen_range(0..3) } else { rng.gen_range(1..3) };
        g.add_edge(a, b, rng.gen_range(1.0..100.0), tokens);
    }
    g
}

fn bench_oracles(c: &mut Criterion) {
    let mut group = c.benchmark_group("max_cycle_ratio");
    for &n in &[32usize, 128, 512] {
        let g = random_graph(n, 42);
        // Sanity: all oracles agree before we time them.
        let h = max_cycle_ratio(&g).unwrap().unwrap().ratio;
        let l = max_cycle_ratio_lawler(&g).unwrap().unwrap().ratio;
        assert!((h - l).abs() < 1e-6 * h);
        group.bench_with_input(BenchmarkId::new("howard", n), &g, |b, g| {
            b.iter(|| max_cycle_ratio(g).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("lawler", n), &g, |b, g| {
            b.iter(|| max_cycle_ratio_lawler(g).unwrap())
        });
        if n <= 128 {
            let k = max_cycle_ratio_karp(&g).unwrap().unwrap().ratio;
            assert!((h - k).abs() < 1e-6 * h);
            group.bench_with_input(BenchmarkId::new("karp_reduction", n), &g, |b, g| {
                b.iter(|| max_cycle_ratio_karp(g).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_oracles);
criterion_main!(benches);
