//! Benchmarks the zero-allocation period engine against the one-shot API:
//! cold solves vs. engine (arena) reuse vs. warm-started policy iteration,
//! plus the campaign and annealing kernels built on top of it. The
//! `repwf bench` subcommand runs the same kernels and records them in
//! `BENCH_period.json`; this criterion target is for interactive digging.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use repwf_core::engine::{MappingOracle, PeriodEngine};
use repwf_core::model::{CommModel, Instance, Mapping, Pipeline, Platform};
use repwf_core::period::{compute_period_with, Method};
use repwf_core::tpn_build::BuildOptions;
use repwf_gen::campaign::run_campaign;
use repwf_gen::{GenConfig, Range};
use repwf_map::annealing::{anneal, AnnealOptions};
use repwf_map::greedy;

/// Strict-model instance with `m = lcm(4,5,3) = 60` TPN rows (300
/// transitions) — the same workload `repwf bench` times.
fn instance() -> Instance {
    let pipeline = Pipeline::new(vec![5.0, 7.0, 3.0], vec![2.0, 2.0]).unwrap();
    let mut platform = Platform::uniform(12, 1.0, 1.0);
    for u in 0..12 {
        platform.set_speed(u, 1.0 + 0.07 * u as f64);
    }
    let mapping =
        Mapping::new(vec![(0..4).collect(), (4..9).collect(), (9..12).collect()]).unwrap();
    Instance::new(pipeline, platform, mapping).unwrap()
}

fn bench_period_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("period_engine");
    let inst = instance();
    let opts = BuildOptions { labels: false, ..BuildOptions::default() };

    group.bench_function("cold", |b| {
        b.iter(|| {
            compute_period_with(&inst, CommModel::Strict, Method::FullTpn, &opts).unwrap()
        })
    });

    let mut engine = PeriodEngine::new();
    group.bench_function("engine_reuse", |b| {
        b.iter(|| engine.compute(&inst, CommModel::Strict, Method::FullTpn).unwrap())
    });

    let mut warm = PeriodEngine::new().warm_start(true);
    group.bench_function("warm_start", |b| {
        b.iter(|| warm.compute(&inst, CommModel::Strict, Method::FullTpn).unwrap())
    });
    group.finish();
}

fn bench_campaign_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign_kernel");
    let cfg = GenConfig {
        stages: 2,
        procs: 7,
        comp: Range::constant(1.0),
        comm: Range::new(5.0, 10.0),
    };
    let count = 96;
    group.throughput(Throughput::Elements(count as u64));
    for threads in [1usize, repwf_par::max_threads().min(8)] {
        group.bench_with_input(BenchmarkId::new("strict", threads), &threads, |b, &t| {
            b.iter(|| run_campaign(&cfg, CommModel::Strict, count, 2009, t, 400_000))
        });
    }
    group.finish();
}

fn bench_annealing_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("annealing_kernel");
    let pipeline = Pipeline::new(vec![8.0, 24.0, 8.0], vec![0.5, 0.5]).unwrap();
    let mut platform = Platform::uniform(9, 1.0, 10.0);
    for u in 0..9 {
        platform.set_speed(u, 1.0 + 0.1 * u as f64);
    }
    let start = greedy(&pipeline, &platform);
    let opts = AnnealOptions {
        model: CommModel::Strict,
        steps: 200,
        seed: 2009,
        ..AnnealOptions::default()
    };
    group.sample_size(10);
    group.bench_function("strict_200_steps", |b| {
        b.iter(|| anneal(&pipeline, &platform, start.clone(), &opts))
    });
    group.finish();
}

/// The `neighbor_eval` kernel of `repwf bench`: a shape-preserving swap
/// walk evaluated cold one-shot (fresh engine + owned `Instance` per
/// candidate) vs. through one incremental `MappingOracle` session
/// (borrowed evaluation, warm starts, TPN patching).
fn bench_neighbor_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("neighbor_eval");
    let inst = instance();
    let steps = 32usize;
    let walk: Vec<Mapping> = {
        let mut assignment = inst.mapping.assignment().to_vec();
        let counts: Vec<usize> = assignment.iter().map(Vec::len).collect();
        (0..steps)
            .map(|t| {
                let i = t % (counts.len() - 1);
                let j = i + 1;
                let (si, sj) = (t % counts[i], (t / 2) % counts[j]);
                let (a, b) = (assignment[i][si], assignment[j][sj]);
                assignment[i][si] = b;
                assignment[j][sj] = a;
                Mapping::new(assignment.clone()).unwrap()
            })
            .collect()
    };
    group.throughput(Throughput::Elements(steps as u64));
    group.bench_function("cold_one_shot", |b| {
        b.iter(|| {
            for m in &walk {
                repwf_map::evaluate(&inst.pipeline, &inst.platform, m, CommModel::Strict).unwrap();
            }
        })
    });
    let mut oracle = MappingOracle::new(&inst.pipeline, &inst.platform).warm_start(true);
    group.bench_function("incremental_oracle", |b| {
        b.iter(|| {
            for m in &walk {
                oracle.compute(m, CommModel::Strict, Method::Auto).unwrap();
            }
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_period_engine,
    bench_campaign_kernel,
    bench_annealing_kernel,
    bench_neighbor_eval
);
criterion_main!(benches);
