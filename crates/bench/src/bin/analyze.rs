//! CLI: analyze a workflow instance described in the plain-text format of
//! `repwf_core::textfmt`.
//!
//! ```text
//! analyze <instance.txt>        # full report
//! analyze --example a|b|c       # analyze a paper fixture
//! analyze <instance.txt> --dot overlap|strict   # emit the TPN as DOT
//! ```

use repwf_core::fixtures::{example_a, example_b, example_c};
use repwf_core::model::{CommModel, Instance};
use repwf_core::report::render;
use repwf_core::textfmt::from_text;
use repwf_core::tpn_build::{build_tpn, BuildOptions};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() < 2 {
        eprintln!("usage: analyze <instance.txt> | --example a|b|c [--dot overlap|strict]");
        std::process::exit(2);
    }
    let (inst, rest): (Instance, &[String]) = if args[1] == "--example" {
        let which = args.get(2).map(String::as_str).unwrap_or("a");
        let inst = match which {
            "a" => example_a(),
            "b" => example_b(),
            "c" => example_c(),
            other => {
                eprintln!("unknown example {other}");
                std::process::exit(2);
            }
        };
        (inst, &args[3..])
    } else {
        let text = std::fs::read_to_string(&args[1]).unwrap_or_else(|e| {
            eprintln!("cannot read {}: {e}", args[1]);
            std::process::exit(2);
        });
        let inst = from_text(&text).unwrap_or_else(|e| {
            eprintln!("cannot parse {}: {e}", args[1]);
            std::process::exit(2);
        });
        (inst, &args[2..])
    };

    if let Some(k) = rest.iter().position(|a| a == "--dot") {
        let model = match rest.get(k + 1).map(String::as_str) {
            Some("strict") => CommModel::Strict,
            _ => CommModel::Overlap,
        };
        match build_tpn(&inst, model, &BuildOptions::default()) {
            Ok(built) => {
                print!("{}", tpn::dot::to_dot(&built.net, &tpn::dot::DotOptions {
                    highlight: Vec::new(),
                    title: format!("{model} TPN"),
                    left_to_right: true,
                }));
                return;
            }
            Err(e) => {
                eprintln!("cannot build TPN: {e}");
                std::process::exit(1);
            }
        }
    }

    match render(&inst) {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("analysis failed: {e}");
            std::process::exit(1);
        }
    }
}
