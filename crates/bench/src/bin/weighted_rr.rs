//! Extension experiment: weighted round-robin vs. the paper's uniform
//! round-robin.
//!
//! §2 of the paper notes that uniform round-robin "may lead to a load
//! imbalance: more data sets could be allocated to faster processors" but
//! keeps the uniform rule. `repwf_core::weighted` lifts the restriction;
//! this study quantifies what the rule costs: for a stage replicated on a
//! fast and a slow processor with speed ratio `ρ`, uniform round-robin is
//! dictated by the slow replica (period `w/(2·Π_slow)`) while the optimal
//! `⌈ρ⌉:1`-ish weighting balances busy times.

use repwf_core::model::{CommModel, Instance, Mapping, Pipeline, Platform};
use repwf_core::period::{compute_period, Method};
use repwf_core::tpn_build::BuildOptions;
use repwf_core::weighted::{simulate_weighted, weighted_period, WeightedAllocation};

fn instance(speed_ratio: f64) -> Instance {
    let pipeline = Pipeline::new(vec![12.0, 0.001], vec![0.001]).unwrap();
    let mut platform = Platform::uniform(3, 1.0, 1000.0);
    platform.set_speed(0, speed_ratio);
    platform.set_speed(1, 1.0);
    let mapping = Mapping::new(vec![vec![0, 1], vec![2]]).unwrap();
    Instance::new(pipeline, platform, mapping).unwrap()
}

fn main() {
    println!("stage of work 12 on two replicas (speeds ρ and 1), overlap one-port\n");
    println!(
        "{:>6} {:>12} {:>14} {:>14} {:>10} {:>12}",
        "ρ", "uniform RR", "weighted", "(pattern)", "gain", "sim check"
    );
    for ratio in [1.0f64, 1.5, 2.0, 3.0, 4.0] {
        let inst = instance(ratio);
        let uniform = compute_period(&inst, CommModel::Overlap, Method::FullTpn).unwrap().period;
        // try integer weightings k:1 for the fast replica, keep the best
        let mut best = (uniform, "1:1".to_string(), WeightedAllocation::round_robin(&inst));
        for k in 1..=6usize {
            let alloc =
                WeightedAllocation::proportional(&[vec![k, 1], vec![1]], &inst).unwrap();
            let p = weighted_period(&inst, &alloc, CommModel::Overlap, &BuildOptions::default())
                .unwrap();
            if p < best.0 {
                best = (p, format!("{k}:1"), alloc);
            }
        }
        let sim = simulate_weighted(&inst, &best.2, CommModel::Overlap, 8000);
        println!(
            "{:>6.1} {:>12.4} {:>14.4} {:>14} {:>9.1}% {:>12.4}",
            ratio,
            uniform,
            best.0,
            best.1,
            100.0 * (uniform / best.0 - 1.0),
            sim
        );
    }
    println!("\nuniform round-robin loses up to the full speed spread; the weighted");
    println!("extension recovers it while staying exactly analyzable via the same TPN.");
}
