//! Verifies every numeric claim of the paper against this implementation
//! and prints a paper-vs-measured table (the source for EXPERIMENTS.md).

use repwf_core::cycle_time::max_cycle_time;
use repwf_core::fixtures::{example_a, example_b, example_c};
use repwf_core::model::CommModel;
use repwf_core::overlap_poly::pattern_info;
use repwf_core::paths::instance_num_paths;
use repwf_core::period::{compute_period, Method};
use repwf_sim::{simulate, SimOptions};

struct Check {
    what: &'static str,
    paper: String,
    measured: String,
    ok: bool,
}

fn close(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol
}

fn main() {
    let mut checks: Vec<Check> = Vec::new();
    let a = example_a();
    let b = example_b();
    let c = example_c();

    // §2/Table 1: path structure.
    checks.push(Check {
        what: "Example A: number of paths m (Prop. 1)",
        paper: "6".into(),
        measured: format!("{}", instance_num_paths(&a).unwrap()),
        ok: instance_num_paths(&a) == Some(6),
    });

    // §4.1: Example A overlap.
    let ra = compute_period(&a, CommModel::Overlap, Method::Polynomial).unwrap();
    checks.push(Check {
        what: "Example A overlap: period (P0 out-port critical)",
        paper: "189".into(),
        measured: format!("{:.4}", ra.period),
        ok: close(ra.period, 189.0, 1e-6) && ra.has_critical_resource(1e-9),
    });

    // §4.2: Example A strict.
    let (mct_s, who) = max_cycle_time(&a, CommModel::Strict);
    let rs = compute_period(&a, CommModel::Strict, Method::FullTpn).unwrap();
    checks.push(Check {
        what: "Example A strict: M_ct at P2",
        paper: "215.8".into(),
        measured: format!("{:.4} at P{}", mct_s, who.proc),
        ok: close(mct_s, 1295.0 / 6.0, 1e-6) && who.proc == 2,
    });
    checks.push(Check {
        what: "Example A strict: period > M_ct (no critical resource)",
        paper: "230.7".into(),
        measured: format!("{:.4}", rs.period),
        ok: close(rs.period, 1384.0 / 6.0, 1e-6) && !rs.has_critical_resource(1e-9),
    });

    // §4.1: Example B overlap.
    let rb = compute_period(&b, CommModel::Overlap, Method::Polynomial).unwrap();
    checks.push(Check {
        what: "Example B overlap: M_ct (P2 out-port)",
        paper: "258.3".into(),
        measured: format!("{:.4}", rb.mct),
        ok: close(rb.mct, 3100.0 / 12.0, 1e-6),
    });
    checks.push(Check {
        what: "Example B overlap: period (no critical resource)",
        paper: "291.7".into(),
        measured: format!("{:.4}", rb.period),
        ok: close(rb.period, 3500.0 / 12.0, 1e-6) && !rb.has_critical_resource(1e-9),
    });

    // Appendix A / Fig. 13: Example C decomposition.
    let info = pattern_info(&c.mapping.replica_counts(), 1);
    checks.push(Check {
        what: "Example C: F1 decomposition (p, u, v, c, m)",
        paper: "(3, 7, 9, 55, 10395)".into(),
        measured: format!(
            "({}, {}, {}, {}, {})",
            info.g,
            info.u,
            info.v,
            info.c.unwrap(),
            info.m.unwrap()
        ),
        ok: info.g == 3 && info.u == 7 && info.v == 9 && info.c == Some(55) && info.m == Some(10395),
    });

    // Cross-method agreement (engine self-check on the fixtures).
    // Completions of a replicated last stage legitimately finish out of
    // order, so the window estimator converges as O(1/window): give it a
    // long run and a 0.1% tolerance.
    for (name, inst) in [("Example A", &a), ("Example B", &b)] {
        for model in [CommModel::Overlap, CommModel::Strict] {
            let exact = compute_period(inst, model, Method::FullTpn).unwrap();
            let sim = simulate(inst, model, &SimOptions { data_sets: 60_000, record_ops: false });
            let est = sim.exact_period(1e-9).unwrap_or_else(|| sim.period_estimate());
            checks.push(Check {
                what: Box::leak(
                    format!("{name} {model}: TPN analysis vs discrete-event simulation").into_boxed_str(),
                ),
                paper: format!("{:.4}", exact.period),
                measured: format!("{est:.4}"),
                ok: close(est, exact.period, 1e-3 * exact.period),
            });
        }
    }

    println!("{:<58} {:>22} {:>22} {:>5}", "check", "paper", "measured", "ok");
    let mut all_ok = true;
    for ch in &checks {
        all_ok &= ch.ok;
        println!(
            "{:<58} {:>22} {:>22} {:>5}",
            ch.what,
            ch.paper,
            ch.measured,
            if ch.ok { "yes" } else { "NO" }
        );
    }
    if !all_ok {
        std::process::exit(1);
    }
    println!("\nall {} checks pass", checks.len());
}
