//! Ablation study beyond Table 2: how the period / `M_ct` gap depends on
//! the replication structure (strict one-port model).
//!
//! Table 2 only counts *whether* a gap exists. This study sweeps the
//! platform size (hence the typical replication factor) for fixed 3-stage
//! pipelines and reports, per size: the fraction of instances without a
//! critical resource, and the mean/max relative gap. It quantifies the
//! intuition behind the paper's examples — gaps appear once several stages
//! are replicated with interfering round-robin orders, and grow with the
//! interference, then wash out when times are strongly heterogeneous.
//!
//! Usage: `gap_study [--per-size N] [--threads K]`

use repwf_core::model::CommModel;
use repwf_gen::campaign::run_campaign;
use repwf_gen::sampler::{GenConfig, Range};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut per_size = 400usize;
    let mut threads = repwf_par::max_threads();
    let mut k = 1;
    while k < args.len() {
        match args[k].as_str() {
            "--per-size" => {
                k += 1;
                per_size = args[k].parse().expect("--per-size N");
            }
            "--threads" => {
                k += 1;
                threads = args[k].parse().expect("--threads K");
            }
            other => panic!("unknown argument {other}"),
        }
        k += 1;
    }

    println!("strict one-port, 3-stage pipelines, computation times = 1, comm 5..10");
    println!(
        "{:>7} {:>10} {:>16} {:>12} {:>12}",
        "procs", "runs", "no-crit (frac)", "mean gap%", "max gap%"
    );
    for procs in [3usize, 5, 7, 9, 12, 15, 18] {
        let cfg = GenConfig {
            stages: 3,
            procs,
            comp: Range::constant(1.0),
            comm: Range::new(5.0, 10.0),
        };
        let res = run_campaign(&cfg, CommModel::Strict, per_size, 777, threads, 400_000);
        let no_crit = res.count_no_critical(repwf_gen::campaign::GAP_REL_TOL);
        let gaps: Vec<f64> = res
            .outcomes
            .iter()
            .filter(|o| o.no_critical_resource(repwf_gen::campaign::GAP_REL_TOL))
            .map(|o| o.gap() * 100.0)
            .collect();
        let mean_gap = if gaps.is_empty() { 0.0 } else { gaps.iter().sum::<f64>() / gaps.len() as f64 };
        println!(
            "{:>7} {:>10} {:>8} ({:>5.2}%) {:>12.2} {:>12.2}",
            procs,
            res.outcomes.len(),
            no_crit,
            100.0 * no_crit as f64 / res.outcomes.len() as f64,
            mean_gap,
            res.max_gap() * 100.0
        );
    }
    println!("\n(one-to-one platforms — procs = stages — can never show a gap;");
    println!("interference needs at least two replicated neighbouring stages)");
}
