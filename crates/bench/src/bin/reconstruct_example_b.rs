//! Recovers the Example B (Fig. 6) transfer-time matrix by exhaustive
//! search.
//!
//! Example B: `S0` on {P0,P1,P2}, `S1` on {P3..P6}, computation times 100,
//! transfer times ∈ {100, 1000} (Figures 6/10). Published values (overlap
//! one-port): `M_ct = 258.3` — the out-port of `P2`, i.e. `3100/12` — and
//! actual period `291.7 = 3500/12`, i.e. *no* critical resource. This
//! program tries all `2^12` {100,1000} matrices and prints those matching.

use repwf_core::cycle_time::max_cycle_time;
use repwf_core::model::{CommModel, Instance, Mapping, Pipeline, Platform};
use repwf_core::period::{compute_period, Method};

fn build(times: &[[f64; 4]; 3]) -> Instance {
    let pipeline = Pipeline::new(vec![300.0, 400.0], vec![1.0]).unwrap();
    let mut platform = Platform::uniform(7, 1.0, 1.0);
    for u in 0..3 {
        platform.set_speed(u, 3.0); // 300/3 = 100 per data set slot
    }
    for u in 3..7 {
        platform.set_speed(u, 4.0);
    }
    for (s, row) in times.iter().enumerate() {
        for (r, &t) in row.iter().enumerate() {
            platform.set_bandwidth(s, 3 + r, 1.0 / t);
        }
    }
    let mapping = Mapping::new(vec![vec![0, 1, 2], vec![3, 4, 5, 6]]).unwrap();
    Instance::new(pipeline, platform, mapping).unwrap()
}

fn main() {
    let mut found = 0;
    for mask in 0u32..(1 << 12) {
        let mut times = [[0.0f64; 4]; 3];
        for k in 0..12 {
            times[k / 4][k % 4] = if mask & (1 << k) != 0 { 1000.0 } else { 100.0 };
        }
        let inst = build(&times);
        let (mct, who) = max_cycle_time(&inst, CommModel::Overlap);
        if who.proc != 2 || (mct - 3100.0 / 12.0).abs() > 1e-6 {
            continue;
        }
        let r = compute_period(&inst, CommModel::Overlap, Method::Polynomial).unwrap();
        if (r.period - 3500.0 / 12.0).abs() > 1e-6 {
            continue;
        }
        found += 1;
        if found <= 12 {
            println!("SOLUTION {found}: {times:?} period={:.4} mct={:.4}", r.period, r.mct);
        }
    }
    println!("{found} matching matrices");
}
