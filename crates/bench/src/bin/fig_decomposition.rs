//! Regenerates **Figures 11, 13, 14**: Example C and the pattern
//! decomposition of Theorem 1.
//!
//! Example C replicates the four stages (5, 21, 27, 11)-fold. For the `F_1`
//! column (21 senders → 27 receivers) the paper derives `p = gcd = 3`
//! connected components, each made of `c = 55` copies of a `u×v = 7×9`
//! pattern, with `m = lcm(5,21,27,11) = 10395`. This program prints those
//! constants for every column, verifies them, and shows the pattern graph
//! statistics that make the polynomial algorithm possible.

use repwf_core::fixtures::example_c;
use repwf_core::model::CommModel;
use repwf_core::overlap_poly::{overlap_period, pattern_graph, pattern_info};
use repwf_core::period::{compute_period, Method};

fn main() {
    let inst = example_c();
    let replicas = inst.mapping.replica_counts();
    println!("Fig. 11 — Example C: stages replicated {replicas:?} on {} processors", {
        let s: usize = replicas.iter().sum();
        s
    });
    println!();
    println!(
        "{:<6} {:>10} {:>6} {:>6} {:>6} {:>8} {:>14} {:>16}",
        "column", "senders", "recv", "g", "u×v", "c", "m", "pattern edges"
    );
    for i in 0..replicas.len() - 1 {
        let info = pattern_info(&replicas, i);
        let g = pattern_graph(&inst, i, 0);
        println!(
            "F{:<5} {:>10} {:>6} {:>6} {:>6} {:>8} {:>14} {:>16}",
            i,
            replicas[i],
            replicas[i + 1],
            info.g,
            format!("{}x{}", info.u, info.v),
            info.c.map(|c| c.to_string()).unwrap_or_else(|| "-".into()),
            info.m.map(|m| m.to_string()).unwrap_or_else(|| "overflow".into()),
            g.num_edges()
        );
    }
    let f1 = pattern_info(&replicas, 1);
    println!(
        "\nFig. 13/14 — F1 column: each of the {} components is {} copies of a {}x{} pattern;",
        f1.g,
        f1.c.unwrap(),
        f1.u,
        f1.v
    );
    println!(
        "the polynomial algorithm analyzes only the {}-vertex pattern instead of the {}-row sub-TPN.",
        f1.u * f1.v,
        f1.m.unwrap()
    );

    let t0 = std::time::Instant::now();
    let analysis = overlap_period(&inst);
    let dt_poly = t0.elapsed();
    println!(
        "\noverlap period (Theorem 1): {:.4} per data set — computed in {:.2?} (bottleneck: {})",
        analysis.period, dt_poly, analysis.bottleneck
    );

    // Cross-check with the full TPN (m = 10395 rows, 72765 transitions).
    let t1 = std::time::Instant::now();
    let full = compute_period(&inst, CommModel::Overlap, Method::FullTpn).unwrap();
    println!(
        "overlap period (full TPN, {} transitions): {:.4} — computed in {:.2?}",
        full.num_paths * (2 * 4 - 1),
        full.period,
        t1.elapsed()
    );
    assert!(
        (analysis.period - full.period).abs() < 1e-6 * full.period,
        "Theorem 1 and the full TPN must agree"
    );
    println!("agreement verified.");
}
