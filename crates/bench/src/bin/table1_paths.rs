//! Regenerates **Table 1** (and the Fig. 2 mapping summary): the paths
//! followed by the first eight data sets of Example A.

use repwf_core::fixtures::example_a;
use repwf_core::paths::{instance_num_paths, paths};

fn main() {
    let inst = example_a();
    println!("Example A mapping (Fig. 2):");
    for i in 0..inst.num_stages() {
        let procs: Vec<String> =
            inst.mapping.procs(i).iter().map(|u| format!("P{u}")).collect();
        println!("  S{i} -> {}", procs.join(", "));
    }
    let m = instance_num_paths(&inst).expect("small lcm");
    println!("\nProposition 1: m = lcm(1,2,3,1) = {m} distinct paths\n");
    println!("Table 1: paths followed by the first input data");
    println!("{:<12} Path in the system", "Input data");
    for (j, path) in paths(&inst, 8).enumerate() {
        let hops: Vec<String> = path.iter().map(|u| format!("P{u}")).collect();
        println!("{:<12} {}", j, hops.join(" -> "));
    }
    println!("\n(data set i takes the same path as data set i - {m})");
}
