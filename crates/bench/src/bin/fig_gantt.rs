//! Regenerates the Gantt figures:
//!
//! * `a-strict` — Fig. 7: schedule of Example A under the strict model (the
//!   paper's "schedule without critical resource": every resource idles);
//! * `b-overlap` — Fig. 12: first periods of Example B (overlap model).
//!
//! Usage: `fig_gantt <a-strict|b-overlap> [--svg PATH] [--periods K]`
//! Prints ASCII art; `--svg` additionally writes an SVG file.

use repwf_core::fixtures::{example_a, example_b};
use repwf_core::model::CommModel;
use repwf_sim::gantt::build;
use repwf_sim::{simulate, SimOptions};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let which = args.get(1).map(String::as_str).unwrap_or("a-strict");
    let mut svg_path: Option<String> = None;
    let mut periods = 3usize;
    let mut k = 2;
    while k < args.len() {
        match args[k].as_str() {
            "--svg" => {
                k += 1;
                svg_path = Some(args[k].clone());
            }
            "--periods" => {
                k += 1;
                periods = args[k].parse().expect("--periods K");
            }
            other => panic!("unknown argument {other}"),
        }
        k += 1;
    }

    let (inst, model, title) = match which {
        "a-strict" => (example_a(), CommModel::Strict, "Fig. 7: Example A, strict one-port"),
        "a-overlap" => (example_a(), CommModel::Overlap, "Example A, overlap one-port"),
        "b-overlap" => (example_b(), CommModel::Overlap, "Fig. 12: Example B, overlap one-port"),
        other => panic!("unknown chart {other}"),
    };

    let report =
        repwf_core::period::compute_period(&inst, model, repwf_core::period::Method::Auto).unwrap();
    let m = report.num_paths as u64;
    let data_sets = m * (periods as u64 + 4);
    let sim = simulate(&inst, model, &SimOptions { data_sets, record_ops: true });

    // The paper's figures show the FIRST periods (0, 1, 2, …): the
    // unthrottled early stages run ahead of completions, so the tail of the
    // schedule contains no early-stage work at all.
    let p_big = report.period * m as f64; // one full TPN period
    let t0 = 0.0;
    let t1 = periods as f64 * p_big;
    let chart = build(&inst, model, &sim, t0, t1);

    println!("{title}");
    println!(
        "period = {:.4} per data set (M_ct = {:.4}, critical resource: {})\n",
        report.period,
        report.mct,
        if report.has_critical_resource(1e-9) { "yes" } else { "NO — every resource idles" }
    );
    print!("{}", chart.to_ascii(110));
    println!("\nidle fractions over the window:");
    for &row in &chart.rows {
        let idle = chart.idle_fraction(row, t0);
        println!("  {:?}: {:.1}% idle", row, idle * 100.0);
    }
    if let Some(path) = svg_path {
        std::fs::write(&path, chart.to_svg()).expect("write svg");
        println!("SVG written to {path}");
    }
}
