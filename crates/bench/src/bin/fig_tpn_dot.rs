//! Regenerates the TPN figures as Graphviz DOT:
//!
//! * `overlap` — Fig. 4: complete overlap-model TPN of Example A (the
//!   constraint families of Figs. 3a–3d are its place groups);
//! * `strict` — Fig. 5b: complete strict-model TPN of Example A;
//! * `strict-critical` — Fig. 8: same net with the critical circuit
//!   highlighted (the paper's "complex critical cycles");
//! * `overlap-critical` — overlap net with its critical circuit;
//! * `subtpn-a-f1` — Fig. 9: sub-TPN of the `F_1` transfers of Example A;
//! * `subtpn-b-f0` — Fig. 10: sub-TPN of the `F_0` transfers of Example B.
//!
//! Usage: `fig_tpn_dot <which> [output.dot]` (stdout by default).

use repwf_core::fixtures::{example_a, example_b};
use repwf_core::model::CommModel;
use repwf_core::tpn_build::{build_tpn, comm_sub_tpn, BuildOptions};
use tpn::dot::{to_dot, DotOptions};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let which = args.get(1).map(String::as_str).unwrap_or("overlap");
    let opts = BuildOptions::default();

    let (net, highlight, title) = match which {
        "overlap" => {
            let built = build_tpn(&example_a(), CommModel::Overlap, &opts).unwrap();
            (built.net, Vec::new(), "Fig. 4: Example A, overlap one-port TPN")
        }
        "strict" => {
            let built = build_tpn(&example_a(), CommModel::Strict, &opts).unwrap();
            (built.net, Vec::new(), "Fig. 5b: Example A, strict one-port TPN")
        }
        "overlap-critical" | "strict-critical" => {
            let model = if which.starts_with("overlap") { CommModel::Overlap } else { CommModel::Strict };
            let built = build_tpn(&example_a(), model, &opts).unwrap();
            let sol = tpn::analysis::period(&built.net).unwrap().unwrap();
            eprintln!(
                "critical circuit: {} transitions, {} tokens, period {:.4} ({:.4} per data set)",
                sol.critical.len(),
                sol.tokens,
                sol.period,
                sol.period / built.rows as f64
            );
            (built.net, sol.critical, "Fig. 8: Example A critical circuit")
        }
        "subtpn-a-f1" => {
            let sub = comm_sub_tpn(&example_a(), 1, &opts).unwrap();
            (sub.net, Vec::new(), "Fig. 9: sub-TPN of F1 (Example A)")
        }
        "subtpn-b-f0" => {
            let sub = comm_sub_tpn(&example_b(), 0, &opts).unwrap();
            (sub.net, Vec::new(), "Fig. 10: sub-TPN of F0 (Example B)")
        }
        other => panic!("unknown figure {other}"),
    };

    let dot = to_dot(
        &net,
        &DotOptions { highlight, title: title.to_string(), left_to_right: true },
    );
    match args.get(2) {
        Some(path) => {
            std::fs::write(path, dot).expect("write dot file");
            eprintln!("wrote {path}");
        }
        None => print!("{dot}"),
    }
}
