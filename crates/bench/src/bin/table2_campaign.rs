//! Regenerates **Table 2**: the random-experiment campaign counting mappings
//! without a critical resource, for both communication models.
//!
//! Usage:
//! ```text
//! table2_campaign [--scale F] [--full] [--threads N] [--csv PATH] [--seed S]
//! ```
//! `--full` runs the paper's 5152 experiments (minutes); the default scale
//! of 0.1 runs ~515 and preserves the qualitative shape. Strict-model
//! instances whose TPN exceeds the size cap fall back to the discrete-event
//! simulator and are counted in the `simulated` column.

use repwf_gen::table2::{format_results, run_row_with, table2_rows, to_csv};
use std::io::Write as _;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut scale = 0.1f64;
    let mut threads = repwf_par::max_threads();
    let mut csv_path: Option<String> = None;
    let mut seed = 20090301u64; // RR-2009-08 submission date flavour
    let mut k = 1;
    while k < args.len() {
        match args[k].as_str() {
            "--full" => scale = 1.0,
            "--scale" => {
                k += 1;
                scale = args[k].parse().expect("--scale F");
            }
            "--threads" => {
                k += 1;
                threads = args[k].parse().expect("--threads N");
            }
            "--csv" => {
                k += 1;
                csv_path = Some(args[k].clone());
            }
            "--seed" => {
                k += 1;
                seed = args[k].parse().expect("--seed S");
            }
            other => panic!("unknown argument {other}"),
        }
        k += 1;
    }

    let rows = table2_rows();
    let mut results = Vec::new();
    for (i, row) in rows.iter().enumerate() {
        let t0 = std::time::Instant::now();
        let res = run_row_with(
            row,
            scale,
            seed + 10_000_000 * i as u64,
            threads,
            400_000,
            Some(&|p: repwf_gen::Progress| {
                let _ = write!(
                    std::io::stderr().lock(),
                    "\rrow {}/{}: {}/{}",
                    i + 1,
                    rows.len(),
                    p.done,
                    p.total
                );
            }),
        );
        eprintln!(
            "\rrow {}/{}: {} experiments in {:.1}s ({} no-critical, {} simulated)",
            i + 1,
            rows.len(),
            res.total,
            t0.elapsed().as_secs_f64(),
            res.no_critical,
            res.simulated
        );
        results.push(res);
    }

    println!("\nTable 2 (scale {scale}):\n");
    print!("{}", format_results(&results));
    let total: usize = results.iter().map(|r| r.total).sum();
    let sim: usize = results.iter().map(|r| r.simulated).sum();
    println!("\ntotal experiments: {total} ({sim} resolved by simulation fallback)");
    if let Some(path) = csv_path {
        std::fs::write(&path, to_csv(&results)).expect("write CSV");
        println!("CSV written to {path}");
    }
}
