//! Extension experiment (the paper's stated future work): platforms whose
//! speeds and bandwidths are random variables.
//!
//! Sweeps the noise amplitude on Example B and a balanced synthetic
//! instance, reporting the expected period with 95% confidence intervals.
//! Observations: (i) zero noise reproduces the deterministic period;
//! (ii) mean-preserving noise slows coupled systems (Jensen's inequality
//! applied to the max-plus recursions); (iii) occasional severe slowdowns
//! ("degraded mode") hurt much more than the same mean jitter spread
//! uniformly.

use repwf_core::fixtures::example_b;
use repwf_core::model::{CommModel, Instance, Mapping, Pipeline, Platform};
use repwf_core::period::{compute_period, Method};
use repwf_sim::stochastic::{estimate_period_par, Noise};

fn balanced() -> Instance {
    // comp0 = comp1 = out-port = 6 per data set: maximally coupled.
    let pipeline = Pipeline::new(vec![6.0, 18.0], vec![6.0]).unwrap();
    let platform = Platform::uniform(4, 1.0, 1.0);
    let mapping = Mapping::new(vec![vec![0], vec![1, 2, 3]]).unwrap();
    Instance::new(pipeline, platform, mapping).unwrap()
}

fn sweep(name: &str, inst: &Instance, model: CommModel) {
    let det = compute_period(inst, model, Method::Auto).unwrap().period;
    println!("\n{name} ({model}), deterministic period {det:.4}");
    println!("{:<34} {:>12} {:>10} {:>10}", "noise", "E[period]", "±95% CI", "slowdown");
    let laws = [
        Noise::None,
        Noise::Uniform { amplitude: 0.2 },
        Noise::Uniform { amplitude: 0.5 },
        Noise::Uniform { amplitude: 0.8 },
        Noise::Degraded { p: 0.05, slow: 5.0 },
        Noise::Degraded { p: 0.20, slow: 3.0 },
    ];
    for noise in laws {
        // Replications fan out on the work-stealing pool; seeds are
        // per-replication, so results match the sequential run exactly.
        let est = estimate_period_par(inst, model, noise, 8000, 12, 2009, repwf_par::max_threads());
        println!(
            "{:<34} {:>12.4} {:>10.4} {:>9.2}%",
            format!("{noise:?}"),
            est.mean,
            est.ci95(),
            100.0 * (est.mean / det - 1.0)
        );
    }
}

fn main() {
    println!("dynamic platforms: expected period under mean-1 multiplicative noise");
    sweep("balanced 2-stage instance", &balanced(), CommModel::Overlap);
    sweep("Example B", &example_b(), CommModel::Overlap);
    sweep("Example B", &example_b(), CommModel::Strict);
}
