//! Recovers the Example A (Fig. 2) label assignment by constrained search.
//!
//! The source PDF's Figure 2 is unreadable as text, but its 18 numeric
//! labels survive: {147, 22, 104, 146, 23, 73, 128, 73, 77, 68, 13, 57,
//! 157, 67, 126, 165, 186, 192}. The paper states:
//!
//! * overlap one-port: period 189, critical resource = out-port of `P0`
//!   (⇒ the two `P0` links sum to 378: only {186, 192} fits);
//! * strict one-port: `M_ct = 215.8` (at `P2`, forced to `1295/6`) strictly
//!   below the period `≈ 230.7`.
//!
//! The program enumerates assignments of the remaining 16 labels to the 16
//! slots (7 computation times, 6 `S1→S2` links, 3 `S2→S3` links), prunes
//! with the published cycle-time constraints, validates the survivors with
//! the full engine, and prints every assignment reproducing all values.

use repwf_core::cycle_time::max_cycle_time;
use repwf_core::model::{CommModel, Instance, Mapping, Pipeline, Platform};
use repwf_core::period::{compute_period, Method};

const MCT_STRICT: f64 = 1295.0 / 6.0; // 215.8333 (rounds to the paper's 215.8)
const P_STRICT: f64 = 230.7; // paper value, 1 decimal
const P_OVERLAP: f64 = 189.0;

#[allow(clippy::too_many_arguments)]
fn build(
    w0: f64,
    w1: [f64; 2],
    w2: [f64; 3],
    w3: f64,
    t0: [f64; 2],
    t1: [f64; 3], // P1 -> P3,P4,P5
    t2: [f64; 3], // P2 -> P3,P4,P5
    t_out: [f64; 3],
) -> Instance {
    let pipeline = Pipeline::new(vec![w0, 1.0, 1.0, w3], vec![1.0, 1.0, 1.0]).unwrap();
    let mut platform = Platform::uniform(7, 1.0, 1.0);
    platform.set_speed(1, 1.0 / w1[0]);
    platform.set_speed(2, 1.0 / w1[1]);
    for (k, &w) in w2.iter().enumerate() {
        platform.set_speed(3 + k, 1.0 / w);
    }
    platform.set_bandwidth(0, 1, 1.0 / t0[0]);
    platform.set_bandwidth(0, 2, 1.0 / t0[1]);
    for k in 0..3 {
        platform.set_bandwidth(1, 3 + k, 1.0 / t1[k]);
        platform.set_bandwidth(2, 3 + k, 1.0 / t2[k]);
        platform.set_bandwidth(3 + k, 6, 1.0 / t_out[k]);
    }
    let mapping = Mapping::new(vec![vec![0], vec![1, 2], vec![3, 4, 5], vec![6]]).unwrap();
    Instance::new(pipeline, platform, mapping).unwrap()
}

fn main() {
    // The 16 labels once {186, 192} are reserved for P0's links.
    let vals: [f64; 16] = [
        147.0, 22.0, 104.0, 146.0, 23.0, 73.0, 128.0, 73.0, 77.0, 68.0, 13.0, 57.0, 157.0, 67.0,
        126.0, 165.0,
    ];
    let n = vals.len();
    let mut found = 0usize;
    let mut engine_calls = 0usize;
    let mut seen: Vec<String> = Vec::new();

    // Slot order for the permutation search:
    // 0: w0   1: w1(P1)  2: w1(P2)  3..6: w2(P3,P4,P5)  6: w3
    // 7..10: t1  10..13: t2  13..16: t_out
    // We enumerate as nested choices with pruning after each group.
    let idxs: Vec<usize> = (0..n).collect();
    for &t02_first in &[true, false] {
        let (t01, t02) = if t02_first { (192.0, 186.0) } else { (186.0, 192.0) };
        // strict cycle-time of P0 = w0 + (t01+t02)/2 ≤ MCT_STRICT
        for &i_w0 in &idxs {
            let w0 = vals[i_w0];
            if w0 + 189.0 > MCT_STRICT + 1e-9 {
                continue;
            }
            for &i_w1p2 in &idxs {
                if i_w1p2 == i_w0 {
                    continue;
                }
                let w1p2 = vals[i_w1p2];
                // P2 is the strict critical resource: 3·t02 + 3·w1p2 + Σt2 = 1295.
                let need_t2: f64 = 1295.0 - 3.0 * t02 - 3.0 * w1p2;
                if need_t2 <= 0.0 {
                    continue;
                }
                // choose ordered t2 triple with the required sum
                for a in 0..n {
                    for b in 0..n {
                        for c in 0..n {
                            if a == b || b == c || a == c {
                                continue;
                            }
                            if [a, b, c].contains(&i_w0) || [a, b, c].contains(&i_w1p2) {
                                continue;
                            }
                            let t2 = [vals[a], vals[b], vals[c]];
                            if (t2[0] + t2[1] + t2[2] - need_t2).abs() > 1e-6 {
                                continue;
                            }
                            let used = [i_w0, i_w1p2, a, b, c];
                            let rest: Vec<usize> =
                                idxs.iter().copied().filter(|k| !used.contains(k)).collect();
                            // remaining 11 values fill w1p1, w2×3, w3, t1×3, t_out×3
                            search_rest(
                                &vals, &rest, w0, w1p2, [t01, t02], t2, &mut found,
                                &mut engine_calls, &mut seen,
                            );
                        }
                    }
                }
            }
        }
    }
    println!(
        "{found} assignments found ({engine_calls} engine validations{})",
        if found >= 16 { "; stopped after 16 witnesses" } else { "" }
    );
}

#[allow(clippy::too_many_arguments)]
fn search_rest(
    vals: &[f64; 16],
    rest: &[usize],
    w0: f64,
    w1p2: f64,
    t0: [f64; 2],
    t2: [f64; 3],
    found: &mut usize,
    engine_calls: &mut usize,
    seen: &mut Vec<String>,
) {
    // The solution family is highly degenerate (receiver relabelings); a
    // handful of witnesses is enough, and the full sweep takes ~30 min.
    if *found >= 16 {
        return;
    }
    let r = rest.len(); // 11
    // pick w1p1
    for x in 0..r {
        let w1p1 = vals[rest[x]];
        // strict P1 cycle ≤ MCT: 3·t01 + 3·w1p1 + Σt1 ≤ 1295 checked later;
        // quick bound with minimal Σt1 ≥ sum of 3 smallest remaining.
        // pick w3
        for y in 0..r {
            if y == x {
                continue;
            }
            let w3 = vals[rest[y]];
            if w3 > P_OVERLAP + 1e-9 {
                continue; // overlap: w3 must not exceed the period
            }
            // pick ordered w2 triple
            let rem1: Vec<usize> =
                (0..r).filter(|&k| k != x && k != y).map(|k| rest[k]).collect();
            for p in 0..rem1.len() {
                for q in 0..rem1.len() {
                    for s in 0..rem1.len() {
                        if p == q || q == s || p == s {
                            continue;
                        }
                        let w2 = [vals[rem1[p]], vals[rem1[q]], vals[rem1[s]]];
                        if w2.iter().any(|&w| w / 3.0 > P_OVERLAP) {
                            continue;
                        }
                        let rem2: Vec<usize> = (0..rem1.len())
                            .filter(|&k| k != p && k != q && k != s)
                            .map(|k| rem1[k])
                            .collect();
                        // rem2 has 6 values: ordered t1 triple + ordered t_out triple
                        for i1 in 0..6 {
                            for i2 in 0..6 {
                                for i3 in 0..6 {
                                    if i1 == i2 || i2 == i3 || i1 == i3 {
                                        continue;
                                    }
                                    let t1 = [vals[rem2[i1]], vals[rem2[i2]], vals[rem2[i3]]];
                                    // strict P1 constraint
                                    if 3.0 * t0[0] + 3.0 * w1p1 + t1.iter().sum::<f64>()
                                        > 1295.0 + 1e-6
                                    {
                                        continue;
                                    }
                                    let tout_idx: Vec<usize> = (0..6)
                                        .filter(|&k| k != i1 && k != i2 && k != i3)
                                        .map(|k| rem2[k])
                                        .collect();
                                    let touts =
                                        [vals[tout_idx[0]], vals[tout_idx[1]], vals[tout_idx[2]]];
                                    // strict P6: Σtout/3 + w3 ≤ MCT (it receives
                                    // 6 files per 6 data sets, two per link pair):
                                    // Cin = Σtout·(2/6) = Σ/3.
                                    if touts.iter().sum::<f64>() / 3.0 + w3 > MCT_STRICT + 1e-6 {
                                        continue;
                                    }
                                    for t_out in perms3(touts) {
                                        // strict P3/P4/P5 cycle-times
                                        let mut ok = true;
                                        for k in 0..3 {
                                            let cin = (t1[k] + t2[k]) / 6.0;
                                            let cexec = cin + w2[k] / 3.0 + t_out[k] / 3.0;
                                            if cexec > MCT_STRICT + 1e-6 {
                                                ok = false;
                                                break;
                                            }
                                        }
                                        if !ok {
                                            continue;
                                        }
                                        let inst = build(
                                            w0,
                                            [w1p1, w1p2],
                                            w2,
                                            w3,
                                            t0,
                                            t1,
                                            t2,
                                            t_out,
                                        );
                                        *engine_calls += 1;
                                        let (mct, who) =
                                            max_cycle_time(&inst, CommModel::Strict);
                                        if who.proc != 2 || (mct - MCT_STRICT).abs() > 1e-6 {
                                            continue;
                                        }
                                        let ov = compute_period(
                                            &inst,
                                            CommModel::Overlap,
                                            Method::Polynomial,
                                        )
                                        .unwrap();
                                        if (ov.period - P_OVERLAP).abs() > 0.05
                                            || (ov.mct - P_OVERLAP).abs() > 0.05
                                        {
                                            continue;
                                        }
                                        let st = compute_period(
                                            &inst,
                                            CommModel::Strict,
                                            Method::FullTpn,
                                        )
                                        .unwrap();
                                        if (st.period - P_STRICT).abs() > 0.0501 {
                                            continue;
                                        }
                                        let key = format!(
                                            "w0={w0} w1=({w1p1},{w1p2}) w2={w2:?} w3={w3} \
                                             t0={t0:?} t1={t1:?} t2={t2:?} out={t_out:?}"
                                        );
                                        if !seen.contains(&key) {
                                            seen.push(key.clone());
                                            *found += 1;
                                            println!(
                                                "SOLUTION {found}: {key} strictP={:.4}",
                                                st.period
                                            );
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

fn perms3(v: [f64; 3]) -> Vec<[f64; 3]> {
    let idx = [[0, 1, 2], [0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]];
    idx.iter().map(|p| [v[p[0]], v[p[1]], v[p[2]]]).collect()
}
