//! Shared helpers for the benchmark / figure-regeneration harness.
//!
//! The real content of this crate is its binaries (`src/bin/*.rs`), one per
//! table or figure of the paper, and its criterion benches (`benches/`).
//! See DESIGN.md §5 for the artifact ↔ binary index.

/// Formats a floating period like the paper (one decimal).
pub fn fmt_period(p: f64) -> String {
    format!("{p:.1}")
}

/// Relative difference `|a − b| / max(|a|, |b|)`.
pub fn rel_diff(a: f64, b: f64) -> f64 {
    (a - b).abs() / a.abs().max(b.abs()).max(f64::MIN_POSITIVE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_matches_paper_style() {
        assert_eq!(fmt_period(215.8333), "215.8");
        assert_eq!(fmt_period(291.6666), "291.7");
    }

    #[test]
    fn rel_diff_symmetry() {
        assert_eq!(rel_diff(1.0, 2.0), rel_diff(2.0, 1.0));
        assert!(rel_diff(0.0, 0.0) == 0.0);
    }
}
