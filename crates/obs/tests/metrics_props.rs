//! Property tests: `MetricsSnapshot::merge` is associative and commutative —
//! snapshots folded in any grouping and any order produce identical totals,
//! the invariant that lets per-worker shards, per-process traces, and merged
//! campaign telemetry all use the same accumulator (the `CampaignAccum`
//! discipline).

use proptest::prelude::*;
use repwf_obs::{bucket_of, CounterId, MetricsSnapshot, SpanId, NUM_COUNTERS, NUM_SPANS};

/// Deterministic snapshot generator: splitmix64 over a seed, so every
/// property case builds its inputs from plain u64s the harness can report.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn random_snapshot(seed: u64) -> MetricsSnapshot {
    let mut s = seed;
    let mut snap = MetricsSnapshot::new();
    for i in 0..NUM_COUNTERS {
        snap.counters[i] = splitmix(&mut s) % 1000;
    }
    for i in 0..NUM_SPANS {
        let n = splitmix(&mut s) % 6;
        for _ in 0..n {
            let dur = splitmix(&mut s) % 1_000_000;
            let sp = &mut snap.spans[i];
            sp.count += 1;
            sp.sum_ns += dur;
            sp.min_ns = sp.min_ns.min(dur);
            sp.max_ns = sp.max_ns.max(dur);
            sp.buckets[bucket_of(dur)] += 1;
        }
    }
    snap
}

/// Fold `parts` with a seed-driven arbitrary grouping: repeatedly merge a
/// random adjacent pair until one snapshot remains.
fn fold_grouped(parts: &[MetricsSnapshot], mut grouping_seed: u64) -> MetricsSnapshot {
    let mut work: Vec<MetricsSnapshot> = parts.to_vec();
    while work.len() > 1 {
        let i = (splitmix(&mut grouping_seed) as usize) % (work.len() - 1);
        let right = work.remove(i + 1);
        work[i].merge(&right);
    }
    work.pop().unwrap_or_default()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_is_associative_and_commutative_at_arbitrary_grouping(
        n in 1usize..9,
        seed in 0u64..1_000_000,
        grouping_a in 0u64..1_000_000,
        grouping_b in 0u64..1_000_000,
    ) {
        let parts: Vec<MetricsSnapshot> =
            (0..n).map(|i| random_snapshot(seed.wrapping_add(i as u64 * 0x51ed))).collect();

        // Left fold is the reference.
        let mut reference = MetricsSnapshot::new();
        for p in &parts {
            reference.merge(p);
        }

        // Any grouping of the same sequence.
        prop_assert_eq!(fold_grouped(&parts, grouping_a), reference.clone());
        prop_assert_eq!(fold_grouped(&parts, grouping_b), reference.clone());

        // Any order: reverse, and a seed-driven shuffle.
        let mut rev = parts.clone();
        rev.reverse();
        prop_assert_eq!(fold_grouped(&rev, grouping_a), reference.clone());

        let mut shuffled = parts.clone();
        let mut s = grouping_b;
        for i in (1..shuffled.len()).rev() {
            let j = (splitmix(&mut s) as usize) % (i + 1);
            shuffled.swap(i, j);
        }
        prop_assert_eq!(fold_grouped(&shuffled, grouping_b), reference.clone());

        // Identity element.
        let mut with_identity = MetricsSnapshot::new();
        with_identity.merge(&reference);
        with_identity.merge(&MetricsSnapshot::new());
        prop_assert_eq!(with_identity, reference);
    }

    #[test]
    fn merge_totals_match_elementwise_sums(
        a_seed in 0u64..1_000_000,
        b_seed in 0u64..1_000_000,
    ) {
        let a = random_snapshot(a_seed);
        let b = random_snapshot(b_seed);
        let mut ab = a.clone();
        ab.merge(&b);
        for id in CounterId::ALL {
            prop_assert_eq!(ab.counter(id), a.counter(id) + b.counter(id));
        }
        for id in SpanId::ALL {
            let (sa, sb, sm) = (a.span(id), b.span(id), ab.span(id));
            prop_assert_eq!(sm.count, sa.count + sb.count);
            prop_assert_eq!(sm.sum_ns, sa.sum_ns + sb.sum_ns);
            prop_assert_eq!(sm.min_ns, sa.min_ns.min(sb.min_ns));
            prop_assert_eq!(sm.max_ns, sa.max_ns.max(sb.max_ns));
        }
    }
}
