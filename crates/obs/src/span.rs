//! Thread-local RAII span guards over a monotonic clock.
//!
//! `span(id)` costs one relaxed atomic load when telemetry is disabled and
//! returns an inert guard whose `Drop` is a no-op — the zero-cost facade the
//! bench gates rely on. When enabled, the guard records its duration into the
//! calling thread's metrics shard and (if a trace sink is installed) emits one
//! NDJSON span record on drop.

use crate::metrics::{self, SpanId};
use crate::sink;
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

thread_local! {
    static DEPTH: Cell<u32> = const { Cell::new(0) };
    static TID: Cell<u64> = const { Cell::new(u64::MAX) };
}

static NEXT_TID: AtomicU64 = AtomicU64::new(0);

/// Stable small integer identifying the calling thread in trace records.
/// Assigned in first-use order, so the thread that installs the sink (the CLI
/// main thread) is tid 0.
pub fn thread_id() -> u64 {
    TID.with(|t| {
        let v = t.get();
        if v != u64::MAX {
            v
        } else {
            let v = NEXT_TID.fetch_add(1, Relaxed);
            t.set(v);
            v
        }
    })
}

/// RAII guard for one timed span. Created by [`crate::span()`] / the `span!`
/// macro; records on drop.
pub struct SpanGuard {
    id: SpanId,
    start_ns: u64,
    live: bool,
}

pub(crate) fn start(id: SpanId) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard { id, start_ns: 0, live: false };
    }
    // Claim the thread id at span *start*: the command span opens before
    // any worker runs, pinning the main thread to tid 0 in traces.
    let _ = thread_id();
    DEPTH.with(|d| d.set(d.get() + 1));
    SpanGuard { id, start_ns: crate::now_ns(), live: true }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.live {
            return;
        }
        let dur_ns = crate::now_ns().saturating_sub(self.start_ns);
        let depth = DEPTH.with(|d| {
            let v = d.get() - 1;
            d.set(v);
            v
        });
        metrics::record_span(self.id, dur_ns);
        if crate::tracing() {
            sink::record_span(self.id.name(), thread_id(), depth, self.start_ns, dur_ns);
        }
    }
}
