//! `repwf-obs` — zero-overhead structured telemetry for the repwf stack.
//!
//! Three layers, all dependency-free:
//!
//! * **Spans** ([`span!`], [`SpanGuard`]): thread-local RAII guards timing a
//!   named phase on a monotonic clock.
//! * **Counters/histograms** ([`CounterId`], [`MetricsSnapshot`]): a typed
//!   registry sharded per worker thread (lock-free relaxed atomics on the hot
//!   path) whose snapshots merge associatively and commutatively — the same
//!   discipline as `CampaignAccum`.
//! * **Trace sink**: an NDJSON file (`repwf-trace/v1`) with one record per
//!   span/event and an FNV-checksummed footer, following the
//!   `repwf_dist::shard` writer conventions.
//!
//! **Overhead policy.** Telemetry is off by default; every instrumentation
//! site reduces to a single relaxed atomic load (`enabled()`) returning
//! `false`. Enabling metrics (`--metrics`) activates the sharded registry;
//! installing a trace sink (`--trace FILE`) additionally writes NDJSON
//! records. Telemetry *observes, never perturbs*: it must not change a single
//! output byte of any command at any thread count — the CLI test suite pins
//! that invariant.

mod metrics;
pub mod report;
mod sink;
mod span;

pub use metrics::{
    bucket_of, snapshot, CounterId, MetricsSnapshot, SpanId, SpanStat, NUM_BUCKETS, NUM_COUNTERS,
    NUM_SPANS,
};
pub use sink::Checksum;
pub use span::{thread_id, SpanGuard};

use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);
static TRACING: AtomicBool = AtomicBool::new(false);
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Whether any telemetry (metrics or tracing) is active. The only cost every
/// instrumentation site pays when telemetry is off.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Whether an NDJSON trace sink is installed.
#[inline]
pub fn tracing() -> bool {
    TRACING.load(Ordering::Relaxed)
}

/// Activate the metrics registry (idempotent; process-wide).
pub fn enable() {
    EPOCH.get_or_init(Instant::now);
    ENABLED.store(true, Ordering::SeqCst);
}

/// Nanoseconds since the process telemetry epoch (first `enable`).
#[inline]
pub fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Add `n` to a counter. A no-op (one relaxed load) unless telemetry is on.
#[inline]
pub fn counter_add(id: CounterId, n: u64) {
    if enabled() {
        metrics::add(id, n);
    }
}

/// Open a timed span; the returned guard records on drop. Inert (and
/// allocation-free) when telemetry is off.
#[inline]
pub fn span(id: SpanId) -> SpanGuard {
    span::start(id)
}

/// Open a timed span by variant name: `let _s = repwf_obs::span!(TpnBuild);`.
#[macro_export]
macro_rules! span {
    ($v:ident) => {
        $crate::span($crate::SpanId::$v)
    };
}

/// Emit a structured point event (e.g. a supervisor lease transition) to the
/// trace. No-op unless a sink is installed; extra fields are u64s (store f64s
/// as bit patterns per the format rule).
pub fn event(name: &'static str, fields: &[(&'static str, u64)]) {
    if tracing() {
        sink::record_event(name, thread_id(), now_ns(), fields);
    }
}

/// Install an NDJSON trace sink at `path` and enable telemetry. The header
/// record names `command` so `trace report` can label its output.
pub fn install_trace(path: &Path, command: &str) -> io::Result<()> {
    enable();
    sink::install(path, command)?;
    TRACING.store(true, Ordering::SeqCst);
    Ok(())
}

/// Flush the metrics snapshot into the trace (counter/spanstat records) and
/// write the checksummed footer. Idempotent: a second call is a no-op.
/// Call after the command span has dropped so its record reaches the file.
pub fn finish_trace() -> io::Result<()> {
    if !TRACING.swap(false, Ordering::SeqCst) {
        return Ok(());
    }
    sink::finish(&snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_roundtrip_validates() {
        let dir = std::env::temp_dir().join(format!("repwf_obs_rt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.ndjson");
        install_trace(&path, "selftest").unwrap();
        {
            let _outer = span!(Command);
            let _inner = span!(Solve);
            counter_add(CounterId::CsrBuilds, 2);
            event("lease_claim", &[("unit", 7), ("attempt", 1)]);
        }
        finish_trace().unwrap();

        let rep = report::read_trace(&path).unwrap();
        assert_eq!(rep.command, "selftest");
        assert!(rep.phases.iter().any(|p| p.name == "command" && p.count == 1));
        assert!(rep.phases.iter().any(|p| p.name == "solve" && p.count == 1));
        assert!(rep.events.iter().any(|(n, c)| n == "lease_claim" && *c == 1));
        // Counters are cumulative across the test process; ≥ what we added.
        let csr = rep
            .counters
            .iter()
            .find(|(n, _)| n == "csr_builds")
            .map(|(_, v)| *v)
            .unwrap_or(0);
        assert!(csr >= 2, "csr_builds counter missing from flush: {csr}");

        // Corrupting any checksummed byte must fail validation.
        let mut bytes = std::fs::read(&path).unwrap();
        let flip = bytes.iter().position(|&b| b == b'(').unwrap_or(40);
        bytes[flip] ^= 0x01;
        let bad = dir.join("bad.ndjson");
        std::fs::write(&bad, &bytes).unwrap();
        assert!(report::read_trace(&bad).is_err());

        // A truncated trace (no footer) must fail validation too.
        let text = String::from_utf8(std::fs::read(&path).unwrap()).unwrap();
        let truncated: String =
            text.lines().take(2).map(|l| format!("{l}\n")).collect();
        let trunc = dir.join("trunc.ndjson");
        std::fs::write(&trunc, truncated).unwrap();
        let err = report::read_trace(&trunc).unwrap_err();
        assert!(err.contains("footer"), "unexpected error: {err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disabled_span_is_inert() {
        // Cannot assert the global flag is off (other tests in this process
        // may have enabled it), but an inert guard must never underflow the
        // depth counter or panic — exercised by dropping guards in both
        // states.
        let g = span(SpanId::Mct);
        drop(g);
    }
}
