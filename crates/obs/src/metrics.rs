//! Typed counter/histogram registry with lock-free per-worker shards.
//!
//! Every worker thread that records a metric gets its own `Shard` of relaxed
//! atomics (no cross-thread contention on the hot path). Shards register in a
//! global list on first use; when a worker thread exits (scoped `repwf-par`
//! threads die at the end of each `par_map*` call) its shard is folded into a
//! retired accumulator so the registry never grows without bound. A
//! [`MetricsSnapshot`] is the plain-data union of the retired accumulator and
//! every live shard, and merges associatively/commutatively — the same
//! discipline as `CampaignAccum` in `repwf-gen`.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, LazyLock, Mutex};

/// Identifiers for every counter the stack records. Fixed at compile time so
/// shards are flat arrays and snapshot merges are branch-free loops.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CounterId {
    /// Full TPN constructions (`build_tpn_view_into`).
    TpnBuilds,
    /// In-place TPN retimings on the shape-preserving patch path.
    Retimes,
    /// Oracle solves that took the patched (no CSR, no Tarjan) path.
    PatchedSolves,
    /// CSR adjacency rebuilds in the max-plus workspace.
    CsrBuilds,
    /// Flat Tarjan condensations.
    TarjanRuns,
    /// Howard solves started without a reusable policy (cold).
    HowardSolvesCold,
    /// Howard solves that warm-started from a prior same-shape policy.
    HowardSolvesWarm,
    /// Policy-iteration rounds across cold solves.
    HowardItersCold,
    /// Policy-iteration rounds across warm solves.
    HowardItersWarm,
    /// Policy-iteration rounds across batched (multi-lane) solves.
    HowardItersBatched,
    /// Batched Howard passes (one condensation, k instances).
    BatchedPasses,
    /// Total instance lanes streamed through batched passes.
    BatchedLanes,
    /// `MctCache` evaluations.
    MctEvals,
    /// Stages whose cycle times had to be recomputed by `MctCache`.
    MctStageRecomputes,
    /// Stages served from the `MctCache` without recomputation.
    MctStageHits,
    /// Distinct shape groups routed by the batched campaign scheduler.
    ShapeGroups,
    /// Batch chunks dispatched (each chunk = one batched Howard task).
    BatchChunks,
    /// Experiments solved inside batch chunks.
    BatchedExperiments,
    /// Experiments that overflowed the batch cap and ran solo.
    SoloExperiments,
    /// Supervisor lease claims (fresh units).
    LeaseClaims,
    /// Supervisor lease heartbeats.
    LeaseHeartbeats,
    /// Supervisor takeovers of reclaimable leases.
    LeaseTakeovers,
    /// Straggler unit splits.
    LeaseSplits,
    /// Unit retries after a failed attempt.
    LeaseRetries,
}

pub const NUM_COUNTERS: usize = 24;

impl CounterId {
    pub const ALL: [CounterId; NUM_COUNTERS] = [
        CounterId::TpnBuilds,
        CounterId::Retimes,
        CounterId::PatchedSolves,
        CounterId::CsrBuilds,
        CounterId::TarjanRuns,
        CounterId::HowardSolvesCold,
        CounterId::HowardSolvesWarm,
        CounterId::HowardItersCold,
        CounterId::HowardItersWarm,
        CounterId::HowardItersBatched,
        CounterId::BatchedPasses,
        CounterId::BatchedLanes,
        CounterId::MctEvals,
        CounterId::MctStageRecomputes,
        CounterId::MctStageHits,
        CounterId::ShapeGroups,
        CounterId::BatchChunks,
        CounterId::BatchedExperiments,
        CounterId::SoloExperiments,
        CounterId::LeaseClaims,
        CounterId::LeaseHeartbeats,
        CounterId::LeaseTakeovers,
        CounterId::LeaseSplits,
        CounterId::LeaseRetries,
    ];

    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    pub fn name(self) -> &'static str {
        match self {
            CounterId::TpnBuilds => "tpn_builds",
            CounterId::Retimes => "retimes",
            CounterId::PatchedSolves => "patched_solves",
            CounterId::CsrBuilds => "csr_builds",
            CounterId::TarjanRuns => "tarjan_runs",
            CounterId::HowardSolvesCold => "howard_solves_cold",
            CounterId::HowardSolvesWarm => "howard_solves_warm",
            CounterId::HowardItersCold => "howard_iters_cold",
            CounterId::HowardItersWarm => "howard_iters_warm",
            CounterId::HowardItersBatched => "howard_iters_batched",
            CounterId::BatchedPasses => "batched_passes",
            CounterId::BatchedLanes => "batched_lanes",
            CounterId::MctEvals => "mct_evals",
            CounterId::MctStageRecomputes => "mct_stage_recomputes",
            CounterId::MctStageHits => "mct_stage_hits",
            CounterId::ShapeGroups => "shape_groups",
            CounterId::BatchChunks => "batch_chunks",
            CounterId::BatchedExperiments => "batched_experiments",
            CounterId::SoloExperiments => "solo_experiments",
            CounterId::LeaseClaims => "lease_claims",
            CounterId::LeaseHeartbeats => "lease_heartbeats",
            CounterId::LeaseTakeovers => "lease_takeovers",
            CounterId::LeaseSplits => "lease_splits",
            CounterId::LeaseRetries => "lease_retries",
        }
    }
}

/// Identifiers for every timed span. One entry per instrumented phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanId {
    /// Whole CLI command, install-to-finish (depth 0 on the main thread).
    Command,
    /// Full TPN construction.
    TpnBuild,
    /// In-place TPN retime (patch path).
    Retime,
    /// CSR adjacency rebuild.
    CsrBuild,
    /// Flat Tarjan condensation.
    Tarjan,
    /// Per-instance Howard cycle-ratio solve.
    Solve,
    /// Batched multi-lane Howard pass.
    BatchSolve,
    /// `M_ct` lower-bound evaluation.
    Mct,
    /// One campaign task (a batch chunk or a solo experiment) on a worker.
    Experiment,
}

pub const NUM_SPANS: usize = 9;

impl SpanId {
    pub const ALL: [SpanId; NUM_SPANS] = [
        SpanId::Command,
        SpanId::TpnBuild,
        SpanId::Retime,
        SpanId::CsrBuild,
        SpanId::Tarjan,
        SpanId::Solve,
        SpanId::BatchSolve,
        SpanId::Mct,
        SpanId::Experiment,
    ];

    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    pub fn name(self) -> &'static str {
        match self {
            SpanId::Command => "command",
            SpanId::TpnBuild => "tpn_build",
            SpanId::Retime => "retime",
            SpanId::CsrBuild => "csr_build",
            SpanId::Tarjan => "tarjan",
            SpanId::Solve => "solve",
            SpanId::BatchSolve => "batch_solve",
            SpanId::Mct => "mct",
            SpanId::Experiment => "experiment",
        }
    }
}

/// Log2 nanosecond histogram resolution: bucket `i` holds durations in
/// `[2^(i-1), 2^i)` ns (bucket 0 holds 0–1 ns). 40 buckets reach ~18 minutes.
pub const NUM_BUCKETS: usize = 40;

#[inline]
pub fn bucket_of(dur_ns: u64) -> usize {
    ((64 - dur_ns.leading_zeros()) as usize).min(NUM_BUCKETS - 1)
}

struct ShardSpan {
    count: AtomicU64,
    sum_ns: AtomicU64,
    min_ns: AtomicU64,
    max_ns: AtomicU64,
    buckets: [AtomicU64; NUM_BUCKETS],
}

impl ShardSpan {
    fn new() -> Self {
        ShardSpan {
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// One worker thread's private slice of the registry. All relaxed atomics:
/// only the owning thread writes, snapshots read racily (monotonic counters,
/// so a racy read is merely slightly stale, never wrong).
pub(crate) struct Shard {
    counters: [AtomicU64; NUM_COUNTERS],
    spans: [ShardSpan; NUM_SPANS],
}

impl Shard {
    fn new() -> Self {
        Shard {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            spans: std::array::from_fn(|_| ShardSpan::new()),
        }
    }

    fn drain_into(&self, snap: &mut MetricsSnapshot) {
        for (i, c) in self.counters.iter().enumerate() {
            snap.counters[i] += c.load(Relaxed);
        }
        for (i, s) in self.spans.iter().enumerate() {
            let dst = &mut snap.spans[i];
            dst.count += s.count.load(Relaxed);
            dst.sum_ns += s.sum_ns.load(Relaxed);
            dst.min_ns = dst.min_ns.min(s.min_ns.load(Relaxed));
            dst.max_ns = dst.max_ns.max(s.max_ns.load(Relaxed));
            for (j, b) in s.buckets.iter().enumerate() {
                dst.buckets[j] += b.load(Relaxed);
            }
        }
    }
}

static REGISTRY: Mutex<Vec<Arc<Shard>>> = Mutex::new(Vec::new());
static RETIRED: LazyLock<Mutex<MetricsSnapshot>> =
    LazyLock::new(|| Mutex::new(MetricsSnapshot::new()));

struct ShardHandle(Arc<Shard>);

impl ShardHandle {
    fn new() -> Self {
        let shard = Arc::new(Shard::new());
        REGISTRY.lock().unwrap().push(Arc::clone(&shard));
        ShardHandle(shard)
    }
}

impl Drop for ShardHandle {
    fn drop(&mut self) {
        // Fold this thread's totals into the retired accumulator and drop the
        // registry entry so repeated `par_map` calls don't leak shards.
        let mut retired = RETIRED.lock().unwrap();
        self.0.drain_into(&mut retired);
        drop(retired);
        REGISTRY.lock().unwrap().retain(|s| !Arc::ptr_eq(s, &self.0));
    }
}

thread_local! {
    static SHARD: ShardHandle = ShardHandle::new();
}

pub(crate) fn add(id: CounterId, n: u64) {
    let ok = SHARD
        .try_with(|h| {
            h.0.counters[id.index()].fetch_add(n, Relaxed);
        })
        .is_ok();
    if !ok {
        // Thread is tearing down its TLS; fold straight into the accumulator.
        RETIRED.lock().unwrap().counters[id.index()] += n;
    }
}

pub(crate) fn record_span(id: SpanId, dur_ns: u64) {
    let record = |s: &ShardSpan| {
        s.count.fetch_add(1, Relaxed);
        s.sum_ns.fetch_add(dur_ns, Relaxed);
        s.min_ns.fetch_min(dur_ns, Relaxed);
        s.max_ns.fetch_max(dur_ns, Relaxed);
        s.buckets[bucket_of(dur_ns)].fetch_add(1, Relaxed);
    };
    let ok = SHARD.try_with(|h| record(&h.0.spans[id.index()])).is_ok();
    if !ok {
        let mut retired = RETIRED.lock().unwrap();
        let dst = &mut retired.spans[id.index()];
        dst.count += 1;
        dst.sum_ns += dur_ns;
        dst.min_ns = dst.min_ns.min(dur_ns);
        dst.max_ns = dst.max_ns.max(dur_ns);
        dst.buckets[bucket_of(dur_ns)] += 1;
    }
}

/// Union of the retired accumulator and every live shard.
pub fn snapshot() -> MetricsSnapshot {
    let mut snap = RETIRED.lock().unwrap().clone();
    for shard in REGISTRY.lock().unwrap().iter() {
        shard.drain_into(&mut snap);
    }
    snap
}

/// Aggregated statistics for one span kind. `min_ns == u64::MAX` iff
/// `count == 0` (the identity element for `merge`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanStat {
    pub count: u64,
    pub sum_ns: u64,
    pub min_ns: u64,
    pub max_ns: u64,
    pub buckets: [u64; NUM_BUCKETS],
}

impl Default for SpanStat {
    fn default() -> Self {
        SpanStat { count: 0, sum_ns: 0, min_ns: u64::MAX, max_ns: 0, buckets: [0; NUM_BUCKETS] }
    }
}

impl SpanStat {
    /// Mean duration in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// Plain-data metrics totals. `merge` is associative and commutative with
/// `MetricsSnapshot::new()` as identity, so snapshots taken per worker, per
/// shard, or per process can be folded in any grouping and order and produce
/// identical totals — property-tested in `tests/metrics_props.rs`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub counters: [u64; NUM_COUNTERS],
    pub spans: [SpanStat; NUM_SPANS],
}

impl Default for MetricsSnapshot {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsSnapshot {
    pub fn new() -> Self {
        MetricsSnapshot {
            counters: [0; NUM_COUNTERS],
            spans: std::array::from_fn(|_| SpanStat::default()),
        }
    }

    pub fn counter(&self, id: CounterId) -> u64 {
        self.counters[id.index()]
    }

    pub fn span(&self, id: SpanId) -> &SpanStat {
        &self.spans[id.index()]
    }

    pub fn is_empty(&self) -> bool {
        self.counters.iter().all(|&c| c == 0) && self.spans.iter().all(|s| s.count == 0)
    }

    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (a, b) in self.counters.iter_mut().zip(other.counters.iter()) {
            *a += *b;
        }
        for (a, b) in self.spans.iter_mut().zip(other.spans.iter()) {
            a.count += b.count;
            a.sum_ns += b.sum_ns;
            a.min_ns = a.min_ns.min(b.min_ns);
            a.max_ns = a.max_ns.max(b.max_ns);
            for (x, y) in a.buckets.iter_mut().zip(b.buckets.iter()) {
                *x += *y;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enum_indices_match_all_order() {
        for (i, id) in CounterId::ALL.iter().enumerate() {
            assert_eq!(id.index(), i);
        }
        for (i, id) in SpanId::ALL.iter().enumerate() {
            assert_eq!(id.index(), i);
        }
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn merge_identity_and_accumulation() {
        let mut a = MetricsSnapshot::new();
        a.counters[CounterId::CsrBuilds.index()] = 3;
        a.spans[SpanId::Solve.index()] = SpanStat {
            count: 2,
            sum_ns: 100,
            min_ns: 40,
            max_ns: 60,
            buckets: {
                let mut b = [0; NUM_BUCKETS];
                b[bucket_of(40)] += 1;
                b[bucket_of(60)] += 1;
                b
            },
        };
        let mut id = MetricsSnapshot::new();
        id.merge(&a);
        assert_eq!(id, a);

        let mut b = MetricsSnapshot::new();
        b.counters[CounterId::CsrBuilds.index()] = 4;
        b.spans[SpanId::Solve.index()] =
            SpanStat { count: 1, sum_ns: 10, min_ns: 10, max_ns: 10, buckets: [0; NUM_BUCKETS] };
        let mut ab = a.clone();
        ab.merge(&b);
        assert_eq!(ab.counter(CounterId::CsrBuilds), 7);
        let s = ab.span(SpanId::Solve);
        assert_eq!((s.count, s.sum_ns, s.min_ns, s.max_ns), (3, 110, 10, 60));
    }
}
