//! NDJSON trace sink with an FNV-checksummed footer.
//!
//! File layout (format `repwf-trace/v1`, mirroring the `repwf-shard/v1`
//! conventions from `repwf_dist::shard`):
//!
//! ```text
//! {"kind":"trace","format":"repwf-trace/v1","command":"campaign"}
//! {"kind":"span","name":"tpn_build","tid":0,"depth":1,"start_ns":...,"dur_ns":...}
//! {"kind":"event","name":"lease_claim","tid":0,"at_ns":...,"unit":3,...}
//! {"kind":"counter","name":"csr_builds","value":12}
//! {"kind":"spanstat","name":"solve","count":80,"sum_ns":...,"min_ns":...,"max_ns":...}
//! {"kind":"footer","records":96,"total_ns":...,"checksum":"<fnv1a64 hex>"}
//! ```
//!
//! Every record is one line; all values are u64 (durations are integer
//! nanoseconds — any f64 a future record needs must be stored as its u64 bit
//! pattern, the same rule the shard format uses). The checksum is FNV-1a/64
//! over every byte of every line before the footer, newlines included, so
//! `repwf trace report` can detect truncation and corruption exactly like the
//! shard scanner does. `records` counts the checksummed lines.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

/// FNV-1a 64-bit running checksum (same parameters as `repwf_dist::shard`).
pub struct Checksum(u64);

impl Checksum {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    pub fn new() -> Self {
        Checksum(Self::OFFSET)
    }

    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(Self::PRIME);
        }
        self.0 = h;
    }

    pub fn hex(&self) -> String {
        format!("{:016x}", self.0)
    }
}

impl Default for Checksum {
    fn default() -> Self {
        Self::new()
    }
}

struct TraceSink {
    w: BufWriter<File>,
    sum: Checksum,
    records: u64,
    start_ns: u64,
}

impl TraceSink {
    fn write_line(&mut self, line: &str) -> io::Result<()> {
        self.w.write_all(line.as_bytes())?;
        self.w.write_all(b"\n")?;
        self.sum.update(line.as_bytes());
        self.sum.update(b"\n");
        self.records += 1;
        Ok(())
    }
}

static SINK: Mutex<Option<TraceSink>> = Mutex::new(None);

pub(crate) fn install(path: &Path, command: &str) -> io::Result<()> {
    let file = File::create(path)?;
    let mut sink = TraceSink {
        w: BufWriter::new(file),
        sum: Checksum::new(),
        records: 0,
        start_ns: crate::now_ns(),
    };
    sink.write_line(&format!(
        "{{\"kind\":\"trace\",\"format\":\"repwf-trace/v1\",\"command\":\"{command}\"}}"
    ))?;
    *SINK.lock().unwrap() = Some(sink);
    Ok(())
}

/// Append one record line if a sink is installed. Errors are swallowed here
/// (spans drop in hot paths that cannot return `io::Result`); `finish` flushes
/// with error propagation, so a dying disk still fails the command visibly.
fn append(line: &str) {
    if let Some(sink) = SINK.lock().unwrap().as_mut() {
        let _ = sink.write_line(line);
    }
}

pub(crate) fn record_span(name: &str, tid: u64, depth: u32, start_ns: u64, dur_ns: u64) {
    append(&format!(
        "{{\"kind\":\"span\",\"name\":\"{name}\",\"tid\":{tid},\"depth\":{depth},\
         \"start_ns\":{start_ns},\"dur_ns\":{dur_ns}}}"
    ));
}

pub(crate) fn record_event(name: &str, tid: u64, at_ns: u64, fields: &[(&str, u64)]) {
    let mut line = format!("{{\"kind\":\"event\",\"name\":\"{name}\",\"tid\":{tid},\"at_ns\":{at_ns}");
    for (k, v) in fields {
        line.push_str(&format!(",\"{k}\":{v}"));
    }
    line.push('}');
    append(&line);
}

/// Flush the final metrics snapshot and the checksummed footer, then close.
/// Counters at zero and spans never entered are omitted (the reader treats
/// absence as zero).
pub(crate) fn finish(snap: &crate::MetricsSnapshot) -> io::Result<()> {
    let Some(mut sink) = SINK.lock().unwrap().take() else {
        return Ok(());
    };
    // Wall time ends here, before the flush/fsync cascade below: the
    // footer's total_ns measures the traced command, not disk latency —
    // `trace report --min-coverage` holds spans accountable to it.
    let total_ns = crate::now_ns().saturating_sub(sink.start_ns);
    for id in crate::CounterId::ALL {
        let v = snap.counter(id);
        if v > 0 {
            sink.write_line(&format!(
                "{{\"kind\":\"counter\",\"name\":\"{}\",\"value\":{v}}}",
                id.name()
            ))?;
        }
    }
    for id in crate::SpanId::ALL {
        let s = snap.span(id);
        if s.count > 0 {
            sink.write_line(&format!(
                "{{\"kind\":\"spanstat\",\"name\":\"{}\",\"count\":{},\"sum_ns\":{},\
                 \"min_ns\":{},\"max_ns\":{}}}",
                id.name(),
                s.count,
                s.sum_ns,
                s.min_ns,
                s.max_ns
            ))?;
        }
    }
    // Durability discipline from the shard writer: data is flushed and synced
    // before the footer is appended, so a footer's presence certifies every
    // checksummed byte above it reached the file.
    sink.w.flush()?;
    sink.w.get_ref().sync_all()?;
    let footer = format!(
        "{{\"kind\":\"footer\",\"records\":{},\"total_ns\":{},\"checksum\":\"{}\"}}",
        sink.records,
        total_ns,
        sink.sum.hex()
    );
    sink.w.write_all(footer.as_bytes())?;
    sink.w.write_all(b"\n")?;
    sink.w.flush()?;
    sink.w.get_ref().sync_all()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Classic FNV-1a/64 test vectors.
        let mut c = Checksum::new();
        assert_eq!(c.hex(), "cbf29ce484222325");
        c.update(b"a");
        assert_eq!(c.hex(), "af63dc4c8601ec8c");
        let mut c2 = Checksum::new();
        c2.update(b"foobar");
        assert_eq!(c2.hex(), "85944171f73967e8");
    }
}
