//! Trace file reader and summarizer backing `repwf trace report`.
//!
//! Records are flat single-line JSON objects whose values are either quoted
//! strings (no escapes — the writer only emits fixed identifiers) or u64
//! integers, so a tiny purpose-built scanner suffices. The reader validates
//! the header format tag, the footer record count, and the FNV-1a/64 checksum
//! before summarizing; a truncated or corrupted trace is an error, never a
//! silently partial report.

use crate::sink::Checksum;
use std::fs;
use std::path::Path;

#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Str(String),
    Num(u64),
}

/// One parsed record line: ordered `(key, value)` pairs.
#[derive(Clone, Debug)]
pub struct Record {
    pub fields: Vec<(String, Value)>,
}

impl Record {
    pub fn str_field(&self, key: &str) -> Option<&str> {
        self.fields.iter().find_map(|(k, v)| match v {
            Value::Str(s) if k == key => Some(s.as_str()),
            _ => None,
        })
    }

    pub fn num_field(&self, key: &str) -> Option<u64> {
        self.fields.iter().find_map(|(k, v)| match v {
            Value::Num(n) if k == key => Some(*n),
            _ => None,
        })
    }
}

/// Parse one flat record line. Strict about shape (it guards CI validation)
/// but independent of field order.
pub fn parse_line(line: &str) -> Result<Record, String> {
    let bytes = line.as_bytes();
    let mut pos = 0usize;
    let err = |what: &str, pos: usize| format!("trace record byte {pos}: {what}");
    if bytes.first() != Some(&b'{') {
        return Err(err("expected '{'", 0));
    }
    pos += 1;
    let mut fields = Vec::new();
    loop {
        if bytes.get(pos) == Some(&b'}') {
            pos += 1;
            break;
        }
        if bytes.get(pos) != Some(&b'"') {
            return Err(err("expected '\"' starting a key", pos));
        }
        pos += 1;
        let kstart = pos;
        while pos < bytes.len() && bytes[pos] != b'"' {
            pos += 1;
        }
        if pos >= bytes.len() {
            return Err(err("unterminated key", kstart));
        }
        let key = line[kstart..pos].to_string();
        pos += 1;
        if bytes.get(pos) != Some(&b':') {
            return Err(err("expected ':'", pos));
        }
        pos += 1;
        let value = if bytes.get(pos) == Some(&b'"') {
            pos += 1;
            let vstart = pos;
            while pos < bytes.len() && bytes[pos] != b'"' {
                pos += 1;
            }
            if pos >= bytes.len() {
                return Err(err("unterminated string value", vstart));
            }
            let v = Value::Str(line[vstart..pos].to_string());
            pos += 1;
            v
        } else {
            let vstart = pos;
            while pos < bytes.len() && bytes[pos].is_ascii_digit() {
                pos += 1;
            }
            if pos == vstart {
                return Err(err("expected a u64 or quoted string value", pos));
            }
            let n = line[vstart..pos]
                .parse::<u64>()
                .map_err(|e| err(&format!("bad integer: {e}"), vstart))?;
            Value::Num(n)
        };
        fields.push((key, value));
        match bytes.get(pos) {
            Some(&b',') => {
                pos += 1;
                if bytes.get(pos) == Some(&b'}') {
                    return Err(err("trailing comma", pos));
                }
            }
            Some(&b'}') => {}
            _ => return Err(err("expected ',' or '}'", pos)),
        }
    }
    if pos != bytes.len() {
        return Err(err("trailing bytes after '}'", pos));
    }
    Ok(Record { fields })
}

/// Per-phase (per span name) totals with exact percentiles computed from the
/// raw span records.
#[derive(Clone, Debug)]
pub struct PhaseStat {
    pub name: String,
    pub count: u64,
    pub sum_ns: u64,
    pub min_ns: u64,
    pub max_ns: u64,
    pub p50_ns: u64,
    pub p95_ns: u64,
    pub p99_ns: u64,
}

/// Per-thread busy time: the sum of that thread's depth-0 spans (top-level
/// work items — nested spans are already inside them).
#[derive(Clone, Debug)]
pub struct ThreadStat {
    pub tid: u64,
    pub busy_ns: u64,
    pub spans: u64,
}

#[derive(Clone, Debug)]
pub struct TraceReport {
    pub command: String,
    /// Checksummed record lines (header + spans + events + flush records).
    pub records: u64,
    /// Wall time from sink install to footer, in nanoseconds.
    pub total_ns: u64,
    pub phases: Vec<PhaseStat>,
    pub counters: Vec<(String, u64)>,
    /// Event name → occurrence count.
    pub events: Vec<(String, u64)>,
    pub threads: Vec<ThreadStat>,
    /// Fraction of `total_ns` covered by the main thread's top-level spans.
    pub coverage: f64,
    /// Max/mean busy-time ratio across worker threads (1.0 = perfectly even,
    /// also reported when there are no worker spans to compare).
    pub imbalance: f64,
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Read, validate (header tag, checksum, record count), and summarize a trace.
pub fn read_trace(path: &Path) -> Result<TraceReport, String> {
    let data = fs::read(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let text = String::from_utf8(data).map_err(|_| "trace is not valid UTF-8".to_string())?;
    let mut sum = Checksum::new();
    let mut lines = 0u64;
    let mut command = String::new();
    let mut footer: Option<Record> = None;
    // name → raw durations; collected per phase for exact percentiles.
    let mut durs: Vec<(String, Vec<u64>)> = Vec::new();
    let mut counters: Vec<(String, u64)> = Vec::new();
    let mut events: Vec<(String, u64)> = Vec::new();
    let mut threads: Vec<ThreadStat> = Vec::new();
    let mut main_tid = 0u64;

    for line in text.lines() {
        if footer.is_some() {
            return Err("records after the footer".to_string());
        }
        let rec = parse_line(line)?;
        let kind = rec.str_field("kind").ok_or("record without \"kind\"")?.to_string();
        if lines == 0 {
            if kind != "trace" {
                return Err(format!("first record kind is \"{kind}\", expected \"trace\""));
            }
            match rec.str_field("format") {
                Some("repwf-trace/v1") => {}
                other => return Err(format!("unsupported trace format {other:?}")),
            }
            command = rec.str_field("command").unwrap_or("?").to_string();
        }
        if kind == "footer" {
            footer = Some(rec);
            continue;
        }
        sum.update(line.as_bytes());
        sum.update(b"\n");
        lines += 1;
        match kind.as_str() {
            "trace" => {}
            "span" => {
                let name = rec.str_field("name").ok_or("span without name")?;
                let dur = rec.num_field("dur_ns").ok_or("span without dur_ns")?;
                let tid = rec.num_field("tid").ok_or("span without tid")?;
                let depth = rec.num_field("depth").ok_or("span without depth")?;
                if name == "command" {
                    main_tid = tid;
                }
                match durs.iter_mut().find(|(n, _)| n == name) {
                    Some((_, v)) => v.push(dur),
                    None => durs.push((name.to_string(), vec![dur])),
                }
                if depth == 0 {
                    match threads.iter_mut().find(|t| t.tid == tid) {
                        Some(t) => {
                            t.busy_ns += dur;
                            t.spans += 1;
                        }
                        None => threads.push(ThreadStat { tid, busy_ns: dur, spans: 1 }),
                    }
                }
            }
            "event" => {
                let name = rec.str_field("name").ok_or("event without name")?;
                match events.iter_mut().find(|(n, _)| n == name) {
                    Some((_, c)) => *c += 1,
                    None => events.push((name.to_string(), 1)),
                }
            }
            "counter" => {
                let name = rec.str_field("name").ok_or("counter without name")?.to_string();
                let value = rec.num_field("value").ok_or("counter without value")?;
                counters.push((name, value));
            }
            "spanstat" => {
                // Aggregate form of the per-span records; the summary below is
                // rebuilt from the raw spans, so these only need to parse.
                rec.str_field("name").ok_or("spanstat without name")?;
            }
            other => return Err(format!("unknown record kind \"{other}\"")),
        }
    }

    let footer = footer.ok_or("trace has no footer (truncated or still being written)")?;
    let want_records = footer.num_field("records").ok_or("footer without records")?;
    if want_records != lines {
        return Err(format!("footer declares {want_records} records, found {lines}"));
    }
    let want_sum = footer.str_field("checksum").ok_or("footer without checksum")?;
    if want_sum != sum.hex() {
        return Err(format!("checksum mismatch: footer {want_sum}, computed {}", sum.hex()));
    }
    let total_ns = footer.num_field("total_ns").ok_or("footer without total_ns")?;

    let mut phases: Vec<PhaseStat> = durs
        .into_iter()
        .map(|(name, mut v)| {
            v.sort_unstable();
            PhaseStat {
                name,
                count: v.len() as u64,
                sum_ns: v.iter().sum(),
                min_ns: *v.first().unwrap(),
                max_ns: *v.last().unwrap(),
                p50_ns: percentile(&v, 0.50),
                p95_ns: percentile(&v, 0.95),
                p99_ns: percentile(&v, 0.99),
            }
        })
        .collect();
    phases.sort_by_key(|p| std::cmp::Reverse(p.sum_ns));
    threads.sort_by_key(|t| t.tid);

    let main_busy: u64 =
        threads.iter().filter(|t| t.tid == main_tid).map(|t| t.busy_ns).sum();
    let coverage =
        if total_ns == 0 { 0.0 } else { main_busy as f64 / total_ns as f64 };
    let workers: Vec<u64> =
        threads.iter().filter(|t| t.tid != main_tid).map(|t| t.busy_ns).collect();
    let imbalance = if workers.is_empty() {
        1.0
    } else {
        let max = *workers.iter().max().unwrap() as f64;
        let mean = workers.iter().sum::<u64>() as f64 / workers.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    };

    Ok(TraceReport {
        command,
        records: lines,
        total_ns,
        phases,
        counters,
        events,
        threads,
        coverage,
        imbalance,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_records() {
        let r = parse_line("{\"kind\":\"span\",\"name\":\"solve\",\"tid\":3,\"dur_ns\":42}")
            .unwrap();
        assert_eq!(r.str_field("kind"), Some("span"));
        assert_eq!(r.str_field("name"), Some("solve"));
        assert_eq!(r.num_field("tid"), Some(3));
        assert_eq!(r.num_field("dur_ns"), Some(42));
        assert_eq!(r.num_field("missing"), None);
    }

    #[test]
    fn rejects_malformed_records() {
        assert!(parse_line("").is_err());
        assert!(parse_line("{").is_err());
        assert!(parse_line("{\"k\":}").is_err());
        assert!(parse_line("{\"k\":1,}").is_err());
        assert!(parse_line("{\"k\":1} trailing").is_err());
        assert!(parse_line("{\"k\":-1}").is_err());
    }

    #[test]
    fn percentiles_on_small_samples() {
        assert_eq!(percentile(&[], 0.5), 0);
        assert_eq!(percentile(&[7], 0.99), 7);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 0.50), 51);
        assert_eq!(percentile(&v, 0.95), 95);
        assert_eq!(percentile(&v, 0.99), 99);
    }
}
