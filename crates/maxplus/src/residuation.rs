//! Residuation: the lattice-theoretic "division" of max-plus algebra.
//!
//! Max-plus multiplication has no inverse, but it residuates: for matrices
//! `A` and a target `b`, the set `{x : A ⊗ x ≤ b}` has a greatest element
//!
//! ```text
//! (A \ b)_j = min_i ( b_i − A_{ij} )        (min-plus product with −Aᵀ)
//! ```
//!
//! Residuation answers *latest-start* questions on timed event graphs: if
//! outputs must happen no later than `b`, `A \ b` is the latest admissible
//! input schedule (backward scheduling / just-in-time control). It also
//! yields the standard test `A ⊗ (A \ b) = b ⇔ b ∈ Im A`.

use crate::matrix::Matrix;
use crate::semiring::MaxPlus;

/// Greatest solution `x` of `A ⊗ x ≤ b` (left residuation `A \ b`).
///
/// Entries of the result may be `+∞`-like only when a column of `A` is all
/// `ε`; we represent that case by `f64::INFINITY` inside a raw vector, so
/// the function returns plain `f64`s rather than [`MaxPlus`].
pub fn left_residual(a: &Matrix, b: &[MaxPlus]) -> Vec<f64> {
    assert_eq!(a.rows(), b.len(), "dimension mismatch");
    let (rows, cols) = (a.rows(), a.cols());
    let mut x = vec![f64::INFINITY; cols];
    for j in 0..cols {
        for i in 0..rows {
            let aij = a[(i, j)];
            if aij.is_zero() {
                continue; // no constraint from this row
            }
            let bound = b[i].value() - aij.value(); // b_i − A_ij (b_i = −∞ ⇒ −∞)
            if bound < x[j] {
                x[j] = bound;
            }
        }
    }
    x
}

/// Checks whether `b` is achievable: `A ⊗ (A \ b) = b`.
pub fn is_in_image(a: &Matrix, b: &[MaxPlus]) -> bool {
    let x = left_residual(a, b);
    let xm: Vec<MaxPlus> = x
        .iter()
        .map(|&v| if v.is_infinite() { MaxPlus::zero() } else { MaxPlus::new(v) })
        .collect();
    let ax = a.apply(&xm);
    ax.iter().zip(b).all(|(l, r)| {
        (l.is_zero() && r.is_zero()) || (!l.is_zero() && !r.is_zero() && (l.value() - r.value()).abs() < 1e-9)
    })
}

/// Latest input schedule for a single max-plus layer: inputs `x` feeding
/// outputs `y = A ⊗ x` that must satisfy `y ≤ deadline`.
///
/// Convenience wrapper naming the control-theoretic use case.
pub fn latest_inputs(a: &Matrix, deadline: &[f64]) -> Vec<f64> {
    let b: Vec<MaxPlus> = deadline.iter().map(|&d| MaxPlus::new(d)).collect();
    left_residual(a, &b)
}

#[cfg(test)]
mod tests {
    use super::*;

    const E: f64 = f64::NEG_INFINITY;

    #[test]
    fn residual_is_greatest_subsolution() {
        let a = Matrix::from_rows(&[&[1.0, 3.0], &[2.0, E]]);
        let b = vec![MaxPlus::new(10.0), MaxPlus::new(5.0)];
        let x = left_residual(&a, &b);
        // x0 ≤ min(10−1, 5−2) = 3; x1 ≤ 10−3 = 7.
        assert_eq!(x, vec![3.0, 7.0]);
        // Verify A ⊗ x ≤ b, and that increasing any entry violates it.
        let xm: Vec<MaxPlus> = x.iter().map(|&v| MaxPlus::new(v)).collect();
        let ax = a.apply(&xm);
        assert!(ax[0].value() <= 10.0 + 1e-12 && ax[1].value() <= 5.0 + 1e-12);
        let bumped = vec![MaxPlus::new(x[0] + 0.1), MaxPlus::new(x[1])];
        let ax2 = a.apply(&bumped);
        assert!(ax2[0].value() > 10.0 || ax2[1].value() > 5.0);
    }

    #[test]
    fn unconstrained_column_is_infinite() {
        let a = Matrix::from_rows(&[&[1.0, E]]);
        let x = left_residual(&a, &[MaxPlus::new(4.0)]);
        assert_eq!(x[0], 3.0);
        assert_eq!(x[1], f64::INFINITY, "column 1 never affects the output");
    }

    #[test]
    fn image_membership() {
        let a = Matrix::from_rows(&[&[0.0, E], &[E, 0.0]]);
        // identity: everything is in the image
        assert!(is_in_image(&a, &[MaxPlus::new(2.0), MaxPlus::new(7.0)]));
        // coupled rows: b must respect the coupling
        let c = Matrix::from_rows(&[&[0.0], &[5.0]]);
        assert!(is_in_image(&c, &[MaxPlus::new(1.0), MaxPlus::new(6.0)]));
        assert!(!is_in_image(&c, &[MaxPlus::new(1.0), MaxPlus::new(9.0)]));
    }

    #[test]
    fn latest_inputs_backward_schedule() {
        // Two stages in series viewed as one layer: y = max(x0 + 4, x1 + 1).
        let a = Matrix::from_rows(&[&[4.0, 1.0]]);
        let x = latest_inputs(&a, &[20.0]);
        assert_eq!(x, vec![16.0, 19.0]);
    }

    #[test]
    fn residual_antitone_in_a() {
        // Larger A (slower system) ⇒ earlier (smaller) latest inputs.
        let a1 = Matrix::from_rows(&[&[2.0, 3.0]]);
        let a2 = Matrix::from_rows(&[&[5.0, 3.0]]);
        let x1 = latest_inputs(&a1, &[10.0]);
        let x2 = latest_inputs(&a2, &[10.0]);
        assert!(x2[0] < x1[0] && x2[1] <= x1[1]);
    }
}
