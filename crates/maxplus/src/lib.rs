//! Max-plus algebra and cycle-ratio algorithms.
//!
//! This crate provides the algorithmic substrate used to analyze timed event
//! graphs (a.k.a. timed Petri nets with the event-graph property): the
//! steady-state period of such a system equals the **maximum cycle ratio**
//!
//! ```text
//! λ* = max over circuits C of (Σ_e cost(e)) / (Σ_e tokens(e))
//! ```
//!
//! over a doubly-weighted digraph in which every edge carries a real *cost*
//! (a transition firing time) and an integer *token count*.
//!
//! # Contents
//!
//! * [`semiring`] — the `(max, +)` scalar [`semiring::MaxPlus`] and its
//!   algebraic operations.
//! * [`matrix`] — dense max-plus matrices, products, powers and the matrix
//!   view of a digraph.
//! * [`graph`] — the doubly-weighted digraph [`graph::RatioGraph`] shared by
//!   all cycle algorithms.
//! * [`scc`] — iterative Tarjan strongly-connected components.
//! * [`workspace`] — reusable [`workspace::Workspace`] arenas (CSR
//!   adjacency, SCC/Howard/Karp/Lawler scratch) making repeated solves
//!   allocation-free, with warm-started policy iteration.
//! * [`batch`] — shape-batched Howard: one CSR build + condensation
//!   amortized over k same-structure instances with SoA cost planes, and
//!   per-SCC parallel solves on the `repwf-par` pool.
//! * [`howard`] — Howard's policy iteration for the maximum cycle ratio
//!   (primary algorithm; exact, returns a witness cycle).
//! * [`lawler`] — Lawler's parametric binary search (cross-check).
//! * [`karp`] — Karp's maximum cycle *mean* algorithm (token-uniform graphs).
//! * [`bruteforce`] — exhaustive simple-cycle enumeration for validation on
//!   tiny graphs.
//!
//! # Example
//!
//! ```
//! use maxplus::graph::RatioGraph;
//! use maxplus::howard::max_cycle_ratio;
//!
//! // Two-node system: each node hands work to the other; the round trip
//! // costs 3.0 + 5.0 and recycles 2 tokens, so the period is 4.0.
//! let mut g = RatioGraph::new(2);
//! g.add_edge(0, 1, 3.0, 1);
//! g.add_edge(1, 0, 5.0, 1);
//! let sol = max_cycle_ratio(&g).unwrap().expect("graph has a cycle");
//! assert!((sol.ratio - 4.0).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod bruteforce;
pub mod closure;
pub mod graph;
pub mod howard;
pub mod karp;
pub mod lawler;
pub mod matrix;
pub mod residuation;
pub mod scc;
pub mod semiring;
pub mod workspace;

pub use graph::{CycleSolution, RatioGraph, RatioGraphError};
pub use howard::max_cycle_ratio;
pub use semiring::MaxPlus;
pub use workspace::Workspace;
