//! Karp's algorithm for the **maximum cycle mean**, plus the token-expansion
//! reduction from cycle *ratio* to cycle *mean*.
//!
//! The paper invokes "Karp's algorithm" to find critical cycles of the
//! per-communication pattern graphs (appendix A, step 4). Karp's theorem
//! computes `max_C Σcost(C)/|C|` — the mean counts *edges*, not tokens — in
//! `O(V·E)`. To apply it to a token-weighted event graph we expand the graph
//! so that every edge carries exactly one token (multi-token edges become
//! chains; zero-token edges are contracted through their acyclic subgraph).
//! [`max_cycle_ratio_karp`] packages the reduction; it matches Howard and
//! Lawler on every valid input and serves as a third independent oracle.
//!
//! # Memory bound
//!
//! Karp's recurrence `D_k(v) = max over edges (u,v) of D_{k−1}(u) + cost`
//! only ever consults the previous row, but the final formula
//! `λ* = max_v min_k (D_n(v) − D_k(v)) / (n − k)` consults **every** row —
//! which is why textbook implementations (and this crate, before the
//! zero-allocation engine rework) keep the full `(n+1) × n` table: **O(V²)**
//! doubles, 128 MB for a 4 000-vertex SCC and unusable beyond that. The
//! implementation in [`crate::workspace`] instead runs the DP twice over
//! two rolling rows — pass A computes `D_n`, pass B replays rows `0..n−1`
//! folding the running minimum — trading 2× time for **O(V)** memory. The
//! `large_scc_runs_in_linear_memory` test below pins this bound on an
//! instance whose dense table would be ~128 MB.

use crate::graph::{CycleSolution, RatioGraph};
#[cfg(test)]
use crate::graph::RatioGraphError;
use crate::howard::RatioResult;
use crate::workspace::Workspace;

/// Maximum cycle mean (`Σcost / #edges`) of `g`, ignoring token counts.
///
/// Returns `None` for acyclic graphs. `O(V·E)` time, **`O(V)` memory**
/// (rolling rows; see the module docs). One-shot convenience over
/// [`Workspace::max_cycle_mean`].
pub fn max_cycle_mean(g: &RatioGraph) -> Option<f64> {
    Workspace::new().max_cycle_mean(g)
}

/// Maximum cycle **ratio** via Karp, using the token-expansion reduction.
///
/// Every circuit of the expanded graph corresponds to a circuit of `g` with
/// `#edges = Σtokens`, so Karp's cycle mean on the expansion equals the cycle
/// ratio on `g`. The expansion can be quadratic in size; use for validation
/// and small graphs (Howard is the production algorithm).
pub fn max_cycle_ratio_karp(g: &RatioGraph) -> RatioResult {
    g.validate()?;
    // 1. Split multi-token edges into unit-token chains.
    let mut next = g.num_vertices() as u32;
    let mut extra = 0usize;
    for e in g.edges() {
        match e.tokens {
            0 | 1 => {}
            t => extra += (t - 1) as usize,
        }
    }
    let total = g.num_vertices() + extra;
    let mut unit_edges: Vec<(u32, u32, f64, u32)> = Vec::new();
    for e in g.edges() {
        if e.tokens <= 1 {
            unit_edges.push((e.from, e.to, e.cost, e.tokens));
        } else {
            // from → d1 → d2 → … → to, cost on the first hop, 1 token each.
            let mut prev = e.from;
            for i in 0..e.tokens {
                let target = if i + 1 == e.tokens {
                    e.to
                } else {
                    let d = next;
                    next += 1;
                    d
                };
                let cost = if i == 0 { e.cost } else { 0.0 };
                unit_edges.push((prev, target, cost, 1));
                prev = target;
            }
        }
    }
    let mut unit = RatioGraph::with_capacity(total, unit_edges.len());
    for (f, t, c, tok) in unit_edges {
        unit.add_edge(f, t, c, tok);
    }

    // 2. Contract zero-token edges: the zero-token subgraph must be acyclic
    //    (otherwise: deadlock). Build the "token graph" H whose vertices are
    //    the token-edge targets and whose edge a ⇒ b exists when b's token
    //    edge starts at a vertex reachable from a via zero-token edges;
    //    the H-edge weight folds in the longest zero-token path.
    let n = unit.num_vertices();
    let mut zero_adj: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
    let mut token_edges: Vec<usize> = Vec::new();
    for (i, e) in unit.edges().iter().enumerate() {
        if e.tokens == 0 {
            zero_adj[e.from as usize].push((e.to, e.cost));
        } else {
            token_edges.push(i);
        }
    }
    if token_edges.is_empty() {
        // No token anywhere: either acyclic (fine) or deadlock.
        return match crate::lawler::max_cycle_ratio_lawler(g) {
            Ok(None) => Ok(None),
            other => other,
        };
    }
    // Topological order of the zero-token subgraph (cycle ⇒ deadlock).
    let topo = match topo_order(n, &zero_adj) {
        Some(t) => t,
        None => {
            // Delegate exact witness extraction to Lawler's detector.
            return crate::lawler::max_cycle_ratio_lawler(g);
        }
    };

    // H-vertex h = index into token_edges; H-edge h1 → h2 with weight
    // cost(e2) + longest zero-token path from target(e1) to source(e2).
    let k = token_edges.len();
    let mut h = RatioGraph::new(k);
    // longest zero-token path from a source vertex to every vertex: DAG DP.
    let mut by_source: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (hi, &ei) in token_edges.iter().enumerate() {
        by_source[unit.edges()[ei].from as usize].push(hi);
    }
    let mut dist = vec![f64::NEG_INFINITY; n];
    for (h1, &e1i) in token_edges.iter().enumerate() {
        let start = unit.edges()[e1i].to as usize;
        dist.fill(f64::NEG_INFINITY);
        dist[start] = 0.0;
        for &v in &topo {
            let dv = dist[v as usize];
            if dv == f64::NEG_INFINITY {
                continue;
            }
            for &(w, c) in &zero_adj[v as usize] {
                if dv + c > dist[w as usize] {
                    dist[w as usize] = dv + c;
                }
            }
        }
        for v in 0..n {
            if dist[v] == f64::NEG_INFINITY {
                continue;
            }
            for &h2 in &by_source[v] {
                let e2 = &unit.edges()[token_edges[h2]];
                h.add_edge(h1 as u32, h2 as u32, dist[v] + e2.cost, 1);
            }
        }
    }

    match max_cycle_mean(&h) {
        None => Ok(None),
        Some(ratio) => Ok(Some(CycleSolution {
            ratio,
            // Witness extraction through the reduction is intricate; this
            // oracle is for value cross-checking, so report an empty path.
            cycle: Vec::new(),
            cost: ratio,
            tokens: 1,
        })),
    }
}

/// Kahn topological sort; `None` if the graph has a cycle.
fn topo_order(n: usize, adj: &[Vec<(u32, f64)>]) -> Option<Vec<u32>> {
    let mut indeg = vec![0u32; n];
    for outs in adj {
        for &(w, _) in outs {
            indeg[w as usize] += 1;
        }
    }
    let mut queue: Vec<u32> = (0..n as u32).filter(|&v| indeg[v as usize] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(v) = queue.pop() {
        order.push(v);
        for &(w, _) in &adj[v as usize] {
            indeg[w as usize] -= 1;
            if indeg[w as usize] == 0 {
                queue.push(w);
            }
        }
    }
    if order.len() == n {
        Some(order)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::howard::max_cycle_ratio;

    #[test]
    fn mean_simple_triangle() {
        let mut g = RatioGraph::new(3);
        g.add_edge(0, 1, 1.0, 1);
        g.add_edge(1, 2, 2.0, 1);
        g.add_edge(2, 0, 6.0, 1);
        let m = max_cycle_mean(&g).unwrap();
        assert!((m - 3.0).abs() < 1e-12);
    }

    #[test]
    fn mean_prefers_heavier_loop() {
        let mut g = RatioGraph::new(2);
        g.add_edge(0, 0, 1.0, 1);
        g.add_edge(0, 1, 0.0, 1);
        g.add_edge(1, 1, 10.0, 1);
        let m = max_cycle_mean(&g).unwrap();
        assert!((m - 10.0).abs() < 1e-12);
    }

    #[test]
    fn mean_acyclic_none() {
        let mut g = RatioGraph::new(2);
        g.add_edge(0, 1, 3.0, 1);
        assert_eq!(max_cycle_mean(&g), None);
    }

    #[test]
    fn ratio_reduction_matches_howard_unit_tokens() {
        let mut g = RatioGraph::new(3);
        g.add_edge(0, 1, 1.0, 1);
        g.add_edge(1, 2, 2.0, 1);
        g.add_edge(2, 0, 6.0, 1);
        let k = max_cycle_ratio_karp(&g).unwrap().unwrap();
        let h = max_cycle_ratio(&g).unwrap().unwrap();
        assert!((k.ratio - h.ratio).abs() < 1e-9);
    }

    #[test]
    fn ratio_reduction_matches_howard_mixed_tokens() {
        let mut g = RatioGraph::new(4);
        g.add_edge(0, 1, 4.0, 1);
        g.add_edge(1, 0, 6.0, 0);
        g.add_edge(1, 2, 5.0, 1);
        g.add_edge(2, 3, 2.5, 0);
        g.add_edge(3, 0, 3.0, 2);
        g.add_edge(3, 3, 1.0, 1);
        let k = max_cycle_ratio_karp(&g).unwrap().unwrap();
        let h = max_cycle_ratio(&g).unwrap().unwrap();
        assert!((k.ratio - h.ratio).abs() < 1e-9, "{} vs {}", k.ratio, h.ratio);
    }

    #[test]
    fn ratio_reduction_detects_deadlock() {
        let mut g = RatioGraph::new(2);
        g.add_edge(0, 1, 1.0, 0);
        g.add_edge(1, 0, 2.0, 0);
        assert!(matches!(
            max_cycle_ratio_karp(&g),
            Err(RatioGraphError::ZeroTokenCycle { .. })
        ));
    }

    #[test]
    fn large_scc_runs_in_linear_memory() {
        // Regression for the O(V²) row table: one 4 000-vertex SCC. The
        // dense `(n+1) × n` table would allocate ~128 MB here; the rolling
        // rows keep it at a few O(V) vectors. Ring costs 0,1,…,n−1 plus a
        // heavy shortcut loop 0→1→0 of mean (0 + 500)/2.
        let n: usize = 4_000;
        let mut g = RatioGraph::new(n);
        for v in 0..n as u32 {
            g.add_edge(v, (v + 1) % n as u32, f64::from(v), 1);
        }
        g.add_edge(1, 0, 500.0, 1);
        let ring_mean = (0..n).map(|v| v as f64).sum::<f64>() / n as f64;
        let loop_mean = (0.0 + 500.0) / 2.0;
        let expect = ring_mean.max(loop_mean);
        let mut ws = Workspace::new();
        let m = ws.max_cycle_mean(&g).unwrap();
        assert!((m - expect).abs() < 1e-9 * expect, "{m} vs {expect}");
        // Reuse on the same workspace (no fresh allocations) agrees bitwise.
        let again = ws.max_cycle_mean(&g).unwrap();
        assert_eq!(m.to_bits(), again.to_bits());
    }

    #[test]
    fn rolling_rows_match_on_multi_scc_graphs() {
        // Two separate SCCs plus a bridge: per-component rolling rows must
        // reproduce the per-component dense result (means 2 and 7).
        let mut g = RatioGraph::new(5);
        g.add_edge(0, 1, 1.0, 1);
        g.add_edge(1, 0, 3.0, 1);
        g.add_edge(1, 2, 100.0, 1); // bridge (no circuit)
        g.add_edge(2, 3, 5.0, 1);
        g.add_edge(3, 4, 7.0, 1);
        g.add_edge(4, 2, 9.0, 1);
        let m = max_cycle_mean(&g).unwrap();
        assert!((m - 7.0).abs() < 1e-12);
    }

    #[test]
    fn ratio_multi_token_self_loop() {
        let mut g = RatioGraph::new(1);
        g.add_edge(0, 0, 9.0, 3);
        let k = max_cycle_ratio_karp(&g).unwrap().unwrap();
        assert!((k.ratio - 3.0).abs() < 1e-12);
    }
}
