//! Kleene star, longest paths and spectral theory of max-plus matrices.
//!
//! For a square max-plus matrix `A` (precedence weights of a digraph):
//!
//! * the **Kleene star** `A* = I ⊕ A ⊕ A² ⊕ …` collects maximal path
//!   weights of any length — it is finite iff no circuit has positive
//!   weight;
//! * the **eigenproblem** `A ⊗ x = λ ⊗ x` has the maximum cycle mean as
//!   its unique eigenvalue on a strongly connected graph, with eigenvectors
//!   read off the columns of `(A_λ)*` (`A_λ = −λ ⊗ A`) at critical
//!   vertices;
//! * the **critical graph** (vertices/edges on circuits of mean `λ`)
//!   determines the *cyclicity* `σ`: the asymptotic period of the powers
//!   `A^(k+σ) = λ^σ ⊗ A^k` and hence the cyclicity of timed-event-graph
//!   schedules (why Example A's schedule repeats every 2 firings, etc.).
//!
//! References: Baccelli, Cohen, Olsder, Quadrat, *Synchronization and
//! Linearity* (1992) — reference \[2\] of the paper; Heidergott, Olsder,
//! van der Woude, *Max Plus at Work* (2006).

use crate::graph::RatioGraph;
use crate::karp::max_cycle_mean;
use crate::matrix::Matrix;
use crate::scc::tarjan_scc;
use crate::semiring::MaxPlus;

/// Errors from closure/spectral computations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClosureError {
    /// `A*` diverges: the graph has a circuit of positive weight.
    PositiveCircuit,
    /// The matrix/graph has no circuit at all (no eigenvalue).
    Acyclic,
}

impl std::fmt::Display for ClosureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClosureError::PositiveCircuit => write!(f, "positive-weight circuit: A* diverges"),
            ClosureError::Acyclic => write!(f, "acyclic precedence graph: no eigenvalue"),
        }
    }
}

impl std::error::Error for ClosureError {}

/// Kleene star `A* = I ⊕ A ⊕ A² ⊕ …` by Floyd–Warshall over `(max, +)`.
///
/// Fails with [`ClosureError::PositiveCircuit`] when some circuit has
/// positive weight (then arbitrarily long paths keep improving).
pub fn kleene_star(a: &Matrix) -> Result<Matrix, ClosureError> {
    assert_eq!(a.rows(), a.cols(), "star requires a square matrix");
    let n = a.rows();
    let mut d = a.clone();
    for k in 0..n {
        for i in 0..n {
            let dik = d[(i, k)];
            if dik.is_zero() {
                continue;
            }
            for j in 0..n {
                let cand = dik * d[(k, j)];
                if d[(i, j)] < cand {
                    d[(i, j)] = cand;
                }
            }
        }
        // Divergence check: positive diagonal after relaxing through k.
        for i in 0..n {
            if d[(i, i)] > MaxPlus::one() {
                return Err(ClosureError::PositiveCircuit);
            }
        }
    }
    // A⁺ computed; A* = I ⊕ A⁺.
    for i in 0..n {
        if d[(i, i)] < MaxPlus::one() {
            d[(i, i)] = MaxPlus::one();
        }
    }
    Ok(d)
}

/// The spectral data of an irreducible (strongly connected) max-plus
/// matrix.
#[derive(Debug, Clone)]
pub struct Spectrum {
    /// The eigenvalue `λ` (maximum cycle mean).
    pub eigenvalue: f64,
    /// An eigenvector `x` with `A ⊗ x = λ ⊗ x`, normalized so its maximum
    /// entry is `0`.
    pub eigenvector: Vec<MaxPlus>,
    /// Vertices lying on some critical circuit (mean = `λ`).
    pub critical_vertices: Vec<u32>,
    /// The cyclicity `σ` of the critical graph: gcd over critical SCCs of
    /// the gcd of their circuit lengths.
    pub cyclicity: u64,
}

/// Computes eigenvalue, eigenvector, critical graph and cyclicity of an
/// irreducible matrix (every vertex on a path to/from every other).
///
/// Returns [`ClosureError::Acyclic`] when the precedence graph has no
/// circuit.
pub fn spectrum(a: &Matrix) -> Result<Spectrum, ClosureError> {
    let n = a.rows();
    assert_eq!(n, a.cols());
    let g = a.precedence_graph();
    let lambda = max_cycle_mean(&g).ok_or(ClosureError::Acyclic)?;

    // A_λ: subtract λ from every finite entry. All circuits of A_λ have
    // weight ≤ 0, critical circuits have weight exactly 0.
    let mut al = a.clone();
    for i in 0..n {
        for j in 0..n {
            if !al[(i, j)].is_zero() {
                al[(i, j)] = MaxPlus::new(al[(i, j)].value() - lambda);
            }
        }
    }
    let star = kleene_star(&al).map_err(|_| ClosureError::PositiveCircuit)?;

    // Critical vertices: (A_λ⁺)_{vv} = 0, i.e. a zero-weight circuit
    // through v. A_λ⁺ = A_λ ⊗ A_λ*.
    let aplus = al.mul(&star);
    let critical: Vec<u32> =
        (0..n).filter(|&v| aplus[(v, v)] == MaxPlus::one()).map(|v| v as u32).collect();
    if critical.is_empty() {
        return Err(ClosureError::Acyclic);
    }

    // Eigenvector: column of A_λ* at any critical vertex.
    let c = critical[0] as usize;
    let mut x: Vec<MaxPlus> = (0..n).map(|i| star[(i, c)]).collect();
    let maxv = x.iter().map(|e| e.value()).fold(f64::NEG_INFINITY, f64::max);
    for e in &mut x {
        if !e.is_zero() {
            *e = MaxPlus::new(e.value() - maxv);
        }
    }

    // Cyclicity: restrict the precedence graph to critical edges (edges on
    // zero-weight circuits of A_λ: w(u→v) + star(v, u) = 0), then per SCC
    // take the gcd of circuit lengths (computable as gcd of differences of
    // BFS levels across edges), and lcm over SCCs (Cohen et al.).
    let mut crit_graph = RatioGraph::new(n);
    for e in g.edges() {
        let (u, v) = (e.from as usize, e.to as usize);
        // Edge u→v is critical iff cost_λ(u→v) plus the best λ-shifted
        // return path v→u is zero. star[(i, j)] holds the best path j→i,
        // so the return path v→u is star[(u, v)].
        let back = star[(u, v)];
        if back.is_zero() {
            continue;
        }
        if (e.cost - lambda + back.value()).abs() < 1e-9 {
            crit_graph.add_edge(e.from, e.to, 0.0, 1);
        }
    }
    let scc = tarjan_scc(&crit_graph);
    let mut cyclicity = 1u64;
    for members in scc.cyclic_components(&crit_graph) {
        let (sub, _) = crit_graph.restrict(members);
        let sigma = scc_cyclicity(&sub);
        cyclicity = lcm(cyclicity, sigma);
    }
    Ok(Spectrum { eigenvalue: lambda, eigenvector: x, critical_vertices: critical, cyclicity })
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

fn lcm(a: u64, b: u64) -> u64 {
    if a == 0 || b == 0 {
        return a.max(b);
    }
    a / gcd(a, b) * b
}

/// Cyclicity of one strongly connected graph: gcd of its circuit lengths,
/// computed as the gcd of `level(u) + 1 − level(v)` over all edges for any
/// BFS levelling.
fn scc_cyclicity(g: &RatioGraph) -> u64 {
    let n = g.num_vertices();
    let (offsets, eidx) = g.adjacency();
    let mut level = vec![i64::MIN; n];
    let mut queue = std::collections::VecDeque::new();
    level[0] = 0;
    queue.push_back(0u32);
    let mut sigma: u64 = 0;
    while let Some(u) = queue.pop_front() {
        let ui = u as usize;
        for &ei in &eidx[offsets[ui] as usize..offsets[ui + 1] as usize] {
            let v = g.edges()[ei as usize].to;
            let vi = v as usize;
            if level[vi] == i64::MIN {
                level[vi] = level[ui] + 1;
                queue.push_back(v);
            } else {
                let diff = (level[ui] + 1 - level[vi]).unsigned_abs();
                sigma = gcd(sigma, diff);
            }
        }
    }
    sigma.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_rows(rows: &[&[f64]]) -> Matrix {
        Matrix::from_rows(rows)
    }
    const E: f64 = f64::NEG_INFINITY;

    #[test]
    fn star_of_nilpotent() {
        // Strictly upper-triangular: A* accumulates finite path maxima.
        let a = from_rows(&[&[E, 2.0, E], &[E, E, 3.0], &[E, E, E]]);
        let s = kleene_star(&a).unwrap();
        assert_eq!(s[(0, 2)], MaxPlus::new(5.0));
        assert_eq!(s[(0, 0)], MaxPlus::one());
        assert_eq!(s[(2, 0)], MaxPlus::zero());
    }

    #[test]
    fn star_detects_positive_circuit() {
        let a = from_rows(&[&[E, 1.0], &[0.5, E]]); // circuit weight 1.5 > 0
        assert_eq!(kleene_star(&a), Err(ClosureError::PositiveCircuit));
    }

    #[test]
    fn star_accepts_zero_circuit() {
        let a = from_rows(&[&[E, 1.0], &[-1.0, E]]);
        let s = kleene_star(&a).unwrap();
        assert_eq!(s[(0, 1)], MaxPlus::new(1.0));
        assert_eq!(s[(1, 1)], MaxPlus::one());
    }

    #[test]
    fn spectrum_of_two_cycle() {
        // x0(k) = 3 + x1(k−1), x1(k) = 5 + x0(k−1): λ = 4, cyclicity 2.
        let a = from_rows(&[&[E, 3.0], &[5.0, E]]);
        let sp = spectrum(&a).unwrap();
        assert!((sp.eigenvalue - 4.0).abs() < 1e-12);
        assert_eq!(sp.cyclicity, 2);
        assert_eq!(sp.critical_vertices, vec![0, 1]);
        // verify A ⊗ x = λ ⊗ x
        let ax = a.apply(&sp.eigenvector);
        for (i, v) in ax.iter().enumerate() {
            let expect = MaxPlus::new(sp.eigenvector[i].value() + sp.eigenvalue);
            assert!((v.value() - expect.value()).abs() < 1e-9, "row {i}");
        }
    }

    #[test]
    fn spectrum_with_self_loop_has_cyclicity_one() {
        let a = from_rows(&[&[4.0, 3.0], &[5.0, E]]);
        // cycles: self-loop mean 4, two-cycle mean 4 — both critical:
        // critical graph has loops of length 1 and 2 → cyclicity 1.
        let sp = spectrum(&a).unwrap();
        assert!((sp.eigenvalue - 4.0).abs() < 1e-12);
        assert_eq!(sp.cyclicity, 1);
    }

    #[test]
    fn non_critical_vertices_excluded() {
        // Vertex 2 hangs off the critical 2-cycle with a slow feed-in.
        let a = from_rows(&[&[E, 3.0, E], &[5.0, E, E], &[1.0, E, 1.0]]);
        let sp = spectrum(&a).unwrap();
        assert!((sp.eigenvalue - 4.0).abs() < 1e-12);
        assert!(!sp.critical_vertices.contains(&2));
    }

    #[test]
    fn powers_become_periodic_with_cyclicity() {
        // Cohen's theorem: for k large, A^(k+σ) = λ·σ ⊗ A^k.
        let a = from_rows(&[&[E, 3.0], &[5.0, E]]);
        let sp = spectrum(&a).unwrap();
        let sigma = sp.cyclicity as u32;
        let k0 = 16u32;
        let ak = a.pow(k0);
        let aks = a.pow(k0 + sigma);
        for i in 0..2 {
            for j in 0..2 {
                if ak[(i, j)].is_zero() {
                    assert!(aks[(i, j)].is_zero());
                } else {
                    let expect = ak[(i, j)].value() + sp.eigenvalue * f64::from(sigma);
                    assert!((aks[(i, j)].value() - expect).abs() < 1e-9, "({i},{j})");
                }
            }
        }
    }

    #[test]
    fn eigenvector_normalized() {
        let a = from_rows(&[&[E, 3.0], &[5.0, E]]);
        let sp = spectrum(&a).unwrap();
        let maxv = sp.eigenvector.iter().map(|e| e.value()).fold(f64::NEG_INFINITY, f64::max);
        assert!((maxv - 0.0).abs() < 1e-12);
    }

    #[test]
    fn acyclic_has_no_spectrum() {
        let a = from_rows(&[&[E, 1.0], &[E, E]]);
        assert!(matches!(spectrum(&a), Err(ClosureError::Acyclic)));
    }
}
