//! The `(max, +)` semiring over `ℝ ∪ {−∞}`.
//!
//! In this semiring "addition" is `max` (identity `−∞`, written [`MaxPlus::zero`])
//! and "multiplication" is `+` (identity `0`, written [`MaxPlus::one`]).
//! Timed event graph dynamics `x(k) = A ⊗ x(k−1)` are linear over it, which is
//! why the steady-state period of an event graph is the max-plus eigenvalue of
//! its transition matrix.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Mul};

/// A max-plus scalar: a finite `f64` or `−∞` (the additive identity).
///
/// `MaxPlus` implements `Add` as `max` and `Mul` as ordinary `+`, so generic
/// polynomial/matrix code written against `Add`/`Mul` works unchanged.
#[derive(Clone, Copy, PartialEq)]
pub struct MaxPlus(f64);

impl MaxPlus {
    /// The additive identity `ε = −∞` ("no path").
    pub fn zero() -> Self {
        MaxPlus(f64::NEG_INFINITY)
    }

    /// The multiplicative identity `e = 0.0` ("free path").
    pub fn one() -> Self {
        MaxPlus(0.0)
    }

    /// Wraps a finite value. Panics on NaN (NaN breaks the semiring laws).
    pub fn new(v: f64) -> Self {
        assert!(!v.is_nan(), "MaxPlus value must not be NaN");
        MaxPlus(v)
    }

    /// Returns the underlying `f64` (`−∞` for [`MaxPlus::zero`]).
    pub fn value(self) -> f64 {
        self.0
    }

    /// True iff this is the additive identity `−∞`.
    pub fn is_zero(self) -> bool {
        self.0 == f64::NEG_INFINITY
    }

    /// Max-plus "power": scales by an integer exponent, i.e. `k·a` in
    /// conventional arithmetic (`a ⊗ a ⊗ … ⊗ a`, `k` times).
    pub fn pow(self, k: u32) -> Self {
        if self.is_zero() {
            if k == 0 {
                MaxPlus::one()
            } else {
                self
            }
        } else {
            MaxPlus(self.0 * f64::from(k))
        }
    }
}

impl fmt::Debug for MaxPlus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            write!(f, "ε")
        } else {
            write!(f, "{}", self.0)
        }
    }
}

impl fmt::Display for MaxPlus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<f64> for MaxPlus {
    fn from(v: f64) -> Self {
        MaxPlus::new(v)
    }
}

impl Add for MaxPlus {
    type Output = MaxPlus;
    /// Max-plus addition: `a ⊕ b = max(a, b)`.
    fn add(self, rhs: MaxPlus) -> MaxPlus {
        MaxPlus(self.0.max(rhs.0))
    }
}

impl Mul for MaxPlus {
    type Output = MaxPlus;
    /// Max-plus multiplication: `a ⊗ b = a + b` (with `ε` absorbing).
    fn mul(self, rhs: MaxPlus) -> MaxPlus {
        if self.is_zero() || rhs.is_zero() {
            MaxPlus::zero()
        } else {
            MaxPlus(self.0 + rhs.0)
        }
    }
}

impl PartialOrd for MaxPlus {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.0.partial_cmp(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identities() {
        let a = MaxPlus::new(3.5);
        assert_eq!(a + MaxPlus::zero(), a);
        assert_eq!(a * MaxPlus::one(), a);
        assert_eq!(a * MaxPlus::zero(), MaxPlus::zero());
    }

    #[test]
    fn add_is_max() {
        assert_eq!(MaxPlus::new(2.0) + MaxPlus::new(7.0), MaxPlus::new(7.0));
    }

    #[test]
    fn mul_is_plus() {
        assert_eq!(MaxPlus::new(2.0) * MaxPlus::new(7.0), MaxPlus::new(9.0));
    }

    #[test]
    fn pow_scales() {
        assert_eq!(MaxPlus::new(2.5).pow(4), MaxPlus::new(10.0));
        assert_eq!(MaxPlus::zero().pow(0), MaxPlus::one());
        assert!(MaxPlus::zero().pow(3).is_zero());
    }

    #[test]
    fn distributivity_sample() {
        let (a, b, c) = (MaxPlus::new(1.0), MaxPlus::new(4.0), MaxPlus::new(-2.0));
        assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = MaxPlus::new(f64::NAN);
    }
}
