//! Strongly connected components (iterative Tarjan).
//!
//! Cycle-ratio algorithms work per SCC: every circuit lives inside one, and
//! restricting to components keeps policy iteration well-defined (every
//! vertex of a non-trivial SCC has an out-edge inside it).

use crate::graph::RatioGraph;

/// The SCC decomposition of a [`RatioGraph`].
#[derive(Debug, Clone)]
pub struct SccDecomposition {
    /// `component[v]` is the id of `v`'s SCC. Ids are in reverse topological
    /// order of the condensation (Tarjan's numbering).
    pub component: Vec<u32>,
    /// Vertices of each component.
    pub members: Vec<Vec<u32>>,
}

impl SccDecomposition {
    /// Number of components.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True iff there are no components (empty graph).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Components that can contain a circuit: more than one vertex, or a
    /// single vertex with a self-loop.
    pub fn cyclic_components<'a>(&'a self, g: &'a RatioGraph) -> impl Iterator<Item = &'a Vec<u32>> {
        let mut self_loop = vec![false; g.num_vertices()];
        for e in g.edges() {
            if e.from == e.to {
                self_loop[e.from as usize] = true;
            }
        }
        self.members.iter().filter(move |m| m.len() > 1 || (m.len() == 1 && self_loop[m[0] as usize]))
    }
}

/// Computes the SCCs of `g` with an iterative Tarjan traversal (no recursion,
/// safe for graphs with hundreds of thousands of vertices).
pub fn tarjan_scc(g: &RatioGraph) -> SccDecomposition {
    let n = g.num_vertices();
    let (offsets, eidx) = g.adjacency();
    const UNSET: u32 = u32::MAX;

    let mut index = vec![UNSET; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut component = vec![UNSET; n];
    let mut members: Vec<Vec<u32>> = Vec::new();
    let mut next_index = 0u32;

    // Explicit DFS frames: (vertex, position in its out-edge list).
    let mut frames: Vec<(u32, u32)> = Vec::new();

    for root in 0..n as u32 {
        if index[root as usize] != UNSET {
            continue;
        }
        frames.push((root, 0));
        index[root as usize] = next_index;
        lowlink[root as usize] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root as usize] = true;

        while let Some(&mut (v, ref mut pos)) = frames.last_mut() {
            let vi = v as usize;
            let start = offsets[vi];
            let end = offsets[vi + 1];
            if start + *pos < end {
                let e = &g.edges()[eidx[(start + *pos) as usize] as usize];
                *pos += 1;
                let w = e.to;
                let wi = w as usize;
                if index[wi] == UNSET {
                    index[wi] = next_index;
                    lowlink[wi] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[wi] = true;
                    frames.push((w, 0));
                } else if on_stack[wi] {
                    lowlink[vi] = lowlink[vi].min(index[wi]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    let pi = parent as usize;
                    lowlink[pi] = lowlink[pi].min(lowlink[vi]);
                }
                if lowlink[vi] == index[vi] {
                    let cid = members.len() as u32;
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w as usize] = false;
                        component[w as usize] = cid;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    members.push(comp);
                }
            }
        }
    }

    SccDecomposition { component, members }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(n: usize, edges: &[(u32, u32)]) -> RatioGraph {
        let mut g = RatioGraph::new(n);
        for &(a, b) in edges {
            g.add_edge(a, b, 0.0, 0);
        }
        g
    }

    #[test]
    fn single_cycle_is_one_component() {
        let g = graph(3, &[(0, 1), (1, 2), (2, 0)]);
        let scc = tarjan_scc(&g);
        assert_eq!(scc.len(), 1);
        assert_eq!(scc.members[0].len(), 3);
    }

    #[test]
    fn dag_gives_singletons() {
        let g = graph(4, &[(0, 1), (1, 2), (2, 3)]);
        let scc = tarjan_scc(&g);
        assert_eq!(scc.len(), 4);
        assert!(scc.cyclic_components(&g).next().is_none());
    }

    #[test]
    fn two_cycles_bridge() {
        // 0↔1 and 2↔3 joined by 1→2.
        let g = graph(4, &[(0, 1), (1, 0), (1, 2), (2, 3), (3, 2)]);
        let scc = tarjan_scc(&g);
        assert_eq!(scc.len(), 2);
        let sizes: Vec<usize> = scc.members.iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![2, 2]);
        // components partition all vertices
        let mut seen = [false; 4];
        for m in &scc.members {
            for &v in m {
                assert!(!seen[v as usize]);
                seen[v as usize] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn self_loop_is_cyclic() {
        let g = graph(2, &[(0, 0), (0, 1)]);
        let scc = tarjan_scc(&g);
        assert_eq!(scc.len(), 2);
        let cyc: Vec<_> = scc.cyclic_components(&g).collect();
        assert_eq!(cyc.len(), 1);
        assert_eq!(cyc[0], &vec![0]);
    }

    #[test]
    fn deep_chain_no_stack_overflow() {
        // 100k-vertex path plus a closing edge: one big SCC, iteratively.
        let n = 100_000;
        let mut edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i as u32, i as u32 + 1)).collect();
        edges.push((n as u32 - 1, 0));
        let g = graph(n, &edges);
        let scc = tarjan_scc(&g);
        assert_eq!(scc.len(), 1);
    }
}
