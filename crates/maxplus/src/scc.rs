//! Strongly connected components (iterative Tarjan).
//!
//! Cycle-ratio algorithms work per SCC: every circuit lives inside one, and
//! restricting to components keeps policy iteration well-defined (every
//! vertex of a non-trivial SCC has an out-edge inside it).
//!
//! The traversal itself lives in [`crate::workspace`], where it writes into
//! flat, reusable component arrays (`Workspace::scc` returns a borrowed
//! [`crate::workspace::SccView`] with zero per-call allocation after
//! warm-up). This module keeps the owned, `Vec<Vec<u32>>`-shaped
//! decomposition for callers that want to hold the result.

use crate::graph::RatioGraph;
use crate::workspace::Workspace;

/// The SCC decomposition of a [`RatioGraph`].
#[derive(Debug, Clone)]
pub struct SccDecomposition {
    /// `component[v]` is the id of `v`'s SCC. Ids are in reverse topological
    /// order of the condensation (Tarjan's numbering).
    pub component: Vec<u32>,
    /// Vertices of each component.
    pub members: Vec<Vec<u32>>,
}

impl SccDecomposition {
    /// Number of components.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True iff there are no components (empty graph).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Components that can contain a circuit: more than one vertex, or a
    /// single vertex with a self-loop.
    pub fn cyclic_components<'a>(&'a self, g: &'a RatioGraph) -> impl Iterator<Item = &'a Vec<u32>> {
        let mut self_loop = vec![false; g.num_vertices()];
        for e in g.edges() {
            if e.from == e.to {
                self_loop[e.from as usize] = true;
            }
        }
        self.members.iter().filter(move |m| m.len() > 1 || (m.len() == 1 && self_loop[m[0] as usize]))
    }
}

/// Computes the SCCs of `g` with an iterative Tarjan traversal (no recursion,
/// safe for graphs with hundreds of thousands of vertices).
///
/// One-shot convenience over [`Workspace::scc`]: allocates the owned
/// decomposition. Hot loops should reuse a [`Workspace`] instead.
pub fn tarjan_scc(g: &RatioGraph) -> SccDecomposition {
    let mut ws = Workspace::new();
    let view = ws.scc(g);
    SccDecomposition {
        component: view.components().to_vec(),
        members: (0..view.num_components()).map(|c| view.members(c).to_vec()).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(n: usize, edges: &[(u32, u32)]) -> RatioGraph {
        let mut g = RatioGraph::new(n);
        for &(a, b) in edges {
            g.add_edge(a, b, 0.0, 0);
        }
        g
    }

    #[test]
    fn single_cycle_is_one_component() {
        let g = graph(3, &[(0, 1), (1, 2), (2, 0)]);
        let scc = tarjan_scc(&g);
        assert_eq!(scc.len(), 1);
        assert_eq!(scc.members[0].len(), 3);
    }

    #[test]
    fn dag_gives_singletons() {
        let g = graph(4, &[(0, 1), (1, 2), (2, 3)]);
        let scc = tarjan_scc(&g);
        assert_eq!(scc.len(), 4);
        assert!(scc.cyclic_components(&g).next().is_none());
    }

    #[test]
    fn two_cycles_bridge() {
        // 0↔1 and 2↔3 joined by 1→2.
        let g = graph(4, &[(0, 1), (1, 0), (1, 2), (2, 3), (3, 2)]);
        let scc = tarjan_scc(&g);
        assert_eq!(scc.len(), 2);
        let sizes: Vec<usize> = scc.members.iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![2, 2]);
        // components partition all vertices
        let mut seen = [false; 4];
        for m in &scc.members {
            for &v in m {
                assert!(!seen[v as usize]);
                seen[v as usize] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn self_loop_is_cyclic() {
        let g = graph(2, &[(0, 0), (0, 1)]);
        let scc = tarjan_scc(&g);
        assert_eq!(scc.len(), 2);
        let cyc: Vec<_> = scc.cyclic_components(&g).collect();
        assert_eq!(cyc.len(), 1);
        assert_eq!(cyc[0], &vec![0]);
    }

    #[test]
    fn deep_chain_no_stack_overflow() {
        // 100k-vertex path plus a closing edge: one big SCC, iteratively.
        let n = 100_000;
        let mut edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i as u32, i as u32 + 1)).collect();
        edges.push((n as u32 - 1, 0));
        let g = graph(n, &edges);
        let scc = tarjan_scc(&g);
        assert_eq!(scc.len(), 1);
    }
}
