//! Howard's policy iteration for the **maximum cycle ratio**.
//!
//! Given a [`RatioGraph`], computes
//! `λ* = max over circuits C of Σcost(C) / Σtokens(C)` together with a
//! witness circuit. This is the algorithm the paper relies on to evaluate
//! critical cycles of timed event graphs (the authors used the ERS/GreatSPN
//! tools; Howard's iteration computes the same quantity and is the fastest
//! known method in practice).
//!
//! The implementation is the classic multi-chain policy iteration:
//! repeatedly (1) evaluate the current policy — a choice of one out-edge per
//! vertex — by finding the cycles of the policy's functional graph, and
//! (2) improve the policy, first by cycle-ratio value, then by potential.
//! Both improvement tests use a small relative tolerance; the returned ratio
//! is always recomputed *exactly* from the witness circuit, so tolerances
//! only affect how long the search runs, not the reported value.

use crate::graph::{CycleSolution, RatioGraph, RatioGraphError};
use crate::scc::tarjan_scc;

/// Result alias for cycle-ratio computations.
pub type RatioResult = Result<Option<CycleSolution>, RatioGraphError>;

/// Computes the maximum cycle ratio of `g` with Howard's policy iteration.
///
/// Returns `Ok(None)` when the graph has no circuit at all, and
/// [`RatioGraphError::ZeroTokenCycle`] when a circuit with zero total tokens
/// exists (a deadlocked event graph has no finite period).
pub fn max_cycle_ratio(g: &RatioGraph) -> RatioResult {
    g.validate()?;
    let scc = tarjan_scc(g);
    let mut best: Option<CycleSolution> = None;
    for members in scc.cyclic_components(g) {
        let (sub, _) = g.restrict(members);
        let sol = howard_scc(&sub)?;
        // Map witness back to original ids.
        let cycle: Vec<u32> = sol.cycle.iter().map(|&v| members[v as usize]).collect();
        let sol = CycleSolution { cycle, ..sol };
        if best.as_ref().is_none_or(|b| sol.ratio > b.ratio) {
            best = Some(sol);
        }
    }
    Ok(best)
}

/// Howard's iteration on one strongly connected subgraph in which every
/// vertex has at least one out-edge (guaranteed by SCC restriction).
fn howard_scc(g: &RatioGraph) -> Result<CycleSolution, RatioGraphError> {
    let n = g.num_vertices();
    let (offsets, eidx) = g.adjacency();
    let edges = g.edges();
    let scale: f64 = edges.iter().map(|e| e.cost.abs()).fold(1.0, f64::max);
    let eps = scale * 1e-12;

    // Policy: one out-edge (index into `edges`) per vertex. Start from the
    // max-cost edge, a decent initial guess.
    let mut policy: Vec<u32> = (0..n)
        .map(|v| {
            let outs = &eidx[offsets[v] as usize..offsets[v + 1] as usize];
            *outs
                .iter()
                .max_by(|&&a, &&b| {
                    edges[a as usize]
                        .cost
                        .partial_cmp(&edges[b as usize].cost)
                        .expect("finite costs")
                })
                .expect("SCC vertex must have an out-edge")
        })
        .collect();

    let mut lambda = vec![f64::NEG_INFINITY; n];
    let mut potential = vec![0.0f64; n];

    // Generous bound: each iteration strictly improves (λ, x); policies are
    // finite. The bound guards against floating-point livelock.
    let max_iters = 64 + 8 * n + g.num_edges();
    for _ in 0..max_iters {
        evaluate_policy(g, &policy, &mut lambda, &mut potential)?;

        // Phase 1: improve by cycle-ratio value.
        let mut changed = false;
        for v in 0..n {
            let mut best_e = policy[v];
            let mut best_l = lambda[edges[best_e as usize].to as usize];
            for &ei in &eidx[offsets[v] as usize..offsets[v + 1] as usize] {
                let l = lambda[edges[ei as usize].to as usize];
                if l > best_l + eps {
                    best_l = l;
                    best_e = ei;
                }
            }
            if best_e != policy[v] {
                policy[v] = best_e;
                changed = true;
            }
        }
        if changed {
            continue;
        }

        // Phase 2: improve by potential among edges of (near-)equal value.
        for v in 0..n {
            let cur = policy[v] as usize;
            let cur_val =
                edges[cur].cost - lambda[v] * f64::from(edges[cur].tokens) + potential[edges[cur].to as usize];
            let mut best_e = policy[v];
            let mut best_val = cur_val;
            for &ei in &eidx[offsets[v] as usize..offsets[v + 1] as usize] {
                let e = &edges[ei as usize];
                if lambda[e.to as usize] < lambda[v] - eps {
                    continue;
                }
                let val = e.cost - lambda[v] * f64::from(e.tokens) + potential[e.to as usize];
                if val > best_val + eps {
                    best_val = val;
                    best_e = ei;
                }
            }
            if best_e != policy[v] {
                policy[v] = best_e;
                changed = true;
            }
        }
        if !changed {
            return extract_witness(g, &policy, &lambda);
        }
    }
    Err(RatioGraphError::NoConvergence)
}

/// Evaluates a policy: for every vertex, the ratio of the policy cycle it
/// reaches (`lambda`) and a potential (`potential`) solving
/// `x[v] = cost − λ·tokens + x[π(v)]` along policy edges, rooted at an
/// arbitrary vertex of each policy cycle.
fn evaluate_policy(
    g: &RatioGraph,
    policy: &[u32],
    lambda: &mut [f64],
    potential: &mut [f64],
) -> Result<(), RatioGraphError> {
    let n = g.num_vertices();
    let edges = g.edges();
    // 0 = unvisited, 1 = on current walk, 2 = finished.
    let mut state = vec![0u8; n];
    let mut walk_pos = vec![0u32; n];
    let mut path: Vec<u32> = Vec::new();

    for start in 0..n as u32 {
        if state[start as usize] != 0 {
            continue;
        }
        path.clear();
        let mut u = start;
        while state[u as usize] == 0 {
            state[u as usize] = 1;
            walk_pos[u as usize] = path.len() as u32;
            path.push(u);
            u = edges[policy[u as usize] as usize].to;
        }

        let settle_from = if state[u as usize] == 1 {
            // New policy cycle: path[pos..] are its vertices in order.
            let pos = walk_pos[u as usize] as usize;
            let cycle = &path[pos..];
            let mut cost = 0.0;
            let mut tokens: u64 = 0;
            for &v in cycle {
                let e = &edges[policy[v as usize] as usize];
                cost += e.cost;
                tokens += u64::from(e.tokens);
            }
            if tokens == 0 {
                return Err(RatioGraphError::ZeroTokenCycle { cycle: cycle.to_vec() });
            }
            let lam = cost / tokens as f64;
            // Root the potential at the cycle entry point `u = cycle[0]`.
            lambda[u as usize] = lam;
            potential[u as usize] = 0.0;
            for i in (1..cycle.len()).rev() {
                let v = cycle[i] as usize;
                let e = &edges[policy[v] as usize];
                lambda[v] = lam;
                potential[v] = e.cost - lam * f64::from(e.tokens) + potential[e.to as usize];
                state[v] = 2;
            }
            state[u as usize] = 2;
            pos
        } else {
            // Reached an already-settled vertex; the whole path hangs off it.
            path.len()
        };

        // Settle the tail of the walk (path[..settle_from]) backwards.
        for i in (0..settle_from).rev() {
            let v = path[i] as usize;
            let e = &edges[policy[v] as usize];
            lambda[v] = lambda[e.to as usize];
            potential[v] = e.cost - lambda[v] * f64::from(e.tokens) + potential[e.to as usize];
            state[v] = 2;
        }
    }
    Ok(())
}

/// Extracts the critical circuit of the converged policy: follow the policy
/// from the vertex with maximal λ until a vertex repeats.
fn extract_witness(
    g: &RatioGraph,
    policy: &[u32],
    lambda: &[f64],
) -> Result<CycleSolution, RatioGraphError> {
    let edges = g.edges();
    let n = g.num_vertices();
    let start = (0..n)
        .max_by(|&a, &b| lambda[a].partial_cmp(&lambda[b]).expect("finite lambda"))
        .expect("non-empty SCC");
    let mut seen = vec![false; n];
    let mut u = start as u32;
    while !seen[u as usize] {
        seen[u as usize] = true;
        u = edges[policy[u as usize] as usize].to;
    }
    // `u` is on the cycle; walk it once more to collect it.
    let mut cycle = Vec::new();
    let mut cost = 0.0;
    let mut tokens: u64 = 0;
    let first = u;
    loop {
        cycle.push(u);
        let e = &edges[policy[u as usize] as usize];
        cost += e.cost;
        tokens += u64::from(e.tokens);
        u = e.to;
        if u == first {
            break;
        }
    }
    debug_assert!(tokens > 0, "converged policy cycle must carry tokens");
    Ok(CycleSolution { ratio: cost / tokens as f64, cycle, cost, tokens })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_has_no_cycle() {
        let g = RatioGraph::new(3);
        assert_eq!(max_cycle_ratio(&g).unwrap(), None);
    }

    #[test]
    fn dag_has_no_cycle() {
        let mut g = RatioGraph::new(3);
        g.add_edge(0, 1, 5.0, 1);
        g.add_edge(1, 2, 5.0, 1);
        assert_eq!(max_cycle_ratio(&g).unwrap(), None);
    }

    #[test]
    fn self_loop() {
        let mut g = RatioGraph::new(1);
        g.add_edge(0, 0, 7.5, 3);
        let sol = max_cycle_ratio(&g).unwrap().unwrap();
        assert!((sol.ratio - 2.5).abs() < 1e-12);
        assert_eq!(sol.cycle, vec![0]);
    }

    #[test]
    fn picks_worse_of_two_loops() {
        let mut g = RatioGraph::new(2);
        g.add_edge(0, 0, 2.0, 1); // ratio 2
        g.add_edge(1, 1, 9.0, 2); // ratio 4.5
        g.add_edge(0, 1, 0.0, 0);
        let sol = max_cycle_ratio(&g).unwrap().unwrap();
        assert!((sol.ratio - 4.5).abs() < 1e-12);
    }

    #[test]
    fn zero_token_cycle_is_deadlock() {
        let mut g = RatioGraph::new(2);
        g.add_edge(0, 1, 1.0, 0);
        g.add_edge(1, 0, 1.0, 0);
        match max_cycle_ratio(&g) {
            Err(RatioGraphError::ZeroTokenCycle { cycle }) => assert_eq!(cycle.len(), 2),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn mixed_token_counts() {
        // Cycle A: 0→1→0, cost 10, tokens 1 → ratio 10.
        // Cycle B: 0→1→2→0, cost 12, tokens 4 → ratio 3.
        let mut g = RatioGraph::new(3);
        g.add_edge(0, 1, 4.0, 1);
        g.add_edge(1, 0, 6.0, 0);
        g.add_edge(1, 2, 5.0, 1);
        g.add_edge(2, 0, 3.0, 2);
        let sol = max_cycle_ratio(&g).unwrap().unwrap();
        assert!((sol.ratio - 10.0).abs() < 1e-12);
        assert_eq!(sol.tokens, 1);
    }

    #[test]
    fn disconnected_components() {
        let mut g = RatioGraph::new(4);
        g.add_edge(0, 1, 1.0, 1);
        g.add_edge(1, 0, 1.0, 1); // ratio 1
        g.add_edge(2, 3, 30.0, 2);
        g.add_edge(3, 2, 10.0, 2); // ratio 10
        let sol = max_cycle_ratio(&g).unwrap().unwrap();
        assert!((sol.ratio - 10.0).abs() < 1e-12);
        assert!(sol.cycle.contains(&2) && sol.cycle.contains(&3));
    }

    #[test]
    fn parallel_edges_choose_max() {
        let mut g = RatioGraph::new(2);
        g.add_edge(0, 1, 1.0, 1);
        g.add_edge(0, 1, 8.0, 1);
        g.add_edge(1, 0, 1.0, 1);
        let sol = max_cycle_ratio(&g).unwrap().unwrap();
        assert!((sol.ratio - 4.5).abs() < 1e-12);
    }

    #[test]
    fn witness_ratio_is_consistent() {
        let mut g = RatioGraph::new(3);
        g.add_edge(0, 1, 2.0, 1);
        g.add_edge(1, 2, 3.0, 0);
        g.add_edge(2, 0, 4.0, 2);
        let sol = max_cycle_ratio(&g).unwrap().unwrap();
        assert!((sol.cost / sol.tokens as f64 - sol.ratio).abs() < 1e-12);
        assert!((sol.ratio - 3.0).abs() < 1e-12);
    }
}
