//! Howard's policy iteration for the **maximum cycle ratio**.
//!
//! Given a [`RatioGraph`], computes
//! `λ* = max over circuits C of Σcost(C) / Σtokens(C)` together with a
//! witness circuit. This is the algorithm the paper relies on to evaluate
//! critical cycles of timed event graphs (the authors used the ERS/GreatSPN
//! tools; Howard's iteration computes the same quantity and is the fastest
//! known method in practice).
//!
//! The implementation is the classic multi-chain policy iteration:
//! repeatedly (1) evaluate the current policy — a choice of one out-edge per
//! vertex — by finding the cycles of the policy's functional graph, and
//! (2) improve the policy, first by cycle-ratio value, then by potential.
//! Both improvement tests use a small relative tolerance; the returned ratio
//! is always recomputed *exactly* from the witness circuit, so tolerances
//! only affect how long the search runs, not the reported value.
//!
//! The solver itself lives in [`crate::workspace`]: it runs per SCC on a
//! shared CSR adjacency and borrows every scratch vector from a
//! caller-owned [`Workspace`], which makes repeated solves allocation-free
//! and enables warm-started iteration
//! ([`Workspace::max_cycle_ratio_warm`]). This module keeps the simple
//! one-shot entry point.

use crate::graph::RatioGraph;
use crate::graph::{CycleSolution, RatioGraphError};
use crate::workspace::Workspace;

/// Result alias for cycle-ratio computations.
pub type RatioResult = Result<Option<CycleSolution>, RatioGraphError>;

/// Computes the maximum cycle ratio of `g` with Howard's policy iteration.
///
/// Returns `Ok(None)` when the graph has no circuit at all, and
/// [`RatioGraphError::ZeroTokenCycle`] when a circuit with zero total tokens
/// exists (a deadlocked event graph has no finite period).
///
/// One-shot convenience: allocates a fresh [`Workspace`] per call. Hot
/// loops (campaigns, mapping searches) should hold a [`Workspace`] — or a
/// `repwf_core::engine::PeriodEngine` — and reuse it instead.
pub fn max_cycle_ratio(g: &RatioGraph) -> RatioResult {
    Workspace::new().max_cycle_ratio(g)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_has_no_cycle() {
        let g = RatioGraph::new(3);
        assert_eq!(max_cycle_ratio(&g).unwrap(), None);
    }

    #[test]
    fn dag_has_no_cycle() {
        let mut g = RatioGraph::new(3);
        g.add_edge(0, 1, 5.0, 1);
        g.add_edge(1, 2, 5.0, 1);
        assert_eq!(max_cycle_ratio(&g).unwrap(), None);
    }

    #[test]
    fn self_loop() {
        let mut g = RatioGraph::new(1);
        g.add_edge(0, 0, 7.5, 3);
        let sol = max_cycle_ratio(&g).unwrap().unwrap();
        assert!((sol.ratio - 2.5).abs() < 1e-12);
        assert_eq!(sol.cycle, vec![0]);
    }

    #[test]
    fn picks_worse_of_two_loops() {
        let mut g = RatioGraph::new(2);
        g.add_edge(0, 0, 2.0, 1); // ratio 2
        g.add_edge(1, 1, 9.0, 2); // ratio 4.5
        g.add_edge(0, 1, 0.0, 0);
        let sol = max_cycle_ratio(&g).unwrap().unwrap();
        assert!((sol.ratio - 4.5).abs() < 1e-12);
    }

    #[test]
    fn zero_token_cycle_is_deadlock() {
        let mut g = RatioGraph::new(2);
        g.add_edge(0, 1, 1.0, 0);
        g.add_edge(1, 0, 1.0, 0);
        match max_cycle_ratio(&g) {
            Err(RatioGraphError::ZeroTokenCycle { cycle }) => assert_eq!(cycle.len(), 2),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn mixed_token_counts() {
        // Cycle A: 0→1→0, cost 10, tokens 1 → ratio 10.
        // Cycle B: 0→1→2→0, cost 12, tokens 4 → ratio 3.
        let mut g = RatioGraph::new(3);
        g.add_edge(0, 1, 4.0, 1);
        g.add_edge(1, 0, 6.0, 0);
        g.add_edge(1, 2, 5.0, 1);
        g.add_edge(2, 0, 3.0, 2);
        let sol = max_cycle_ratio(&g).unwrap().unwrap();
        assert!((sol.ratio - 10.0).abs() < 1e-12);
        assert_eq!(sol.tokens, 1);
    }

    #[test]
    fn disconnected_components() {
        let mut g = RatioGraph::new(4);
        g.add_edge(0, 1, 1.0, 1);
        g.add_edge(1, 0, 1.0, 1); // ratio 1
        g.add_edge(2, 3, 30.0, 2);
        g.add_edge(3, 2, 10.0, 2); // ratio 10
        let sol = max_cycle_ratio(&g).unwrap().unwrap();
        assert!((sol.ratio - 10.0).abs() < 1e-12);
        assert!(sol.cycle.contains(&2) && sol.cycle.contains(&3));
    }

    #[test]
    fn parallel_edges_choose_max() {
        let mut g = RatioGraph::new(2);
        g.add_edge(0, 1, 1.0, 1);
        g.add_edge(0, 1, 8.0, 1);
        g.add_edge(1, 0, 1.0, 1);
        let sol = max_cycle_ratio(&g).unwrap().unwrap();
        assert!((sol.ratio - 4.5).abs() < 1e-12);
    }

    #[test]
    fn witness_ratio_is_consistent() {
        let mut g = RatioGraph::new(3);
        g.add_edge(0, 1, 2.0, 1);
        g.add_edge(1, 2, 3.0, 0);
        g.add_edge(2, 0, 4.0, 2);
        let sol = max_cycle_ratio(&g).unwrap().unwrap();
        assert!((sol.cost / sol.tokens as f64 - sol.ratio).abs() < 1e-12);
        assert!((sol.ratio - 3.0).abs() < 1e-12);
    }

    #[test]
    fn witness_uses_global_vertex_ids() {
        // The deadlock witness must be reported in the caller's vertex ids
        // even when the cycle lives in a later component.
        let mut g = RatioGraph::new(5);
        g.add_edge(0, 1, 1.0, 1); // acyclic prefix
        g.add_edge(3, 4, 1.0, 1);
        g.add_edge(4, 3, 2.0, 1);
        let sol = max_cycle_ratio(&g).unwrap().unwrap();
        assert!(sol.cycle.contains(&3) && sol.cycle.contains(&4));
    }
}
