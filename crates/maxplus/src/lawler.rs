//! Lawler's parametric search for the maximum cycle ratio.
//!
//! For a guess `λ`, re-weight every edge as `cost − λ·tokens`: the graph has
//! a strictly positive circuit iff the true maximum cycle ratio exceeds `λ`.
//! Binary search on `λ`, with a Bellman–Ford longest-path pass as the
//! positive-circuit oracle. Each time the oracle finds a circuit we snap `λ`
//! to that circuit's *exact* ratio, so the final answer is the exact ratio
//! of a real witness circuit, like [`crate::howard`].
//!
//! This is the cross-check implementation: slower than Howard's iteration
//! but with entirely independent logic. The solver lives in
//! [`crate::workspace`], borrowing its Bellman–Ford distance/predecessor
//! arrays and the zero-token-subgraph DFS state from a caller-owned
//! [`Workspace`] so repeated cross-checks do not allocate.

use crate::graph::RatioGraph;
use crate::howard::RatioResult;
use crate::workspace::Workspace;
#[cfg(test)]
use crate::graph::RatioGraphError;

/// Computes the maximum cycle ratio by parametric search.
///
/// Semantics match [`crate::howard::max_cycle_ratio`]: `Ok(None)` for
/// acyclic graphs, `RatioGraphError::ZeroTokenCycle` for deadlocks.
///
/// One-shot convenience over [`Workspace::max_cycle_ratio_lawler`].
pub fn max_cycle_ratio_lawler(g: &RatioGraph) -> RatioResult {
    Workspace::new().max_cycle_ratio_lawler(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::howard::max_cycle_ratio;

    fn assert_agrees(g: &RatioGraph) {
        let h = max_cycle_ratio(g).unwrap();
        let l = max_cycle_ratio_lawler(g).unwrap();
        match (h, l) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                assert!(
                    (a.ratio - b.ratio).abs() <= 1e-9 * a.ratio.abs().max(1.0),
                    "howard {} vs lawler {}",
                    a.ratio,
                    b.ratio
                )
            }
            other => panic!("disagreement: {other:?}"),
        }
    }

    #[test]
    fn agrees_on_simple_cycle() {
        let mut g = RatioGraph::new(2);
        g.add_edge(0, 1, 3.0, 1);
        g.add_edge(1, 0, 5.0, 1);
        assert_agrees(&g);
        let sol = max_cycle_ratio_lawler(&g).unwrap().unwrap();
        assert!((sol.ratio - 4.0).abs() < 1e-12);
    }

    #[test]
    fn acyclic_none() {
        let mut g = RatioGraph::new(3);
        g.add_edge(0, 1, 10.0, 1);
        g.add_edge(1, 2, 10.0, 2);
        assert_eq!(max_cycle_ratio_lawler(&g).unwrap(), None);
    }

    #[test]
    fn deadlock_detected() {
        let mut g = RatioGraph::new(3);
        g.add_edge(0, 1, 1.0, 0);
        g.add_edge(1, 2, 1.0, 0);
        g.add_edge(2, 0, 1.0, 0);
        assert!(matches!(
            max_cycle_ratio_lawler(&g),
            Err(RatioGraphError::ZeroTokenCycle { .. })
        ));
    }

    #[test]
    fn agrees_on_mixed_graph() {
        let mut g = RatioGraph::new(4);
        g.add_edge(0, 1, 4.0, 1);
        g.add_edge(1, 0, 6.0, 0);
        g.add_edge(1, 2, 5.0, 1);
        g.add_edge(2, 3, 2.5, 0);
        g.add_edge(3, 0, 3.0, 2);
        g.add_edge(3, 3, 1.0, 1);
        assert_agrees(&g);
    }

    #[test]
    fn zero_token_edges_inside_ok_cycles() {
        // zero-token edges exist but every circuit has a token
        let mut g = RatioGraph::new(3);
        g.add_edge(0, 1, 2.0, 0);
        g.add_edge(1, 2, 2.0, 0);
        g.add_edge(2, 0, 2.0, 1);
        let sol = max_cycle_ratio_lawler(&g).unwrap().unwrap();
        assert!((sol.ratio - 6.0).abs() < 1e-12);
    }
}
