//! Lawler's parametric search for the maximum cycle ratio.
//!
//! For a guess `λ`, re-weight every edge as `cost − λ·tokens`: the graph has
//! a strictly positive circuit iff the true maximum cycle ratio exceeds `λ`.
//! Binary search on `λ`, with a Bellman–Ford longest-path pass as the
//! positive-circuit oracle. Each time the oracle finds a circuit we snap `λ`
//! to that circuit's *exact* ratio, so the final answer is the exact ratio
//! of a real witness circuit, like [`crate::howard`].
//!
//! This is the cross-check implementation: slower than Howard's iteration
//! but with entirely independent logic.

use crate::graph::{CycleSolution, RatioGraph, RatioGraphError};
use crate::howard::RatioResult;

/// Computes the maximum cycle ratio by parametric search.
///
/// Semantics match [`crate::howard::max_cycle_ratio`]: `Ok(None)` for
/// acyclic graphs, [`RatioGraphError::ZeroTokenCycle`] for deadlocks.
pub fn max_cycle_ratio_lawler(g: &RatioGraph) -> RatioResult {
    g.validate()?;
    if g.num_edges() == 0 {
        return Ok(None);
    }
    // A positive circuit at λ slightly below 0 with zero tokens means
    // deadlock; detect zero-token cycles first with a token-free pass:
    // circuit of only zero-token edges ⇔ the zero-token subgraph is cyclic.
    if let Some(cycle) = zero_token_cycle(g) {
        return Err(RatioGraphError::ZeroTokenCycle { cycle });
    }

    let cost_sum: f64 = g.edges().iter().map(|e| e.cost.abs()).sum::<f64>().max(1.0);
    let mut lo = -cost_sum; // below any cycle ratio
    let mut hi = cost_sum; // above any cycle ratio (tokens ≥ 1 per cycle)
    let mut best: Option<CycleSolution> = None;

    // First probe at `lo` decides whether any circuit exists at all.
    match positive_cycle(g, lo) {
        None => return Ok(None),
        Some(cycle) => {
            let sol = exact_solution(g, &cycle)?;
            lo = sol.ratio;
            best = pick_best(best, sol);
        }
    }

    let eps = cost_sum * 1e-13;
    while hi - lo > eps {
        let mid = 0.5 * (lo + hi);
        match positive_cycle(g, mid) {
            Some(cycle) => {
                let sol = exact_solution(g, &cycle)?;
                // The witness has ratio > mid; snap the lower bound to it.
                lo = sol.ratio.max(mid);
                best = pick_best(best, sol);
            }
            None => hi = mid,
        }
    }
    Ok(best)
}

fn pick_best(best: Option<CycleSolution>, sol: CycleSolution) -> Option<CycleSolution> {
    match best {
        Some(b) if b.ratio >= sol.ratio => Some(b),
        _ => Some(sol),
    }
}

/// Exact ratio of a circuit found by the oracle. The circuit is given as the
/// edge-index sequence.
fn exact_solution(g: &RatioGraph, cycle_edges: &[u32]) -> Result<CycleSolution, RatioGraphError> {
    let mut cost = 0.0;
    let mut tokens = 0u64;
    let mut cycle = Vec::with_capacity(cycle_edges.len());
    for &ei in cycle_edges {
        let e = &g.edges()[ei as usize];
        cost += e.cost;
        tokens += u64::from(e.tokens);
        cycle.push(e.from);
    }
    if tokens == 0 {
        return Err(RatioGraphError::ZeroTokenCycle { cycle });
    }
    Ok(CycleSolution { ratio: cost / tokens as f64, cycle, cost, tokens })
}

/// Bellman–Ford longest-path positive-circuit oracle for weights
/// `cost − λ·tokens`. Returns the edge indices of a positive circuit, if any.
fn positive_cycle(g: &RatioGraph, lambda: f64) -> Option<Vec<u32>> {
    let n = g.num_vertices();
    let edges = g.edges();
    let mut dist = vec![0.0f64; n]; // multi-source: all vertices at 0
    let mut pred_edge: Vec<u32> = vec![u32::MAX; n];

    let mut updated_vertex: Option<u32> = None;
    for round in 0..=n {
        let mut any = false;
        for (i, e) in edges.iter().enumerate() {
            let w = e.cost - lambda * f64::from(e.tokens);
            let cand = dist[e.from as usize] + w;
            if cand > dist[e.to as usize] + 1e-15 {
                dist[e.to as usize] = cand;
                pred_edge[e.to as usize] = i as u32;
                any = true;
                if round == n {
                    updated_vertex = Some(e.to);
                    break;
                }
            }
        }
        if !any {
            return None;
        }
    }

    // A relaxation in round n ⇒ positive circuit reachable via predecessors.
    let mut v = updated_vertex?;
    // Walk back n steps to guarantee we are inside the circuit.
    for _ in 0..n {
        v = edges[pred_edge[v as usize] as usize].from;
    }
    let start = v;
    let mut cycle_edges = Vec::new();
    loop {
        let ei = pred_edge[v as usize];
        cycle_edges.push(ei);
        v = edges[ei as usize].from;
        if v == start {
            break;
        }
    }
    cycle_edges.reverse();
    Some(cycle_edges)
}

/// Finds a circuit made of zero-token edges only (DFS cycle detection on the
/// zero-token subgraph), or `None`.
fn zero_token_cycle(g: &RatioGraph) -> Option<Vec<u32>> {
    let n = g.num_vertices();
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for e in g.edges() {
        if e.tokens == 0 {
            adj[e.from as usize].push(e.to);
        }
    }
    // Iterative coloring DFS: 0 white, 1 grey, 2 black.
    let mut color = vec![0u8; n];
    let mut parent: Vec<u32> = vec![u32::MAX; n];
    for root in 0..n as u32 {
        if color[root as usize] != 0 {
            continue;
        }
        let mut stack: Vec<(u32, usize)> = vec![(root, 0)];
        color[root as usize] = 1;
        while let Some(&mut (v, ref mut pos)) = stack.last_mut() {
            if *pos < adj[v as usize].len() {
                let w = adj[v as usize][*pos];
                *pos += 1;
                match color[w as usize] {
                    0 => {
                        color[w as usize] = 1;
                        parent[w as usize] = v;
                        stack.push((w, 0));
                    }
                    1 => {
                        // Grey: found a cycle w → … → v → w.
                        let mut cycle = vec![w];
                        let mut u = v;
                        while u != w {
                            cycle.push(u);
                            u = parent[u as usize];
                        }
                        cycle.reverse();
                        return Some(cycle);
                    }
                    _ => {}
                }
            } else {
                color[v as usize] = 2;
                stack.pop();
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::howard::max_cycle_ratio;

    fn assert_agrees(g: &RatioGraph) {
        let h = max_cycle_ratio(g).unwrap();
        let l = max_cycle_ratio_lawler(g).unwrap();
        match (h, l) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                assert!(
                    (a.ratio - b.ratio).abs() <= 1e-9 * a.ratio.abs().max(1.0),
                    "howard {} vs lawler {}",
                    a.ratio,
                    b.ratio
                )
            }
            other => panic!("disagreement: {other:?}"),
        }
    }

    #[test]
    fn agrees_on_simple_cycle() {
        let mut g = RatioGraph::new(2);
        g.add_edge(0, 1, 3.0, 1);
        g.add_edge(1, 0, 5.0, 1);
        assert_agrees(&g);
        let sol = max_cycle_ratio_lawler(&g).unwrap().unwrap();
        assert!((sol.ratio - 4.0).abs() < 1e-12);
    }

    #[test]
    fn acyclic_none() {
        let mut g = RatioGraph::new(3);
        g.add_edge(0, 1, 10.0, 1);
        g.add_edge(1, 2, 10.0, 2);
        assert_eq!(max_cycle_ratio_lawler(&g).unwrap(), None);
    }

    #[test]
    fn deadlock_detected() {
        let mut g = RatioGraph::new(3);
        g.add_edge(0, 1, 1.0, 0);
        g.add_edge(1, 2, 1.0, 0);
        g.add_edge(2, 0, 1.0, 0);
        assert!(matches!(
            max_cycle_ratio_lawler(&g),
            Err(RatioGraphError::ZeroTokenCycle { .. })
        ));
    }

    #[test]
    fn agrees_on_mixed_graph() {
        let mut g = RatioGraph::new(4);
        g.add_edge(0, 1, 4.0, 1);
        g.add_edge(1, 0, 6.0, 0);
        g.add_edge(1, 2, 5.0, 1);
        g.add_edge(2, 3, 2.5, 0);
        g.add_edge(3, 0, 3.0, 2);
        g.add_edge(3, 3, 1.0, 1);
        assert_agrees(&g);
    }

    #[test]
    fn zero_token_edges_inside_ok_cycles() {
        // zero-token edges exist but every circuit has a token
        let mut g = RatioGraph::new(3);
        g.add_edge(0, 1, 2.0, 0);
        g.add_edge(1, 2, 2.0, 0);
        g.add_edge(2, 0, 2.0, 1);
        let sol = max_cycle_ratio_lawler(&g).unwrap().unwrap();
        assert!((sol.ratio - 6.0).abs() < 1e-12);
    }
}
