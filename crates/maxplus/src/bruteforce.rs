//! Exhaustive simple-cycle enumeration, for validating the real algorithms.
//!
//! The maximum cycle ratio is always attained by a *simple* circuit (any
//! circuit decomposes into simple ones and the mediant inequality bounds the
//! combined ratio by the best part), so enumerating simple cycles on tiny
//! graphs gives a ground-truth oracle.

use crate::graph::{CycleSolution, RatioGraph, RatioGraphError};
use crate::howard::RatioResult;

/// Hard cap on vertices: enumeration is exponential.
pub const MAX_VERTICES: usize = 16;

/// Enumerates every simple circuit and returns the best ratio (exactly as in
/// [`crate::howard::max_cycle_ratio`]). Panics if the graph has more than
/// [`MAX_VERTICES`] vertices.
pub fn max_cycle_ratio_bruteforce(g: &RatioGraph) -> RatioResult {
    assert!(
        g.num_vertices() <= MAX_VERTICES,
        "brute force limited to {MAX_VERTICES} vertices"
    );
    g.validate()?;
    let n = g.num_vertices();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, e) in g.edges().iter().enumerate() {
        adj[e.from as usize].push(i);
    }

    let mut best: Option<CycleSolution> = None;
    // Enumerate cycles whose minimum vertex is `root` to avoid duplicates.
    for root in 0..n as u32 {
        let mut path_v: Vec<u32> = vec![root];
        let mut path_e: Vec<usize> = Vec::new();
        let mut on_path = vec![false; n];
        on_path[root as usize] = true;
        // stack of edge-iterator positions per depth
        let mut pos: Vec<usize> = vec![0];
        while let Some(p) = pos.last_mut() {
            let v = *path_v.last().expect("path non-empty") as usize;
            if *p < adj[v].len() {
                let ei = adj[v][*p];
                *p += 1;
                let e = &g.edges()[ei];
                if e.to < root {
                    continue; // canonical form: root is the min vertex
                }
                if e.to == root {
                    // Found a cycle.
                    let mut cost = 0.0;
                    let mut tokens = 0u64;
                    for &k in path_e.iter().chain(std::iter::once(&ei)) {
                        let ek = &g.edges()[k];
                        cost += ek.cost;
                        tokens += u64::from(ek.tokens);
                    }
                    if tokens == 0 {
                        return Err(RatioGraphError::ZeroTokenCycle { cycle: path_v.clone() });
                    }
                    let ratio = cost / tokens as f64;
                    if best.as_ref().is_none_or(|b| ratio > b.ratio) {
                        best = Some(CycleSolution { ratio, cycle: path_v.clone(), cost, tokens });
                    }
                } else if !on_path[e.to as usize] {
                    on_path[e.to as usize] = true;
                    path_v.push(e.to);
                    path_e.push(ei);
                    pos.push(0);
                }
            } else {
                pos.pop();
                let v = path_v.pop().expect("path non-empty");
                on_path[v as usize] = false;
                path_e.pop();
            }
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::howard::max_cycle_ratio;
    use crate::karp::max_cycle_ratio_karp;
    use crate::lawler::max_cycle_ratio_lawler;
    use proptest::prelude::*;

    #[test]
    fn triangle() {
        let mut g = RatioGraph::new(3);
        g.add_edge(0, 1, 1.0, 1);
        g.add_edge(1, 2, 2.0, 1);
        g.add_edge(2, 0, 6.0, 1);
        let sol = max_cycle_ratio_bruteforce(&g).unwrap().unwrap();
        assert!((sol.ratio - 3.0).abs() < 1e-12);
    }

    #[test]
    fn no_duplicate_counting_with_two_loops() {
        let mut g = RatioGraph::new(2);
        g.add_edge(0, 1, 1.0, 1);
        g.add_edge(1, 0, 1.0, 1);
        g.add_edge(1, 1, 5.0, 1);
        let sol = max_cycle_ratio_bruteforce(&g).unwrap().unwrap();
        assert!((sol.ratio - 5.0).abs() < 1e-12);
    }

    /// Random small graphs where every vertex has a tokened self-loop (so no
    /// deadlock is possible); the four oracles must agree.
    fn arb_graph() -> impl Strategy<Value = RatioGraph> {
        (2usize..7, proptest::collection::vec((0u32..7, 0u32..7, 0.0f64..50.0, 0u32..3), 1..20)).prop_map(
            |(n, raw)| {
                let mut g = RatioGraph::new(n);
                for v in 0..n as u32 {
                    g.add_edge(v, v, f64::from(v) + 1.0, 1);
                }
                for (a, b, c, t) in raw {
                    let (a, b) = (a % n as u32, b % n as u32);
                    // avoid creating zero-token self-loops
                    let t = if a == b && t == 0 { 1 } else { t };
                    g.add_edge(a, b, c, t);
                }
                g
            },
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(120))]
        #[test]
        fn oracles_agree(g in arb_graph()) {
            let bf = max_cycle_ratio_bruteforce(&g);
            let hw = max_cycle_ratio(&g);
            let lw = max_cycle_ratio_lawler(&g);
            let kp = max_cycle_ratio_karp(&g);
            match bf {
                Ok(Some(b)) => {
                    let h = hw.unwrap().unwrap();
                    let l = lw.unwrap().unwrap();
                    let k = kp.unwrap().unwrap();
                    let tol = 1e-8 * b.ratio.abs().max(1.0);
                    prop_assert!((b.ratio - h.ratio).abs() <= tol, "bf {} vs howard {}", b.ratio, h.ratio);
                    prop_assert!((b.ratio - l.ratio).abs() <= tol, "bf {} vs lawler {}", b.ratio, l.ratio);
                    prop_assert!((b.ratio - k.ratio).abs() <= tol, "bf {} vs karp {}", b.ratio, k.ratio);
                }
                Ok(None) => {
                    prop_assert!(hw.unwrap().is_none());
                    prop_assert!(lw.unwrap().is_none());
                }
                Err(_) => {
                    prop_assert!(hw.is_err());
                    prop_assert!(lw.is_err());
                }
            }
        }

        #[test]
        fn howard_witness_is_real_cycle(g in arb_graph()) {
            if let Ok(Some(sol)) = max_cycle_ratio(&g) {
                // Every hop of the witness must be an actual edge, the
                // claimed totals must be self-consistent, and the ratio must
                // not exceed the true optimum.
                for i in 0..sol.cycle.len() {
                    let from = sol.cycle[i];
                    let to = sol.cycle[(i + 1) % sol.cycle.len()];
                    prop_assert!(
                        g.edges().iter().any(|e| e.from == from && e.to == to),
                        "witness hop {from}->{to} is not an edge"
                    );
                }
                prop_assert!(sol.tokens > 0);
                prop_assert!((sol.cost / sol.tokens as f64 - sol.ratio).abs() <= 1e-9 * sol.ratio.abs().max(1.0));
                let bf = max_cycle_ratio_bruteforce(&g).unwrap().unwrap();
                prop_assert!(sol.ratio <= bf.ratio + 1e-8 * bf.ratio.abs().max(1.0));
            }
        }
    }
}
