//! The doubly-weighted digraph shared by all cycle-ratio algorithms.
//!
//! Every edge carries a real **cost** (in a timed event graph: the firing
//! time contributed by the edge's source transition) and an integer **token
//! count** (the marking of the place the edge represents). The quantity of
//! interest is the maximum over directed circuits of `Σcost / Σtokens`.

use std::fmt;

/// An edge of a [`RatioGraph`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// Source vertex.
    pub from: u32,
    /// Target vertex.
    pub to: u32,
    /// Real cost accumulated when traversing the edge (must be finite).
    pub cost: f64,
    /// Token count (a.k.a. transit time) of the edge.
    pub tokens: u32,
}

/// A directed graph with `(cost, tokens)` edge weights, in CSR-ish adjacency
/// form (edge list plus per-vertex out-edge index ranges built on demand).
#[derive(Debug, Clone, Default)]
pub struct RatioGraph {
    n: usize,
    edges: Vec<Edge>,
}

/// Errors produced by cycle-ratio analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RatioGraphError {
    /// The graph contains a circuit whose total token count is zero.
    ///
    /// For a timed event graph this is a deadlock: the circuit can never
    /// fire, so no steady-state period exists.
    ZeroTokenCycle {
        /// A witness circuit, as a vertex sequence (first vertex repeated at
        /// the end is *not* included).
        cycle: Vec<u32>,
    },
    /// An edge referenced a vertex `>= n`.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: u32,
    },
    /// An edge cost was non-finite.
    NonFiniteCost,
    /// An iterative algorithm failed to converge (should not happen on
    /// well-formed inputs; reported rather than looping forever).
    NoConvergence,
}

impl fmt::Display for RatioGraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RatioGraphError::ZeroTokenCycle { cycle } => {
                write!(f, "zero-token (deadlocked) circuit through vertices {cycle:?}")
            }
            RatioGraphError::VertexOutOfRange { vertex } => {
                write!(f, "edge endpoint {vertex} out of range")
            }
            RatioGraphError::NonFiniteCost => write!(f, "edge cost is not finite"),
            RatioGraphError::NoConvergence => write!(f, "cycle-ratio iteration did not converge"),
        }
    }
}

impl std::error::Error for RatioGraphError {}

/// The result of a maximum-cycle-ratio computation.
#[derive(Debug, Clone, PartialEq)]
pub struct CycleSolution {
    /// The maximum cycle ratio `Σcost / Σtokens`, computed exactly from the
    /// witness circuit (not from a numeric tolerance).
    pub ratio: f64,
    /// A witness critical circuit as a vertex sequence `v0 → v1 → … → v0`
    /// (the closing vertex is not repeated).
    pub cycle: Vec<u32>,
    /// Total cost along the witness circuit.
    pub cost: f64,
    /// Total token count along the witness circuit (always ≥ 1).
    pub tokens: u64,
}

impl RatioGraph {
    /// Creates an empty graph with `n` vertices.
    pub fn new(n: usize) -> Self {
        RatioGraph { n, edges: Vec::new() }
    }

    /// Creates an empty graph with `n` vertices and room for `cap` edges.
    pub fn with_capacity(n: usize, cap: usize) -> Self {
        RatioGraph { n, edges: Vec::with_capacity(cap) }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Resets the graph to `n` vertices and no edges, **keeping the edge
    /// buffer's capacity** — the arena primitive behind
    /// `tpn::analysis::ratio_graph_into` and the period engine's reuse.
    pub fn reset(&mut self, n: usize) {
        self.n = n;
        self.edges.clear();
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds a directed edge. Endpoints must be `< n`; `cost` must be finite.
    pub fn add_edge(&mut self, from: u32, to: u32, cost: f64, tokens: u32) {
        debug_assert!((from as usize) < self.n && (to as usize) < self.n);
        debug_assert!(cost.is_finite());
        self.edges.push(Edge { from, to, cost, tokens });
    }

    /// All edges, in insertion order.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Overwrites the cost of edge `idx` (insertion order) in place,
    /// leaving endpoints and tokens untouched — the delta-update primitive
    /// behind `tpn::analysis::period_patched_with`, which re-weights a
    /// structurally unchanged graph instead of rebuilding it.
    pub fn set_edge_cost(&mut self, idx: usize, cost: f64) {
        debug_assert!(cost.is_finite());
        self.edges[idx].cost = cost;
    }

    /// Validates endpoints and costs.
    pub fn validate(&self) -> Result<(), RatioGraphError> {
        for e in &self.edges {
            if (e.from as usize) >= self.n {
                return Err(RatioGraphError::VertexOutOfRange { vertex: e.from });
            }
            if (e.to as usize) >= self.n {
                return Err(RatioGraphError::VertexOutOfRange { vertex: e.to });
            }
            if !e.cost.is_finite() {
                return Err(RatioGraphError::NonFiniteCost);
            }
        }
        Ok(())
    }

    /// Builds the CSR adjacency: returns `(offsets, edge_indices)` such that
    /// the out-edges of vertex `v` are `edge_indices[offsets[v]..offsets[v+1]]`
    /// (indices into [`RatioGraph::edges`]).
    pub fn adjacency(&self) -> (Vec<u32>, Vec<u32>) {
        let mut offsets = vec![0u32; self.n + 1];
        for e in &self.edges {
            offsets[e.from as usize + 1] += 1;
        }
        for i in 0..self.n {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor = offsets.clone();
        let mut idx = vec![0u32; self.edges.len()];
        for (i, e) in self.edges.iter().enumerate() {
            let c = &mut cursor[e.from as usize];
            idx[*c as usize] = i as u32;
            *c += 1;
        }
        (offsets, idx)
    }

    /// Restriction of the graph to a vertex subset: returns the subgraph and
    /// the mapping `old vertex → new vertex` (dense renumbering).
    ///
    /// Edges with either endpoint outside the subset are dropped.
    pub fn restrict(&self, keep: &[u32]) -> (RatioGraph, Vec<Option<u32>>) {
        let mut map: Vec<Option<u32>> = vec![None; self.n];
        for (new, &old) in keep.iter().enumerate() {
            map[old as usize] = Some(new as u32);
        }
        let mut sub = RatioGraph::new(keep.len());
        for e in &self.edges {
            if let (Some(f), Some(t)) = (map[e.from as usize], map[e.to as usize]) {
                sub.add_edge(f, t, e.cost, e.tokens);
            }
        }
        (sub, map)
    }

    /// Exact ratio of a circuit given as a vertex sequence, following for
    /// each hop the maximum-cost edge between consecutive vertices (useful
    /// to re-derive an exact ratio from an approximate witness).
    ///
    /// Returns `None` if some hop has no edge, or the circuit carries zero
    /// tokens.
    pub fn cycle_ratio(&self, cycle: &[u32]) -> Option<CycleSolution> {
        if cycle.is_empty() {
            return None;
        }
        let mut cost = 0.0;
        let mut tokens = 0u64;
        for i in 0..cycle.len() {
            let from = cycle[i];
            let to = cycle[(i + 1) % cycle.len()];
            // Pick the best (max cost per token... we simply take the max
            // ratio-neutral choice: the edge maximizing cost - 0·tokens is
            // ambiguous; take the max-cost edge among min-token edges).
            let mut best: Option<&Edge> = None;
            for e in &self.edges {
                if e.from == from && e.to == to {
                    best = Some(match best {
                        None => e,
                        Some(b) => {
                            if (e.tokens, -e.cost) < (b.tokens, -b.cost) {
                                e
                            } else {
                                b
                            }
                        }
                    });
                }
            }
            let e = best?;
            cost += e.cost;
            tokens += u64::from(e.tokens);
        }
        if tokens == 0 {
            return None;
        }
        Some(CycleSolution { ratio: cost / tokens as f64, cycle: cycle.to_vec(), cost, tokens })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adjacency_groups_out_edges() {
        let mut g = RatioGraph::new(3);
        g.add_edge(0, 1, 1.0, 0);
        g.add_edge(2, 0, 2.0, 1);
        g.add_edge(0, 2, 3.0, 0);
        let (off, idx) = g.adjacency();
        assert_eq!(off, vec![0, 2, 2, 3]);
        let outs0: Vec<u32> = idx[off[0] as usize..off[1] as usize].to_vec();
        assert_eq!(outs0, vec![0, 2]);
    }

    #[test]
    fn restrict_keeps_internal_edges() {
        let mut g = RatioGraph::new(4);
        g.add_edge(0, 1, 1.0, 1);
        g.add_edge(1, 2, 1.0, 1);
        g.add_edge(2, 0, 1.0, 1);
        g.add_edge(3, 0, 9.0, 1);
        let (sub, map) = g.restrict(&[0, 1, 2]);
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(sub.num_edges(), 3);
        assert_eq!(map[3], None);
    }

    #[test]
    fn cycle_ratio_exact() {
        let mut g = RatioGraph::new(2);
        g.add_edge(0, 1, 3.0, 1);
        g.add_edge(1, 0, 5.0, 1);
        let sol = g.cycle_ratio(&[0, 1]).unwrap();
        assert_eq!(sol.ratio, 4.0);
        assert_eq!(sol.tokens, 2);
    }

    #[test]
    fn cycle_ratio_rejects_zero_tokens() {
        let mut g = RatioGraph::new(2);
        g.add_edge(0, 1, 3.0, 0);
        g.add_edge(1, 0, 5.0, 0);
        assert!(g.cycle_ratio(&[0, 1]).is_none());
    }

    #[test]
    fn validate_catches_bad_vertex() {
        let mut g = RatioGraph::new(1);
        g.edges.push(Edge { from: 0, to: 5, cost: 1.0, tokens: 0 });
        assert!(matches!(g.validate(), Err(RatioGraphError::VertexOutOfRange { vertex: 5 })));
    }
}
