//! Reusable scratch arenas for the cycle-ratio algorithms.
//!
//! The paper's campaigns, gap studies and mapping searches evaluate the
//! maximum cycle ratio of thousands of slightly-different graphs. The free
//! functions in [`crate::howard`], [`crate::karp`] and [`crate::lawler`]
//! allocate every vector they need on every call; for a hot loop that cost
//! dominates the arithmetic. A [`Workspace`] owns all of that scratch —
//! the [`Csr`] adjacency, the Tarjan stacks, the Howard policy/value
//! arrays, Karp's rolling rows and Lawler's Bellman–Ford state — so a
//! solve is **allocation-free after the first call** (buffers are resized
//! once and then reused; only error paths and the returned witness
//! allocate).
//!
//! On top of buffer reuse, the workspace supports **warm-started** policy
//! iteration: [`Workspace::max_cycle_ratio_warm`] seeds Howard's iteration
//! with the converged policy of the previous solve whenever the graph
//! shape matches, which typically converges in one or two policy
//! evaluations on the neighbor-mapping graphs produced by local search and
//! annealing. Warm starts change the *search path*, not the result: the
//! returned ratio is always recomputed exactly from the witness circuit.
//! The only caveat: when two distinct circuits tie for critical within the
//! solver's eps tolerance (~1e-12 relative — measure zero for generic
//! random costs, property-tested bit-for-bit on such inputs), a warm start
//! may settle on the other member of the tie and report its bit pattern.
//!
//! All algorithms work per strongly connected component directly on the
//! global vertex ids, slicing the shared CSR and filtering edges by
//! component id — no per-SCC subgraph is ever materialized (the old
//! implementation re-allocated a restricted [`RatioGraph`] per component).
//!
//! The top reuse tier is the **structure cache**:
//! [`Workspace::max_cycle_ratio_cached`] takes a caller-supplied structure
//! token and, when it matches the token of the previous successful cached
//! solve (and the graph dimensions agree), skips the CSR construction *and*
//! Tarjan's condensation entirely — only the structure-of-arrays cost
//! mirror is refreshed from the graph's (possibly re-weighted) edge list
//! before jumping straight into (optionally warm-started) Howard. This is
//! what makes a shape-preserving patched oracle call structurally free:
//! the whole per-solve cost is one cost sweep plus the policy iterations.
//! The cache is invalidated on any token or dimension miss, on a solve
//! error, and whenever another solver rebuilds the CSR; the
//! [`Workspace::csr_builds`] / [`Workspace::tarjan_runs`] counters let
//! callers (and the test suite) assert that patched solves really skip the
//! structural work.
//!
//! The CSR keeps the edge data in **structure-of-arrays** form
//! ([`Csr::targets`] / [`Csr::costs`] / [`Csr::token_counts`], one entry
//! per CSR position): the Howard improvement loops — the hottest code in
//! every campaign — stream three contiguous arrays per vertex range
//! instead of gathering `Edge` structs through the edge-index indirection.

use crate::graph::{CycleSolution, Edge, RatioGraph, RatioGraphError};
use crate::howard::RatioResult;

/// Compressed sparse row adjacency of a [`RatioGraph`]: out-edges of vertex
/// `v` are `edge_indices()[offsets()[v]..offsets()[v+1]]`, preserving the
/// insertion order of [`RatioGraph::add_edge`].
///
/// Besides the index view, the build materializes a **structure-of-arrays
/// mirror** of the edge list in CSR order — [`Csr::targets`],
/// [`Csr::costs`], [`Csr::token_counts`] — so the Howard improvement loops
/// stream three contiguous arrays instead of gathering 24-byte `Edge`
/// structs through an index indirection.
///
/// Built into owned buffers so repeated builds on same-sized graphs do not
/// allocate.
#[derive(Debug, Clone, Default)]
pub struct Csr {
    offsets: Vec<u32>,
    eidx: Vec<u32>,
    cursor: Vec<u32>,
    // SoA mirror of the edge list in CSR order (index = CSR position).
    to: Vec<u32>,
    cost: Vec<f64>,
    tokens: Vec<u32>,
}

impl Csr {
    /// Creates an empty CSR.
    pub fn new() -> Self {
        Csr::default()
    }

    /// (Re)builds the adjacency of `g`, reusing the internal buffers.
    pub fn build(&mut self, g: &RatioGraph) {
        let n = g.num_vertices();
        let ne = g.num_edges();
        self.offsets.clear();
        self.offsets.resize(n + 1, 0);
        for e in g.edges() {
            self.offsets[e.from as usize + 1] += 1;
        }
        for i in 0..n {
            self.offsets[i + 1] += self.offsets[i];
        }
        self.cursor.clear();
        self.cursor.extend_from_slice(&self.offsets[..n]);
        self.eidx.clear();
        self.eidx.resize(ne, 0);
        self.to.clear();
        self.to.resize(ne, 0);
        self.cost.clear();
        self.cost.resize(ne, 0.0);
        self.tokens.clear();
        self.tokens.resize(ne, 0);
        for (i, e) in g.edges().iter().enumerate() {
            let c = &mut self.cursor[e.from as usize];
            let pos = *c as usize;
            self.eidx[pos] = i as u32;
            self.to[pos] = e.to;
            self.cost[pos] = e.cost;
            self.tokens[pos] = e.tokens;
            *c += 1;
        }
    }

    /// Per-vertex offsets into [`Csr::edge_indices`] (length `n + 1`).
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// Edge indices grouped by source vertex.
    pub fn edge_indices(&self) -> &[u32] {
        &self.eidx
    }

    /// Out-edge indices of vertex `v`.
    pub fn out_edges(&self, v: u32) -> &[u32] {
        &self.eidx[self.range(v)]
    }

    /// The CSR position range of vertex `v`'s out-edges (indexes
    /// [`Csr::targets`] / [`Csr::costs`] / [`Csr::token_counts`]).
    pub fn range(&self, v: u32) -> std::ops::Range<usize> {
        self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize
    }

    /// Edge target vertices in CSR order.
    pub fn targets(&self) -> &[u32] {
        &self.to
    }

    /// Edge costs in CSR order.
    pub fn costs(&self) -> &[f64] {
        &self.cost
    }

    /// Edge token counts in CSR order.
    pub fn token_counts(&self) -> &[u32] {
        &self.tokens
    }

    /// Re-reads every edge cost of `g` into the structure-of-arrays cost
    /// mirror, leaving offsets, edge indices, targets and token counts
    /// untouched. Only valid when `g` is structurally identical to the
    /// graph this CSR was last [built](Csr::build) from (same vertex count
    /// and the same `from`/`to`/`tokens` per edge index) — the cheap
    /// re-weighting step of a shape-cached solve.
    pub fn refresh_costs(&mut self, g: &RatioGraph) {
        let edges = g.edges();
        debug_assert_eq!(edges.len(), self.cost.len(), "cost refresh requires an unchanged edge set");
        for (pos, &ei) in self.eidx.iter().enumerate() {
            self.cost[pos] = edges[ei as usize].cost;
        }
    }
}

/// A view of an SCC decomposition stored in a [`Workspace`].
#[derive(Debug, Clone, Copy)]
pub struct SccView<'a> {
    comp: &'a [u32],
    comp_offsets: &'a [u32],
    comp_vertices: &'a [u32],
}

impl<'a> SccView<'a> {
    /// Number of components. Ids are in reverse topological order of the
    /// condensation (Tarjan's numbering), matching [`crate::scc`].
    pub fn num_components(&self) -> usize {
        self.comp_offsets.len().saturating_sub(1)
    }

    /// Component id of vertex `v`.
    pub fn component_of(&self, v: u32) -> u32 {
        self.comp[v as usize]
    }

    /// `component[v]` for every vertex.
    pub fn components(&self) -> &'a [u32] {
        self.comp
    }

    /// Vertices of component `c`.
    pub fn members(&self, c: usize) -> &'a [u32] {
        let (a, b) = (self.comp_offsets[c] as usize, self.comp_offsets[c + 1] as usize);
        &self.comp_vertices[a..b]
    }
}

/// Owned scratch state shared by the cycle-ratio solvers.
///
/// Create once, then call [`Workspace::max_cycle_ratio`] (or the warm /
/// Karp / Lawler variants) as many times as needed; buffers grow to the
/// largest graph seen and are reused afterwards.
#[derive(Debug, Clone, Default)]
pub struct Workspace {
    csr: Csr,
    // SCC decomposition (flat: no Vec<Vec<_>>).
    comp: Vec<u32>,
    comp_offsets: Vec<u32>,
    comp_vertices: Vec<u32>,
    // Tarjan scratch.
    index: Vec<u32>,
    lowlink: Vec<u32>,
    on_stack: Vec<bool>,
    vstack: Vec<u32>,
    frames: Vec<(u32, u32)>,
    // Howard policy iteration. `policy[v]` is a CSR *position* (an index
    // into the SoA arrays of `csr`), always inside `csr.range(v)`.
    policy: Vec<u32>,
    lambda: Vec<f64>,
    potential: Vec<f64>,
    state: Vec<u8>,
    walk_pos: Vec<u32>,
    path: Vec<u32>,
    /// `(num_vertices, num_edges)` of the graph the converged `policy`
    /// belongs to; `None` until a solve completes.
    warm_sig: Option<(usize, usize)>,
    /// `(structure token, num_vertices, num_edges)` of the graph whose CSR
    /// adjacency and Tarjan condensation are currently cached; `None`
    /// whenever the cached arrays may not describe the next graph (after a
    /// solve error, a token/dimension miss, or any other solver rebuilding
    /// the CSR). See [`Workspace::max_cycle_ratio_cached`].
    struct_sig: Option<(u64, usize, usize)>,
    /// How many times the CSR adjacency was (re)built.
    csr_builds: u64,
    /// How many times Tarjan's condensation ran.
    tarjan_runs: u64,
    // Karp rolling rows (O(V) — see `crate::karp`).
    row_prev: Vec<f64>,
    row_cur: Vec<f64>,
    row_last: Vec<f64>,
    inner_min: Vec<f64>,
    comp_edges: Vec<u32>,
    // Lawler Bellman–Ford state and zero-token-subgraph DFS.
    dist: Vec<f64>,
    pred: Vec<u32>,
    color: Vec<u8>,
    parent: Vec<u32>,
}

impl Workspace {
    /// Creates an empty workspace (no allocation until the first solve).
    pub fn new() -> Self {
        Workspace::default()
    }

    /// Computes the SCC decomposition of `g` into the workspace buffers and
    /// returns a borrowed view (no per-call allocation after warm-up).
    pub fn scc(&mut self, g: &RatioGraph) -> SccView<'_> {
        self.condense(g);
        SccView {
            comp: &self.comp,
            comp_offsets: &self.comp_offsets,
            comp_vertices: &self.comp_vertices,
        }
    }

    /// (Re)builds the CSR adjacency of `g`, bumping the build counter and
    /// forgetting the structure cache (the cached condensation may no
    /// longer describe the CSR contents).
    fn rebuild_csr(&mut self, g: &RatioGraph) {
        let _span = repwf_obs::span!(CsrBuild);
        self.struct_sig = None;
        self.csr.build(g);
        self.csr_builds += 1;
        repwf_obs::counter_add(repwf_obs::CounterId::CsrBuilds, 1);
    }

    /// CSR build + Tarjan condensation into the workspace buffers.
    fn condense(&mut self, g: &RatioGraph) {
        self.rebuild_csr(g);
        let _span = repwf_obs::span!(Tarjan);
        tarjan_flat(
            g,
            &self.csr,
            &mut self.index,
            &mut self.lowlink,
            &mut self.on_stack,
            &mut self.vstack,
            &mut self.frames,
            &mut self.comp,
            &mut self.comp_offsets,
            &mut self.comp_vertices,
        );
        self.tarjan_runs += 1;
        repwf_obs::counter_add(repwf_obs::CounterId::TarjanRuns, 1);
    }

    /// Number of CSR adjacency (re)builds performed by this workspace.
    /// With [`Workspace::max_cycle_ratio_cached`], a structure hit performs
    /// none — the counter (with [`Workspace::tarjan_runs`]) is how tests
    /// and benches assert that patched solves skip the structural work.
    pub fn csr_builds(&self) -> u64 {
        self.csr_builds
    }

    /// Number of Tarjan condensation runs performed by this workspace.
    pub fn tarjan_runs(&self) -> u64 {
        self.tarjan_runs
    }

    /// Howard's policy iteration with cold-started (deterministic) policy
    /// initialization. Semantics match [`crate::howard::max_cycle_ratio`];
    /// only the allocation behavior differs.
    pub fn max_cycle_ratio(&mut self, g: &RatioGraph) -> RatioResult {
        self.howard(g, false, None)
    }

    /// Howard's policy iteration seeded with the converged policy of the
    /// previous solve when the graph shape (vertex and edge counts) matches
    /// and the stored policy is still structurally valid; falls back to the
    /// cold initialization per vertex otherwise.
    ///
    /// The result is the same as [`Workspace::max_cycle_ratio`] — the ratio
    /// is recomputed exactly from the witness circuit; see the module docs
    /// for the eps-level-tie caveat — and on families of related graphs
    /// (neighbor mappings in a search) convergence is typically immediate.
    pub fn max_cycle_ratio_warm(&mut self, g: &RatioGraph) -> RatioResult {
        self.howard(g, true, None)
    }

    /// Howard's policy iteration with a **shape-cached** structural phase:
    /// when `structure` equals the token of the previous successful cached
    /// solve and the vertex/edge counts match, the CSR adjacency and the
    /// Tarjan condensation are reused as-is — only the structure-of-arrays
    /// cost mirror is refreshed from `g` ([`Csr::refresh_costs`]) before
    /// policy iteration starts. Zero CSR builds, zero Tarjan runs on a hit
    /// (assert via [`Workspace::csr_builds`] / [`Workspace::tarjan_runs`]).
    ///
    /// **Token contract:** two calls presenting the same token and the
    /// same dimensions must present *structurally identical* graphs — the
    /// same `from`/`to`/`tokens` for every edge index, in the same
    /// insertion order; only edge costs may differ. The caller owns that
    /// guarantee (`tpn::analysis::PeriodScratch` bumps a generation
    /// counter on every ratio-graph rebuild). The cache is dropped on any
    /// miss, on a solve error, and whenever another solver of this
    /// workspace rebuilds the CSR, so a violated contract can only result
    /// from re-using a token for a structurally different graph.
    ///
    /// Results are bit-for-bit those of [`Workspace::max_cycle_ratio`] /
    /// [`Workspace::max_cycle_ratio_warm`] on the same graph: the cached
    /// arrays are exactly what a rebuild would produce.
    pub fn max_cycle_ratio_cached(
        &mut self,
        g: &RatioGraph,
        structure: u64,
        warm: bool,
    ) -> RatioResult {
        self.howard(g, warm, Some(structure))
    }

    /// Forgets the stored policy: the next warm call behaves like a cold
    /// one.
    pub fn clear_warm_start(&mut self) {
        self.warm_sig = None;
    }

    /// Structural phase of a batched solve (see [`crate::batch`]): checks
    /// the structure cache exactly like [`Workspace::max_cycle_ratio_cached`]
    /// and condenses on a miss. Both signatures are invalidated until
    /// [`Workspace::batch_commit`] re-arms the structure cache — the warm
    /// policy is never reusable after a batch (converged policies live in
    /// the batch scratch columns, not in `self.policy`). Unlike the solo
    /// path, a structure *hit* does not refresh the CSR cost mirror: batched
    /// Howard reads costs from its own interleaved planes, never from
    /// [`Csr::costs`].
    pub(crate) fn batch_prepare(&mut self, g: &RatioGraph, structure: u64) {
        let n = g.num_vertices();
        let ne = g.num_edges();
        let structure_ok = self.struct_sig == Some((structure, n, ne));
        self.warm_sig = None;
        self.struct_sig = None;
        if !structure_ok {
            self.condense(g);
        }
    }

    /// Re-arms the structure cache after a fully successful batched solve.
    pub(crate) fn batch_commit(&mut self, structure: u64, n: usize, ne: usize) {
        self.struct_sig = Some((structure, n, ne));
    }

    /// The shared read-only structural arrays a batched solve iterates
    /// over: `(csr, component ids, component offsets, component vertices)`.
    pub(crate) fn batch_parts(&self) -> (&Csr, &[u32], &[u32], &[u32]) {
        (&self.csr, &self.comp, &self.comp_offsets, &self.comp_vertices)
    }

    /// Howard's policy iteration with **per-SCC parallelism**: after one
    /// (sequential) CSR build + Tarjan condensation, the cyclic components
    /// are solved as independent tasks on the [`repwf_par`] work-stealing
    /// pool — each worker runs the ordinary cold `howard_component` on
    /// its own full-size scratch arrays over the shared read-only CSR —
    /// and the per-component witnesses are folded **in condensation
    /// order** on the calling thread.
    ///
    /// Results are bit-for-bit those of [`Workspace::max_cycle_ratio`] at
    /// any `threads` (including the first-error-in-component-order
    /// semantics on failing inputs): component solves touch only member
    /// vertices, so the sequential solve's shared scratch never couples
    /// components, and the fold below replays its exact comparison
    /// sequence. Warm starts and the structure cache are disabled (both
    /// signatures cleared): the converged policies live in worker-local
    /// scratch, not in this workspace.
    ///
    /// This is the solve path for huge condensation-limited graphs — the
    /// over-cap strict-model TPNs that previously fell back to simulation.
    pub fn max_cycle_ratio_par(&mut self, g: &RatioGraph, threads: usize) -> RatioResult {
        g.validate()?;
        let n = g.num_vertices();
        let ne = g.num_edges();
        self.warm_sig = None;
        self.condense(g); // also clears struct_sig (rebuild_csr)
        let max_iters = 64 + 8 * n + ne;

        let csr = &self.csr;
        let comp = &self.comp[..];
        let comp_offsets = &self.comp_offsets[..];
        let comp_vertices = &self.comp_vertices[..];
        let members_of = |c: usize| -> &[u32] {
            &comp_vertices[comp_offsets[c] as usize..comp_offsets[c + 1] as usize]
        };
        let cyclic: Vec<u32> = (0..comp_offsets.len() - 1)
            .filter(|&c| {
                let members = members_of(c);
                members.len() > 1
                    || csr.targets()[csr.range(members[0])].contains(&members[0])
            })
            .map(|c| c as u32)
            .collect();

        // Per-worker scratch: full-size global-vertex-id arrays, exactly
        // what `howard_component` expects. Initial values are irrelevant —
        // every member entry is written (cold policy init, policy
        // evaluation) before it is read.
        struct ParScratch {
            policy: Vec<u32>,
            lambda: Vec<f64>,
            potential: Vec<f64>,
            state: Vec<u8>,
            walk_pos: Vec<u32>,
            path: Vec<u32>,
        }
        let results = repwf_par::par_map_init(
            threads,
            cyclic.len(),
            || ParScratch {
                policy: vec![u32::MAX; n],
                lambda: vec![f64::NEG_INFINITY; n],
                potential: vec![0.0; n],
                state: vec![0; n],
                walk_pos: vec![0; n],
                path: Vec::new(),
            },
            |s, i| {
                let c = cyclic[i];
                howard_component(
                    csr,
                    comp,
                    c,
                    members_of(c as usize),
                    false,
                    &mut s.policy,
                    &mut s.lambda,
                    &mut s.potential,
                    &mut s.state,
                    &mut s.walk_pos,
                    &mut s.path,
                    max_iters,
                )
            },
        );

        let mut best: Option<CycleSolution> = None;
        for r in results {
            let sol = r?;
            if best.as_ref().is_none_or(|b| sol.ratio > b.ratio) {
                best = Some(sol);
            }
        }
        Ok(best)
    }

    fn howard(&mut self, g: &RatioGraph, warm: bool, structure: Option<u64>) -> RatioResult {
        let _span = repwf_obs::span!(Solve);
        g.validate()?;
        let n = g.num_vertices();
        let ne = g.num_edges();
        let warm_ok = warm && self.warm_sig == Some((n, ne)) && self.policy.len() == n;
        repwf_obs::counter_add(
            if warm_ok {
                repwf_obs::CounterId::HowardSolvesWarm
            } else {
                repwf_obs::CounterId::HowardSolvesCold
            },
            1,
        );
        let structure_ok =
            structure.is_some() && self.struct_sig == structure.map(|t| (t, n, ne));
        // Invalidate until this solve completes (an early error must not
        // leave a half-updated policy — or a condensation of unknown
        // provenance — marked reusable).
        self.warm_sig = None;
        self.struct_sig = None;
        if structure_ok {
            // Structure hit: the CSR and condensation describe `g` already;
            // only the costs may have been re-weighted since.
            self.csr.refresh_costs(g);
        } else {
            self.condense(g);
        }

        if !warm_ok {
            self.policy.clear();
            self.policy.resize(n, u32::MAX);
        }
        self.lambda.clear();
        self.lambda.resize(n, f64::NEG_INFINITY);
        self.potential.clear();
        self.potential.resize(n, 0.0);
        self.state.clear();
        self.state.resize(n, 0);
        self.walk_pos.clear();
        self.walk_pos.resize(n, 0);

        // Generous bound: each iteration strictly improves (λ, x); policies
        // are finite. Guards against floating-point livelock.
        let max_iters = 64 + 8 * n + ne;

        let Workspace {
            csr,
            comp,
            comp_offsets,
            comp_vertices,
            policy,
            lambda,
            potential,
            state,
            walk_pos,
            path,
            ..
        } = self;

        let mut best: Option<CycleSolution> = None;
        for c in 0..comp_offsets.len() - 1 {
            let members =
                &comp_vertices[comp_offsets[c] as usize..comp_offsets[c + 1] as usize];
            let cyclic = members.len() > 1
                || csr.targets()[csr.range(members[0])].contains(&members[0]);
            if !cyclic {
                continue;
            }
            let sol = howard_component(
                csr, comp, c as u32, members, warm_ok, policy, lambda, potential, state,
                walk_pos, path, max_iters,
            )?;
            if best.as_ref().is_none_or(|b| sol.ratio > b.ratio) {
                best = Some(sol);
            }
        }
        self.warm_sig = Some((n, ne));
        if let Some(token) = structure {
            self.struct_sig = Some((token, n, ne));
        }
        Ok(best)
    }

    /// Karp's maximum cycle mean with O(V) rolling rows; semantics match
    /// [`crate::karp::max_cycle_mean`].
    pub fn max_cycle_mean(&mut self, g: &RatioGraph) -> Option<f64> {
        g.validate().ok()?;
        let n = g.num_vertices();
        self.scc(g);
        self.row_prev.clear();
        self.row_prev.resize(n, f64::NEG_INFINITY);
        self.row_cur.clear();
        self.row_cur.resize(n, f64::NEG_INFINITY);
        self.row_last.clear();
        self.row_last.resize(n, f64::NEG_INFINITY);
        self.inner_min.clear();
        self.inner_min.resize(n, f64::INFINITY);

        let edges = g.edges();
        let Workspace {
            csr,
            comp,
            comp_offsets,
            comp_vertices,
            row_prev,
            row_cur,
            row_last,
            inner_min,
            comp_edges,
            ..
        } = self;

        let mut best: Option<f64> = None;
        for c in 0..comp_offsets.len() - 1 {
            let members =
                &comp_vertices[comp_offsets[c] as usize..comp_offsets[c + 1] as usize];
            let cyclic = members.len() > 1
                || csr.out_edges(members[0]).iter().any(|&ei| edges[ei as usize].to == members[0]);
            if !cyclic {
                continue;
            }
            comp_edges.clear();
            for &v in members {
                for &ei in csr.out_edges(v) {
                    if comp[edges[ei as usize].to as usize] == c as u32 {
                        comp_edges.push(ei);
                    }
                }
            }
            let m = karp_component(
                edges, members, comp_edges, row_prev, row_cur, row_last, inner_min,
            );
            best = Some(best.map_or(m, |b: f64| b.max(m)));
        }
        best
    }

    /// Lawler's parametric search reusing the workspace's Bellman–Ford
    /// buffers; semantics match [`crate::lawler::max_cycle_ratio_lawler`].
    pub fn max_cycle_ratio_lawler(&mut self, g: &RatioGraph) -> RatioResult {
        g.validate()?;
        if g.num_edges() == 0 {
            return Ok(None);
        }
        if let Some(cycle) = self.zero_token_cycle(g) {
            return Err(RatioGraphError::ZeroTokenCycle { cycle });
        }

        let n = g.num_vertices();
        self.dist.clear();
        self.dist.resize(n, 0.0);
        self.pred.clear();
        self.pred.resize(n, u32::MAX);

        let cost_sum: f64 = g.edges().iter().map(|e| e.cost.abs()).sum::<f64>().max(1.0);
        let mut lo = -cost_sum; // below any cycle ratio
        let mut hi = cost_sum; // above any cycle ratio (tokens ≥ 1 per cycle)
        let mut best: Option<CycleSolution> = None;

        // First probe at `lo` decides whether any circuit exists at all.
        if !positive_cycle(g, lo, &mut self.dist, &mut self.pred, &mut self.path) {
            return Ok(None);
        }
        let sol = exact_solution(g, &self.path)?;
        lo = sol.ratio;
        best = pick_best(best, sol);

        let eps = cost_sum * 1e-13;
        while hi - lo > eps {
            let mid = 0.5 * (lo + hi);
            if positive_cycle(g, mid, &mut self.dist, &mut self.pred, &mut self.path) {
                let sol = exact_solution(g, &self.path)?;
                // The witness has ratio > mid; snap the lower bound to it.
                lo = sol.ratio.max(mid);
                best = pick_best(best, sol);
            } else {
                hi = mid;
            }
        }
        Ok(best)
    }

    /// Finds a circuit made of zero-token edges only (iterative coloring
    /// DFS on the zero-token subgraph), or `None`. Scratch-reusing version
    /// of the check in [`crate::lawler`].
    fn zero_token_cycle(&mut self, g: &RatioGraph) -> Option<Vec<u32>> {
        let n = g.num_vertices();
        self.rebuild_csr(g);
        self.color.clear();
        self.color.resize(n, 0);
        self.parent.clear();
        self.parent.resize(n, u32::MAX);
        self.frames.clear();
        let edges = g.edges();
        for root in 0..n as u32 {
            if self.color[root as usize] != 0 {
                continue;
            }
            self.frames.clear();
            self.frames.push((root, 0));
            self.color[root as usize] = 1;
            while let Some(&mut (v, ref mut pos)) = self.frames.last_mut() {
                let outs = self.csr.out_edges(v);
                // Advance over non-zero-token edges.
                let mut next = None;
                while (*pos as usize) < outs.len() {
                    let e = &edges[outs[*pos as usize] as usize];
                    *pos += 1;
                    if e.tokens == 0 {
                        next = Some(e.to);
                        break;
                    }
                }
                match next {
                    Some(w) => match self.color[w as usize] {
                        0 => {
                            self.color[w as usize] = 1;
                            self.parent[w as usize] = v;
                            self.frames.push((w, 0));
                        }
                        1 => {
                            // Grey: found a cycle w → … → v → w.
                            let mut cycle = vec![w];
                            let mut u = v;
                            while u != w {
                                cycle.push(u);
                                u = self.parent[u as usize];
                            }
                            cycle.reverse();
                            return Some(cycle);
                        }
                        _ => {}
                    },
                    None => {
                        self.color[v as usize] = 2;
                        self.frames.pop();
                    }
                }
            }
        }
        None
    }
}

/// Iterative Tarjan into flat component arrays (no recursion, no
/// per-component `Vec`). Component ids and member order match
/// [`crate::scc::tarjan_scc`].
#[allow(clippy::too_many_arguments)]
fn tarjan_flat(
    g: &RatioGraph,
    csr: &Csr,
    index: &mut Vec<u32>,
    lowlink: &mut Vec<u32>,
    on_stack: &mut Vec<bool>,
    vstack: &mut Vec<u32>,
    frames: &mut Vec<(u32, u32)>,
    comp: &mut Vec<u32>,
    comp_offsets: &mut Vec<u32>,
    comp_vertices: &mut Vec<u32>,
) {
    let n = g.num_vertices();
    const UNSET: u32 = u32::MAX;
    index.clear();
    index.resize(n, UNSET);
    lowlink.clear();
    lowlink.resize(n, 0);
    on_stack.clear();
    on_stack.resize(n, false);
    vstack.clear();
    frames.clear();
    comp.clear();
    comp.resize(n, UNSET);
    comp_offsets.clear();
    comp_offsets.push(0);
    comp_vertices.clear();

    let edges = g.edges();
    let mut next_index = 0u32;
    for root in 0..n as u32 {
        if index[root as usize] != UNSET {
            continue;
        }
        frames.push((root, 0));
        index[root as usize] = next_index;
        lowlink[root as usize] = next_index;
        next_index += 1;
        vstack.push(root);
        on_stack[root as usize] = true;

        while let Some(&mut (v, ref mut pos)) = frames.last_mut() {
            let vi = v as usize;
            let outs = csr.out_edges(v);
            if (*pos as usize) < outs.len() {
                let e = &edges[outs[*pos as usize] as usize];
                *pos += 1;
                let w = e.to;
                let wi = w as usize;
                if index[wi] == UNSET {
                    index[wi] = next_index;
                    lowlink[wi] = next_index;
                    next_index += 1;
                    vstack.push(w);
                    on_stack[wi] = true;
                    frames.push((w, 0));
                } else if on_stack[wi] {
                    lowlink[vi] = lowlink[vi].min(index[wi]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    let pi = parent as usize;
                    lowlink[pi] = lowlink[pi].min(lowlink[vi]);
                }
                if lowlink[vi] == index[vi] {
                    let cid = (comp_offsets.len() - 1) as u32;
                    loop {
                        let w = vstack.pop().expect("tarjan stack underflow");
                        on_stack[w as usize] = false;
                        comp[w as usize] = cid;
                        comp_vertices.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp_offsets.push(comp_vertices.len() as u32);
                }
            }
        }
    }
}

/// Howard's iteration on one strongly connected component, operating on
/// global vertex ids with edges filtered by component membership. All edge
/// data is read from the CSR's structure-of-arrays mirror
/// (`targets`/`costs`/`token_counts`), so the improvement loops stream
/// three contiguous arrays; `policy` holds CSR positions.
#[allow(clippy::too_many_arguments)]
fn howard_component(
    csr: &Csr,
    comp: &[u32],
    cid: u32,
    members: &[u32],
    warm_ok: bool,
    policy: &mut [u32],
    lambda: &mut [f64],
    potential: &mut [f64],
    state: &mut [u8],
    walk_pos: &mut [u32],
    path: &mut Vec<u32>,
    max_iters: usize,
) -> Result<CycleSolution, RatioGraphError> {
    let to = csr.targets();
    let cost = csr.costs();
    let tokens = csr.token_counts();

    // Improvement tolerance scaled to THIS component's costs: a huge-cost
    // component elsewhere in the graph must not inflate eps here and
    // suppress genuine improvements (per-SCC scale, as in the historical
    // per-subgraph implementation).
    let mut scale = 1.0f64;
    for &vu in members {
        for p in csr.range(vu) {
            if comp[to[p] as usize] == cid {
                scale = scale.max(cost[p].abs());
            }
        }
    }
    let eps = scale * 1e-12;

    // Policy: one in-component out-edge per vertex. Cold start picks the
    // max-cost edge (last one on ties, mirroring the historical `max_by`);
    // warm start keeps the previous policy edge when it is still valid for
    // this vertex and component (its position lies in the vertex's CSR
    // range — same-shape graphs produce identical CSR layouts, so a kept
    // position denotes the structurally same edge as in the prior solve).
    for &vu in members {
        let v = vu as usize;
        let range = csr.range(vu);
        let keep = warm_ok && {
            let p = policy[v] as usize;
            range.contains(&p) && comp[to[p] as usize] == cid
        };
        if keep {
            continue;
        }
        let mut best_p = u32::MAX;
        let mut best_cost = f64::NEG_INFINITY;
        for p in range {
            if comp[to[p] as usize] != cid {
                continue;
            }
            if cost[p] >= best_cost {
                best_cost = cost[p];
                best_p = p as u32;
            }
        }
        debug_assert!(best_p != u32::MAX, "SCC vertex must have an in-component out-edge");
        policy[v] = best_p;
    }

    for iter in 0..max_iters {
        evaluate_policy(csr, members, policy, lambda, potential, state, walk_pos, path)?;

        // Phase 1: improve by cycle-ratio value.
        let mut changed = false;
        for &vu in members {
            let v = vu as usize;
            let mut best_p = policy[v];
            let mut best_l = lambda[to[best_p as usize] as usize];
            for p in csr.range(vu) {
                if comp[to[p] as usize] != cid {
                    continue;
                }
                let l = lambda[to[p] as usize];
                if l > best_l + eps {
                    best_l = l;
                    best_p = p as u32;
                }
            }
            if best_p != policy[v] {
                policy[v] = best_p;
                changed = true;
            }
        }
        if changed {
            continue;
        }

        // Phase 2: improve by potential among edges of (near-)equal value.
        for &vu in members {
            let v = vu as usize;
            let cur = policy[v] as usize;
            let cur_val =
                cost[cur] - lambda[v] * f64::from(tokens[cur]) + potential[to[cur] as usize];
            let mut best_p = policy[v];
            let mut best_val = cur_val;
            for p in csr.range(vu) {
                let w = to[p] as usize;
                if comp[w] != cid {
                    continue;
                }
                if lambda[w] < lambda[v] - eps {
                    continue;
                }
                let val = cost[p] - lambda[v] * f64::from(tokens[p]) + potential[w];
                if val > best_val + eps {
                    best_val = val;
                    best_p = p as u32;
                }
            }
            if best_p != policy[v] {
                policy[v] = best_p;
                changed = true;
            }
        }
        if !changed {
            repwf_obs::counter_add(
                if warm_ok {
                    repwf_obs::CounterId::HowardItersWarm
                } else {
                    repwf_obs::CounterId::HowardItersCold
                },
                iter as u64 + 1,
            );
            return extract_witness(csr, members, policy, lambda, state);
        }
    }
    Err(RatioGraphError::NoConvergence)
}

/// Evaluates a policy on one component: for every member vertex, the ratio
/// of the policy cycle it reaches (`lambda`) and a potential solving
/// `x[v] = cost − λ·tokens + x[π(v)]` along policy edges, rooted at an
/// arbitrary vertex of each policy cycle.
#[allow(clippy::too_many_arguments)]
fn evaluate_policy(
    csr: &Csr,
    members: &[u32],
    policy: &[u32],
    lambda: &mut [f64],
    potential: &mut [f64],
    state: &mut [u8],
    walk_pos: &mut [u32],
    path: &mut Vec<u32>,
) -> Result<(), RatioGraphError> {
    let to = csr.targets();
    let cost = csr.costs();
    let tok = csr.token_counts();
    // 0 = unvisited, 1 = on current walk, 2 = finished.
    for &v in members {
        state[v as usize] = 0;
    }
    for &start in members {
        if state[start as usize] != 0 {
            continue;
        }
        path.clear();
        let mut u = start;
        while state[u as usize] == 0 {
            state[u as usize] = 1;
            walk_pos[u as usize] = path.len() as u32;
            path.push(u);
            u = to[policy[u as usize] as usize];
        }

        let settle_from = if state[u as usize] == 1 {
            // New policy cycle: path[pos..] are its vertices in order.
            let pos = walk_pos[u as usize] as usize;
            let cycle = &path[pos..];
            let mut c = 0.0;
            let mut t: u64 = 0;
            for &v in cycle {
                let p = policy[v as usize] as usize;
                c += cost[p];
                t += u64::from(tok[p]);
            }
            if t == 0 {
                return Err(RatioGraphError::ZeroTokenCycle { cycle: cycle.to_vec() });
            }
            let lam = c / t as f64;
            // Root the potential at the cycle entry point `u = cycle[0]`.
            lambda[u as usize] = lam;
            potential[u as usize] = 0.0;
            for i in (1..cycle.len()).rev() {
                let v = cycle[i] as usize;
                let p = policy[v] as usize;
                lambda[v] = lam;
                potential[v] = cost[p] - lam * f64::from(tok[p]) + potential[to[p] as usize];
                state[v] = 2;
            }
            state[u as usize] = 2;
            pos
        } else {
            // Reached an already-settled vertex; the whole path hangs off it.
            path.len()
        };

        // Settle the tail of the walk (path[..settle_from]) backwards.
        for i in (0..settle_from).rev() {
            let v = path[i] as usize;
            let p = policy[v] as usize;
            lambda[v] = lambda[to[p] as usize];
            potential[v] = cost[p] - lambda[v] * f64::from(tok[p]) + potential[to[p] as usize];
            state[v] = 2;
        }
    }
    Ok(())
}

/// Extracts the critical circuit of the converged policy: follow the policy
/// from the member with maximal λ until a vertex repeats. Reuses `state`
/// (all members are at 2 after evaluation) with mark value 3.
fn extract_witness(
    csr: &Csr,
    members: &[u32],
    policy: &[u32],
    lambda: &[f64],
    state: &mut [u8],
) -> Result<CycleSolution, RatioGraphError> {
    let to = csr.targets();
    let cost = csr.costs();
    let tok = csr.token_counts();
    let mut start = members[0];
    for &v in &members[1..] {
        if lambda[v as usize] >= lambda[start as usize] {
            start = v;
        }
    }
    let mut u = start;
    while state[u as usize] != 3 {
        state[u as usize] = 3;
        u = to[policy[u as usize] as usize];
    }
    // `u` is on the cycle; walk it once more to collect it.
    let mut cycle = Vec::new();
    let mut c = 0.0;
    let mut t: u64 = 0;
    let first = u;
    loop {
        cycle.push(u);
        let p = policy[u as usize] as usize;
        c += cost[p];
        t += u64::from(tok[p]);
        u = to[p];
        if u == first {
            break;
        }
    }
    debug_assert!(t > 0, "converged policy cycle must carry tokens");
    Ok(CycleSolution { ratio: c / t as f64, cycle, cost: c, tokens: t })
}

/// Karp on one component with **two rolling rows** instead of the full
/// `(n+1) × n` table: pass A computes `D_n`, pass B replays the DP keeping
/// the running `min_k (D_n(v) − D_k(v)) / (n − k)`. Time doubles, memory
/// drops from O(V²) to O(V).
fn karp_component(
    edges: &[Edge],
    members: &[u32],
    comp_edges: &[u32],
    row_prev: &mut Vec<f64>,
    row_cur: &mut Vec<f64>,
    row_last: &mut [f64],
    inner_min: &mut [f64],
) -> f64 {
    let nc = members.len();
    let src = members[0] as usize;

    // Pass A: D_nc from the fixed source (vertex 0 of the component).
    for &v in members {
        row_prev[v as usize] = f64::NEG_INFINITY;
    }
    row_prev[src] = 0.0;
    for _ in 1..=nc {
        for &v in members {
            row_cur[v as usize] = f64::NEG_INFINITY;
        }
        relax(edges, comp_edges, row_prev, row_cur);
        std::mem::swap(row_prev, row_cur);
    }
    for &v in members {
        row_last[v as usize] = row_prev[v as usize];
    }

    // Pass B: replay rows 0..nc−1, folding the inner minimum as each row
    // materializes.
    for &v in members {
        inner_min[v as usize] = f64::INFINITY;
        row_prev[v as usize] = f64::NEG_INFINITY;
    }
    row_prev[src] = 0.0;
    for k in 0..nc {
        for &v in members {
            let vi = v as usize;
            if row_last[vi] > f64::NEG_INFINITY && row_prev[vi] > f64::NEG_INFINITY {
                let cand = (row_last[vi] - row_prev[vi]) / (nc - k) as f64;
                if cand < inner_min[vi] {
                    inner_min[vi] = cand;
                }
            }
        }
        for &v in members {
            row_cur[v as usize] = f64::NEG_INFINITY;
        }
        relax(edges, comp_edges, row_prev, row_cur);
        std::mem::swap(row_prev, row_cur);
    }

    let mut best = f64::NEG_INFINITY;
    for &v in members {
        if row_last[v as usize] > f64::NEG_INFINITY {
            best = best.max(inner_min[v as usize]);
        }
    }
    best
}

fn relax(edges: &[Edge], comp_edges: &[u32], prev: &[f64], cur: &mut [f64]) {
    for &ei in comp_edges {
        let e = &edges[ei as usize];
        let p = prev[e.from as usize];
        if p > f64::NEG_INFINITY {
            let cand = p + e.cost;
            if cand > cur[e.to as usize] {
                cur[e.to as usize] = cand;
            }
        }
    }
}

fn pick_best(best: Option<CycleSolution>, sol: CycleSolution) -> Option<CycleSolution> {
    match best {
        Some(b) if b.ratio >= sol.ratio => Some(b),
        _ => Some(sol),
    }
}

/// Exact ratio of a circuit found by the Lawler oracle, given as the
/// edge-index sequence.
fn exact_solution(g: &RatioGraph, cycle_edges: &[u32]) -> Result<CycleSolution, RatioGraphError> {
    let mut cost = 0.0;
    let mut tokens = 0u64;
    let mut cycle = Vec::with_capacity(cycle_edges.len());
    for &ei in cycle_edges {
        let e = &g.edges()[ei as usize];
        cost += e.cost;
        tokens += u64::from(e.tokens);
        cycle.push(e.from);
    }
    if tokens == 0 {
        return Err(RatioGraphError::ZeroTokenCycle { cycle });
    }
    Ok(CycleSolution { ratio: cost / tokens as f64, cycle, cost, tokens })
}

/// Bellman–Ford longest-path positive-circuit oracle for weights
/// `cost − λ·tokens`, reusing the caller's `dist` / `pred` buffers. On
/// success the positive circuit's edge indices are left in `cycle_out` and
/// `true` is returned.
fn positive_cycle(
    g: &RatioGraph,
    lambda: f64,
    dist: &mut [f64],
    pred: &mut [u32],
    cycle_out: &mut Vec<u32>,
) -> bool {
    let n = g.num_vertices();
    let edges = g.edges();
    dist.fill(0.0); // multi-source: all vertices at 0
    pred.fill(u32::MAX);

    let mut updated_vertex: Option<u32> = None;
    for round in 0..=n {
        let mut any = false;
        for (i, e) in edges.iter().enumerate() {
            let w = e.cost - lambda * f64::from(e.tokens);
            let cand = dist[e.from as usize] + w;
            if cand > dist[e.to as usize] + 1e-15 {
                dist[e.to as usize] = cand;
                pred[e.to as usize] = i as u32;
                any = true;
                if round == n {
                    updated_vertex = Some(e.to);
                    break;
                }
            }
        }
        if !any {
            return false;
        }
    }

    // A relaxation in round n ⇒ positive circuit reachable via predecessors.
    let Some(mut v) = updated_vertex else { return false };
    // Walk back n steps to guarantee we are inside the circuit.
    for _ in 0..n {
        v = edges[pred[v as usize] as usize].from;
    }
    let start = v;
    cycle_out.clear();
    loop {
        let ei = pred[v as usize];
        cycle_out.push(ei);
        v = edges[ei as usize].from;
        if v == start {
            break;
        }
    }
    cycle_out.reverse();
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::howard::max_cycle_ratio;
    use crate::scc::tarjan_scc;

    fn diamond() -> RatioGraph {
        let mut g = RatioGraph::new(4);
        g.add_edge(0, 1, 4.0, 1);
        g.add_edge(1, 0, 6.0, 0);
        g.add_edge(1, 2, 5.0, 1);
        g.add_edge(2, 3, 2.5, 0);
        g.add_edge(3, 0, 3.0, 2);
        g.add_edge(3, 3, 1.0, 1);
        g
    }

    #[test]
    fn csr_matches_adjacency() {
        let g = diamond();
        let mut csr = Csr::new();
        csr.build(&g);
        let (off, idx) = g.adjacency();
        assert_eq!(csr.offsets(), &off[..]);
        assert_eq!(csr.edge_indices(), &idx[..]);
    }

    #[test]
    fn scc_view_matches_tarjan() {
        let g = diamond();
        let mut ws = Workspace::new();
        let reference = tarjan_scc(&g);
        let view = ws.scc(&g);
        assert_eq!(view.num_components(), reference.len());
        for (c, members) in reference.members.iter().enumerate() {
            assert_eq!(view.members(c), &members[..]);
        }
        assert_eq!(view.components(), &reference.component[..]);
    }

    #[test]
    fn workspace_howard_matches_free_function_bitwise() {
        let mut ws = Workspace::new();
        let g = diamond();
        let a = max_cycle_ratio(&g).unwrap().unwrap();
        let b = ws.max_cycle_ratio(&g).unwrap().unwrap();
        assert_eq!(a.ratio.to_bits(), b.ratio.to_bits());
        assert_eq!(a.cycle, b.cycle);
        assert_eq!(a.cost.to_bits(), b.cost.to_bits());
        assert_eq!(a.tokens, b.tokens);
    }

    #[test]
    fn reuse_across_different_sizes() {
        let mut ws = Workspace::new();
        for n in [2usize, 7, 3, 12] {
            let mut g = RatioGraph::new(n);
            for v in 0..n as u32 {
                g.add_edge(v, (v + 1) % n as u32, 1.0 + v as f64, 1);
            }
            let cold = max_cycle_ratio(&g).unwrap().unwrap();
            let reused = ws.max_cycle_ratio(&g).unwrap().unwrap();
            assert_eq!(cold.ratio.to_bits(), reused.ratio.to_bits());
        }
    }

    #[test]
    fn warm_start_same_graph_is_bitwise_identical() {
        let mut ws = Workspace::new();
        let g = diamond();
        let cold = ws.max_cycle_ratio(&g).unwrap().unwrap();
        let warm = ws.max_cycle_ratio_warm(&g).unwrap().unwrap();
        assert_eq!(cold.ratio.to_bits(), warm.ratio.to_bits());
        assert_eq!(cold.cycle, warm.cycle);
    }

    #[test]
    fn warm_start_across_cost_perturbations() {
        let mut ws = Workspace::new();
        let g = diamond();
        ws.max_cycle_ratio(&g).unwrap();
        // Same shape, different costs: warm must equal a cold solve.
        let mut g2 = RatioGraph::new(4);
        for e in g.edges() {
            g2.add_edge(e.from, e.to, e.cost * 1.75 + 0.1, e.tokens);
        }
        let warm = ws.max_cycle_ratio_warm(&g2).unwrap().unwrap();
        let cold = max_cycle_ratio(&g2).unwrap().unwrap();
        assert_eq!(warm.ratio.to_bits(), cold.ratio.to_bits());
    }

    #[test]
    fn warm_start_shape_mismatch_falls_back() {
        let mut ws = Workspace::new();
        let g = diamond();
        ws.max_cycle_ratio(&g).unwrap();
        let mut small = RatioGraph::new(2);
        small.add_edge(0, 1, 3.0, 1);
        small.add_edge(1, 0, 5.0, 1);
        let warm = ws.max_cycle_ratio_warm(&small).unwrap().unwrap();
        assert!((warm.ratio - 4.0).abs() < 1e-12);
    }

    #[test]
    fn warm_after_deadlock_error_is_safe() {
        let mut ws = Workspace::new();
        let mut bad = RatioGraph::new(2);
        bad.add_edge(0, 1, 1.0, 0);
        bad.add_edge(1, 0, 1.0, 0);
        assert!(ws.max_cycle_ratio(&bad).is_err());
        // The failed solve must not leave a warm signature behind.
        let g = diamond();
        let warm = ws.max_cycle_ratio_warm(&g).unwrap().unwrap();
        let cold = max_cycle_ratio(&g).unwrap().unwrap();
        assert_eq!(warm.ratio.to_bits(), cold.ratio.to_bits());
    }

    #[test]
    fn eps_is_scaled_per_component() {
        // Regression: a huge-|cost| component must not inflate the
        // improvement tolerance of a small-cost component elsewhere in the
        // graph. With a global eps of ~1.0 (scale 1e12 · 1e-12), the 10.4
        // cycle below is within eps of the 10.0 one and policy iteration
        // would stop at 10.0.
        let mut g = RatioGraph::new(4);
        g.add_edge(0, 0, -1e12, 1); // component A: enormous cost scale
        // Component B: two cycles through vertex 1 with close ratios.
        g.add_edge(1, 1, 10.0, 1); // ratio 10.0
        g.add_edge(1, 2, 10.4, 1);
        g.add_edge(2, 1, 10.4, 1); // ratio 10.4
        let sol = Workspace::new().max_cycle_ratio(&g).unwrap().unwrap();
        assert!((sol.ratio - 10.4).abs() < 1e-9, "got {}", sol.ratio);
        let cross = crate::lawler::max_cycle_ratio_lawler(&g).unwrap().unwrap();
        assert!((sol.ratio - cross.ratio).abs() < 1e-9);
    }

    #[test]
    fn cached_solve_skips_csr_and_tarjan_and_matches_bitwise() {
        let mut ws = Workspace::new();
        let mut g = diamond();
        let first = ws.max_cycle_ratio_cached(&g, 7, true).unwrap().unwrap();
        assert_eq!(first.ratio.to_bits(), max_cycle_ratio(&g).unwrap().unwrap().ratio.to_bits());
        assert_eq!((ws.csr_builds(), ws.tarjan_runs()), (1, 1));
        // Re-weight every edge in place (structure untouched): the cached
        // solve must skip CSR + Tarjan and still match a cold solve bit
        // for bit.
        for k in 0..6 {
            for (i, c) in [4.0, 6.0, 5.0, 2.5, 3.0, 1.0].iter().enumerate() {
                g.set_edge_cost(i, c * (1.3 + 0.1 * f64::from(k)));
            }
            let cached = ws.max_cycle_ratio_cached(&g, 7, true).unwrap().unwrap();
            let cold = max_cycle_ratio(&g).unwrap().unwrap();
            assert_eq!(cached.ratio.to_bits(), cold.ratio.to_bits(), "k={k}");
            assert_eq!(cached.cycle, cold.cycle);
        }
        assert_eq!((ws.csr_builds(), ws.tarjan_runs()), (1, 1), "hits must not rebuild");
    }

    #[test]
    fn cached_solve_token_or_dimension_miss_rebuilds() {
        let mut ws = Workspace::new();
        let g = diamond();
        ws.max_cycle_ratio_cached(&g, 1, false).unwrap();
        assert_eq!(ws.csr_builds(), 1);
        // Token miss: same graph, different token.
        ws.max_cycle_ratio_cached(&g, 2, false).unwrap();
        assert_eq!(ws.csr_builds(), 2);
        // Dimension miss: same token, different graph size.
        let mut small = RatioGraph::new(2);
        small.add_edge(0, 1, 3.0, 1);
        small.add_edge(1, 0, 5.0, 1);
        let sol = ws.max_cycle_ratio_cached(&small, 2, false).unwrap().unwrap();
        assert_eq!(ws.csr_builds(), 3);
        assert!((sol.ratio - 4.0).abs() < 1e-12);
    }

    #[test]
    fn cached_solve_error_clears_structure_cache() {
        let mut ws = Workspace::new();
        let mut bad = RatioGraph::new(2);
        bad.add_edge(0, 1, 1.0, 0);
        bad.add_edge(1, 0, 1.0, 0);
        assert!(ws.max_cycle_ratio_cached(&bad, 9, false).is_err());
        let builds = ws.csr_builds();
        // Same token and dimensions again: the failed solve must not have
        // recorded a reusable structure, so this call rebuilds.
        assert!(ws.max_cycle_ratio_cached(&bad, 9, false).is_err());
        assert_eq!(ws.csr_builds(), builds + 1, "errored solve must clear the cache");
        // And the workspace stays fully usable.
        let g = diamond();
        let sol = ws.max_cycle_ratio_cached(&g, 10, true).unwrap().unwrap();
        assert_eq!(sol.ratio.to_bits(), max_cycle_ratio(&g).unwrap().unwrap().ratio.to_bits());
    }

    #[test]
    fn other_solvers_invalidate_structure_cache() {
        let mut ws = Workspace::new();
        let g = diamond();
        ws.max_cycle_ratio_cached(&g, 4, false).unwrap();
        let builds = ws.csr_builds();
        // Lawler rebuilds the CSR for its zero-token-cycle check: the
        // cached condensation may no longer describe it.
        ws.max_cycle_ratio_lawler(&g).unwrap();
        assert!(ws.csr_builds() > builds);
        let builds = ws.csr_builds();
        ws.max_cycle_ratio_cached(&g, 4, false).unwrap();
        assert_eq!(ws.csr_builds(), builds + 1, "cache must not survive a foreign rebuild");
    }

    #[test]
    fn lawler_ws_matches_free_function() {
        let mut ws = Workspace::new();
        let g = diamond();
        let a = crate::lawler::max_cycle_ratio_lawler(&g).unwrap().unwrap();
        let b = ws.max_cycle_ratio_lawler(&g).unwrap().unwrap();
        assert_eq!(a.ratio.to_bits(), b.ratio.to_bits());
    }

    #[test]
    fn karp_ws_matches_free_function() {
        let mut ws = Workspace::new();
        let g = diamond();
        let a = crate::karp::max_cycle_mean(&g).unwrap();
        let b = ws.max_cycle_mean(&g).unwrap();
        assert_eq!(a.to_bits(), b.to_bits());
    }

    /// Multiple SCCs of varying size plus acyclic glue, so the parallel
    /// solver actually has independent component tasks to distribute.
    fn multi_scc() -> RatioGraph {
        let mut g = RatioGraph::new(11);
        g.add_edge(0, 1, 2.0, 1);
        g.add_edge(1, 2, 7.5, 0);
        g.add_edge(2, 0, 1.25, 1);
        g.add_edge(1, 0, 3.0, 1);
        g.add_edge(3, 3, 9.0, 2);
        g.add_edge(4, 5, 4.0, 1);
        g.add_edge(5, 6, 6.0, 0);
        g.add_edge(6, 7, 0.5, 1);
        g.add_edge(7, 4, 8.0, 1);
        g.add_edge(6, 4, 2.5, 2);
        g.add_edge(2, 4, 1.0, 0);
        g.add_edge(3, 5, 5.0, 1);
        g.add_edge(8, 9, 1.0, 0);
        g.add_edge(9, 10, 2.0, 1);
        g
    }

    #[test]
    fn parallel_solve_matches_sequential_bitwise_at_every_thread_count() {
        for g in [diamond(), multi_scc()] {
            let seq = Workspace::new().max_cycle_ratio(&g).unwrap().unwrap();
            for threads in [1, 2, 4] {
                let mut ws = Workspace::new();
                let par = ws.max_cycle_ratio_par(&g, threads).unwrap().unwrap();
                assert_eq!(par.ratio.to_bits(), seq.ratio.to_bits(), "threads={threads}");
                assert_eq!(par.cost.to_bits(), seq.cost.to_bits(), "threads={threads}");
                assert_eq!(par.tokens, seq.tokens, "threads={threads}");
                assert_eq!(par.cycle, seq.cycle, "threads={threads}");
            }
        }
    }

    #[test]
    fn parallel_solve_matches_sequential_on_errors_and_acyclic() {
        // Two deadlocked components: the error must be the sequential
        // solver's (first failing component in condensation order).
        let mut g = RatioGraph::new(4);
        g.add_edge(0, 1, 1.0, 0);
        g.add_edge(1, 0, 2.0, 0);
        g.add_edge(2, 3, 3.0, 0);
        g.add_edge(3, 2, 4.0, 0);
        let seq = Workspace::new().max_cycle_ratio(&g).unwrap_err();
        for threads in [1, 2, 4] {
            let par = Workspace::new().max_cycle_ratio_par(&g, threads).unwrap_err();
            assert_eq!(par, seq, "threads={threads}");
        }
        // Acyclic graph: Ok(None) everywhere.
        let mut dag = RatioGraph::new(3);
        dag.add_edge(0, 1, 1.0, 1);
        dag.add_edge(1, 2, 2.0, 1);
        for threads in [1, 2, 4] {
            assert_eq!(Workspace::new().max_cycle_ratio_par(&dag, threads).unwrap(), None);
        }
    }

    #[test]
    fn parallel_solve_leaves_caches_cold_for_next_cached_solve() {
        // A parallel solve must not poison the warm/structure caches: a
        // following cached solve with a fresh token rebuilds and matches.
        let g = multi_scc();
        let mut ws = Workspace::new();
        ws.max_cycle_ratio_par(&g, 2).unwrap();
        let cached = ws.max_cycle_ratio_cached(&g, 77, false).unwrap().unwrap();
        let cold = Workspace::new().max_cycle_ratio(&g).unwrap().unwrap();
        assert_eq!(cached.ratio.to_bits(), cold.ratio.to_bits());
    }
}
