//! Shape-batched Howard: k same-structure instances per policy-iteration
//! pass.
//!
//! Campaign experiments draw thousands of instances that collapse into a
//! handful of graph *shapes* — identical `from`/`to`/`tokens` per edge
//! index, different costs. Solving them one by one repeats the CSR build,
//! the Tarjan condensation and (worse) the pointer-chasing part of every
//! Howard pass per instance. This module amortizes all of that across a
//! batch:
//!
//! * **One structural phase per shape.** [`Workspace::max_cycle_ratio_batch`]
//!   shares the workspace's structure cache with the solo cached solve: a
//!   matching `(token, n, ne)` signature skips the CSR build and the
//!   condensation entirely, and a full batch re-arms the cache for the
//!   next one.
//! * **SoA cost planes.** Callers stage per-instance edge costs in a
//!   [`CostPlanes`] arena (`plane(q)[e]`, edge-insertion order). The solve
//!   transposes them once into an **interleaved CSR-order** array
//!   (`cost[pos·k + q]`), so the hot improvement loops walk the shared
//!   `targets`/`token_counts` arrays exactly once per pass while the
//!   per-instance inner loop over `q` streams k contiguous lanes — the
//!   auto-vectorizable layout.
//! * **Lock-step rounds.** Each policy-iteration round evaluates every
//!   still-active instance, then runs the phase-1 λ-improvement as one
//!   member/edge sweep with per-instance policy columns. Instances
//!   converge (or fail) independently; finished lanes are masked out.
//!
//! Results are **bit-for-bit** those of the solo solvers: per instance
//! `q`, the batched iteration performs the same floating-point operations
//! in the same order as [`Workspace::max_cycle_ratio`] on a graph whose
//! edge costs equal plane `q` (property-tested below). Warm starts stay
//! off, matching the campaign engines' cold-solve discipline.

use crate::graph::{CycleSolution, RatioGraph, RatioGraphError};
use crate::howard::RatioResult;
use crate::workspace::{Csr, Workspace};

/// Per-instance edge-cost planes for a batched solve, stored as one flat
/// structure-of-arrays arena: plane `q` is `data[q·ne .. (q+1)·ne]`,
/// indexed by **edge insertion order** (the same order as
/// [`RatioGraph::edges`]).
#[derive(Debug, Clone, Default)]
pub struct CostPlanes {
    k: usize,
    ne: usize,
    data: Vec<f64>,
}

impl CostPlanes {
    /// An empty arena (no allocation until [`CostPlanes::reset`]).
    pub fn new() -> Self {
        CostPlanes::default()
    }

    /// Resizes to `k` planes of `ne` edges each, zero-filled, reusing the
    /// backing buffer.
    pub fn reset(&mut self, k: usize, ne: usize) {
        self.k = k;
        self.ne = ne;
        self.data.clear();
        self.data.resize(k * ne, 0.0);
    }

    /// Number of instance planes.
    pub fn num_instances(&self) -> usize {
        self.k
    }

    /// Edges per plane.
    pub fn num_edges(&self) -> usize {
        self.ne
    }

    /// The cost plane of instance `q` (edge-insertion order).
    pub fn plane(&self, q: usize) -> &[f64] {
        &self.data[q * self.ne..(q + 1) * self.ne]
    }

    /// Mutable cost plane of instance `q` — stage the instance's edge
    /// costs here before solving.
    pub fn plane_mut(&mut self, q: usize) -> &mut [f64] {
        &mut self.data[q * self.ne..(q + 1) * self.ne]
    }
}

/// Reusable scratch for [`Workspace::max_cycle_ratio_batch`]: the
/// interleaved cost mirror, the per-vertex-per-instance policy/value
/// columns and the per-instance round bookkeeping. Create once per worker
/// and reuse — buffers grow to the largest `(n, ne, k)` seen.
#[derive(Debug, Clone, Default)]
pub struct BatchScratch {
    /// Interleaved CSR-order costs: `cost[pos·k + q]`.
    cost: Vec<f64>,
    /// Policy columns: `policy[v·k + q]` is a CSR position.
    policy: Vec<u32>,
    lambda: Vec<f64>,
    potential: Vec<f64>,
    /// Per-instance improvement tolerance of the current component.
    eps: Vec<f64>,
    /// Per-active-lane best CSR position / best value (init + phase 1).
    best_p: Vec<u32>,
    best_f: Vec<f64>,
    /// Per-instance flags and counters.
    done: Vec<bool>,
    changed: Vec<bool>,
    iters: Vec<usize>,
    /// Active-lane index list of the current round.
    act: Vec<u32>,
    /// Shared scalar walk scratch (policy evaluation, witness extraction).
    state: Vec<u8>,
    walk_pos: Vec<u32>,
    path: Vec<u32>,
}

impl BatchScratch {
    /// An empty scratch (no allocation until the first solve).
    pub fn new() -> Self {
        BatchScratch::default()
    }

    fn prepare(&mut self, k: usize, n: usize, ne: usize) {
        self.cost.clear();
        self.cost.resize(ne * k, 0.0);
        self.policy.clear();
        self.policy.resize(n * k, u32::MAX);
        self.lambda.clear();
        self.lambda.resize(n * k, f64::NEG_INFINITY);
        self.potential.clear();
        self.potential.resize(n * k, 0.0);
        self.eps.clear();
        self.eps.resize(k, 0.0);
        self.best_p.clear();
        self.best_p.resize(k, u32::MAX);
        self.best_f.clear();
        self.best_f.resize(k, 0.0);
        self.done.clear();
        self.done.resize(k, false);
        self.changed.clear();
        self.changed.resize(k, false);
        self.iters.clear();
        self.iters.resize(k, 0);
        self.act.clear();
        self.state.clear();
        self.state.resize(n, 0);
        self.walk_pos.clear();
        self.walk_pos.resize(n, 0);
        self.path.clear();
    }
}

impl Workspace {
    /// Solves the maximum cycle ratio of `k` instances sharing one graph
    /// structure in a single batched pass.
    ///
    /// `g` supplies the structure (`from`/`to`/`tokens` per edge, in
    /// insertion order; its own costs are ignored), `planes` the
    /// per-instance edge costs, and `structure` the same shape token
    /// contract as [`Workspace::max_cycle_ratio_cached`] — a repeated
    /// token with matching dimensions skips the CSR build and the Tarjan
    /// condensation entirely.
    ///
    /// Returns one [`RatioResult`] per instance, in plane order, each
    /// **bit-for-bit** equal to `Workspace::max_cycle_ratio` on the graph
    /// with that plane's costs (including error values and the
    /// first-failing-component semantics). A failed instance never stalls
    /// the others: its lane is masked out and the rest of the batch
    /// completes; the structure cache is only re-armed when every
    /// instance succeeded.
    pub fn max_cycle_ratio_batch(
        &mut self,
        g: &RatioGraph,
        structure: u64,
        planes: &CostPlanes,
        scratch: &mut BatchScratch,
    ) -> Vec<RatioResult> {
        let k = planes.num_instances();
        let n = g.num_vertices();
        let ne = g.num_edges();
        assert_eq!(planes.num_edges(), ne, "cost planes must cover every edge of the graph");
        if k == 0 {
            return Vec::new();
        }
        let _span = repwf_obs::span!(BatchSolve);
        repwf_obs::counter_add(repwf_obs::CounterId::BatchedPasses, 1);
        repwf_obs::counter_add(repwf_obs::CounterId::BatchedLanes, k as u64);

        // Per-instance validation, mirroring `RatioGraph::validate` with
        // the instance's own costs: same error variant, same edge-order
        // precedence as a solo solve on that instance's graph.
        let mut failed: Vec<Option<RatioGraphError>> = vec![None; k];
        let mut best: Vec<Option<CycleSolution>> = Vec::with_capacity(k);
        best.resize_with(k, || None);
        for (q, slot) in failed.iter_mut().enumerate() {
            *slot = validate_plane(g, planes.plane(q)).err();
        }

        if failed.iter().all(Option::is_some) {
            return failed.into_iter().map(|e| Err(e.expect("all lanes failed"))).collect();
        }

        self.batch_prepare(g, structure);
        let max_iters = 64 + 8 * n + ne;
        let (csr, comp, comp_offsets, comp_vertices) = self.batch_parts();
        scratch.prepare(k, n, ne);

        // Transpose the planes into interleaved CSR order: one gather per
        // CSR position, k contiguous writes.
        for (pos, &ei) in csr.edge_indices().iter().enumerate() {
            for q in 0..k {
                scratch.cost[pos * k + q] = planes.data[q * ne + ei as usize];
            }
        }

        for c in 0..comp_offsets.len() - 1 {
            if failed.iter().all(Option::is_some) {
                break;
            }
            let members =
                &comp_vertices[comp_offsets[c] as usize..comp_offsets[c + 1] as usize];
            let cyclic = members.len() > 1
                || csr.targets()[csr.range(members[0])].contains(&members[0]);
            if !cyclic {
                continue;
            }
            batch_component(
                csr, comp, c as u32, members, k, max_iters, scratch, &mut failed, &mut best,
            );
        }

        let all_ok = failed.iter().all(Option::is_none);
        if all_ok {
            self.batch_commit(structure, n, ne);
        }
        failed
            .into_iter()
            .zip(best)
            .map(|(err, sol)| match err {
                Some(e) => Err(e),
                None => Ok(sol),
            })
            .collect()
    }
}

/// `RatioGraph::validate` with the costs of one plane substituted for the
/// graph's own: identical error variants and edge-order precedence.
fn validate_plane(g: &RatioGraph, plane: &[f64]) -> Result<(), RatioGraphError> {
    let n = g.num_vertices();
    for (e, &cost) in g.edges().iter().zip(plane) {
        if (e.from as usize) >= n {
            return Err(RatioGraphError::VertexOutOfRange { vertex: e.from });
        }
        if (e.to as usize) >= n {
            return Err(RatioGraphError::VertexOutOfRange { vertex: e.to });
        }
        if !cost.is_finite() {
            return Err(RatioGraphError::NonFiniteCost);
        }
    }
    Ok(())
}

/// Lock-step Howard on one strongly connected component for every lane
/// that has not yet failed. Mirrors `howard_component` per lane exactly:
/// per-component eps scale, cold max-cost policy init (last on ties),
/// evaluate / λ-improve / potential-improve rounds, witness extraction —
/// the only difference is the iteration *schedule* (lanes advance
/// together), which per lane performs the identical operation sequence.
#[allow(clippy::too_many_arguments)]
fn batch_component(
    csr: &Csr,
    comp: &[u32],
    cid: u32,
    members: &[u32],
    k: usize,
    max_iters: usize,
    scratch: &mut BatchScratch,
    failed: &mut [Option<RatioGraphError>],
    best: &mut [Option<CycleSolution>],
) {
    let to = csr.targets();
    let tokens = csr.token_counts();
    let BatchScratch {
        cost,
        policy,
        lambda,
        potential,
        eps,
        best_p,
        best_f,
        done,
        changed,
        iters,
        act,
        state,
        walk_pos,
        path,
    } = scratch;
    let cost = &cost[..];

    // Lanes participating in this component: everything not yet failed.
    act.clear();
    act.extend((0..k as u32).filter(|&q| failed[q as usize].is_none()));
    if act.is_empty() {
        return;
    }

    // Per-lane improvement tolerance scaled to THIS component's costs
    // (same fold as the solo solver: max(1.0, |cost|) · 1e-12).
    for &q in act.iter() {
        eps[q as usize] = 1.0;
    }
    for &vu in members {
        for p in csr.range(vu) {
            if comp[to[p] as usize] != cid {
                continue;
            }
            let lanes = &cost[p * k..p * k + k];
            for &q in act.iter() {
                let qi = q as usize;
                eps[qi] = eps[qi].max(lanes[qi].abs());
            }
        }
    }
    for &q in act.iter() {
        eps[q as usize] *= 1e-12;
    }

    // Cold policy init: max-cost in-component edge, last one on ties.
    for &vu in members {
        let v = vu as usize;
        for (j, _) in act.iter().enumerate() {
            best_p[j] = u32::MAX;
            best_f[j] = f64::NEG_INFINITY;
        }
        for p in csr.range(vu) {
            if comp[to[p] as usize] != cid {
                continue;
            }
            let lanes = &cost[p * k..p * k + k];
            for (j, &q) in act.iter().enumerate() {
                let c = lanes[q as usize];
                if c >= best_f[j] {
                    best_f[j] = c;
                    best_p[j] = p as u32;
                }
            }
        }
        for (j, &q) in act.iter().enumerate() {
            debug_assert!(best_p[j] != u32::MAX, "SCC vertex must have an in-component out-edge");
            policy[v * k + q as usize] = best_p[j];
        }
    }

    for &q in act.iter() {
        let qi = q as usize;
        done[qi] = false;
        iters[qi] = 0;
    }

    loop {
        // Re-derive the active set: lanes still iterating this component.
        act.clear();
        act.extend(
            (0..k as u32).filter(|&q| failed[q as usize].is_none() && !done[q as usize]),
        );
        if act.is_empty() {
            return;
        }

        // Iteration budget, identical to the solo `for _ in 0..max_iters`.
        for &q in act.iter() {
            let qi = q as usize;
            if iters[qi] >= max_iters {
                failed[qi] = Some(RatioGraphError::NoConvergence);
                done[qi] = true;
            }
        }
        act.retain(|&q| !done[q as usize]);
        if act.is_empty() {
            return;
        }

        // Evaluate every active lane's policy (scalar walk per lane over
        // the shared state/path scratch).
        for &q in act.iter() {
            let qi = q as usize;
            if let Err(e) = evaluate_policy_lane(
                csr, members, k, qi, cost, policy, lambda, potential, state, walk_pos, path,
            ) {
                failed[qi] = Some(e);
                done[qi] = true;
            }
        }
        act.retain(|&q| !done[q as usize]);
        if act.is_empty() {
            return;
        }

        // Phase 1 (λ-improvement), one member/edge sweep for all lanes:
        // the shared `targets` array is walked once, the inner loop
        // streams the active cost/λ lanes.
        for &q in act.iter() {
            changed[q as usize] = false;
        }
        for &vu in members {
            let v = vu as usize;
            for (j, &q) in act.iter().enumerate() {
                let qi = q as usize;
                let bp = policy[v * k + qi];
                best_p[j] = bp;
                best_f[j] = lambda[to[bp as usize] as usize * k + qi];
            }
            for p in csr.range(vu) {
                let w = to[p] as usize;
                if comp[w] != cid {
                    continue;
                }
                let lam = &lambda[w * k..w * k + k];
                for (j, &q) in act.iter().enumerate() {
                    let qi = q as usize;
                    let l = lam[qi];
                    if l > best_f[j] + eps[qi] {
                        best_f[j] = l;
                        best_p[j] = p as u32;
                    }
                }
            }
            for (j, &q) in act.iter().enumerate() {
                let qi = q as usize;
                if best_p[j] != policy[v * k + qi] {
                    policy[v * k + qi] = best_p[j];
                    changed[qi] = true;
                }
            }
        }

        // Phase 2 (potential improvement) and convergence, per lane that
        // saw no λ-improvement this round; λ-improved lanes go straight to
        // the next round, like the solo solver's `continue`.
        repwf_obs::counter_add(repwf_obs::CounterId::HowardItersBatched, act.len() as u64);
        for &q in act.iter() {
            let qi = q as usize;
            iters[qi] += 1;
            if changed[qi] {
                continue;
            }
            let mut improved = false;
            for &vu in members {
                let v = vu as usize;
                let cur = policy[v * k + qi] as usize;
                let cur_val = cost[cur * k + qi]
                    - lambda[v * k + qi] * f64::from(tokens[cur])
                    + potential[to[cur] as usize * k + qi];
                let mut bp = policy[v * k + qi];
                let mut bv = cur_val;
                for p in csr.range(vu) {
                    let w = to[p] as usize;
                    if comp[w] != cid {
                        continue;
                    }
                    if lambda[w * k + qi] < lambda[v * k + qi] - eps[qi] {
                        continue;
                    }
                    let val = cost[p * k + qi]
                        - lambda[v * k + qi] * f64::from(tokens[p])
                        + potential[w * k + qi];
                    if val > bv + eps[qi] {
                        bv = val;
                        bp = p as u32;
                    }
                }
                if bp != policy[v * k + qi] {
                    policy[v * k + qi] = bp;
                    improved = true;
                }
            }
            if !improved {
                // Converged: extract this lane's witness. A previous
                // lane's extraction left mark-3 states behind on the
                // shared array — reset members to the post-evaluation
                // value the solo extractor sees.
                for &vv in members {
                    state[vv as usize] = 2;
                }
                let sol = extract_witness_lane(csr, members, k, qi, cost, policy, lambda, state);
                if best[qi].as_ref().is_none_or(|b| sol.ratio > b.ratio) {
                    best[qi] = Some(sol);
                }
                done[qi] = true;
            }
        }
    }
}

/// `evaluate_policy` for one lane: identical walk, cycle-ratio and
/// back-substitution arithmetic, reading the lane's policy/λ/potential
/// columns and interleaved costs.
#[allow(clippy::too_many_arguments)]
fn evaluate_policy_lane(
    csr: &Csr,
    members: &[u32],
    k: usize,
    q: usize,
    cost: &[f64],
    policy: &[u32],
    lambda: &mut [f64],
    potential: &mut [f64],
    state: &mut [u8],
    walk_pos: &mut [u32],
    path: &mut Vec<u32>,
) -> Result<(), RatioGraphError> {
    let to = csr.targets();
    let tok = csr.token_counts();
    // 0 = unvisited, 1 = on current walk, 2 = finished.
    for &v in members {
        state[v as usize] = 0;
    }
    for &start in members {
        if state[start as usize] != 0 {
            continue;
        }
        path.clear();
        let mut u = start;
        while state[u as usize] == 0 {
            state[u as usize] = 1;
            walk_pos[u as usize] = path.len() as u32;
            path.push(u);
            u = to[policy[u as usize * k + q] as usize];
        }

        let settle_from = if state[u as usize] == 1 {
            let pos = walk_pos[u as usize] as usize;
            let cycle = &path[pos..];
            let mut c = 0.0;
            let mut t: u64 = 0;
            for &v in cycle {
                let p = policy[v as usize * k + q] as usize;
                c += cost[p * k + q];
                t += u64::from(tok[p]);
            }
            if t == 0 {
                return Err(RatioGraphError::ZeroTokenCycle { cycle: cycle.to_vec() });
            }
            let lam = c / t as f64;
            lambda[u as usize * k + q] = lam;
            potential[u as usize * k + q] = 0.0;
            for i in (1..cycle.len()).rev() {
                let v = cycle[i] as usize;
                let p = policy[v * k + q] as usize;
                lambda[v * k + q] = lam;
                potential[v * k + q] = cost[p * k + q] - lam * f64::from(tok[p])
                    + potential[to[p] as usize * k + q];
                state[v] = 2;
            }
            state[u as usize] = 2;
            pos
        } else {
            path.len()
        };

        for i in (0..settle_from).rev() {
            let v = path[i] as usize;
            let p = policy[v * k + q] as usize;
            lambda[v * k + q] = lambda[to[p] as usize * k + q];
            potential[v * k + q] = cost[p * k + q]
                - lambda[v * k + q] * f64::from(tok[p])
                + potential[to[p] as usize * k + q];
            state[v] = 2;
        }
    }
    Ok(())
}

/// `extract_witness` for one lane: same later-wins max-λ start vertex,
/// same walk/collection order. The caller resets the members' shared
/// `state` to 2 beforehand.
#[allow(clippy::too_many_arguments)]
fn extract_witness_lane(
    csr: &Csr,
    members: &[u32],
    k: usize,
    q: usize,
    cost: &[f64],
    policy: &[u32],
    lambda: &[f64],
    state: &mut [u8],
) -> CycleSolution {
    let to = csr.targets();
    let tok = csr.token_counts();
    let mut start = members[0];
    for &v in &members[1..] {
        if lambda[v as usize * k + q] >= lambda[start as usize * k + q] {
            start = v;
        }
    }
    let mut u = start;
    while state[u as usize] != 3 {
        state[u as usize] = 3;
        u = to[policy[u as usize * k + q] as usize];
    }
    let mut cycle = Vec::new();
    let mut c = 0.0;
    let mut t: u64 = 0;
    let first = u;
    loop {
        cycle.push(u);
        let p = policy[u as usize * k + q] as usize;
        c += cost[p * k + q];
        t += u64::from(tok[p]);
        u = to[p];
        if u == first {
            break;
        }
    }
    debug_assert!(t > 0, "converged policy cycle must carry tokens");
    CycleSolution { ratio: c / t as f64, cycle, cost: c, tokens: t }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// A small deterministic pseudo-random stream (the vendored `rand` is
    /// not a dependency of this crate).
    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0 >> 11
        }
        fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
            lo + (hi - lo) * (self.next() % 1_000_003) as f64 / 1_000_003.0
        }
    }

    /// A multi-SCC structure: three cycles with chords, DAG cross edges
    /// and one acyclic vertex.
    fn structure() -> RatioGraph {
        let mut g = RatioGraph::new(10);
        // SCC A: 0→1→2→0 plus chord 1→0.
        g.add_edge(0, 1, 0.0, 1);
        g.add_edge(1, 2, 0.0, 0);
        g.add_edge(2, 0, 0.0, 1);
        g.add_edge(1, 0, 0.0, 1);
        // SCC B: self-loop at 3.
        g.add_edge(3, 3, 0.0, 2);
        // SCC C: 4→5→6→7→4 with chords 5→4 and 6→4.
        g.add_edge(4, 5, 0.0, 1);
        g.add_edge(5, 6, 0.0, 0);
        g.add_edge(6, 7, 0.0, 1);
        g.add_edge(7, 4, 0.0, 1);
        g.add_edge(5, 4, 0.0, 1);
        g.add_edge(6, 4, 0.0, 2);
        // Cross edges and the acyclic tail 8 → 9.
        g.add_edge(2, 4, 0.0, 0);
        g.add_edge(3, 5, 0.0, 1);
        g.add_edge(8, 9, 0.0, 0);
        g.add_edge(0, 8, 0.0, 1);
        g
    }

    fn with_costs(structure: &RatioGraph, costs: &[f64]) -> RatioGraph {
        let mut g = structure.clone();
        for (i, &c) in costs.iter().enumerate() {
            g.set_edge_cost(i, c);
        }
        g
    }

    fn solo_results(structure: &RatioGraph, planes: &CostPlanes) -> Vec<RatioResult> {
        (0..planes.num_instances())
            .map(|q| Workspace::new().max_cycle_ratio(&with_costs(structure, planes.plane(q))))
            .collect()
    }

    fn assert_bitwise_eq(batch: &[RatioResult], solo: &[RatioResult]) {
        assert_eq!(batch.len(), solo.len());
        for (q, (b, s)) in batch.iter().zip(solo).enumerate() {
            match (b, s) {
                (Ok(Some(bs)), Ok(Some(ss))) => {
                    assert_eq!(bs.ratio.to_bits(), ss.ratio.to_bits(), "lane {q} ratio");
                    assert_eq!(bs.cost.to_bits(), ss.cost.to_bits(), "lane {q} cost");
                    assert_eq!(bs.tokens, ss.tokens, "lane {q} tokens");
                    assert_eq!(bs.cycle, ss.cycle, "lane {q} cycle");
                }
                (b, s) => assert_eq!(b, s, "lane {q}"),
            }
        }
    }

    #[test]
    fn batch_matches_solo_bitwise_on_random_planes() {
        let structure = structure();
        let ne = structure.num_edges();
        let mut rng = Lcg(42);
        let mut planes = CostPlanes::new();
        let k = 7;
        planes.reset(k, ne);
        for q in 0..k {
            for c in planes.plane_mut(q) {
                *c = rng.f64_in(-5.0, 50.0);
            }
        }
        let mut ws = Workspace::new();
        let mut scratch = BatchScratch::new();
        let batch = ws.max_cycle_ratio_batch(&structure, 1, &planes, &mut scratch);
        assert_bitwise_eq(&batch, &solo_results(&structure, &planes));
    }

    #[test]
    fn repeated_batches_hit_the_structure_cache() {
        let structure = structure();
        let ne = structure.num_edges();
        let mut rng = Lcg(7);
        let mut ws = Workspace::new();
        let mut scratch = BatchScratch::new();
        let mut planes = CostPlanes::new();
        for round in 0..4 {
            planes.reset(3, ne);
            for q in 0..3 {
                for c in planes.plane_mut(q) {
                    *c = rng.f64_in(0.0, 10.0);
                }
            }
            let batch = ws.max_cycle_ratio_batch(&structure, 99, &planes, &mut scratch);
            assert_bitwise_eq(&batch, &solo_results(&structure, &planes));
            assert_eq!(
                (ws.csr_builds(), ws.tarjan_runs()),
                (1, 1),
                "round {round}: repeat batches with one token must not rebuild"
            );
        }
        // Token miss: rebuilds once.
        planes.reset(1, ne);
        ws.max_cycle_ratio_batch(&structure, 100, &planes, &mut scratch);
        assert_eq!((ws.csr_builds(), ws.tarjan_runs()), (2, 2));
    }

    #[test]
    fn failed_lanes_error_like_solo_and_do_not_stall_the_batch() {
        let structure = structure();
        let ne = structure.num_edges();
        let mut rng = Lcg(3);
        let mut planes = CostPlanes::new();
        planes.reset(4, ne);
        for q in 0..4 {
            for c in planes.plane_mut(q) {
                *c = rng.f64_in(1.0, 9.0);
            }
        }
        // Lane 1: a non-finite cost (validation error, like solo). A solo
        // reference graph cannot even be built with a NaN cost
        // (`set_edge_cost` debug-asserts finiteness), so the failed lane
        // is checked against the validator's error directly and the
        // healthy lanes against their solo solves.
        planes.plane_mut(1)[5] = f64::NAN;
        let mut ws = Workspace::new();
        let mut scratch = BatchScratch::new();
        let batch = ws.max_cycle_ratio_batch(&structure, 5, &planes, &mut scratch);
        assert_eq!(batch[1], Err(RatioGraphError::NonFiniteCost));
        for q in [0, 2, 3] {
            let solo = Workspace::new().max_cycle_ratio(&with_costs(&structure, planes.plane(q)));
            assert_bitwise_eq(&batch[q..q + 1], &[solo]);
        }
        // A failed lane leaves the cache cold: same token rebuilds.
        let builds = ws.csr_builds();
        planes.plane_mut(1)[5] = 2.0;
        let batch = ws.max_cycle_ratio_batch(&structure, 5, &planes, &mut scratch);
        assert_eq!(ws.csr_builds(), builds + 1, "errored batch must clear the cache");
        assert_bitwise_eq(&batch, &solo_results(&structure, &planes));
    }

    #[test]
    fn zero_token_deadlock_reports_per_lane() {
        // 0→1→0 all zero tokens: every lane deadlocks with the same
        // witness circuit the solo solver reports.
        let mut structure = RatioGraph::new(2);
        structure.add_edge(0, 1, 0.0, 0);
        structure.add_edge(1, 0, 0.0, 0);
        let mut planes = CostPlanes::new();
        planes.reset(2, 2);
        planes.plane_mut(0).copy_from_slice(&[1.0, 2.0]);
        planes.plane_mut(1).copy_from_slice(&[4.0, 3.0]);
        let mut ws = Workspace::new();
        let mut scratch = BatchScratch::new();
        let batch = ws.max_cycle_ratio_batch(&structure, 1, &planes, &mut scratch);
        assert_bitwise_eq(&batch, &solo_results(&structure, &planes));
        assert!(matches!(batch[0], Err(RatioGraphError::ZeroTokenCycle { .. })));
    }

    #[test]
    fn empty_batch_and_acyclic_graph() {
        let structure = structure();
        let mut ws = Workspace::new();
        let mut scratch = BatchScratch::new();
        let planes = CostPlanes::new();
        assert!(ws
            .max_cycle_ratio_batch(&RatioGraph::new(3), 1, &planes, &mut scratch)
            .is_empty());
        // Acyclic graph: every lane resolves Ok(None).
        let mut dag = RatioGraph::new(3);
        dag.add_edge(0, 1, 0.0, 1);
        dag.add_edge(1, 2, 0.0, 1);
        let mut p2 = CostPlanes::new();
        p2.reset(2, 2);
        p2.plane_mut(0).copy_from_slice(&[1.0, 2.0]);
        p2.plane_mut(1).copy_from_slice(&[3.0, 4.0]);
        let batch = ws.max_cycle_ratio_batch(&dag, 2, &p2, &mut scratch);
        assert_eq!(batch, vec![Ok(None), Ok(None)]);
        let _ = structure;
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn batch_is_bitwise_solo_on_random_graphs(
            seed in 0u64..1_000_000,
            n in 2usize..12,
            extra in 0usize..20,
            k in 1usize..9,
        ) {
            // Random structure: a Hamiltonian cycle (guaranteed SCC work)
            // plus `extra` random edges, random token counts with at least
            // one token on the base cycle.
            let mut rng = Lcg(seed.wrapping_mul(2654435761).wrapping_add(1));
            let mut structure = RatioGraph::new(n);
            for v in 0..n as u32 {
                structure.add_edge(v, (v + 1) % n as u32, 0.0, 1);
            }
            for _ in 0..extra {
                let from = (rng.next() as usize % n) as u32;
                let to = (rng.next() as usize % n) as u32;
                let tokens = (rng.next() % 3) as u32;
                structure.add_edge(from, to, 0.0, tokens);
            }
            let ne = structure.num_edges();
            let mut planes = CostPlanes::new();
            planes.reset(k, ne);
            for q in 0..k {
                for c in planes.plane_mut(q) {
                    *c = rng.f64_in(-20.0, 100.0);
                }
            }
            let mut ws = Workspace::new();
            let mut scratch = BatchScratch::new();
            let batch = ws.max_cycle_ratio_batch(&structure, seed, &planes, &mut scratch);
            assert_bitwise_eq(&batch, &solo_results(&structure, &planes));
        }
    }
}
