//! Dense max-plus matrices.
//!
//! A timed event graph with unit-token places has dynamics
//! `x(k) = A ⊗ x(k−1)` over the max-plus semiring; its asymptotic growth
//! rate (the period) is the max-plus eigenvalue of `A`, i.e. the maximum
//! cycle mean of the precedence graph of `A`. This module provides the
//! matrix view plus the bridge to the graph algorithms, and is also used by
//! the TPN simulator tests to validate firing recurrences.

use crate::graph::RatioGraph;
use crate::karp::max_cycle_mean;
use crate::semiring::MaxPlus;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense square-or-rectangular matrix over [`MaxPlus`].
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<MaxPlus>,
}

impl Matrix {
    /// All-`ε` matrix (the additive identity).
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![MaxPlus::zero(); rows * cols] }
    }

    /// Max-plus identity: `e` on the diagonal, `ε` elsewhere.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = MaxPlus::one();
        }
        m
    }

    /// Builds from a row-major array of `f64` (use `f64::NEG_INFINITY` for `ε`).
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut m = Matrix::zeros(r, c);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), c, "ragged rows");
            for (j, &v) in row.iter().enumerate() {
                m[(i, j)] = if v == f64::NEG_INFINITY { MaxPlus::zero() } else { MaxPlus::new(v) };
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Max-plus matrix product `self ⊗ rhs`.
    pub fn mul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "dimension mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a.is_zero() {
                    continue;
                }
                for j in 0..rhs.cols {
                    let cand = a * rhs[(k, j)];
                    if out[(i, j)] < cand {
                        out[(i, j)] = cand;
                    }
                }
            }
        }
        out
    }

    /// Max-plus matrix–vector product.
    pub fn apply(&self, x: &[MaxPlus]) -> Vec<MaxPlus> {
        assert_eq!(self.cols, x.len(), "dimension mismatch");
        let mut out = vec![MaxPlus::zero(); self.rows];
        for i in 0..self.rows {
            let mut acc = MaxPlus::zero();
            for k in 0..self.cols {
                acc = acc + self[(i, k)] * x[k];
            }
            out[i] = acc;
        }
        out
    }

    /// Max-plus power `self^⊗k` by repeated squaring. Requires square.
    pub fn pow(&self, mut k: u32) -> Matrix {
        assert_eq!(self.rows, self.cols, "pow requires a square matrix");
        let mut result = Matrix::identity(self.rows);
        let mut base = self.clone();
        while k > 0 {
            if k & 1 == 1 {
                result = result.mul(&base);
            }
            base = base.mul(&base);
            k >>= 1;
        }
        result
    }

    /// The precedence graph of the matrix: edge `j → i` with cost `A[i][j]`
    /// and one token per edge (matching the `x(k) = A ⊗ x(k−1)` recurrence).
    pub fn precedence_graph(&self) -> RatioGraph {
        assert_eq!(self.rows, self.cols);
        let mut g = RatioGraph::new(self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                if !self[(i, j)].is_zero() {
                    g.add_edge(j as u32, i as u32, self[(i, j)].value(), 1);
                }
            }
        }
        g
    }

    /// Max-plus eigenvalue of an irreducible (or any) matrix: the maximum
    /// cycle mean of the precedence graph, or `None` if the graph is acyclic
    /// (nilpotent matrix).
    pub fn eigenvalue(&self) -> Option<f64> {
        max_cycle_mean(&self.precedence_graph())
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = MaxPlus;
    fn index(&self, (i, j): (usize, usize)) -> &MaxPlus {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut MaxPlus {
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  ")?;
            for j in 0..self.cols {
                write!(f, "{:?} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[f64::NEG_INFINITY, 3.0]]);
        let i = Matrix::identity(2);
        assert_eq!(a.mul(&i), a);
        assert_eq!(i.mul(&a), a);
    }

    #[test]
    fn product_takes_max_over_paths() {
        let a = Matrix::from_rows(&[&[1.0, 5.0], &[2.0, 0.0]]);
        let b = a.mul(&a);
        // b[0][0] = max(1+1, 5+2) = 7
        assert_eq!(b[(0, 0)], MaxPlus::new(7.0));
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let a = Matrix::from_rows(&[&[1.0, 5.0], &[2.0, f64::NEG_INFINITY]]);
        let p3 = a.pow(3);
        let m3 = a.mul(&a).mul(&a);
        assert_eq!(p3, m3);
    }

    #[test]
    fn eigenvalue_of_cycle_matrix() {
        // x0(k) = 3 + x1(k-1); x1(k) = 5 + x0(k-1): period (3+5)/2 = 4.
        let a = Matrix::from_rows(&[&[f64::NEG_INFINITY, 3.0], &[5.0, f64::NEG_INFINITY]]);
        assert!((a.eigenvalue().unwrap() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn eigenvalue_governs_growth_rate() {
        // Power iteration: x(k) = A^k x(0); x grows by λ per step asymptotically.
        let a = Matrix::from_rows(&[&[2.0, 7.0], &[1.0, 3.0]]);
        let lambda = a.eigenvalue().unwrap();
        let x0 = vec![MaxPlus::one(), MaxPlus::one()];
        let k = 64;
        let xk = a.pow(k).apply(&x0);
        let growth = xk[0].value() / f64::from(k);
        assert!((growth - lambda).abs() < 0.2, "growth {growth} vs λ {lambda}");
    }

    #[test]
    fn nilpotent_has_no_eigenvalue() {
        let a = Matrix::from_rows(&[&[f64::NEG_INFINITY, 1.0], &[f64::NEG_INFINITY, f64::NEG_INFINITY]]);
        assert_eq!(a.eigenvalue(), None);
    }

    #[test]
    fn apply_matches_mul() {
        let a = Matrix::from_rows(&[&[1.0, 5.0], &[2.0, 0.0]]);
        let x = vec![MaxPlus::new(1.0), MaxPlus::new(2.0)];
        let y = a.apply(&x);
        assert_eq!(y[0], MaxPlus::new(7.0)); // max(1+1, 5+2)
        assert_eq!(y[1], MaxPlus::new(3.0)); // max(2+1, 0+2)
    }
}
