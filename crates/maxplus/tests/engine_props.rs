//! Property tests of the zero-allocation engine: on random `RatioGraph`s,
//! cold-start, workspace-reused and warm-started Howard solves must agree
//! **bit for bit**, and Howard / Karp / Lawler must cross-validate.
//!
//! "Bit for bit" is not approximate agreement: every solver recomputes its
//! ratio exactly from a witness circuit, and on generic (random-cost)
//! graphs the critical circuit is unique, so the reused and warm-started
//! paths must land on the identical `f64`.

use maxplus::graph::RatioGraph;
use maxplus::howard::max_cycle_ratio;
use maxplus::karp::max_cycle_ratio_karp;
use maxplus::lawler::max_cycle_ratio_lawler;
use maxplus::workspace::Workspace;
use proptest::prelude::*;
use proptest::strategy::Strategy;

/// Random live graphs: a tokenized Hamiltonian ring (strong connectivity,
/// no deadlock) plus random extra edges; backward/self extras always carry
/// a token so the zero-token subgraph stays acyclic.
fn arb_live_graph() -> impl Strategy<Value = RatioGraph> {
    (
        proptest::collection::vec(0.1f64..100.0, 2..14),
        proptest::collection::vec((0u32..14, 0u32..14, 0.1f64..100.0, 0u32..3), 0..40),
    )
        .prop_map(|(ring, extras)| {
            let n = ring.len();
            let mut g = RatioGraph::new(n);
            for (v, cost) in ring.into_iter().enumerate() {
                g.add_edge(v as u32, (v as u32 + 1) % n as u32, cost, 1);
            }
            for (a, b, cost, tokens) in extras {
                let (a, b) = (a % n as u32, b % n as u32);
                // Zero tokens only on strictly forward edges: zero-token
                // subgraph is a DAG, hence no deadlocked circuit.
                let tokens = if a >= b { tokens.max(1) } else { tokens };
                g.add_edge(a, b, cost, tokens);
            }
            g
        })
}

/// A same-shape cost perturbation of `g` (what a neighbor mapping in a
/// search typically produces).
fn perturb(g: &RatioGraph, factor: f64) -> RatioGraph {
    let mut out = RatioGraph::new(g.num_vertices());
    for e in g.edges() {
        out.add_edge(e.from, e.to, e.cost * factor + 0.013, e.tokens);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    #[test]
    fn workspace_reuse_is_bitwise_identical_to_cold(g in arb_live_graph()) {
        // One long-lived workspace fed the same graph repeatedly (after
        // having seen a different graph first, so buffers are truly dirty).
        let mut ws = Workspace::new();
        let warmup = perturb(&g, 3.7);
        ws.max_cycle_ratio(&warmup).expect("live by construction");
        let cold = max_cycle_ratio(&g).expect("live").expect("ring is a circuit");
        for round in 0..3 {
            let reused = ws.max_cycle_ratio(&g).expect("live").expect("cyclic");
            prop_assert!(reused.ratio.to_bits() == cold.ratio.to_bits(),
                "round {}: {} vs {}", round, reused.ratio, cold.ratio);
            prop_assert_eq!(&reused.cycle, &cold.cycle);
            prop_assert_eq!(reused.cost.to_bits(), cold.cost.to_bits());
            prop_assert_eq!(reused.tokens, cold.tokens);
        }
    }

    #[test]
    fn warm_start_is_bitwise_identical_to_cold(g in arb_live_graph()) {
        // Warm-start the workspace on g, then solve a same-shape cost
        // perturbation warm: the ratio must equal the cold solve exactly.
        let mut ws = Workspace::new();
        ws.max_cycle_ratio(&g).expect("live");
        let neighbor = perturb(&g, 1.75);
        let warm = ws.max_cycle_ratio_warm(&neighbor).expect("live").expect("cyclic");
        let cold = max_cycle_ratio(&neighbor).expect("live").expect("cyclic");
        prop_assert!(warm.ratio.to_bits() == cold.ratio.to_bits(),
            "warm {} vs cold {}", warm.ratio, cold.ratio);
        // And warm-chaining back to the original also matches.
        let warm_back = ws.max_cycle_ratio_warm(&g).expect("live").expect("cyclic");
        let cold_back = max_cycle_ratio(&g).expect("live").expect("cyclic");
        prop_assert_eq!(warm_back.ratio.to_bits(), cold_back.ratio.to_bits());
    }

    #[test]
    fn howard_karp_lawler_cross_oracles(g in arb_live_graph()) {
        let h = max_cycle_ratio(&g).expect("live").expect("cyclic");
        let l = max_cycle_ratio_lawler(&g).expect("live").expect("cyclic");
        let k = max_cycle_ratio_karp(&g).expect("live").expect("cyclic");
        let tol = 1e-9 * h.ratio.abs().max(1.0);
        prop_assert!((h.ratio - l.ratio).abs() <= tol, "howard {} vs lawler {}", h.ratio, l.ratio);
        prop_assert!((h.ratio - k.ratio).abs() <= 1e-6 * h.ratio.abs().max(1.0),
            "howard {} vs karp {}", h.ratio, k.ratio);
        // Workspace-based Lawler and Karp agree bitwise with their
        // one-shot counterparts.
        let mut ws = Workspace::new();
        let lw = ws.max_cycle_ratio_lawler(&g).expect("live").expect("cyclic");
        prop_assert_eq!(lw.ratio.to_bits(), l.ratio.to_bits());
        let mean = maxplus::karp::max_cycle_mean(&g).expect("cyclic");
        let mean_ws = ws.max_cycle_mean(&g).expect("cyclic");
        prop_assert_eq!(mean.to_bits(), mean_ws.to_bits());
    }
}
